//! The mountain-car problem (Moore 1990), with the exact dynamics of OpenAI
//! Gym's `MountainCar-v0`. Not part of the paper's evaluation; included as an
//! extension so the framework's environment zoo covers a sparse-reward
//! classic-control task alongside CartPole.

use crate::env::{Environment, StepResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MIN_POSITION: f32 = -1.2;
const MAX_POSITION: f32 = 0.6;
const MAX_SPEED: f32 = 0.07;
const GOAL_POSITION: f32 = 0.5;
const FORCE: f32 = 0.001;
const GRAVITY: f32 = 0.0025;

/// Episode length cap, as in `MountainCar-v0`.
pub const MAX_EPISODE_STEPS: u32 = 200;

/// An under-powered car in a valley must build momentum to reach the flag on
/// the right hill. Actions: push left, coast, push right. Reward is −1 per
/// step until the goal (or the 200-step cap) ends the episode, so better
/// policies finish with returns closer to zero.
#[derive(Debug, Clone)]
pub struct MountainCar {
    position: f32,
    velocity: f32,
    steps: u32,
    done: bool,
    rng: StdRng,
}

impl MountainCar {
    /// Creates a mountain-car environment with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        MountainCar { position: -0.5, velocity: 0.0, steps: 0, done: true, rng: StdRng::seed_from_u64(seed) }
    }

    fn observation(&self) -> Vec<f32> {
        vec![self.position, self.velocity]
    }
}

impl Environment for MountainCar {
    fn observation_dim(&self) -> usize {
        2
    }

    fn num_actions(&self) -> usize {
        3
    }

    fn reset(&mut self) -> Vec<f32> {
        self.position = self.rng.gen_range(-0.6..-0.4);
        self.velocity = 0.0;
        self.steps = 0;
        self.done = false;
        self.observation()
    }

    fn step(&mut self, action: usize) -> StepResult {
        assert!(action < 3, "MountainCar has three actions, got {action}");
        assert!(!self.done, "step called on a finished episode; call reset first");
        self.velocity += (action as f32 - 1.0) * FORCE + (3.0 * self.position).cos() * (-GRAVITY);
        self.velocity = self.velocity.clamp(-MAX_SPEED, MAX_SPEED);
        self.position += self.velocity;
        self.position = self.position.clamp(MIN_POSITION, MAX_POSITION);
        if self.position <= MIN_POSITION && self.velocity < 0.0 {
            self.velocity = 0.0;
        }
        self.steps += 1;
        let reached = self.position >= GOAL_POSITION;
        self.done = reached || self.steps >= MAX_EPISODE_STEPS;
        StepResult { observation: self.observation(), reward: -1.0, done: self.done }
    }

    fn name(&self) -> &str {
        "MountainCar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_starts_in_the_valley() {
        let mut env = MountainCar::new(1);
        let obs = env.reset();
        assert!((-0.6..-0.4).contains(&obs[0]));
        assert_eq!(obs[1], 0.0);
    }

    #[test]
    fn random_policy_rarely_escapes() {
        let mut env = MountainCar::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            env.reset();
            let mut steps = 0;
            loop {
                let r = env.step(rng.gen_range(0..3));
                steps += 1;
                if r.done {
                    break;
                }
            }
            assert_eq!(steps, MAX_EPISODE_STEPS, "random play should time out");
        }
    }

    #[test]
    fn oscillation_policy_reaches_the_goal() {
        // The classic energy-pumping policy: push in the direction of motion.
        let mut env = MountainCar::new(4);
        let mut obs = env.reset();
        let mut steps = 0;
        loop {
            let action = if obs[1] >= 0.0 { 2 } else { 0 };
            let r = env.step(action);
            steps += 1;
            obs = r.observation;
            if r.done {
                break;
            }
        }
        assert!(obs[0] >= GOAL_POSITION, "momentum policy must summit, stopped at {}", obs[0]);
        assert!(steps < MAX_EPISODE_STEPS, "and before the cap, took {steps}");
    }

    #[test]
    fn velocity_is_clamped() {
        let mut env = MountainCar::new(5);
        env.reset();
        for _ in 0..100 {
            let r = env.step(2);
            assert!(r.observation[1].abs() <= MAX_SPEED + 1e-6);
            if r.done {
                env.reset();
            }
        }
    }

    #[test]
    fn left_wall_stops_the_car() {
        let mut env = MountainCar::new(6);
        env.reset();
        // Push left until pinned against the wall.
        for _ in 0..MAX_EPISODE_STEPS {
            let r = env.step(0);
            if r.observation[0] <= MIN_POSITION + 1e-6 {
                assert!(r.observation[1] >= 0.0, "wall zeroes leftward velocity");
                return;
            }
            if r.done {
                env.reset();
            }
        }
    }
}
