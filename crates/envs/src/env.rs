//! The gym-style environment trait.

/// Result of applying one action to an environment.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// Observation after the action.
    pub observation: Vec<f32>,
    /// Immediate reward.
    pub reward: f32,
    /// True if the episode ended with this step.
    pub done: bool,
}

/// A sequential-decision environment with a discrete action space.
///
/// Mirrors the `init`/`reset`/`step` interface of the paper's `Environment`
/// wrapper class (§4.2), which in turn follows OpenAI Gym.
pub trait Environment: Send {
    /// Length of observation vectors.
    fn observation_dim(&self) -> usize;

    /// Number of discrete actions.
    fn num_actions(&self) -> usize;

    /// Starts a new episode, returning the initial observation.
    fn reset(&mut self) -> Vec<f32>;

    /// Applies `action`, returning the transition.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action >= num_actions()` or if called
    /// after `done` without an intervening [`Environment::reset`].
    fn step(&mut self, action: usize) -> StepResult;

    /// Human-readable environment name.
    fn name(&self) -> &str;
}

/// Wraps any environment with a fixed per-step latency, emulating a slower
/// simulator (or a remote one) without changing its dynamics.
///
/// Classic-control environments step in nanoseconds, which makes every
/// deployment built on them compute-free on the explorer side; throughput
/// studies need the step cost to be a controlled variable. [`Paced`] sleeps
/// for the configured latency inside [`Environment::step`] — `reset` is left
/// unpaced, matching the synthetic Atari environments, which only charge
/// latency per frame.
#[derive(Debug)]
pub struct Paced<E> {
    inner: E,
    latency: std::time::Duration,
}

impl<E: Environment> Paced<E> {
    /// Wraps `inner`, charging `latency_us` microseconds per step.
    pub fn new(inner: E, latency_us: u64) -> Self {
        Paced { inner, latency: std::time::Duration::from_micros(latency_us) }
    }
}

impl<E: Environment> Environment for Paced<E> {
    fn observation_dim(&self) -> usize {
        self.inner.observation_dim()
    }

    fn num_actions(&self) -> usize {
        self.inner.num_actions()
    }

    fn reset(&mut self) -> Vec<f32> {
        self.inner.reset()
    }

    fn step(&mut self, action: usize) -> StepResult {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        self.inner.step(action)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

impl Environment for Box<dyn Environment> {
    fn observation_dim(&self) -> usize {
        (**self).observation_dim()
    }

    fn num_actions(&self) -> usize {
        (**self).num_actions()
    }

    fn reset(&mut self) -> Vec<f32> {
        (**self).reset()
    }

    fn step(&mut self, action: usize) -> StepResult {
        (**self).step(action)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}
