//! Synthetic Atari-like environments.
//!
//! The Arcade Learning Environment cannot be bundled with this reproduction,
//! so each of the four games in the paper's evaluation is replaced by a
//! parameterized synthetic MDP that preserves the properties the experiments
//! depend on:
//!
//! * **Message sizes** — observations default to 84×84 = 7056 floats
//!   (≈ 28 KB), so 500-step rollout messages weigh ≈ 14 MB, matching the
//!   IMPALA row of the paper's Table 1.
//! * **Learnability** — a hidden low-dimensional latent state evolves
//!   linearly (plus tanh squashing); the reward of each action is a fixed
//!   linear function of the latent, so value- and policy-based algorithms can
//!   genuinely improve returns. All instances of the same game share the same
//!   hidden dynamics (derived from the game, not the instance seed), so
//!   experience gathered by parallel explorers transfers.
//! * **Reward scales** — per-game reward multipliers mimic the magnitude of
//!   published Atari scores (BeamRider in the thousands, Breakout in the
//!   tens, etc.), so convergence plots look like the paper's Fig. 6.
//! * **Episode structure** — a lives mechanic ends episodes after repeated
//!   bad actions, giving random policies short episodes and trained policies
//!   long ones.

use crate::env::{Environment, StepResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four Atari games of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtariGame {
    /// 9-action space shooter; scores in the thousands.
    BeamRider,
    /// 4-action paddle game; scores in the tens to hundreds.
    Breakout,
    /// 6-action arcade platformer; scores in the thousands.
    Qbert,
    /// 6-action fixed shooter; scores in the hundreds.
    SpaceInvaders,
}

impl AtariGame {
    /// The game's canonical configuration.
    pub fn config(self) -> SynthAtariConfig {
        match self {
            AtariGame::BeamRider => SynthAtariConfig {
                name: "BeamRider".into(),
                num_actions: 9,
                reward_scale: 60.0,
                dynamics_seed: 0xBEA7,
                ..SynthAtariConfig::default()
            },
            AtariGame::Breakout => SynthAtariConfig {
                name: "Breakout".into(),
                num_actions: 4,
                reward_scale: 1.5,
                dynamics_seed: 0xB4EA,
                ..SynthAtariConfig::default()
            },
            AtariGame::Qbert => SynthAtariConfig {
                name: "Qbert".into(),
                num_actions: 6,
                reward_scale: 55.0,
                dynamics_seed: 0x0BE7,
                ..SynthAtariConfig::default()
            },
            AtariGame::SpaceInvaders => SynthAtariConfig {
                name: "SpaceInvaders".into(),
                num_actions: 6,
                reward_scale: 8.0,
                dynamics_seed: 0x51AC,
                ..SynthAtariConfig::default()
            },
        }
    }
}

/// Configuration of a synthetic Atari-like environment.
#[derive(Debug, Clone)]
pub struct SynthAtariConfig {
    /// Display name.
    pub name: String,
    /// Observation vector length (default 84×84 = 7056, a downsampled frame).
    pub obs_dim: usize,
    /// Hidden latent-state dimension.
    pub latent_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Hard episode-length cap.
    pub max_steps: u32,
    /// Multiplier applied to raw rewards, setting the game's score scale.
    pub reward_scale: f32,
    /// Probability of losing a life on a negatively-rewarded step.
    pub hazard: f64,
    /// Lives per episode.
    pub lives: u32,
    /// Seed for the *shared* game dynamics (same for all instances of a game).
    pub dynamics_seed: u64,
    /// Emulation time per step in microseconds, modeled as a sleep. A real
    /// ALE step with frame-skip 4 takes on the order of a millisecond; using
    /// sleep (idle) time rather than busy CPU lets one host interleave many
    /// explorers the way the paper's 72-core testbed ran them in parallel
    /// (the same substitution `netsim` makes for the NIC). Set to 0 for pure
    /// CPU-bound micro-tests.
    pub step_latency_us: u64,
}

impl Default for SynthAtariConfig {
    fn default() -> Self {
        SynthAtariConfig {
            name: "SynthAtari".into(),
            obs_dim: 84 * 84,
            latent_dim: 16,
            num_actions: 6,
            max_steps: 1000,
            reward_scale: 1.0,
            hazard: 0.02,
            lives: 3,
            dynamics_seed: 7,
            step_latency_us: 1000,
        }
    }
}

impl SynthAtariConfig {
    /// Shrinks the observation to `dim` (useful for fast unit tests).
    pub fn with_obs_dim(mut self, dim: usize) -> Self {
        assert!(dim >= self.latent_dim, "observation must fit the latent state");
        self.obs_dim = dim;
        self
    }

    /// Sets the per-step emulation latency in microseconds (0 disables it).
    pub fn with_step_latency_us(mut self, us: u64) -> Self {
        self.step_latency_us = us;
        self
    }
}

/// A synthetic Atari-like environment. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct SynthAtari {
    config: SynthAtariConfig,
    /// Latent transition matrix (latent_dim × latent_dim), spectral-norm damped.
    dynamics: Vec<f32>,
    /// Per-action drift vectors (num_actions × latent_dim).
    action_drift: Vec<f32>,
    /// Per-action reward vectors (num_actions × latent_dim).
    reward_vectors: Vec<f32>,
    /// Fixed texture used to expand the latent into the full observation.
    texture: Vec<f32>,
    latent: Vec<f32>,
    steps: u32,
    lives_left: u32,
    done: bool,
    rng: StdRng,
}

impl SynthAtari {
    /// Creates one of the four benchmark games.
    pub fn game(game: AtariGame, seed: u64) -> Self {
        SynthAtari::with_config(game.config(), seed)
    }

    /// Creates an environment from an explicit configuration. `seed` controls
    /// only per-instance noise; the hidden dynamics come from
    /// `config.dynamics_seed` so parallel instances share them.
    pub fn with_config(config: SynthAtariConfig, seed: u64) -> Self {
        let l = config.latent_dim;
        let mut dyn_rng = StdRng::seed_from_u64(config.dynamics_seed);
        let mut dynamics = vec![0.0f32; l * l];
        for v in &mut dynamics {
            *v = dyn_rng.gen_range(-1.0..1.0) / (l as f32).sqrt();
        }
        let mut action_drift = vec![0.0f32; config.num_actions * l];
        for v in &mut action_drift {
            *v = dyn_rng.gen_range(-0.5..0.5);
        }
        let mut reward_vectors = vec![0.0f32; config.num_actions * l];
        for v in &mut reward_vectors {
            *v = dyn_rng.gen_range(-1.0..1.0);
        }
        let mut texture = vec![0.0f32; config.obs_dim];
        for (i, v) in texture.iter_mut().enumerate() {
            // Deterministic, cheap pseudo-texture in [-1, 1].
            let h = (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ config.dynamics_seed;
            *v = ((h >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0;
        }
        SynthAtari {
            latent: vec![0.0; l],
            steps: 0,
            lives_left: 0,
            done: true,
            rng: StdRng::seed_from_u64(seed ^ 0xA7A21),
            config,
            dynamics,
            action_drift,
            reward_vectors,
            texture,
        }
    }

    /// The environment's configuration.
    pub fn config(&self) -> &SynthAtariConfig {
        &self.config
    }

    /// Raw (unscaled) reward of `action` in the current latent state. The
    /// optimal policy picks the argmax over actions; exposed so tests and
    /// oracle baselines can compute the ceiling.
    pub fn action_value(&self, action: usize) -> f32 {
        let l = self.config.latent_dim;
        let rv = &self.reward_vectors[action * l..(action + 1) * l];
        rv.iter().zip(&self.latent).map(|(a, b)| a * b).sum::<f32>() / l as f32
    }

    #[allow(clippy::needless_range_loop)] // texel index is semantically meaningful
    fn observation(&self) -> Vec<f32> {
        let l = self.config.latent_dim;
        let mut obs = vec![0.0f32; self.config.obs_dim];
        obs[..l].copy_from_slice(&self.latent);
        // Expand the latent over the rest of the frame: each texel modulates
        // one latent channel. Linear in the latent, so the structure stays
        // learnable while costing a realistic amount of per-step work.
        for i in l..self.config.obs_dim {
            obs[i] = self.texture[i] * self.latent[i % l];
        }
        obs
    }
}

impl Environment for SynthAtari {
    fn observation_dim(&self) -> usize {
        self.config.obs_dim
    }

    fn num_actions(&self) -> usize {
        self.config.num_actions
    }

    fn reset(&mut self) -> Vec<f32> {
        for v in &mut self.latent {
            *v = self.rng.gen_range(-1.0..1.0);
        }
        self.steps = 0;
        self.lives_left = self.config.lives;
        self.done = false;
        self.observation()
    }

    fn step(&mut self, action: usize) -> StepResult {
        assert!(action < self.config.num_actions, "action {action} out of range");
        assert!(!self.done, "step called on a finished episode; call reset first");
        if self.config.step_latency_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.config.step_latency_us));
        }
        let l = self.config.latent_dim;
        let raw = self.action_value(action);
        let reward = raw.max(0.0) * self.config.reward_scale;
        if raw < 0.0 && self.rng.gen_bool(self.config.hazard) {
            self.lives_left -= 1;
        }
        // Latent transition: s' = tanh(A s + drift_a + noise).
        let drift = &self.action_drift[action * l..(action + 1) * l];
        let mut next = vec![0.0f32; l];
        for (i, n) in next.iter_mut().enumerate() {
            let row = &self.dynamics[i * l..(i + 1) * l];
            let acc: f32 =
                drift[i] + row.iter().zip(&self.latent).map(|(a, b)| a * b).sum::<f32>();
            *n = (acc + self.rng.gen_range(-0.1..0.1)).tanh();
        }
        self.latent = next;
        self.steps += 1;
        self.done = self.lives_left == 0 || self.steps >= self.config.max_steps;
        StepResult { observation: self.observation(), reward, done: self.done }
    }

    fn name(&self) -> &str {
        &self.config.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(game: AtariGame, seed: u64) -> SynthAtari {
        SynthAtari::with_config(game.config().with_obs_dim(32).with_step_latency_us(0), seed)
    }

    #[test]
    fn observation_sizes_match_frames() {
        let env = SynthAtari::game(AtariGame::Breakout, 0);
        assert_eq!(env.observation_dim(), 7056);
    }

    #[test]
    fn action_counts_match_games() {
        assert_eq!(tiny(AtariGame::BeamRider, 0).num_actions(), 9);
        assert_eq!(tiny(AtariGame::Breakout, 0).num_actions(), 4);
        assert_eq!(tiny(AtariGame::Qbert, 0).num_actions(), 6);
        assert_eq!(tiny(AtariGame::SpaceInvaders, 0).num_actions(), 6);
    }

    #[test]
    fn oracle_policy_beats_random() {
        let mut env = tiny(AtariGame::SpaceInvaders, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let episodes = 20;
        let mut random_return = 0.0;
        for _ in 0..episodes {
            env.reset();
            loop {
                let r = env.step(rng.gen_range(0..env.num_actions()));
                random_return += r.reward;
                if r.done {
                    break;
                }
            }
        }
        let mut oracle_return = 0.0;
        for _ in 0..episodes {
            env.reset();
            loop {
                let best = (0..env.num_actions())
                    .max_by(|&a, &b| {
                        env.action_value(a).partial_cmp(&env.action_value(b)).unwrap()
                    })
                    .unwrap();
                let r = env.step(best);
                oracle_return += r.reward;
                if r.done {
                    break;
                }
            }
        }
        assert!(
            oracle_return > random_return * 1.5,
            "oracle {oracle_return} should clearly beat random {random_return}"
        );
    }

    #[test]
    fn instances_share_game_dynamics() {
        let a = tiny(AtariGame::Qbert, 1);
        let b = tiny(AtariGame::Qbert, 999);
        assert_eq!(a.dynamics, b.dynamics);
        assert_eq!(a.reward_vectors, b.reward_vectors);
    }

    #[test]
    fn different_games_have_different_dynamics() {
        let a = tiny(AtariGame::Qbert, 1);
        let b = tiny(AtariGame::Breakout, 1);
        assert_ne!(a.reward_vectors, b.reward_vectors);
    }

    #[test]
    fn episodes_terminate() {
        let mut env = tiny(AtariGame::Breakout, 5);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..5 {
            env.reset();
            let mut steps = 0;
            loop {
                let r = env.step(rng.gen_range(0..env.num_actions()));
                steps += 1;
                if r.done {
                    break;
                }
            }
            assert!(steps <= env.config().max_steps);
        }
    }

    #[test]
    fn observation_embeds_latent_linearly() {
        let mut env = tiny(AtariGame::Qbert, 3);
        let obs = env.reset();
        let l = env.config().latent_dim;
        for i in l..obs.len() {
            let expect = env.texture[i] * obs[i % l];
            assert!((obs[i] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn rewards_are_scaled_per_game() {
        // BeamRider-scale rewards should dwarf Breakout-scale ones for the
        // same latent magnitude.
        assert!(AtariGame::BeamRider.config().reward_scale > 10.0 * AtariGame::Breakout.config().reward_scale);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_action_panics() {
        let mut env = tiny(AtariGame::Breakout, 0);
        env.reset();
        let _ = env.step(99);
    }
}
