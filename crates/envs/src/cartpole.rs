//! The classic cart-pole balancing problem, with the exact dynamics of
//! OpenAI Gym's `CartPole-v1` (Barto, Sutton & Anderson 1983).

use crate::env::{Environment, StepResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRAVITY: f32 = 9.8;
const MASS_CART: f32 = 1.0;
const MASS_POLE: f32 = 0.1;
const TOTAL_MASS: f32 = MASS_CART + MASS_POLE;
const POLE_HALF_LENGTH: f32 = 0.5;
const POLE_MASS_LENGTH: f32 = MASS_POLE * POLE_HALF_LENGTH;
const FORCE_MAG: f32 = 10.0;
const TAU: f32 = 0.02;
const THETA_THRESHOLD: f32 = 12.0 * 2.0 * std::f32::consts::PI / 360.0;
const X_THRESHOLD: f32 = 2.4;

/// Episode length cap, as in `CartPole-v1`.
pub const MAX_EPISODE_STEPS: u32 = 500;

/// A pole hinged to a cart on a frictionless track; push the cart left or
/// right to keep the pole upright. Reward is +1 per step survived; the
/// episode ends when the pole tips past 12°, the cart leaves ±2.4, or 500
/// steps elapse.
#[derive(Debug, Clone)]
pub struct CartPole {
    state: [f32; 4],
    steps: u32,
    done: bool,
    rng: StdRng,
}

impl CartPole {
    /// Creates a cart-pole environment with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        CartPole { state: [0.0; 4], steps: 0, done: true, rng: StdRng::seed_from_u64(seed) }
    }

    fn observation(&self) -> Vec<f32> {
        self.state.to_vec()
    }
}

impl Environment for CartPole {
    fn observation_dim(&self) -> usize {
        4
    }

    fn num_actions(&self) -> usize {
        2
    }

    fn reset(&mut self) -> Vec<f32> {
        for v in &mut self.state {
            *v = self.rng.gen_range(-0.05..0.05);
        }
        self.steps = 0;
        self.done = false;
        self.observation()
    }

    fn step(&mut self, action: usize) -> StepResult {
        assert!(action < 2, "CartPole has two actions, got {action}");
        assert!(!self.done, "step called on a finished episode; call reset first");
        let [x, x_dot, theta, theta_dot] = self.state;
        let force = if action == 1 { FORCE_MAG } else { -FORCE_MAG };
        let cos_theta = theta.cos();
        let sin_theta = theta.sin();
        let temp = (force + POLE_MASS_LENGTH * theta_dot * theta_dot * sin_theta) / TOTAL_MASS;
        let theta_acc = (GRAVITY * sin_theta - cos_theta * temp)
            / (POLE_HALF_LENGTH * (4.0 / 3.0 - MASS_POLE * cos_theta * cos_theta / TOTAL_MASS));
        let x_acc = temp - POLE_MASS_LENGTH * theta_acc * cos_theta / TOTAL_MASS;
        // Euler integration, as in Gym.
        self.state = [
            x + TAU * x_dot,
            x_dot + TAU * x_acc,
            theta + TAU * theta_dot,
            theta_dot + TAU * theta_acc,
        ];
        self.steps += 1;
        let out_of_bounds = self.state[0].abs() > X_THRESHOLD || self.state[2].abs() > THETA_THRESHOLD;
        self.done = out_of_bounds || self.steps >= MAX_EPISODE_STEPS;
        StepResult { observation: self.observation(), reward: 1.0, done: self.done }
    }

    fn name(&self) -> &str {
        "CartPole"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_starts_near_zero() {
        let mut env = CartPole::new(1);
        let obs = env.reset();
        assert!(obs.iter().all(|v| v.abs() < 0.05));
    }

    #[test]
    fn random_policy_fails_fast() {
        let mut env = CartPole::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut lengths = Vec::new();
        for _ in 0..20 {
            env.reset();
            let mut steps = 0;
            loop {
                let r = env.step(rng.gen_range(0..2));
                steps += 1;
                if r.done {
                    break;
                }
            }
            lengths.push(steps);
        }
        let mean = lengths.iter().sum::<i32>() as f32 / lengths.len() as f32;
        assert!(mean < 100.0, "random play should fall quickly, got mean {mean}");
        assert!(mean > 5.0, "but not instantly, got mean {mean}");
    }

    #[test]
    fn always_push_right_tips_the_pole() {
        let mut env = CartPole::new(4);
        env.reset();
        let mut steps = 0;
        loop {
            let r = env.step(1);
            steps += 1;
            if r.done {
                break;
            }
        }
        assert!(steps < 50, "constant force must topple the pole, took {steps}");
    }

    #[test]
    fn episode_caps_at_500() {
        // A perfect alternating policy from the exact center can exceed the
        // cap only if the cap fires. Instead verify the cap directly by
        // stepping a physics-frozen copy: alternate actions keep it alive for
        // a while; we just assert no episode exceeds MAX_EPISODE_STEPS.
        let mut env = CartPole::new(5);
        env.reset();
        let mut steps = 0u32;
        loop {
            // Simple balance heuristic: push in the direction the pole leans.
            let lean = env.state[2] + env.state[3];
            let action = usize::from(lean > 0.0);
            let r = env.step(action);
            steps += 1;
            if r.done {
                break;
            }
        }
        assert!(steps <= MAX_EPISODE_STEPS);
        assert!(steps > 100, "heuristic balances for a while, got {steps}");
    }

    #[test]
    #[should_panic(expected = "step called on a finished episode")]
    fn step_after_done_panics() {
        let mut env = CartPole::new(6);
        let _ = env.step(0); // never reset
    }

    #[test]
    fn same_seed_same_trajectory() {
        let mut a = CartPole::new(9);
        let mut b = CartPole::new(9);
        assert_eq!(a.reset(), b.reset());
        for action in [0, 1, 1, 0, 1] {
            assert_eq!(a.step(action), b.step(action));
        }
    }
}
