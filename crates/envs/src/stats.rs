//! Rolling episode-return statistics.
//!
//! The paper measures convergence as "the average episode return received by
//! the explorers after the learner trains the DNNs consuming a certain number
//! of rollout steps" (§5.2.1). [`EpisodeTracker`] accumulates per-episode
//! returns and reports windowed averages for exactly that metric.

/// Accumulates episode returns and reports rolling averages.
#[derive(Debug, Clone)]
pub struct EpisodeTracker {
    returns: Vec<f32>,
    window: usize,
    current_return: f32,
    current_len: u32,
    total_steps: u64,
}

impl EpisodeTracker {
    /// Creates a tracker whose rolling average spans the last `window`
    /// episodes.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        EpisodeTracker { returns: Vec::new(), window, current_return: 0.0, current_len: 0, total_steps: 0 }
    }

    /// Records one environment step of the in-progress episode.
    pub fn record_step(&mut self, reward: f32, done: bool) {
        self.current_return += reward;
        self.current_len += 1;
        self.total_steps += 1;
        if done {
            self.returns.push(self.current_return);
            self.current_return = 0.0;
            self.current_len = 0;
        }
    }

    /// Number of completed episodes.
    pub fn episodes(&self) -> usize {
        self.returns.len()
    }

    /// Total environment steps recorded (including the in-progress episode).
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Mean return over the last `window` completed episodes, or `None` before
    /// the first episode completes.
    pub fn rolling_mean(&self) -> Option<f32> {
        if self.returns.is_empty() {
            return None;
        }
        let tail = &self.returns[self.returns.len().saturating_sub(self.window)..];
        Some(tail.iter().sum::<f32>() / tail.len() as f32)
    }

    /// Mean return over all completed episodes, or `None` if none completed.
    pub fn overall_mean(&self) -> Option<f32> {
        if self.returns.is_empty() {
            return None;
        }
        Some(self.returns.iter().sum::<f32>() / self.returns.len() as f32)
    }

    /// All completed episode returns, in order.
    pub fn returns(&self) -> &[f32] {
        &self.returns
    }

    /// Merges another tracker's completed episodes into this one (used to
    /// aggregate per-explorer trackers at the center controller).
    pub fn merge(&mut self, other: &EpisodeTracker) {
        self.returns.extend_from_slice(&other.returns);
        self.total_steps += other.total_steps;
    }
}

impl Default for EpisodeTracker {
    fn default() -> Self {
        EpisodeTracker::new(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_mean_windows() {
        let mut t = EpisodeTracker::new(2);
        assert!(t.rolling_mean().is_none());
        t.record_step(1.0, true);
        t.record_step(3.0, true);
        t.record_step(5.0, true);
        assert_eq!(t.rolling_mean(), Some(4.0), "last two: 3 and 5");
        assert_eq!(t.overall_mean(), Some(3.0));
        assert_eq!(t.episodes(), 3);
    }

    #[test]
    fn partial_episode_not_counted() {
        let mut t = EpisodeTracker::new(10);
        t.record_step(1.0, false);
        t.record_step(1.0, false);
        assert_eq!(t.episodes(), 0);
        assert_eq!(t.total_steps(), 2);
        t.record_step(1.0, true);
        assert_eq!(t.returns(), &[3.0]);
    }

    #[test]
    fn merge_combines() {
        let mut a = EpisodeTracker::new(10);
        a.record_step(1.0, true);
        let mut b = EpisodeTracker::new(10);
        b.record_step(2.0, true);
        a.merge(&b);
        assert_eq!(a.episodes(), 2);
        assert_eq!(a.total_steps(), 2);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = EpisodeTracker::new(0);
    }
}
