//! Gym-style environments for the XingTian reproduction.
//!
//! The paper evaluates with one classic-control environment (CartPole) and
//! four Atari games (BeamRider, Breakout, Qbert, SpaceInvaders). This crate
//! provides:
//!
//! * [`env::Environment`] — the gym-style trait (`reset` / `step`) that the
//!   framework's `Environment` wrapper class (paper §4.2) exposes;
//! * [`cartpole::CartPole`] — a faithful implementation of the classic
//!   cart-pole physics (identical dynamics to OpenAI Gym's `CartPole-v1`);
//! * [`synth_atari::SynthAtari`] — synthetic Atari-like environments. The real
//!   Arcade Learning Environment cannot be bundled, so each game is replaced
//!   by a parameterized MDP whose observation size matches a downsampled Atari
//!   frame (84×84 = 7056 floats ≈ 28 KB, giving the paper's rollout message
//!   sizes), whose reward structure is *learnable* (returns genuinely improve
//!   with training), and whose per-game reward scales mimic the published
//!   magnitudes. See DESIGN.md §2 for the substitution argument.
//! * [`stats::EpisodeTracker`] — rolling episode-return statistics used for
//!   the convergence figures.
//!
//! # Examples
//!
//! ```
//! use gymlite::{CartPole, Environment};
//!
//! let mut env = CartPole::new(0);
//! let obs = env.reset();
//! assert_eq!(obs.len(), 4);
//! let step = env.step(1);
//! assert!(!step.done || step.reward >= 0.0);
//! ```

pub mod cartpole;
pub mod env;
pub mod mountain_car;
pub mod stats;
pub mod synth_atari;

pub use cartpole::CartPole;
pub use env::{Environment, StepResult};
pub use mountain_car::MountainCar;
pub use stats::EpisodeTracker;
pub use synth_atari::{AtariGame, SynthAtari, SynthAtariConfig};

/// Constructs one of the five benchmark environments by name.
///
/// Recognized names: `CartPole`, `MountainCar`, `BeamRider`, `Breakout`,
/// `Qbert`, `SpaceInvaders` (case-insensitive).
///
/// # Errors
///
/// Returns an error string listing valid names if `name` is unknown.
pub fn make_env(name: &str, seed: u64) -> Result<Box<dyn Environment>, String> {
    match name.to_ascii_lowercase().as_str() {
        "cartpole" => Ok(Box::new(CartPole::new(seed))),
        "mountaincar" => Ok(Box::new(MountainCar::new(seed))),
        "beamrider" => Ok(Box::new(SynthAtari::game(AtariGame::BeamRider, seed))),
        "breakout" => Ok(Box::new(SynthAtari::game(AtariGame::Breakout, seed))),
        "qbert" => Ok(Box::new(SynthAtari::game(AtariGame::Qbert, seed))),
        "spaceinvaders" => Ok(Box::new(SynthAtari::game(AtariGame::SpaceInvaders, seed))),
        _ => Err(format!(
            "unknown environment `{name}` (expected CartPole, MountainCar, BeamRider, Breakout, Qbert, or SpaceInvaders)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_env_builds_all_five() {
        for name in ["CartPole", "MountainCar", "BeamRider", "Breakout", "Qbert", "SpaceInvaders"] {
            let mut env = make_env(name, 0).unwrap();
            let obs = env.reset();
            assert_eq!(obs.len(), env.observation_dim(), "{name}");
            assert!(env.num_actions() >= 2, "{name}");
        }
    }

    #[test]
    fn make_env_rejects_unknown() {
        assert!(make_env("Pong", 0).is_err());
    }
}
