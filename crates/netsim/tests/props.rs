//! Property-based tests of the cluster simulator (virtual time, so they run
//! in microseconds regardless of the modeled durations).

use netsim::{Cluster, ClusterSpec};
use proptest::prelude::*;

fn virtual_cluster(machines: usize, bw: f64, latency: f64) -> Cluster {
    Cluster::new(
        ClusterSpec::default()
            .machines(machines)
            .nic_bandwidth(bw)
            .latency_secs(latency)
            .virtual_time(true),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transfers_never_exceed_nic_bandwidth(
        sizes in proptest::collection::vec(1usize..2_000_000, 1..20),
        bw in 1e5f64..1e9,
    ) {
        let cluster = virtual_cluster(2, bw, 0.0);
        let total: usize = sizes.iter().sum();
        let mut last_end = 0u64;
        for size in sizes {
            let r = cluster.transfer(0, 1, size);
            prop_assert!(r.end_nanos >= r.start_nanos);
            prop_assert!(r.end_nanos >= last_end, "NIC serializes transfers");
            last_end = r.end_nanos;
        }
        // Total elapsed must be at least total/bw (the physical lower bound).
        let min_nanos = (total as f64 / bw * 1e9) as u64;
        prop_assert!(last_end + 1 >= min_nanos, "elapsed {last_end} < physical bound {min_nanos}");
    }

    #[test]
    fn intra_machine_is_always_free(size in 0usize..10_000_000, machines in 1usize..4) {
        let cluster = virtual_cluster(machines, 1e6, 0.01);
        let r = cluster.transfer(0, 0, size);
        prop_assert_eq!(r.duration.as_nanos(), 0);
    }

    #[test]
    fn latency_adds_exactly_once(size in 1usize..100_000, latency_ms in 1u64..50) {
        let latency = latency_ms as f64 / 1e3;
        let cluster = virtual_cluster(2, 1e9, latency);
        let r = cluster.transfer(0, 1, size);
        let expected_min = (latency * 1e9) as u64;
        let bytes_nanos = (size as f64 / 1e9 * 1e9).ceil() as u64;
        prop_assert!(r.duration.as_nanos() as u64 >= expected_min);
        prop_assert!(
            (r.duration.as_nanos() as u64) <= expected_min + 2 * bytes_nanos + 1000,
            "latency should not compound: {:?}",
            r.duration
        );
    }

    #[test]
    fn distinct_machine_pairs_do_not_interfere(size in 1usize..1_000_000) {
        // 0→1 and 2→3 share no NIC; their transfers overlap fully in time.
        let cluster = virtual_cluster(4, 1e6, 0.0);
        let r1 = cluster.transfer(0, 1, size);
        // Reset the virtual clock's notion of "now" is impossible, so compare
        // durations instead: the second pair takes the same time even though
        // the first pair just ran.
        let r2 = cluster.transfer(2, 3, size);
        let d1 = r1.end_nanos - r1.start_nanos;
        let d2 = r2.end_nanos - r2.start_nanos;
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn stats_account_every_byte(sizes in proptest::collection::vec(1usize..100_000, 1..16)) {
        let cluster = virtual_cluster(2, 1e8, 0.0);
        let total: usize = sizes.iter().sum();
        for size in &sizes {
            cluster.transfer(0, 1, *size);
        }
        prop_assert_eq!(cluster.machine(0).tx().stats().bytes(), total as u64);
        prop_assert_eq!(cluster.machine(1).rx().stats().bytes(), total as u64);
        prop_assert_eq!(cluster.machine(0).tx().stats().transfers(), sizes.len() as u64);
    }
}
