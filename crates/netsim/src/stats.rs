//! Link statistics.
//!
//! [`LinkStats`] now lives in `xt-telemetry` (every layer of the workspace
//! shares one counters implementation); this module re-exports it so existing
//! `netsim::stats::LinkStats` / `netsim::LinkStats` paths keep working.

pub use xt_telemetry::LinkStats;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_link_stats_record() {
        let s = LinkStats::new();
        s.record(100, 1_000);
        assert_eq!(s.bytes(), 100);
        assert_eq!(s.transfers(), 1);
    }
}
