//! Kernel-bypass NIC fast path: the wire model behind remote replay sampling.
//!
//! The in-network experience-sampling line of work (DPDK-based samplers)
//! shows that a replay shard can answer sample requests from the NIC's own
//! polling thread, skipping the kernel network stack entirely. In `netsim`
//! the kernel stack's cost is the per-transfer propagation latency constant
//! ([`crate::DEFAULT_LATENCY_SECS`], 200 µs — syscalls, interrupts, and
//! copies dominate a LAN hop); a [`BypassPath`] keeps the same NIC bandwidth
//! limit (the hardware does not get faster) but charges only
//! [`BYPASS_LATENCY_SECS`] per message, the few microseconds a user-space
//! poll-mode driver needs.
//!
//! A bypass path also skips the broker fabric: it is a point-to-point
//! connection pinned between two machines at set-up time (exactly like a
//! registered DPDK queue pair), so a remote sample request pays zero routing
//! hops. The xt-replay crate drives its cross-machine `SampleRequest` /
//! `SampleView` exchange over this path.

use crate::cluster::{Cluster, MachineId, TransferReceipt};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-message one-way overhead of the kernel-bypass path, in seconds. A
/// user-space poll-mode driver costs single-digit microseconds per message
/// versus the ~200 µs kernel-stack hop the default cluster latency models.
pub const BYPASS_LATENCY_SECS: f64 = 5e-6;

/// Timing of one request/response exchange over a [`BypassPath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcReceipt {
    /// When the request started flowing.
    pub start_nanos: u64,
    /// When the last response byte arrived.
    pub end_nanos: u64,
    /// Modeled round-trip duration experienced by the requester.
    pub duration: Duration,
}

/// A point-to-point kernel-bypass connection between two machines.
///
/// Bandwidth still flows through both machines' [`crate::Nic`]s (reservations
/// serialize against regular kernel-path traffic — there is one physical
/// port), but each message pays only [`BYPASS_LATENCY_SECS`] instead of the
/// cluster's kernel-stack latency, and no broker hop is involved.
#[derive(Debug)]
pub struct BypassPath {
    cluster: Cluster,
    a: MachineId,
    b: MachineId,
    ops: AtomicU64,
}

impl BypassPath {
    /// Pins a bypass connection between machines `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (intra-machine traffic never touches a NIC) or if
    /// either machine is out of range.
    pub fn new(cluster: Cluster, a: MachineId, b: MachineId) -> Self {
        assert_ne!(a, b, "a bypass path connects two distinct machines");
        assert!(a < cluster.len() && b < cluster.len(), "machine out of range");
        BypassPath { cluster, a, b, ops: AtomicU64::new(0) }
    }

    /// The two pinned endpoints, in construction order.
    pub fn endpoints(&self) -> (MachineId, MachineId) {
        (self.a, self.b)
    }

    /// Messages carried so far (either direction).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Moves `bytes` from `from` to the opposite endpoint, blocking the
    /// calling thread for the modeled duration.
    ///
    /// # Panics
    ///
    /// Panics if `from` is neither pinned endpoint.
    pub fn send(&self, from: MachineId, bytes: usize) -> TransferReceipt {
        let to = match from {
            m if m == self.a => self.b,
            m if m == self.b => self.a,
            other => panic!("machine {other} is not an endpoint of this bypass path"),
        };
        self.ops.fetch_add(1, Ordering::Relaxed);
        let clock = self.cluster.clock();
        let now = clock.now_nanos();
        let tx = self.cluster.machine(from).tx();
        let rx = self.cluster.machine(to).rx();
        // Same store-and-forward NIC coupling as the kernel path; only the
        // per-message latency differs.
        let (tx_start, tx_end) = tx.reserve(now, bytes);
        let (_rx_start, rx_end) = rx.reserve(tx_start, bytes);
        let latency = (BYPASS_LATENCY_SECS * 1e9) as u64;
        let end = tx_end.max(rx_end) + latency;
        clock.wait_until(end);
        TransferReceipt {
            start_nanos: tx_start,
            end_nanos: end,
            duration: Duration::from_nanos(end.saturating_sub(now)),
        }
    }

    /// A request/response exchange initiated by `requester`: `request_bytes`
    /// out, `response_bytes` back. This is the shape of a remote sample
    /// request (tiny request, minibatch-sized response).
    ///
    /// # Panics
    ///
    /// Panics if `requester` is neither pinned endpoint.
    pub fn rpc(&self, requester: MachineId, request_bytes: usize, response_bytes: usize) -> RpcReceipt {
        let responder = if requester == self.a { self.b } else { self.a };
        let req = self.send(requester, request_bytes);
        let resp = self.send(responder, response_bytes);
        RpcReceipt {
            start_nanos: req.start_nanos,
            end_nanos: resp.end_nanos,
            duration: req.duration + resp.duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;

    fn virtual_pair() -> Cluster {
        Cluster::new(ClusterSpec::default().machines(2).virtual_time(true))
    }

    #[test]
    fn bypass_beats_kernel_path_for_small_messages() {
        let cluster = virtual_pair();
        let path = BypassPath::new(cluster.clone(), 0, 1);
        let bypass = path.rpc(0, 64, 1024);
        // The same exchange over the kernel path pays the stack latency twice.
        let k1 = cluster.transfer(0, 1, 64);
        let k2 = cluster.transfer(1, 0, 1024);
        let kernel = k1.duration + k2.duration;
        assert!(
            bypass.duration * 10 < kernel,
            "bypass rtt {:?} should be an order of magnitude under kernel rtt {kernel:?}",
            bypass.duration
        );
        assert_eq!(path.ops(), 2);
    }

    #[test]
    fn bypass_is_still_bandwidth_limited() {
        let cluster = virtual_pair();
        let path = BypassPath::new(cluster.clone(), 0, 1);
        let bytes = 64 * 1024 * 1024; // 64 MiB: bandwidth-dominated
        let b = path.send(0, bytes);
        let k = cluster.transfer(0, 1, bytes);
        let delta = k.duration.abs_diff(b.duration);
        // The two paths differ only by the per-message latency constants.
        assert!(
            delta < Duration::from_millis(1),
            "large transfers are NIC-bound on both paths (delta {delta:?})"
        );
    }

    #[test]
    fn bypass_shares_the_physical_port() {
        let cluster = virtual_pair();
        let path = BypassPath::new(cluster.clone(), 0, 1);
        // Saturate machine 0's tx NIC via the kernel path, then send on the
        // bypass path: the reservation must queue behind it.
        let k = cluster.transfer(0, 1, 10 * 1024 * 1024);
        let b = path.send(0, 1024);
        assert!(
            b.start_nanos >= k.start_nanos,
            "bypass traffic serializes on the same port"
        );
    }

    #[test]
    #[should_panic(expected = "two distinct machines")]
    fn same_machine_rejected() {
        let _ = BypassPath::new(virtual_pair(), 1, 1);
    }
}
