//! Clusters of simulated machines connected by NIC-limited links.

use crate::clock::{Clock, ClockMode};
use crate::faults::{LinkCondition, LinkDown, LinkFaultSchedule};
use crate::nic::Nic;
use crate::{DEFAULT_LATENCY_SECS, GBE_BANDWIDTH};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Index of a machine within a [`Cluster`].
pub type MachineId = usize;

/// Configuration for a simulated cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of machines.
    pub machines: usize,
    /// NIC bandwidth in bytes/second (applies to tx and rx independently).
    pub nic_bandwidth: f64,
    /// One-way propagation latency between any two machines, seconds.
    pub latency_secs: f64,
    /// Use virtual time (deterministic, non-blocking) instead of wall clock.
    pub virtual_time: bool,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            machines: 1,
            nic_bandwidth: GBE_BANDWIDTH,
            latency_secs: DEFAULT_LATENCY_SECS,
            virtual_time: false,
        }
    }
}

impl ClusterSpec {
    /// Sets the number of machines (builder style).
    pub fn machines(mut self, n: usize) -> Self {
        self.machines = n;
        self
    }

    /// Sets NIC bandwidth in bytes/second (builder style).
    pub fn nic_bandwidth(mut self, bw: f64) -> Self {
        self.nic_bandwidth = bw;
        self
    }

    /// Sets one-way latency in seconds (builder style).
    pub fn latency_secs(mut self, l: f64) -> Self {
        self.latency_secs = l;
        self
    }

    /// Enables virtual time (builder style).
    pub fn virtual_time(mut self, v: bool) -> Self {
        self.virtual_time = v;
        self
    }
}

/// A simulated machine: a tx NIC and an rx NIC sharing the machine's port.
#[derive(Debug)]
pub struct Machine {
    id: MachineId,
    tx: Nic,
    rx: Nic,
}

impl Machine {
    /// This machine's index within the cluster.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// Outbound NIC.
    pub fn tx(&self) -> &Nic {
        &self.tx
    }

    /// Inbound NIC.
    pub fn rx(&self) -> &Nic {
        &self.rx
    }
}

/// Timing of one completed transfer, in the cluster clock's nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferReceipt {
    /// When the bytes started flowing.
    pub start_nanos: u64,
    /// When the last byte arrived (including propagation latency).
    pub end_nanos: u64,
    /// Modeled wall-clock duration experienced by the sender.
    pub duration: Duration,
}

/// A set of simulated machines sharing one [`Clock`].
///
/// Intra-machine communication does not touch the cluster: shared-memory
/// transports hand over `Arc`s directly. Only cross-machine bytes are charged
/// to the NICs via [`Cluster::transfer`].
#[derive(Debug, Clone)]
pub struct Cluster {
    inner: Arc<ClusterInner>,
}

#[derive(Debug)]
struct ClusterInner {
    spec: ClusterSpec,
    clock: Clock,
    machines: Vec<Machine>,
    // Swapped wholesale by `install_faults`; read once per transfer. The lock
    // is only ever held for the Arc clone, never across a NIC reservation.
    faults: RwLock<Arc<LinkFaultSchedule>>,
}

impl Cluster {
    /// Builds the cluster described by `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec.machines` is zero.
    pub fn new(spec: ClusterSpec) -> Self {
        assert!(spec.machines > 0, "a cluster needs at least one machine");
        let clock = Clock::new(if spec.virtual_time { ClockMode::Virtual } else { ClockMode::RealTime });
        let machines = (0..spec.machines)
            .map(|id| Machine {
                id,
                tx: Nic::new(spec.nic_bandwidth),
                rx: Nic::new(spec.nic_bandwidth),
            })
            .collect();
        Cluster {
            inner: Arc::new(ClusterInner {
                spec,
                clock,
                machines,
                faults: RwLock::new(Arc::new(LinkFaultSchedule::new())),
            }),
        }
    }

    /// A single-machine cluster (no cross-machine links ever used).
    pub fn single() -> Self {
        Cluster::new(ClusterSpec::default())
    }

    /// The cluster's specification.
    pub fn spec(&self) -> &ClusterSpec {
        &self.inner.spec
    }

    /// The shared clock.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// A boxed [`xt_telemetry::TimeSource`] view of the cluster clock, for
    /// building a `Telemetry` handle whose event timestamps live on the same
    /// timeline as NIC [`TransferReceipt`]s.
    pub fn time_source(&self) -> Box<dyn xt_telemetry::TimeSource> {
        Box::new(self.inner.clock.clone())
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.inner.machines.len()
    }

    /// True when the cluster has exactly one machine.
    pub fn is_empty(&self) -> bool {
        false // a cluster always has ≥ 1 machine
    }

    /// Accessor for machine `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn machine(&self, id: MachineId) -> &Machine {
        &self.inner.machines[id]
    }

    /// Moves `bytes` from machine `from` to machine `to`, blocking the calling
    /// thread for the modeled duration (sender tx NIC and receiver rx NIC are
    /// both reserved; propagation latency is added at the end).
    ///
    /// Transfers within one machine are free (`from == to` returns a zero-cost
    /// receipt) — intra-machine data movement is modeled by the real memory
    /// operations the caller performs.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is out of range.
    pub fn transfer(&self, from: MachineId, to: MachineId, bytes: usize) -> TransferReceipt {
        self.do_transfer(from, to, bytes, 1.0)
    }

    /// Installs (replaces) the cluster's link-fault schedule. Only
    /// [`Cluster::transfer_checked`] consults it; [`Cluster::transfer`] keeps
    /// its unconditional blocking semantics for fault-oblivious callers.
    pub fn install_faults(&self, schedule: LinkFaultSchedule) {
        *self.inner.faults.write().unwrap() = Arc::new(schedule);
    }

    /// The currently installed link-fault schedule.
    pub fn faults(&self) -> Arc<LinkFaultSchedule> {
        self.inner.faults.read().unwrap().clone()
    }

    /// Like [`Cluster::transfer`], but honors the installed
    /// [`LinkFaultSchedule`]: a partitioned link refuses the transfer with
    /// [`LinkDown`] (after charging one propagation latency for the failed
    /// attempt — the cost of discovering the link is dead, and a guarantee
    /// that virtual time advances even when every send is failing), and a
    /// degraded link stretches the modeled duration by the inverse of its
    /// bandwidth factor.
    pub fn transfer_checked(
        &self,
        from: MachineId,
        to: MachineId,
        bytes: usize,
    ) -> Result<TransferReceipt, LinkDown> {
        let now = self.inner.clock.now_nanos();
        if from == to {
            return Ok(TransferReceipt { start_nanos: now, end_nanos: now, duration: Duration::ZERO });
        }
        let schedule = self.faults();
        match schedule.condition(from, to, now) {
            LinkCondition::Partitioned { heal_nanos } => {
                let latency = (self.inner.spec.latency_secs * 1e9) as u64;
                self.inner.clock.wait_until(now + latency.max(1));
                Err(LinkDown { heal_nanos })
            }
            LinkCondition::Degraded { factor } => Ok(self.do_transfer(from, to, bytes, factor)),
            LinkCondition::Healthy => Ok(self.do_transfer(from, to, bytes, 1.0)),
        }
    }

    fn do_transfer(&self, from: MachineId, to: MachineId, bytes: usize, factor: f64) -> TransferReceipt {
        let clock = &self.inner.clock;
        let now = clock.now_nanos();
        if from == to {
            return TransferReceipt { start_nanos: now, end_nanos: now, duration: Duration::ZERO };
        }
        // A degraded link is modeled as the same NIC carrying proportionally
        // more bytes: occupancy and completion both stretch by 1/factor.
        let effective = if factor < 1.0 { ((bytes as f64) / factor).ceil() as usize } else { bytes };
        let tx = self.inner.machines[from].tx();
        let rx = self.inner.machines[to].rx();
        // Reserve the sender's port, then the receiver's port no earlier than
        // the sender can supply the bytes. This couples the two resources the
        // way a store-and-forward switch would.
        let (tx_start, tx_end) = tx.reserve(now, effective);
        let (_rx_start, rx_end) = rx.reserve(tx_start, effective);
        let latency = (self.inner.spec.latency_secs * 1e9) as u64;
        let end = tx_end.max(rx_end) + latency;
        clock.wait_until(end);
        TransferReceipt {
            start_nanos: tx_start,
            end_nanos: end,
            duration: Duration::from_nanos(end.saturating_sub(now)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn virtual_cluster(machines: usize, bw: f64) -> Cluster {
        Cluster::new(
            ClusterSpec::default()
                .machines(machines)
                .nic_bandwidth(bw)
                .latency_secs(0.0)
                .virtual_time(true),
        )
    }

    #[test]
    fn intra_machine_transfer_is_free() {
        let c = virtual_cluster(2, 1e6);
        let r = c.transfer(0, 0, 10_000_000);
        assert_eq!(r.duration, Duration::ZERO);
    }

    #[test]
    fn cross_machine_transfer_is_bandwidth_bound() {
        let c = virtual_cluster(2, 1e6); // 1 MB/s
        let r = c.transfer(0, 1, 2_000_000); // 2 MB -> 2 s
        assert_eq!(r.duration, Duration::from_secs(2));
    }

    #[test]
    fn receiver_nic_is_shared_across_senders() {
        // Machines 0 and 1 both send 1 MB to machine 2. The receiver's rx NIC
        // serializes the flows: total time is 2 s at 1 MB/s, not 1 s.
        let c = virtual_cluster(3, 1e6);
        c.transfer(0, 2, 1_000_000);
        let r = c.transfer(1, 2, 1_000_000);
        assert_eq!(r.end_nanos, 2_000_000_000);
    }

    #[test]
    fn latency_is_added_once() {
        let c = Cluster::new(
            ClusterSpec::default()
                .machines(2)
                .nic_bandwidth(1e9)
                .latency_secs(0.001)
                .virtual_time(true),
        );
        let r = c.transfer(0, 1, 1000);
        // 1 µs of bandwidth time + 1 ms latency.
        assert!(r.duration >= Duration::from_micros(1000));
        assert!(r.duration < Duration::from_micros(1100));
    }

    #[test]
    fn transfer_checked_healthy_matches_transfer() {
        let c = virtual_cluster(2, 1e6);
        let r = c.transfer_checked(0, 1, 2_000_000).expect("healthy link");
        assert_eq!(r.duration, Duration::from_secs(2));
    }

    #[test]
    fn transfer_checked_refuses_partitioned_link() {
        use crate::faults::{LinkFault, LinkFaultSchedule};
        let c = virtual_cluster(2, 1e6);
        c.install_faults(
            LinkFaultSchedule::new().with(LinkFault::partition(0, 1, 0, 5_000_000_000)),
        );
        let err = c.transfer_checked(0, 1, 1_000).unwrap_err();
        assert_eq!(err.heal_nanos, 5_000_000_000);
        // A failed attempt still advances the (virtual) clock, so a retry
        // loop on the virtual clock cannot livelock inside the window.
        assert!(c.clock().now_nanos() > 0);
        // The reverse direction is untouched.
        assert!(c.transfer_checked(1, 0, 1_000).is_ok());
    }

    #[test]
    fn transfer_checked_heals_after_window() {
        use crate::faults::{LinkFault, LinkFaultSchedule};
        let c = virtual_cluster(2, 1e6);
        c.install_faults(LinkFaultSchedule::new().with(LinkFault::partition(0, 1, 0, 1_000)));
        let heal = c.transfer_checked(0, 1, 1_000).unwrap_err().heal_nanos;
        c.clock().wait_until(heal);
        assert!(c.transfer_checked(0, 1, 1_000).is_ok());
    }

    #[test]
    fn degraded_link_stretches_duration() {
        use crate::faults::{LinkFault, LinkFaultSchedule};
        let c = virtual_cluster(2, 1e6);
        c.install_faults(
            LinkFaultSchedule::new().with(LinkFault::degrade(0, 1, 0.25, 0, u64::MAX)),
        );
        // 1 MB at a quarter of 1 MB/s -> 4 s instead of 1 s.
        let r = c.transfer_checked(0, 1, 1_000_000).expect("degraded link still delivers");
        assert_eq!(r.duration, Duration::from_secs(4));
    }

    #[test]
    fn intra_machine_transfer_ignores_faults() {
        use crate::faults::LinkFaultSchedule;
        let c = virtual_cluster(2, 1e6);
        c.install_faults(LinkFaultSchedule::new().isolate_machine(0, 2, 0, u64::MAX));
        assert!(c.transfer_checked(0, 0, 1_000).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let _ = Cluster::new(ClusterSpec::default().machines(0));
    }

    #[test]
    fn spec_builder_round_trips() {
        let s = ClusterSpec::default().machines(4).nic_bandwidth(5e6).latency_secs(0.5).virtual_time(true);
        assert_eq!(s.machines, 4);
        assert_eq!(s.nic_bandwidth, 5e6);
        assert_eq!(s.latency_secs, 0.5);
        assert!(s.virtual_time);
    }
}
