//! Simulated cluster substrate: machines, NICs, and bandwidth-throttled links.
//!
//! The paper evaluates XingTian on up to four FusionServer machines connected
//! by 1 GbE (iperf-measured 118.04 MB/s, Fig. 5). This reproduction runs on a
//! single host, so "machines" are simulated: every process is pinned to a
//! [`Machine`](cluster::Machine) of a [`Cluster`], and any byte that crosses
//! machines must pass through both endpoints' [`Nic`]s, which
//!
//! * serialize transfers (one flow at a time per NIC direction, like a single
//!   Ethernet port),
//! * throttle to a configurable bandwidth (default [`GBE_BANDWIDTH`]), and
//! * add propagation latency.
//!
//! Throttling blocks the *calling thread* for the modeled duration, so real
//! wall-clock measurements of the frameworks built on top naturally exhibit
//! the paper's NIC-bound behavior (e.g. 16 remote explorers saturating at
//! ~110 MB/s). A [`clock::Clock`] abstraction provides a virtual-time mode for
//! deterministic unit tests.
//!
//! # Examples
//!
//! ```
//! use netsim::{Cluster, ClusterSpec};
//!
//! let cluster = Cluster::new(ClusterSpec::default().machines(2));
//! let receipt = cluster.transfer(0, 1, 1024 * 1024); // 1 MiB across the link
//! assert!(receipt.duration.as_secs_f64() > 0.0);
//! ```

pub mod bypass;
pub mod clock;
pub mod cluster;
pub mod faults;
pub mod nic;
pub mod stats;

pub use bypass::{BypassPath, RpcReceipt, BYPASS_LATENCY_SECS};
pub use clock::{Clock, ClockMode};
pub use cluster::{Cluster, ClusterSpec, MachineId, TransferReceipt};
pub use faults::{LinkCondition, LinkDown, LinkFault, LinkFaultKind, LinkFaultSchedule};
pub use nic::Nic;
pub use stats::LinkStats;

/// iperf-measured bandwidth of the paper's 1 GbE NIC, in bytes per second
/// (118.04 MB/s, the dashed line of Fig. 5(a)).
pub const GBE_BANDWIDTH: f64 = 118.04 * 1e6;

/// Default one-way propagation latency between machines (LAN-scale).
pub const DEFAULT_LATENCY_SECS: f64 = 200e-6;
