//! Scheduled link faults: partitions, degradation, and machine isolation.
//!
//! Chaos runs need the *network* to misbehave on the same timeline as
//! everything else, deterministically. A [`LinkFaultSchedule`] is a set of
//! time-windowed [`LinkFault`]s evaluated against the cluster clock at
//! transfer time: while a partition window covers a link, transfers on it
//! fail; while a degradation window covers it, transfers take
//! `1/factor` times longer. Windows are plain data — installing a schedule
//! is what makes a chaos run reproducible: the same schedule against the
//! same (virtual) clock produces the same failures at the same instants.
//!
//! The schedule is installed on a [`crate::Cluster`] with
//! [`crate::Cluster::install_faults`]; callers that want to observe failures
//! (instead of transparently retrying) use
//! [`crate::Cluster::transfer_checked`].

use crate::cluster::MachineId;
use serde::{Deserialize, Serialize};

/// What a fault window does to its link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkFaultKind {
    /// The link is severed: transfers inside the window fail.
    Partition,
    /// The link carries traffic at `factor` of its nominal bandwidth
    /// (`0 < factor < 1`; e.g. `0.1` = a 10× slowdown).
    Degrade(f64),
}

/// One time-windowed fault on one directed link.
///
/// A fault applies to transfers from `from` to `to` whose *start instant*
/// falls inside `[start_nanos, end_nanos)` on the cluster clock. Use
/// [`LinkFault::symmetric`] to produce the reverse direction as well.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// Sending machine.
    pub from: MachineId,
    /// Receiving machine.
    pub to: MachineId,
    /// Window start on the cluster clock, inclusive.
    pub start_nanos: u64,
    /// Window end on the cluster clock, exclusive (`u64::MAX` = forever).
    pub end_nanos: u64,
    /// What happens to transfers inside the window.
    pub kind: LinkFaultKind,
}

impl LinkFault {
    /// A one-directional partition of `from → to` over `[start, end)`.
    pub fn partition(from: MachineId, to: MachineId, start_nanos: u64, end_nanos: u64) -> Self {
        LinkFault { from, to, start_nanos, end_nanos, kind: LinkFaultKind::Partition }
    }

    /// A one-directional slowdown of `from → to` to `factor` of nominal
    /// bandwidth over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn degrade(
        from: MachineId,
        to: MachineId,
        factor: f64,
        start_nanos: u64,
        end_nanos: u64,
    ) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "degrade factor must be in (0, 1]");
        LinkFault { from, to, start_nanos, end_nanos, kind: LinkFaultKind::Degrade(factor) }
    }

    /// This fault plus its mirror image (`to → from`), for symmetric cuts.
    pub fn symmetric(self) -> [LinkFault; 2] {
        [self, LinkFault { from: self.to, to: self.from, ..self }]
    }

    /// True when the window covers `now` for the directed link `from → to`.
    pub fn covers(&self, from: MachineId, to: MachineId, now_nanos: u64) -> bool {
        self.from == from && self.to == to && self.start_nanos <= now_nanos && now_nanos < self.end_nanos
    }
}

/// The effective condition of a link at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkCondition {
    /// No fault window covers the link.
    Healthy,
    /// A partition window covers it; transfers fail until `heal_nanos`
    /// (the earliest instant no partition window covers the link anymore).
    Partitioned {
        /// When the covering partition window(s) end.
        heal_nanos: u64,
    },
    /// Degradation windows cover it; bandwidth is scaled by `factor`
    /// (the product of all covering windows' factors).
    Degraded {
        /// Effective bandwidth multiplier in `(0, 1]`.
        factor: f64,
    },
}

/// A deterministic schedule of link faults for one cluster.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultSchedule {
    faults: Vec<LinkFault>,
}

impl LinkFaultSchedule {
    /// An empty (all-healthy) schedule.
    pub fn new() -> Self {
        LinkFaultSchedule::default()
    }

    /// Adds a fault window (builder style).
    pub fn with(mut self, fault: LinkFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Adds both directions of a fault window (builder style).
    pub fn with_symmetric(mut self, fault: LinkFault) -> Self {
        self.faults.extend(fault.symmetric());
        self
    }

    /// Isolates `machine` from every other machine of an `n`-machine cluster
    /// over `[start, end)` — the "machine crash" / "severed machine link"
    /// network view.
    pub fn isolate_machine(
        mut self,
        machine: MachineId,
        machines: usize,
        start_nanos: u64,
        end_nanos: u64,
    ) -> Self {
        for other in 0..machines {
            if other != machine {
                self = self.with_symmetric(LinkFault::partition(machine, other, start_nanos, end_nanos));
            }
        }
        self
    }

    /// The fault windows, in insertion order.
    pub fn faults(&self) -> &[LinkFault] {
        &self.faults
    }

    /// True when no fault windows are scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Evaluates the condition of the directed link `from → to` at
    /// `now_nanos`. Partition dominates degradation; overlapping partitions
    /// heal at the latest covering window's end; overlapping degradations
    /// multiply.
    pub fn condition(&self, from: MachineId, to: MachineId, now_nanos: u64) -> LinkCondition {
        let mut heal: Option<u64> = None;
        let mut factor = 1.0f64;
        for f in &self.faults {
            if !f.covers(from, to, now_nanos) {
                continue;
            }
            match f.kind {
                LinkFaultKind::Partition => {
                    heal = Some(heal.map_or(f.end_nanos, |h| h.max(f.end_nanos)));
                }
                LinkFaultKind::Degrade(x) => factor *= x,
            }
        }
        match heal {
            Some(heal_nanos) => LinkCondition::Partitioned { heal_nanos },
            None if factor < 1.0 => LinkCondition::Degraded { factor },
            None => LinkCondition::Healthy,
        }
    }
}

/// A transfer refused because its link was partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDown {
    /// Clock instant at which the covering partition window(s) end. `u64::MAX`
    /// means the partition never heals within the schedule.
    pub heal_nanos: u64,
}

impl std::fmt::Display for LinkDown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.heal_nanos == u64::MAX {
            write!(f, "link partitioned (no scheduled heal)")
        } else {
            write!(f, "link partitioned until t={} ns", self.heal_nanos)
        }
    }
}

impl std::error::Error for LinkDown {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_healthy() {
        let s = LinkFaultSchedule::new();
        assert_eq!(s.condition(0, 1, 0), LinkCondition::Healthy);
        assert!(s.is_empty());
    }

    #[test]
    fn partition_window_covers_half_open_interval() {
        let s = LinkFaultSchedule::new().with(LinkFault::partition(0, 1, 100, 200));
        assert_eq!(s.condition(0, 1, 99), LinkCondition::Healthy);
        assert_eq!(s.condition(0, 1, 100), LinkCondition::Partitioned { heal_nanos: 200 });
        assert_eq!(s.condition(0, 1, 199), LinkCondition::Partitioned { heal_nanos: 200 });
        assert_eq!(s.condition(0, 1, 200), LinkCondition::Healthy);
        // Directed: the reverse link is untouched.
        assert_eq!(s.condition(1, 0, 150), LinkCondition::Healthy);
    }

    #[test]
    fn symmetric_covers_both_directions() {
        let s = LinkFaultSchedule::new().with_symmetric(LinkFault::partition(0, 1, 0, 10));
        assert_ne!(s.condition(0, 1, 5), LinkCondition::Healthy);
        assert_ne!(s.condition(1, 0, 5), LinkCondition::Healthy);
    }

    #[test]
    fn overlapping_partitions_heal_at_latest_end() {
        let s = LinkFaultSchedule::new()
            .with(LinkFault::partition(0, 1, 0, 100))
            .with(LinkFault::partition(0, 1, 50, 300));
        assert_eq!(s.condition(0, 1, 60), LinkCondition::Partitioned { heal_nanos: 300 });
    }

    #[test]
    fn degradations_multiply_and_partition_dominates() {
        let s = LinkFaultSchedule::new()
            .with(LinkFault::degrade(0, 1, 0.5, 0, 100))
            .with(LinkFault::degrade(0, 1, 0.5, 0, 100));
        match s.condition(0, 1, 10) {
            LinkCondition::Degraded { factor } => assert!((factor - 0.25).abs() < 1e-12),
            other => panic!("expected degraded, got {other:?}"),
        }
        let s = s.with(LinkFault::partition(0, 1, 0, 100));
        assert_eq!(s.condition(0, 1, 10), LinkCondition::Partitioned { heal_nanos: 100 });
    }

    #[test]
    fn isolate_machine_cuts_every_pair() {
        let s = LinkFaultSchedule::new().isolate_machine(1, 3, 10, 20);
        for other in [0usize, 2] {
            assert_ne!(s.condition(1, other, 15), LinkCondition::Healthy);
            assert_ne!(s.condition(other, 1, 15), LinkCondition::Healthy);
        }
        assert_eq!(s.condition(0, 2, 15), LinkCondition::Healthy);
    }

    #[test]
    #[should_panic(expected = "degrade factor")]
    fn degrade_factor_validated() {
        let _ = LinkFault::degrade(0, 1, 0.0, 0, 1);
    }
}
