//! Real-time and virtual-time clocks.
//!
//! In real-time mode the simulator blocks calling threads with `thread::sleep`
//! so wall-clock measurements reflect modeled network costs. In virtual mode
//! (used by deterministic unit tests) "now" is a monotonically advancing
//! counter and waiting merely advances it — no thread ever sleeps.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Selects how a [`Clock`] passes time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Waiting blocks the calling thread (`thread::sleep`).
    RealTime,
    /// Waiting advances a virtual counter; nothing blocks. Single-threaded
    /// determinism for unit tests.
    Virtual,
}

#[derive(Debug)]
struct Inner {
    mode: ClockMode,
    /// Virtual nanoseconds since clock creation (virtual mode only).
    virtual_now: Mutex<u64>,
    epoch: std::time::Instant,
}

/// A clock shared by every NIC of a cluster.
#[derive(Debug, Clone)]
pub struct Clock {
    inner: Arc<Inner>,
}

impl Clock {
    /// Creates a clock in the given mode.
    pub fn new(mode: ClockMode) -> Self {
        Clock {
            inner: Arc::new(Inner {
                mode,
                virtual_now: Mutex::new(0),
                epoch: std::time::Instant::now(),
            }),
        }
    }

    /// The clock's mode.
    pub fn mode(&self) -> ClockMode {
        self.inner.mode
    }

    /// Nanoseconds since the clock was created.
    pub fn now_nanos(&self) -> u64 {
        match self.inner.mode {
            ClockMode::RealTime => self.inner.epoch.elapsed().as_nanos() as u64,
            ClockMode::Virtual => *self.inner.virtual_now.lock(),
        }
    }

    /// Blocks (real mode) or advances virtual time (virtual mode) until
    /// `deadline_nanos` on this clock's timeline.
    pub fn wait_until(&self, deadline_nanos: u64) {
        match self.inner.mode {
            ClockMode::RealTime => {
                let now = self.now_nanos();
                if deadline_nanos > now {
                    std::thread::sleep(Duration::from_nanos(deadline_nanos - now));
                }
            }
            ClockMode::Virtual => {
                let mut now = self.inner.virtual_now.lock();
                if deadline_nanos > *now {
                    *now = deadline_nanos;
                }
            }
        }
    }

    /// Convenience: waits for `d` from now.
    pub fn wait(&self, d: Duration) {
        let deadline = self.now_nanos().saturating_add(d.as_nanos() as u64);
        self.wait_until(deadline);
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new(ClockMode::RealTime)
    }
}

/// A `Clock` can stamp telemetry events, so traces of simulated deployments
/// share the cluster's timeline — deterministic under virtual time, and
/// consistent with NIC transfer receipts in both modes.
impl xt_telemetry::TimeSource for Clock {
    fn now_nanos(&self) -> u64 {
        Clock::now_nanos(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_without_blocking() {
        let c = Clock::new(ClockMode::Virtual);
        assert_eq!(c.now_nanos(), 0);
        let t0 = std::time::Instant::now();
        c.wait(Duration::from_secs(3600));
        assert!(t0.elapsed() < Duration::from_millis(100), "virtual wait must not sleep");
        assert_eq!(c.now_nanos(), 3600 * 1_000_000_000);
    }

    #[test]
    fn virtual_wait_until_is_monotonic() {
        let c = Clock::new(ClockMode::Virtual);
        c.wait_until(100);
        c.wait_until(50); // must not move backwards
        assert_eq!(c.now_nanos(), 100);
    }

    #[test]
    fn real_clock_waits_approximately() {
        let c = Clock::new(ClockMode::RealTime);
        let t0 = std::time::Instant::now();
        c.wait(Duration::from_millis(20));
        assert!(t0.elapsed() >= Duration::from_millis(18));
    }
}
