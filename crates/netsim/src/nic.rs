//! A simulated network interface: a serialized, bandwidth-limited resource.

use crate::clock::Clock;
use crate::stats::LinkStats;
use parking_lot::Mutex;

/// One direction (tx or rx) of a machine's network port.
///
/// Transfers through a NIC are serialized: a reservation extends the NIC's
/// `busy_until` register, so concurrent flows queue behind each other exactly
/// like frames on a single Ethernet port. The *calling thread* is then blocked
/// until its reservation completes, which is what makes wall-clock benchmarks
/// of the frameworks built on `netsim` NIC-bound.
#[derive(Debug)]
pub struct Nic {
    /// Bytes per second this NIC can carry.
    bandwidth: f64,
    /// Timeline register: the clock-nanos instant at which the NIC frees up.
    busy_until: Mutex<u64>,
    stats: LinkStats,
}

impl Nic {
    /// Creates a NIC with the given bandwidth in bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not strictly positive and finite.
    pub fn new(bandwidth: f64) -> Self {
        assert!(bandwidth.is_finite() && bandwidth > 0.0, "bandwidth must be positive");
        Nic { bandwidth, busy_until: Mutex::new(0), stats: LinkStats::default() }
    }

    /// Bytes per second this NIC carries.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Cumulative transfer statistics.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Reserves the NIC for `bytes` starting no earlier than `earliest_nanos`,
    /// returning `(start, end)` in clock nanos. Does not block; callers combine
    /// reservations across NICs and then wait on the [`Clock`].
    pub fn reserve(&self, earliest_nanos: u64, bytes: usize) -> (u64, u64) {
        let dur_nanos = (bytes as f64 / self.bandwidth * 1e9).ceil() as u64;
        let mut busy = self.busy_until.lock();
        let start = earliest_nanos.max(*busy);
        let end = start + dur_nanos;
        *busy = end;
        self.stats.record(bytes, dur_nanos);
        (start, end)
    }

    /// Reserves and blocks the calling thread until the transfer completes.
    /// Returns the modeled `(start, end)` in clock nanos.
    pub fn transfer(&self, clock: &Clock, bytes: usize) -> (u64, u64) {
        let (start, end) = self.reserve(clock.now_nanos(), bytes);
        clock.wait_until(end);
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ClockMode};

    #[test]
    fn transfer_time_matches_bandwidth() {
        let clock = Clock::new(ClockMode::Virtual);
        let nic = Nic::new(1e6); // 1 MB/s
        let (start, end) = nic.transfer(&clock, 500_000); // 0.5 MB -> 0.5 s
        assert_eq!(start, 0);
        assert_eq!(end, 500_000_000);
        assert_eq!(clock.now_nanos(), 500_000_000);
    }

    #[test]
    fn transfers_serialize_on_one_nic() {
        let clock = Clock::new(ClockMode::Virtual);
        let nic = Nic::new(1e6);
        // Two reservations at the same earliest time must queue.
        let (s1, e1) = nic.reserve(0, 1_000_000);
        let (s2, e2) = nic.reserve(0, 1_000_000);
        assert_eq!((s1, e1), (0, 1_000_000_000));
        assert_eq!(s2, e1, "second transfer starts when the first ends");
        assert_eq!(e2, 2_000_000_000);
        let _ = clock;
    }

    #[test]
    fn stats_accumulate() {
        let nic = Nic::new(1e9);
        nic.reserve(0, 100);
        nic.reserve(0, 200);
        assert_eq!(nic.stats().bytes(), 300);
        assert_eq!(nic.stats().transfers(), 2);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Nic::new(0.0);
    }
}
