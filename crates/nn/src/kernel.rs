//! Cache-blocked, register-tiled f32 matmul kernels and fused layer ops.
//!
//! All three GEMM orientations the MLP needs are covered, each shaped so the
//! innermost loop is a fixed-width multiply-accumulate over contiguous memory
//! that LLVM autovectorizes:
//!
//! * [`gemm_nn`] — `C = A × B` (forward pass). `MR × NR` output tiles are
//!   accumulated in registers while streaming rows of `B`.
//! * [`gemm_nt`] — `C = A × Bᵀ` (backward `dX = δ × Wᵀ`). Since the dot-product
//!   orientation reads `B` row-wise, `NR` rows of `B` are first packed into an
//!   interleaved column panel so the inner loop regains the broadcast-×-vector
//!   shape of `gemm_nn`.
//! * [`gemm_tn`] — `C = Aᵀ × B` (backward `dW = Xᵀ × δ`). The reduction runs
//!   over the batch dimension with the output tile held in registers.
//!
//! Fused layer ops keep the training step down to one memory pass per tensor:
//! [`gemm_bias_act`] applies bias and activation on the output tile while it
//! is still cache-hot, and [`act_grad_mul`] folds the activation derivative
//! into the backpropagated delta in place.
//!
//! Every kernel writes its full output (no read-modify-write), takes plain
//! slices, and allocates nothing — scratch space (the `gemm_nt` pack panel)
//! is caller-owned so steady-state training performs zero heap allocations.

use crate::mlp::Activation;

/// Register-tile height: rows of `A` (or columns of `Aᵀ`) per microkernel.
pub const MR: usize = 4;
/// Register-tile width: output columns per microkernel. Two 8-lane AVX
/// vectors; `MR × NR` f32 accumulators fit the 16 vector registers of both
/// AVX2 and NEON-class machines with room for the `B` row and broadcast.
pub const NR: usize = 16;

/// Explicit AVX2+FMA microkernels, used when the CPU supports them.
///
/// The portable microkernels below compile against the x86-64 baseline
/// (SSE2, no FMA), so autovectorization leaves most of a modern core idle.
/// These variants express the same `MR × NR` register tile directly with
/// 256-bit fused multiply-adds: 8 independent accumulators (4 rows × 2
/// vectors), one broadcast and two `B`-row loads per reduction step. The
/// choice is made once per process via CPUID (`is_x86_feature_detected!`
/// caches its answer), so every machine runs one kernel consistently and
/// training stays bitwise reproducible across runs and worker counts.
#[cfg(target_arch = "x86_64")]
mod fma {
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// Whether the AVX2+FMA microkernels may be called on this CPU.
    #[inline]
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }

    /// FMA twin of [`super::micro_nn_full`].
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2+FMA are available (see [`available`]).
    /// Shape bounds are asserted.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn micro_nn(
        k: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        out: &mut [f32],
        ldc: usize,
    ) {
        assert!(a.len() >= (MR - 1) * lda + k, "fma nn a slice too short");
        assert!(k == 0 || b.len() >= (k - 1) * ldb + NR, "fma nn b slice too short");
        assert!(out.len() >= (MR - 1) * ldc + NR, "fma nn out slice too short");
        unsafe {
            let ap = a.as_ptr();
            let mut bp = b.as_ptr();
            let mut acc = [[_mm256_setzero_ps(); 2]; MR];
            for t in 0..k {
                let b0 = _mm256_loadu_ps(bp);
                let b1 = _mm256_loadu_ps(bp.add(8));
                for (r, accr) in acc.iter_mut().enumerate() {
                    let x = _mm256_set1_ps(*ap.add(r * lda + t));
                    accr[0] = _mm256_fmadd_ps(x, b0, accr[0]);
                    accr[1] = _mm256_fmadd_ps(x, b1, accr[1]);
                }
                bp = bp.add(ldb);
            }
            let op = out.as_mut_ptr();
            for (r, accr) in acc.iter().enumerate() {
                _mm256_storeu_ps(op.add(r * ldc), accr[0]);
                _mm256_storeu_ps(op.add(r * ldc + 8), accr[1]);
            }
        }
    }

    /// FMA twin of [`super::micro_tn_full`].
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2+FMA are available (see [`available`]).
    /// Shape bounds are asserted.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn micro_tn(
        m: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        out: &mut [f32],
        ldc: usize,
    ) {
        assert!(m == 0 || a.len() >= (m - 1) * lda + MR, "fma tn a slice too short");
        assert!(m == 0 || b.len() >= (m - 1) * ldb + NR, "fma tn b slice too short");
        assert!(out.len() >= (MR - 1) * ldc + NR, "fma tn out slice too short");
        unsafe {
            let mut ap = a.as_ptr();
            let mut bp = b.as_ptr();
            let mut acc = [[_mm256_setzero_ps(); 2]; MR];
            for _ in 0..m {
                let b0 = _mm256_loadu_ps(bp);
                let b1 = _mm256_loadu_ps(bp.add(8));
                for (r, accr) in acc.iter_mut().enumerate() {
                    let x = _mm256_set1_ps(*ap.add(r));
                    accr[0] = _mm256_fmadd_ps(x, b0, accr[0]);
                    accr[1] = _mm256_fmadd_ps(x, b1, accr[1]);
                }
                ap = ap.add(lda);
                bp = bp.add(ldb);
            }
            let op = out.as_mut_ptr();
            for (r, accr) in acc.iter().enumerate() {
                _mm256_storeu_ps(op.add(r * ldc), accr[0]);
                _mm256_storeu_ps(op.add(r * ldc + 8), accr[1]);
            }
        }
    }
}

/// True when the explicit FMA microkernels are usable on this machine.
#[inline]
fn fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        fma::available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Full-tile `nn` microkernel dispatch: FMA when detected, portable otherwise.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the BLAS microkernel signature
fn micro_nn_sel(
    use_fma: bool,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldc: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if use_fma {
        // SAFETY: `use_fma` is only true when `fma::available()` reported
        // AVX2+FMA support.
        unsafe { fma::micro_nn(k, a, lda, b, ldb, out, ldc) };
        return;
    }
    let _ = use_fma;
    micro_nn_full(k, a, lda, b, ldb, out, ldc);
}

/// Full-tile `tn` microkernel dispatch: FMA when detected, portable otherwise.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the BLAS microkernel signature
fn micro_tn_sel(
    use_fma: bool,
    m: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldc: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if use_fma {
        // SAFETY: `use_fma` is only true when `fma::available()` reported
        // AVX2+FMA support.
        unsafe { fma::micro_tn(m, a, lda, b, ldb, out, ldc) };
        return;
    }
    let _ = use_fma;
    micro_tn_full(m, a, lda, b, ldb, out, ldc);
}

/// `out = a × b` where `a` is `m × k`, `b` is `k × n`, `out` is `m × n`,
/// all row-major. `out` is fully overwritten.
///
/// # Panics
///
/// Panics if a slice is shorter than its `m/k/n` shape implies.
pub fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    gemm_bias_act(m, k, n, a, b, None, None, out);
}

/// `out = act(a × w + bias)` — the fused forward layer. `bias` (length `n`)
/// and `act` are applied to each output tile immediately after it is
/// computed, while it is still in cache; pass `None` for a plain GEMM.
///
/// # Panics
///
/// Panics if a slice is shorter than its shape implies.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS layer-op signature
pub fn gemm_bias_act(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    act: Option<Activation>,
    out: &mut [f32],
) {
    assert!(a.len() >= m * k, "gemm a slice too short");
    assert!(w.len() >= k * n, "gemm b slice too short");
    assert!(out.len() >= m * n, "gemm out slice too short");
    if let Some(bias) = bias {
        assert_eq!(bias.len(), n, "bias length mismatch");
    }
    let use_fma = fma_available();
    for ib in (0..m).step_by(MR) {
        let mr = MR.min(m - ib);
        for jb in (0..n).step_by(NR) {
            let nr = NR.min(n - jb);
            let tile = &mut out[ib * n + jb..];
            if mr == MR && nr == NR {
                micro_nn_sel(use_fma, k, &a[ib * k..], k, &w[jb..], n, tile, n);
            } else {
                micro_nn_edge(k, mr, nr, &a[ib * k..], k, &w[jb..], n, tile, n);
            }
            finish_tile(tile, n, mr, nr, bias.map(|b| &b[jb..jb + nr]), act);
        }
    }
}

/// `out = a × bᵀ` where `a` is `m × k`, `b` is `r × k`, `out` is `m × r`,
/// all row-major — the backward-pass `dX = δ × Wᵀ` orientation.
///
/// `NR` rows of `b` at a time are packed into `pack` as an interleaved
/// `k × NR` panel (`pack[t * NR + j] = b[(jb + j) * k + t]`), restoring the
/// broadcast-×-contiguous-vector microkernel shape. `pack` is resized to
/// `k * NR` and reused; after warmup it never reallocates.
///
/// # Panics
///
/// Panics if a slice is shorter than its shape implies.
pub fn gemm_nt(
    m: usize,
    k: usize,
    r: usize,
    a: &[f32],
    b: &[f32],
    pack: &mut Vec<f32>,
    out: &mut [f32],
) {
    assert!(a.len() >= m * k, "gemm a slice too short");
    assert!(b.len() >= r * k, "gemm b slice too short");
    assert!(out.len() >= m * r, "gemm out slice too short");
    pack.resize(k * NR, 0.0);
    let use_fma = fma_available();
    for jb in (0..r).step_by(NR) {
        let nr = NR.min(r - jb);
        if nr < NR {
            pack.fill(0.0); // zero-pad the ragged final panel
        }
        for j in 0..nr {
            let brow = &b[(jb + j) * k..(jb + j) * k + k];
            for (t, &v) in brow.iter().enumerate() {
                pack[t * NR + j] = v;
            }
        }
        for ib in (0..m).step_by(MR) {
            let mr = MR.min(m - ib);
            let tile = &mut out[ib * r + jb..];
            if mr == MR && nr == NR {
                micro_nn_sel(use_fma, k, &a[ib * k..], k, pack, NR, tile, r);
            } else {
                micro_nn_edge(k, mr, nr, &a[ib * k..], k, pack, NR, tile, r);
            }
        }
    }
}

/// `out = aᵀ × b` where `a` is `m × k`, `b` is `m × n`, `out` is `k × n`,
/// all row-major — the backward-pass `dW = Xᵀ × δ` orientation. The
/// reduction runs over `m` (the batch) with each `MR × NR` output tile held
/// in registers. `out` is fully overwritten.
///
/// # Panics
///
/// Panics if a slice is shorter than its shape implies.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(a.len() >= m * k, "gemm a slice too short");
    assert!(b.len() >= m * n, "gemm b slice too short");
    assert!(out.len() >= k * n, "gemm out slice too short");
    let use_fma = fma_available();
    for jb in (0..n).step_by(NR) {
        let nr = NR.min(n - jb);
        for kb in (0..k).step_by(MR) {
            let mr = MR.min(k - kb);
            let tile = &mut out[kb * n + jb..];
            if mr == MR && nr == NR {
                micro_tn_sel(use_fma, m, &a[kb..], k, &b[jb..], n, tile, n);
            } else {
                micro_tn_edge(m, mr, nr, &a[kb..], k, &b[jb..], n, tile, n);
            }
        }
    }
}

/// Full `MR × NR` microkernel for the `nn` orientation: `A` rows are
/// contiguous (stride `lda`), `B` rows are read at stride `ldb` as fixed
/// `NR`-wide vectors, and the `MR × NR` accumulator lives in registers for
/// the whole `k` loop.
#[inline(always)]
fn micro_nn_full(k: usize, a: &[f32], lda: usize, b: &[f32], ldb: usize, out: &mut [f32], ldc: usize) {
    // Exact-length row slices let the compiler drop the `a*[t]` bounds checks.
    let a0 = &a[0..k];
    let a1 = &a[lda..lda + k];
    let a2 = &a[2 * lda..2 * lda + k];
    let a3 = &a[3 * lda..3 * lda + k];
    let mut acc = [[0.0f32; NR]; MR];
    let mut boff = 0usize;
    for t in 0..k {
        let brow: &[f32; NR] = b[boff..boff + NR].try_into().expect("NR-wide B row");
        let xs = [a0[t], a1[t], a2[t], a3[t]];
        for (r, x) in xs.into_iter().enumerate() {
            let accr = &mut acc[r];
            for c in 0..NR {
                accr[c] += x * brow[c];
            }
        }
        boff += ldb;
    }
    for (r, accr) in acc.iter().enumerate() {
        out[r * ldc..r * ldc + NR].copy_from_slice(accr);
    }
}

/// Ragged-edge variant of [`micro_nn_full`] for `mr < MR` and/or `nr < NR`.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // mirrors the BLAS microkernel signature
fn micro_nn_edge(
    k: usize,
    mr: usize,
    nr: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldc: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for t in 0..k {
        let brow = &b[t * ldb..t * ldb + nr];
        for r in 0..mr {
            let x = a[r * lda + t];
            let accr = &mut acc[r];
            for (c, &bv) in brow.iter().enumerate() {
                accr[c] += x * bv;
            }
        }
    }
    for r in 0..mr {
        out[r * ldc..r * ldc + nr].copy_from_slice(&acc[r][..nr]);
    }
}

/// Full `MR × NR` microkernel for the `tn` orientation: the reduction index
/// is the leading (batch) dimension of both operands, so `A` contributes
/// `MR` strided scalars and `B` one contiguous `NR`-vector per step.
#[inline(always)]
fn micro_tn_full(m: usize, a: &[f32], lda: usize, b: &[f32], ldb: usize, out: &mut [f32], ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    let mut aoff = 0usize;
    let mut boff = 0usize;
    for _ in 0..m {
        let brow: &[f32; NR] = b[boff..boff + NR].try_into().expect("NR-wide B row");
        let xs: &[f32; MR] = a[aoff..aoff + MR].try_into().expect("MR-wide A chunk");
        for (r, &x) in xs.iter().enumerate() {
            let accr = &mut acc[r];
            for c in 0..NR {
                accr[c] += x * brow[c];
            }
        }
        aoff += lda;
        boff += ldb;
    }
    for (r, accr) in acc.iter().enumerate() {
        out[r * ldc..r * ldc + NR].copy_from_slice(accr);
    }
}

/// Ragged-edge variant of [`micro_tn_full`].
#[inline(always)]
#[allow(clippy::too_many_arguments)] // mirrors the BLAS microkernel signature
fn micro_tn_edge(
    m: usize,
    mr: usize,
    nr: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldc: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for i in 0..m {
        let brow = &b[i * ldb..i * ldb + nr];
        for r in 0..mr {
            let x = a[i * lda + r];
            let accr = &mut acc[r];
            for (c, &bv) in brow.iter().enumerate() {
                accr[c] += x * bv;
            }
        }
    }
    for r in 0..mr {
        out[r * ldc..r * ldc + nr].copy_from_slice(&acc[r][..nr]);
    }
}

/// Applies bias and activation to a freshly written `mr × nr` output tile.
#[inline(always)]
fn finish_tile(
    tile: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
    bias: Option<&[f32]>,
    act: Option<Activation>,
) {
    if bias.is_none() && act.is_none() {
        return;
    }
    for r in 0..mr {
        let row = &mut tile[r * ldc..r * ldc + nr];
        if let Some(bias) = bias {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
        match act {
            Some(Activation::Relu) => {
                for v in row.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            Some(Activation::Tanh) => {
                for v in row.iter_mut() {
                    *v = v.tanh();
                }
            }
            None => {}
        }
    }
}

/// Fused backward activation: `delta[i] *= act'(activated[i])` where the
/// derivative is expressed in terms of the activated output (ReLU: 1 if
/// `a > 0`; Tanh: `1 − a²`) — one in-place pass, no temporary.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn act_grad_mul(act: Activation, delta: &mut [f32], activated: &[f32]) {
    assert_eq!(delta.len(), activated.len(), "act_grad_mul length mismatch");
    match act {
        Activation::Relu => {
            for (d, &a) in delta.iter_mut().zip(activated) {
                *d = if a > 0.0 { *d } else { 0.0 };
            }
        }
        Activation::Tanh => {
            for (d, &a) in delta.iter_mut().zip(activated) {
                *d *= 1.0 - a * a;
            }
        }
    }
}

/// Column sums of an `m × n` row-major matrix into `out` (length `n`,
/// overwritten) — the bias gradient, vectorized along rows.
///
/// # Panics
///
/// Panics if slices are shorter than the shape implies.
pub fn col_sums_into(m: usize, n: usize, src: &[f32], out: &mut [f32]) {
    assert!(src.len() >= m * n, "col_sums src too short");
    assert_eq!(out.len(), n, "col_sums out length mismatch");
    out.fill(0.0);
    for i in 0..m {
        let row = &src[i * n..i * n + n];
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The pre-fast-path naive kernels, kept verbatim as the differential
    /// reference the tiled kernels are tested against.
    mod naive {
        pub fn nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
            let mut out = vec![0.0f32; m * n];
            for i in 0..m {
                for t in 0..k {
                    let x = a[i * k + t];
                    for j in 0..n {
                        out[i * n + j] += x * b[t * n + j];
                    }
                }
            }
            out
        }

        pub fn nt(m: usize, k: usize, r: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
            let mut out = vec![0.0f32; m * r];
            for i in 0..m {
                for j in 0..r {
                    let mut acc = 0.0;
                    for t in 0..k {
                        acc += a[i * k + t] * b[j * k + t];
                    }
                    out[i * r + j] = acc;
                }
            }
            out
        }

        pub fn tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
            let mut out = vec![0.0f32; k * n];
            for i in 0..m {
                for t in 0..k {
                    let x = a[i * k + t];
                    for j in 0..n {
                        out[t * n + j] += x * b[i * n + j];
                    }
                }
            }
            out
        }
    }

    fn rand_vec(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
    }

    fn assert_close(tiled: &[f32], naive: &[f32], what: &str) {
        assert_eq!(tiled.len(), naive.len());
        for (i, (t, n)) in tiled.iter().zip(naive).enumerate() {
            // Summation order differs between the tiled and naive kernels,
            // so compare with a tolerance scaled to the magnitude.
            let tol = 1e-4f32.max(n.abs() * 1e-4);
            assert!((t - n).abs() <= tol, "{what}[{i}]: tiled {t} vs naive {n}");
        }
    }

    /// Adversarial shapes: degenerate vectors, exact tile multiples, and
    /// every off-by-one around the MR/NR boundaries.
    fn shapes() -> Vec<(usize, usize, usize)> {
        vec![
            (1, 1, 1),
            (1, 7, 1),
            (1, 64, 17),
            (5, 1, 5),
            (3, 3, 3),
            (MR, 8, NR),
            (MR + 1, 8, NR + 1),
            (MR - 1, 9, NR - 1),
            (2 * MR, 32, 2 * NR),
            (13, 21, 33),
            (32, 128, 9),
            (1, 128, 64),
            (64, 1, 64),
        ]
    }

    #[test]
    fn gemm_nn_matches_naive() {
        let mut rng = StdRng::seed_from_u64(1);
        for (m, k, n) in shapes() {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, k * n);
            let mut out = vec![f32::NAN; m * n];
            gemm_nn(m, k, n, &a, &b, &mut out);
            assert_close(&out, &naive::nn(m, k, n, &a, &b), "nn");
        }
    }

    #[test]
    fn gemm_nt_matches_naive() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut pack = Vec::new();
        for (m, k, r) in shapes() {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, r * k);
            let mut out = vec![f32::NAN; m * r];
            gemm_nt(m, k, r, &a, &b, &mut pack, &mut out);
            assert_close(&out, &naive::nt(m, k, r, &a, &b), "nt");
        }
    }

    #[test]
    fn gemm_tn_matches_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        for (m, k, n) in shapes() {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, m * n);
            let mut out = vec![f32::NAN; k * n];
            gemm_tn(m, k, n, &a, &b, &mut out);
            assert_close(&out, &naive::tn(m, k, n, &a, &b), "tn");
        }
    }

    #[test]
    fn fused_bias_act_matches_separate_passes() {
        let mut rng = StdRng::seed_from_u64(4);
        for act in [None, Some(Activation::Relu), Some(Activation::Tanh)] {
            let (m, k, n) = (7, 33, 19);
            let a = rand_vec(&mut rng, m * k);
            let w = rand_vec(&mut rng, k * n);
            let bias = rand_vec(&mut rng, n);
            let mut fused = vec![0.0f32; m * n];
            gemm_bias_act(m, k, n, &a, &w, Some(&bias), act, &mut fused);
            let mut separate = naive::nn(m, k, n, &a, &w);
            for i in 0..m {
                for j in 0..n {
                    let v = separate[i * n + j] + bias[j];
                    separate[i * n + j] = match act {
                        Some(Activation::Relu) => v.max(0.0),
                        Some(Activation::Tanh) => v.tanh(),
                        None => v,
                    };
                }
            }
            assert_close(&fused, &separate, "fused");
        }
    }

    #[test]
    fn act_grad_mul_matches_derivatives() {
        let acts = vec![-1.5f32, -0.0, 0.0, 0.5, 0.9];
        let mut d_relu = vec![2.0f32; acts.len()];
        act_grad_mul(Activation::Relu, &mut d_relu, &acts);
        assert_eq!(d_relu, vec![0.0, 0.0, 0.0, 2.0, 2.0]);
        let mut d_tanh = vec![2.0f32; acts.len()];
        act_grad_mul(Activation::Tanh, &mut d_tanh, &acts);
        for (d, a) in d_tanh.iter().zip(&acts) {
            assert!((d - 2.0 * (1.0 - a * a)).abs() < 1e-6);
        }
    }

    #[test]
    fn col_sums_into_matches_reference() {
        let src = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = vec![0.0f32; 2];
        col_sums_into(3, 2, &src, &mut out);
        assert_eq!(out, vec![9.0, 12.0]);
    }

    #[test]
    fn gemm_nt_pack_buffer_is_reused_across_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut pack = Vec::new();
        // Large shape first: later smaller shapes must not read stale panel
        // columns beyond their zero-padded width.
        for (m, k, r) in [(8, 64, 20), (3, 5, 3), (6, 64, 20)] {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, r * k);
            let mut out = vec![0.0f32; m * r];
            gemm_nt(m, k, r, &a, &b, &mut pack, &mut out);
            assert_close(&out, &naive::nt(m, k, r, &a, &b), "nt-reuse");
        }
    }
}
