//! First-order optimizers operating on flat parameter/gradient slices.

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr` for `num_params` parameters.
    pub fn new(num_params: usize, lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, velocity: vec![0.0; num_params] }
    }

    /// SGD with momentum.
    pub fn with_momentum(num_params: usize, lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: vec![0.0; num_params] }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (e.g. for schedules or PBT mutation).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update: `params -= lr * (momentum-filtered grads)`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with `num_params`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.velocity.len(), "param count mismatch");
        assert_eq!(grads.len(), self.velocity.len(), "grad count mismatch");
        for i in 0..params.len() {
            self.velocity[i] = self.momentum * self.velocity[i] + grads[i];
            params[i] -= self.lr * self.velocity[i];
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Adam with default betas (0.9, 0.999) and epsilon 1e-8.
    pub fn new(num_params: usize, lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: vec![0.0; num_params], v: vec![0.0; num_params] }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one Adam update.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with `num_params`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "param count mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

/// Clips the gradient to a maximum global L2 norm, in place. Returns the
/// pre-clip norm. Standard stabilization for IMPALA/PPO training.
pub fn clip_global_norm(grads: &mut [f32], max_norm: f32) -> f32 {
    let norm = grads.iter().map(|g| g * g).sum::<f32>().sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut opt = Sgd::new(2, 0.1);
        let mut p = vec![1.0f32, -1.0];
        opt.step(&mut p, &[1.0, -1.0]);
        assert_eq!(p, vec![0.9, -0.9]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::with_momentum(1, 0.1, 0.9);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1.0]); // v=1, p=-0.1
        opt.step(&mut p, &[1.0]); // v=1.9, p=-0.29
        assert!((p[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize f(x) = (x - 3)^2 starting from 0.
        let mut opt = Adam::new(1, 0.1);
        let mut p = vec![0.0f32];
        for _ in 0..500 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step(&mut p, &[g]);
        }
        assert!((p[0] - 3.0).abs() < 0.05, "got {}", p[0]);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        let mut opt = Adam::new(1, 0.01);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[123.0]);
        // With bias correction the first step is ≈ lr regardless of grad scale.
        assert!((p[0] + 0.01).abs() < 1e-4);
    }

    #[test]
    fn clip_global_norm_scales_down() {
        let mut g = vec![3.0f32, 4.0]; // norm 5
        let norm = clip_global_norm(&mut g, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let new_norm = g.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((new_norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clip_global_norm_leaves_small_grads() {
        let mut g = vec![0.1f32, 0.1];
        clip_global_norm(&mut g, 10.0);
        assert_eq!(g, vec![0.1, 0.1]);
    }

    #[test]
    #[should_panic(expected = "param count mismatch")]
    fn sgd_size_mismatch_panics() {
        let mut opt = Sgd::new(2, 0.1);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[0.0]);
    }
}
