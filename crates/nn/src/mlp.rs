//! Multi-layer perceptrons with explicit forward/backward passes.
//!
//! All parameters live in one flat `Vec<f32>`, which makes three things
//! trivial: optimizer updates (`step` works on flat slices), parameter
//! broadcast (the learner serializes `params()` straight into a message
//! body), and hot-swapping weights on explorers (`set_params`).

use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hidden-layer activation function. Output layers are always linear; the
/// algorithms apply softmax or other heads themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    fn apply(self, v: f32) -> f32 {
        match self {
            Activation::Relu => v.max(0.0),
            Activation::Tanh => v.tanh(),
        }
    }

    /// Derivative expressed in terms of the *activated* output `a`.
    fn grad_from_output(self, a: f32) -> f32 {
        match self {
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct LayerLayout {
    input: usize,
    output: usize,
    w_off: usize,
    b_off: usize,
}

/// A fully-connected network: `sizes[0] -> sizes[1] -> ... -> sizes.last()`.
///
/// Hidden layers use the configured [`Activation`]; the output layer is
/// linear.
#[derive(Debug, Clone)]
pub struct Mlp {
    sizes: Vec<usize>,
    activation: Activation,
    layout: Vec<LayerLayout>,
    params: Vec<f32>,
}

/// Intermediate activations retained by [`Mlp::forward_cached`] for use in
/// [`Mlp::backward_cached`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Activated output of every layer, `activations[i]` being the output of
    /// layer `i` (the last entry is the network output).
    activations: Vec<Matrix>,
}

impl Mlp {
    /// Builds a network with Xavier-uniform initialization from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new(sizes: &[usize], activation: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs at least an input and an output size");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut layout = Vec::with_capacity(sizes.len() - 1);
        let mut off = 0usize;
        for w in sizes.windows(2) {
            let (input, output) = (w[0], w[1]);
            layout.push(LayerLayout { input, output, w_off: off, b_off: off + input * output });
            off += input * output + output;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = vec![0.0f32; off];
        for l in &layout {
            let scale = (6.0 / (l.input + l.output) as f32).sqrt();
            for p in &mut params[l.w_off..l.w_off + l.input * l.output] {
                *p = rng.gen_range(-scale..=scale);
            }
            // Biases start at zero.
        }
        Mlp { sizes: sizes.to_vec(), activation, layout, params }
    }

    /// The layer sizes this network was built with.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Input feature count.
    pub fn input_dim(&self) -> usize {
        self.sizes[0]
    }

    /// Output feature count.
    pub fn output_dim(&self) -> usize {
        *self.sizes.last().expect("at least two sizes")
    }

    /// Total number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Flat parameter vector (weights then biases, layer by layer).
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable flat parameter vector, for optimizers.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Replaces all parameters (e.g. applying a learner broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.num_params()`.
    pub fn set_params(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.params.len(), "parameter count mismatch");
        self.params.copy_from_slice(params);
    }

    fn layer_forward(&self, l: &LayerLayout, x: &Matrix, activate: bool) -> Matrix {
        let bs = x.rows();
        let mut y = Matrix::zeros(bs, l.output);
        let w = &self.params[l.w_off..l.w_off + l.input * l.output];
        let b = &self.params[l.b_off..l.b_off + l.output];
        let xd = x.as_slice();
        let yd = y.as_mut_slice();
        for i in 0..bs {
            let x_row = i * l.input;
            let y_row = i * l.output;
            yd[y_row..y_row + l.output].copy_from_slice(b);
            for k in 0..l.input {
                let a = xd[x_row + k];
                if a == 0.0 {
                    continue;
                }
                let w_row = k * l.output;
                for j in 0..l.output {
                    yd[y_row + j] += a * w[w_row + j];
                }
            }
        }
        if activate {
            for v in y.as_mut_slice() {
                *v = self.activation.apply(*v);
            }
        }
        y
    }

    /// Inference pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_dim()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_cached(x).0
    }

    /// Forward pass retaining per-layer activations for a later backward pass.
    pub fn forward_cached(&self, x: &Matrix) -> (Matrix, ForwardCache) {
        assert_eq!(x.cols(), self.input_dim(), "input width mismatch");
        let mut activations = Vec::with_capacity(self.layout.len());
        let mut cur = x.clone();
        for (idx, l) in self.layout.iter().enumerate() {
            let is_last = idx == self.layout.len() - 1;
            cur = self.layer_forward(l, &cur, !is_last);
            activations.push(cur.clone());
        }
        (cur, ForwardCache { activations })
    }

    /// Backpropagates `dout` (gradient of the loss w.r.t. the network output)
    /// through the cached pass, returning flat parameter gradients aligned
    /// with [`Mlp::params`].
    pub fn backward_cached(&self, x: &Matrix, cache: &ForwardCache, dout: &Matrix) -> Vec<f32> {
        assert_eq!(dout.shape(), (x.rows(), self.output_dim()), "dout shape mismatch");
        let mut grads = vec![0.0f32; self.params.len()];
        let mut delta = dout.clone();
        for (idx, l) in self.layout.iter().enumerate().rev() {
            // delta currently holds dL/dz for this layer's pre-activation
            // EXCEPT for hidden layers, where it holds dL/da and must be
            // multiplied by the activation derivative first.
            if idx != self.layout.len() - 1 {
                let a = &cache.activations[idx];
                for (d, &av) in delta.as_mut_slice().iter_mut().zip(a.as_slice()) {
                    *d *= self.activation.grad_from_output(av);
                }
            }
            let input: &Matrix = if idx == 0 { x } else { &cache.activations[idx - 1] };
            // dW = inputᵀ × delta
            let dw = input.t_matmul(&delta);
            grads[l.w_off..l.w_off + l.input * l.output].copy_from_slice(dw.as_slice());
            // db = column sums of delta
            let db = delta.col_sums();
            grads[l.b_off..l.b_off + l.output].copy_from_slice(&db);
            if idx > 0 {
                // dX = delta × Wᵀ
                let w = Matrix::from_vec(
                    l.input,
                    l.output,
                    self.params[l.w_off..l.w_off + l.input * l.output].to_vec(),
                );
                delta = delta.matmul_t(&w);
            }
        }
        grads
    }

    /// Convenience: forward + backward in one call.
    pub fn backward(&self, x: &Matrix, dout: &Matrix) -> Vec<f32> {
        let (_, cache) = self.forward_cached(x);
        self.backward_cached(x, &cache, dout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(activation: Activation) {
        let mut net = Mlp::new(&[3, 5, 2], activation, 42);
        let x = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.1, -0.7, 0.3, 0.9]);
        // Loss = sum of outputs, so dL/dout = ones.
        let dout = Matrix::ones(2, 2);
        let grads = net.backward(&x, &dout);
        let eps = 1e-3f32;
        for i in (0..net.num_params()).step_by(7) {
            let orig = net.params()[i];
            net.params_mut()[i] = orig + eps;
            let up: f32 = net.forward(&x).as_slice().iter().sum();
            net.params_mut()[i] = orig - eps;
            let down: f32 = net.forward(&x).as_slice().iter().sum();
            net.params_mut()[i] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - grads[i]).abs() < 2e-2,
                "param {i}: numeric {numeric} vs analytic {}",
                grads[i]
            );
        }
    }

    #[test]
    fn gradients_match_finite_differences_tanh() {
        finite_diff_check(Activation::Tanh);
    }

    #[test]
    fn gradients_match_finite_differences_relu() {
        finite_diff_check(Activation::Relu);
    }

    #[test]
    fn params_round_trip() {
        let net = Mlp::new(&[4, 8, 2], Activation::Relu, 1);
        let mut other = Mlp::new(&[4, 8, 2], Activation::Relu, 2);
        assert_ne!(net.params(), other.params());
        other.set_params(net.params());
        assert_eq!(net.params(), other.params());
        let x = Matrix::ones(1, 4);
        assert_eq!(net.forward(&x), other.forward(&x));
    }

    #[test]
    fn output_shape_and_determinism() {
        let net = Mlp::new(&[4, 16, 16, 3], Activation::Tanh, 9);
        let x = Matrix::ones(5, 4);
        let y1 = net.forward(&x);
        let y2 = net.forward(&x);
        assert_eq!(y1.shape(), (5, 3));
        assert_eq!(y1, y2);
    }

    #[test]
    fn same_seed_same_network() {
        let a = Mlp::new(&[2, 4, 1], Activation::Relu, 77);
        let b = Mlp::new(&[2, 4, 1], Activation::Relu, 77);
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn training_reduces_loss_on_regression() {
        use crate::ops::mse;
        use crate::optim::Adam;
        // Fit y = [x0 + x1, x0 - x1] on random points.
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Mlp::new(&[2, 32, 2], Activation::Tanh, 5);
        let mut opt = Adam::new(net.num_params(), 1e-2);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..300 {
            let xs: Vec<f32> = (0..16).flat_map(|_| {
                let a: f32 = rng.gen_range(-1.0..1.0);
                let b: f32 = rng.gen_range(-1.0..1.0);
                vec![a, b]
            }).collect();
            let x = Matrix::from_vec(16, 2, xs);
            let mut t = Matrix::zeros(16, 2);
            for r in 0..16 {
                t.set(r, 0, x.get(r, 0) + x.get(r, 1));
                t.set(r, 1, x.get(r, 0) - x.get(r, 1));
            }
            let (out, cache) = net.forward_cached(&x);
            let (loss, dout) = mse(&out, &t);
            let grads = net.backward_cached(&x, &cache, &dout);
            opt.step(net.params_mut(), &grads);
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.1,
            "loss should drop 10x: {} -> {last_loss}",
            first_loss.unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "at least an input and an output")]
    fn one_size_rejected() {
        let _ = Mlp::new(&[4], Activation::Relu, 0);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let net = Mlp::new(&[4, 2], Activation::Relu, 0);
        let _ = net.forward(&Matrix::ones(1, 3));
    }
}
