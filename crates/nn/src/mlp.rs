//! Multi-layer perceptrons with explicit forward/backward passes.
//!
//! All parameters live in one flat `Vec<f32>`, which makes three things
//! trivial: optimizer updates (`step` works on flat slices), parameter
//! broadcast (the learner serializes `params()` straight into a message
//! body), and hot-swapping weights on explorers (`set_params`).

use crate::kernel;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hidden-layer activation function. Output layers are always linear; the
/// algorithms apply softmax or other heads themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a single pre-activation value.
    pub fn apply(self, v: f32) -> f32 {
        match self {
            Activation::Relu => v.max(0.0),
            Activation::Tanh => v.tanh(),
        }
    }

    /// Derivative expressed in terms of the *activated* output `a`.
    pub fn grad_from_output(self, a: f32) -> f32 {
        match self {
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct LayerLayout {
    input: usize,
    output: usize,
    w_off: usize,
    b_off: usize,
}

/// A fully-connected network: `sizes[0] -> sizes[1] -> ... -> sizes.last()`.
///
/// Hidden layers use the configured [`Activation`]; the output layer is
/// linear.
#[derive(Debug, Clone)]
pub struct Mlp {
    sizes: Vec<usize>,
    activation: Activation,
    layout: Vec<LayerLayout>,
    params: Vec<f32>,
}

/// Intermediate activations retained by [`Mlp::forward_cached`] for use in
/// [`Mlp::backward_cached`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Activated output of every layer, `activations[i]` being the output of
    /// layer `i` (the last entry is the network output).
    activations: Vec<Matrix>,
}

/// Reusable scratch arena for the allocation-free training path.
///
/// One workspace serves one network at a time (per-layer buffers are resized
/// by [`Mlp::forward_ws`]); after the first pass at a given batch size every
/// subsequent `forward_ws`/`backward_ws` call performs **zero heap
/// allocations** — buffers only grow, never shrink, so varying batch sizes
/// settle at the high-water mark.
///
/// Lifetime rules: the activations cached by `forward_ws` stay valid until
/// the next `forward_ws` call on this workspace, and `backward_ws` must be
/// called with the same input and batch size as the `forward_ws` that
/// preceded it.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Activated output of layer `i`, sized `batch × layout[i].output`.
    acts: Vec<Vec<f32>>,
    /// Logical lengths of `acts` entries for the current batch (buffers keep
    /// their high-water capacity).
    acts_len: Vec<usize>,
    /// Ping-pong delta buffers for the backward pass.
    delta_a: Vec<f32>,
    delta_b: Vec<f32>,
    /// Pack panel for [`kernel::gemm_nt`].
    pack: Vec<f32>,
}

impl Workspace {
    /// An empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows buffers (never shrinks) to serve `net` at `batch` rows.
    fn ensure(&mut self, net: &Mlp, batch: usize) {
        if self.acts.len() < net.layout.len() {
            self.acts.resize_with(net.layout.len(), Vec::new);
        }
        self.acts_len.resize(net.layout.len(), 0);
        let mut max_width = 0usize;
        for (i, l) in net.layout.iter().enumerate() {
            let len = batch * l.output;
            if self.acts[i].len() < len {
                self.acts[i].resize(len, 0.0);
            }
            self.acts_len[i] = len;
            max_width = max_width.max(l.output);
        }
        let delta_len = batch * max_width;
        if self.delta_a.len() < delta_len {
            self.delta_a.resize(delta_len, 0.0);
            self.delta_b.resize(delta_len, 0.0);
        }
    }
}

impl Mlp {
    /// Builds a network with Xavier-uniform initialization from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new(sizes: &[usize], activation: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs at least an input and an output size");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut layout = Vec::with_capacity(sizes.len() - 1);
        let mut off = 0usize;
        for w in sizes.windows(2) {
            let (input, output) = (w[0], w[1]);
            layout.push(LayerLayout { input, output, w_off: off, b_off: off + input * output });
            off += input * output + output;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = vec![0.0f32; off];
        for l in &layout {
            let scale = (6.0 / (l.input + l.output) as f32).sqrt();
            for p in &mut params[l.w_off..l.w_off + l.input * l.output] {
                *p = rng.gen_range(-scale..=scale);
            }
            // Biases start at zero.
        }
        Mlp { sizes: sizes.to_vec(), activation, layout, params }
    }

    /// The layer sizes this network was built with.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Input feature count.
    pub fn input_dim(&self) -> usize {
        self.sizes[0]
    }

    /// Output feature count.
    pub fn output_dim(&self) -> usize {
        *self.sizes.last().expect("at least two sizes")
    }

    /// Total number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Flat parameter vector (weights then biases, layer by layer).
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable flat parameter vector, for optimizers.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Replaces all parameters (e.g. applying a learner broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.num_params()`.
    pub fn set_params(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.params.len(), "parameter count mismatch");
        self.params.copy_from_slice(params);
    }

    /// Weight slice of layer `l`.
    fn w(&self, l: &LayerLayout) -> &[f32] {
        &self.params[l.w_off..l.w_off + l.input * l.output]
    }

    /// Bias slice of layer `l`.
    fn b(&self, l: &LayerLayout) -> &[f32] {
        &self.params[l.b_off..l.b_off + l.output]
    }

    /// Fused forward for one layer: `out = act?(x × W + b)` in a single pass.
    fn layer_forward_into(&self, l: &LayerLayout, batch: usize, x: &[f32], activate: bool, out: &mut [f32]) {
        let act = if activate { Some(self.activation) } else { None };
        kernel::gemm_bias_act(batch, l.input, l.output, x, self.w(l), Some(self.b(l)), act, out);
    }

    /// Inference pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_dim()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_cached(x).0
    }

    /// Forward pass retaining per-layer activations for a later backward pass.
    ///
    /// This is the compatibility path that allocates the cache; hot loops
    /// should use [`Mlp::forward_ws`] with a reused [`Workspace`] instead.
    pub fn forward_cached(&self, x: &Matrix) -> (Matrix, ForwardCache) {
        assert_eq!(x.cols(), self.input_dim(), "input width mismatch");
        let batch = x.rows();
        let mut activations = Vec::with_capacity(self.layout.len());
        for (idx, l) in self.layout.iter().enumerate() {
            let is_last = idx == self.layout.len() - 1;
            let input: &Matrix = if idx == 0 { x } else { &activations[idx - 1] };
            let mut y = Matrix::zeros(batch, l.output);
            self.layer_forward_into(l, batch, input.as_slice(), !is_last, y.as_mut_slice());
            activations.push(y);
        }
        let out = activations.last().expect("at least one layer").clone();
        (out, ForwardCache { activations })
    }

    /// Allocation-free forward pass: runs the network over `batch` rows of
    /// `x` (flat row-major, `batch × input_dim`), caching activations in
    /// `ws`, and returns the output slice (`batch × output_dim`).
    ///
    /// After warmup (first call at a given batch high-water mark) this
    /// performs zero heap allocations.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != batch * self.input_dim()`.
    pub fn forward_ws<'w>(&self, x: &[f32], batch: usize, ws: &'w mut Workspace) -> &'w [f32] {
        assert_eq!(x.len(), batch * self.input_dim(), "input width mismatch");
        ws.ensure(self, batch);
        let last = self.layout.len() - 1;
        for (idx, l) in self.layout.iter().enumerate() {
            // Split so the input (layer idx-1) and output (layer idx)
            // activation buffers can be borrowed disjointly.
            let (prev, rest) = ws.acts.split_at_mut(idx);
            let input: &[f32] = if idx == 0 { x } else { &prev[idx - 1][..ws.acts_len[idx - 1]] };
            let out = &mut rest[0][..ws.acts_len[idx]];
            self.layer_forward_into(l, batch, input, idx != last, out);
        }
        &ws.acts[last][..ws.acts_len[last]]
    }

    /// The network output cached in `ws` by the most recent
    /// [`Mlp::forward_ws`] call on this network with this `batch`. Lets
    /// multi-phase training steps (forward → global reduction → backward)
    /// reread the forward results without re-running the pass.
    ///
    /// # Panics
    ///
    /// Panics if `ws` has not served a `forward_ws` of at least this size.
    pub fn cached_output<'w>(&self, ws: &'w Workspace, batch: usize) -> &'w [f32] {
        let last = self.layout.len() - 1;
        &ws.acts[last][..batch * self.layout[last].output]
    }

    /// Allocation-free backward pass over the activations cached by the
    /// immediately preceding [`Mlp::forward_ws`] call with the same `x` and
    /// `batch`. Writes flat parameter gradients (aligned with
    /// [`Mlp::params`]) into caller-owned `grads`, fully overwriting it.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches of `x`, `dout`, or `grads`.
    pub fn backward_ws(&self, x: &[f32], batch: usize, dout: &[f32], ws: &mut Workspace, grads: &mut [f32]) {
        assert_eq!(x.len(), batch * self.input_dim(), "input width mismatch");
        assert_eq!(dout.len(), batch * self.output_dim(), "dout shape mismatch");
        assert_eq!(grads.len(), self.params.len(), "grads length mismatch");
        let Workspace { acts, acts_len, delta_a, delta_b, pack } = ws;
        self.backward_core(x, batch, acts, acts_len, dout, delta_a, delta_b, pack, grads);
    }

    /// Backpropagates `dout` (gradient of the loss w.r.t. the network output)
    /// through the cached pass, returning flat parameter gradients aligned
    /// with [`Mlp::params`].
    ///
    /// This is the compatibility path that allocates its scratch; hot loops
    /// should use [`Mlp::backward_ws`] with a reused [`Workspace`] instead.
    pub fn backward_cached(&self, x: &Matrix, cache: &ForwardCache, dout: &Matrix) -> Vec<f32> {
        assert_eq!(dout.shape(), (x.rows(), self.output_dim()), "dout shape mismatch");
        let batch = x.rows();
        let mut ws = Workspace::new();
        ws.ensure(self, batch);
        for (buf, m) in ws.acts.iter_mut().zip(&cache.activations) {
            buf[..m.as_slice().len()].copy_from_slice(m.as_slice());
        }
        let mut grads = vec![0.0f32; self.params.len()];
        self.backward_ws(x.as_slice(), batch, dout.as_slice(), &mut ws, &mut grads);
        grads
    }

    /// Shared backward-pass engine: `acts[i][..acts_len[i]]` is the activated
    /// output of layer `i` for this batch. Every layer's gradient region in
    /// `grads` is fully overwritten, so `grads` needs no zeroing by the
    /// caller.
    #[allow(clippy::too_many_arguments)] // internal engine behind two public wrappers
    fn backward_core(
        &self,
        x: &[f32],
        batch: usize,
        acts: &[Vec<f32>],
        acts_len: &[usize],
        dout: &[f32],
        delta_a: &mut [f32],
        delta_b: &mut [f32],
        pack: &mut Vec<f32>,
        grads: &mut [f32],
    ) {
        let last = self.layout.len() - 1;
        // Ping-pong: `cur` holds this layer's delta, `next` receives dX.
        let mut cur = delta_a;
        let mut next = delta_b;
        cur[..dout.len()].copy_from_slice(dout);
        for (idx, l) in self.layout.iter().enumerate().rev() {
            let n = batch * l.output;
            // For hidden layers `cur` holds dL/da; fold in the activation
            // derivative (in terms of the activated output) in place.
            if idx != last {
                kernel::act_grad_mul(self.activation, &mut cur[..n], &acts[idx][..n]);
            }
            let delta = &cur[..n];
            let input: &[f32] = if idx == 0 { x } else { &acts[idx - 1][..acts_len[idx - 1]] };
            // dW = inputᵀ × delta
            kernel::gemm_tn(batch, l.input, l.output, input, delta, &mut grads[l.w_off..l.w_off + l.input * l.output]);
            // db = column sums of delta
            kernel::col_sums_into(batch, l.output, delta, &mut grads[l.b_off..l.b_off + l.output]);
            if idx > 0 {
                // dX = delta × Wᵀ
                kernel::gemm_nt(batch, l.output, l.input, delta, self.w(l), pack, &mut next[..batch * l.input]);
                std::mem::swap(&mut cur, &mut next);
            }
        }
    }

    /// Convenience: forward + backward in one call.
    pub fn backward(&self, x: &Matrix, dout: &Matrix) -> Vec<f32> {
        let (_, cache) = self.forward_cached(x);
        self.backward_cached(x, &cache, dout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(activation: Activation) {
        let mut net = Mlp::new(&[3, 5, 2], activation, 42);
        let x = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.1, -0.7, 0.3, 0.9]);
        // Loss = sum of outputs, so dL/dout = ones.
        let dout = Matrix::ones(2, 2);
        let grads = net.backward(&x, &dout);
        let eps = 1e-3f32;
        for i in (0..net.num_params()).step_by(7) {
            let orig = net.params()[i];
            net.params_mut()[i] = orig + eps;
            let up: f32 = net.forward(&x).as_slice().iter().sum();
            net.params_mut()[i] = orig - eps;
            let down: f32 = net.forward(&x).as_slice().iter().sum();
            net.params_mut()[i] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - grads[i]).abs() < 2e-2,
                "param {i}: numeric {numeric} vs analytic {}",
                grads[i]
            );
        }
    }

    #[test]
    fn gradients_match_finite_differences_tanh() {
        finite_diff_check(Activation::Tanh);
    }

    #[test]
    fn gradients_match_finite_differences_relu() {
        finite_diff_check(Activation::Relu);
    }

    #[test]
    fn params_round_trip() {
        let net = Mlp::new(&[4, 8, 2], Activation::Relu, 1);
        let mut other = Mlp::new(&[4, 8, 2], Activation::Relu, 2);
        assert_ne!(net.params(), other.params());
        other.set_params(net.params());
        assert_eq!(net.params(), other.params());
        let x = Matrix::ones(1, 4);
        assert_eq!(net.forward(&x), other.forward(&x));
    }

    #[test]
    fn output_shape_and_determinism() {
        let net = Mlp::new(&[4, 16, 16, 3], Activation::Tanh, 9);
        let x = Matrix::ones(5, 4);
        let y1 = net.forward(&x);
        let y2 = net.forward(&x);
        assert_eq!(y1.shape(), (5, 3));
        assert_eq!(y1, y2);
    }

    #[test]
    fn same_seed_same_network() {
        let a = Mlp::new(&[2, 4, 1], Activation::Relu, 77);
        let b = Mlp::new(&[2, 4, 1], Activation::Relu, 77);
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn training_reduces_loss_on_regression() {
        use crate::ops::mse;
        use crate::optim::Adam;
        // Fit y = [x0 + x1, x0 - x1] on random points.
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Mlp::new(&[2, 32, 2], Activation::Tanh, 5);
        let mut opt = Adam::new(net.num_params(), 1e-2);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..300 {
            let xs: Vec<f32> = (0..16).flat_map(|_| {
                let a: f32 = rng.gen_range(-1.0..1.0);
                let b: f32 = rng.gen_range(-1.0..1.0);
                vec![a, b]
            }).collect();
            let x = Matrix::from_vec(16, 2, xs);
            let mut t = Matrix::zeros(16, 2);
            for r in 0..16 {
                t.set(r, 0, x.get(r, 0) + x.get(r, 1));
                t.set(r, 1, x.get(r, 0) - x.get(r, 1));
            }
            let (out, cache) = net.forward_cached(&x);
            let (loss, dout) = mse(&out, &t);
            let grads = net.backward_cached(&x, &cache, &dout);
            opt.step(net.params_mut(), &grads);
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.1,
            "loss should drop 10x: {} -> {last_loss}",
            first_loss.unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "at least an input and an output")]
    fn one_size_rejected() {
        let _ = Mlp::new(&[4], Activation::Relu, 0);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let net = Mlp::new(&[4, 2], Activation::Relu, 0);
        let _ = net.forward(&Matrix::ones(1, 3));
    }
}
