//! Minimal dense neural-network substrate.
//!
//! The paper trains its policy/value networks with TensorFlow or PyTorch; this
//! reproduction needs real (non-stubbed) DNN computation so that training time
//! is genuine and the communication-computation overlap measured by the
//! benchmarks is honest. `tinynn` provides exactly what the DRL algorithms in
//! this repository need and nothing more:
//!
//! * [`tensor::Matrix`] — row-major 2-D `f32` tensors with the usual ops,
//! * [`kernel`] — register-tiled, cache-blocked GEMM kernels and fused
//!   bias/activation layer ops behind both the `Matrix` API and the
//!   allocation-free workspace path,
//! * [`mlp::Mlp`] — multi-layer perceptrons with ReLU/Tanh hidden layers,
//!   explicit forward/backward passes (allocation-free after warmup via
//!   [`mlp::Workspace`]), and flat parameter (de)serialization for
//!   parameter-broadcast messages,
//! * [`optim`] — SGD (with momentum) and Adam,
//! * [`ops`] — softmax/log-softmax/entropy and related numerics.
//!
//! Gradients are verified against finite differences in the test suite.
//!
//! # Examples
//!
//! ```
//! use tinynn::{Mlp, Activation, Matrix, optim::Adam};
//!
//! // A 4 -> 32 -> 2 network, e.g. a CartPole policy head.
//! let mut net = Mlp::new(&[4, 32, 2], Activation::Tanh, 7);
//! let x = Matrix::zeros(1, 4);
//! let out = net.forward(&x);
//! assert_eq!(out.shape(), (1, 2));
//! let mut opt = Adam::new(net.num_params(), 1e-3);
//! let grads = net.backward(&x, &Matrix::ones(1, 2));
//! opt.step(net.params_mut(), &grads);
//! ```

pub mod kernel;
pub mod mlp;
pub mod ops;
pub mod optim;
pub mod tensor;

pub use mlp::{Activation, ForwardCache, Mlp, Workspace};
pub use tensor::Matrix;
