//! Numerical helpers shared by the DRL algorithms: softmax family, entropy,
//! and stable log/exp utilities.

use crate::tensor::Matrix;

/// Fused per-row softmax statistics: everything the softmax family needs
/// from one logits row, computed in a single exp pass (plus the max scan).
///
/// With `m = max`, `e_j = exp(z_j − m)`:
/// * `sum = Σ e_j`, so `p_j = e_j / sum` and `log p_j = z_j − (m + ln sum)`,
/// * `dot = Σ e_j · (z_j − m)`, so the entropy is `ln sum − dot / sum`.
#[derive(Debug, Clone, Copy)]
pub struct RowStats {
    /// Row maximum `m` (the shift that keeps `exp` in range).
    pub max: f32,
    /// `Σ exp(z_j − m)`.
    pub sum: f32,
    /// `Σ exp(z_j − m) · (z_j − m)`.
    pub dot: f32,
}

impl RowStats {
    /// `ln sum + max`: the log-partition `log Σ exp(z_j)`, so that
    /// `log p_j = z_j − log_z()`.
    pub fn log_z(self) -> f32 {
        self.sum.ln() + self.max
    }

    /// Entropy of the row's categorical distribution.
    pub fn entropy(self) -> f32 {
        self.sum.ln() - self.dot / self.sum
    }
}

/// Computes [`RowStats`] for one logits row.
pub fn row_stats(row: &[f32]) -> RowStats {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    let mut dot = 0.0;
    for &z in row {
        let c = z - max;
        let e = c.exp();
        sum += e;
        dot += e * c;
    }
    RowStats { max, sum, dot }
}

/// Row-wise softmax of `row` into `out` (may alias via a prior copy; plain
/// slices, no allocation).
///
/// # Panics
///
/// Panics on length mismatch.
pub fn softmax_row_into(row: &[f32], out: &mut [f32]) {
    assert_eq!(row.len(), out.len(), "softmax row length mismatch");
    let s = row_stats(row);
    let inv = 1.0 / s.sum;
    for (o, &z) in out.iter_mut().zip(row) {
        *o = (z - s.max).exp() * inv;
    }
}

/// Numerically stable softmax applied row-wise.
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let s = row_stats(row);
        let inv = 1.0 / s.sum;
        for v in row.iter_mut() {
            *v = (*v - s.max).exp() * inv;
        }
    }
    out
}

/// Numerically stable log-softmax applied row-wise.
pub fn log_softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let log_z = row_stats(row).log_z();
        for v in row.iter_mut() {
            *v -= log_z;
        }
    }
    out
}

/// Entropy of each row's categorical distribution given its logits.
///
/// One fused pass per row via [`row_stats`] — no probability or log-prob
/// matrices are materialized.
pub fn entropy(logits: &Matrix) -> Vec<f32> {
    (0..logits.rows()).map(|r| row_stats(logits.row(r)).entropy()).collect()
}

/// Mean squared error between predictions and targets, plus the gradient of
/// the mean w.r.t. predictions.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let loss = mse_into(pred.as_slice(), target.as_slice(), grad.as_mut_slice());
    (loss, grad)
}

/// Allocation-free [`mse`]: writes the gradient into caller-owned `grad`
/// (fully overwritten) and returns the mean loss.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn mse_into(pred: &[f32], target: &[f32], grad: &mut [f32]) -> f32 {
    assert_eq!(pred.len(), target.len(), "mse shape mismatch");
    assert_eq!(pred.len(), grad.len(), "mse grad length mismatch");
    let n = pred.len() as f32;
    let scale = 2.0 / n;
    let mut loss = 0.0;
    for ((g, &p), &t) in grad.iter_mut().zip(pred).zip(target) {
        let d = p - t;
        loss += d * d;
        *g = scale * d;
    }
    loss / n
}

/// Samples an index from a categorical distribution given probabilities.
///
/// `u` must be a uniform random number in `[0, 1)`. The threshold is
/// `u × Σp` rather than `u` itself, so probabilities whose floating-point
/// sum drifts from 1.0 (softmax rounding) still sample every index with the
/// intended weight instead of leaning on the final-index fallback.
pub fn sample_categorical(probs: &[f32], u: f32) -> usize {
    let total: f32 = probs.iter().sum();
    let threshold = u * total;
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if threshold < acc {
            return i;
        }
    }
    probs.len() - 1
}

/// Index of the maximum value (argmax); ties resolve to the first maximum.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn argmax(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = softmax(&m);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&Matrix::from_vec(1, 3, vec![1., 2., 3.]));
        let b = softmax(&Matrix::from_vec(1, 3, vec![1001., 1002., 1003.]));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let m = Matrix::from_vec(1, 4, vec![0.5, -1.0, 2.0, 0.0]);
        let ls = log_softmax(&m);
        let s = softmax(&m);
        for (a, b) in ls.as_slice().iter().zip(s.as_slice()) {
            assert!((a - b.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn entropy_is_max_for_uniform() {
        let uniform = entropy(&Matrix::from_vec(1, 4, vec![0.0; 4]))[0];
        let peaked = entropy(&Matrix::from_vec(1, 4, vec![10.0, 0.0, 0.0, 0.0]))[0];
        assert!((uniform - (4.0f32).ln()).abs() < 1e-5);
        assert!(peaked < uniform);
    }

    #[test]
    fn mse_and_gradient() {
        let pred = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let target = Matrix::from_vec(1, 2, vec![0.0, 2.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 0.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[1.0, 0.0]);
    }

    #[test]
    fn sample_categorical_boundaries() {
        let p = [0.25, 0.25, 0.5];
        assert_eq!(sample_categorical(&p, 0.0), 0);
        assert_eq!(sample_categorical(&p, 0.3), 1);
        assert_eq!(sample_categorical(&p, 0.99), 2);
        assert_eq!(sample_categorical(&p, 1.0), 2, "u at upper bound clamps");
    }

    #[test]
    fn argmax_first_max_wins() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
    }

    #[test]
    fn sample_categorical_renormalizes_drifted_sums() {
        // Sum drifts below 1: without renormalization, u in [0.9, 1.0) would
        // fall through to the last-index fallback regardless of the weights.
        let low = [0.3, 0.3, 0.3];
        assert_eq!(sample_categorical(&low, 0.32), 0);
        assert_eq!(sample_categorical(&low, 0.34), 1);
        assert_eq!(sample_categorical(&low, 0.95), 2);
        // Sum drifts above 1: index weights stay proportional.
        let high = [0.6, 0.6];
        assert_eq!(sample_categorical(&high, 0.49), 0);
        assert_eq!(sample_categorical(&high, 0.51), 1);
    }

    #[test]
    fn row_stats_matches_materialized_softmax() {
        let m = Matrix::from_vec(1, 4, vec![0.5, -1.0, 2.0, 0.3]);
        let s = row_stats(m.row(0));
        let probs = softmax(&m);
        let logs = log_softmax(&m);
        let naive_entropy: f32 =
            probs.row(0).iter().zip(logs.row(0)).map(|(&p, &lp)| -p * lp).sum();
        assert!((s.entropy() - naive_entropy).abs() < 1e-5);
        for (&z, &lp) in m.row(0).iter().zip(logs.row(0)) {
            assert!((z - s.log_z() - lp).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_row_into_matches_softmax() {
        let m = Matrix::from_vec(1, 4, vec![1.0, -2.0, 0.5, 3.0]);
        let mut out = vec![0.0; 4];
        softmax_row_into(m.row(0), &mut out);
        for (a, b) in out.iter().zip(softmax(&m).row(0)) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn mse_into_matches_mse() {
        let pred = Matrix::from_vec(2, 2, vec![1.0, 2.0, -1.0, 0.5]);
        let target = Matrix::from_vec(2, 2, vec![0.0, 2.0, 1.0, 0.5]);
        let (loss, grad) = mse(&pred, &target);
        let mut grad2 = vec![f32::NAN; 4];
        let loss2 = mse_into(pred.as_slice(), target.as_slice(), &mut grad2);
        assert_eq!(loss, loss2);
        assert_eq!(grad.as_slice(), &grad2[..]);
    }
}
