//! Numerical helpers shared by the DRL algorithms: softmax family, entropy,
//! and stable log/exp utilities.

use crate::tensor::Matrix;

/// Numerically stable softmax applied row-wise.
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Numerically stable log-softmax applied row-wise.
pub fn log_softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let log_sum = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
        for v in row.iter_mut() {
            *v -= log_sum;
        }
    }
    out
}

/// Entropy of each row's categorical distribution given its logits.
pub fn entropy(logits: &Matrix) -> Vec<f32> {
    let probs = softmax(logits);
    let logs = log_softmax(logits);
    (0..logits.rows())
        .map(|r| {
            probs
                .row(r)
                .iter()
                .zip(logs.row(r))
                .map(|(&p, &lp)| if p > 0.0 { -p * lp } else { 0.0 })
                .sum()
        })
        .collect()
}

/// Mean squared error between predictions and targets, plus the gradient of
/// the mean w.r.t. predictions.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = (pred.rows() * pred.cols()) as f32;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0;
    for i in 0..pred.as_slice().len() {
        let d = pred.as_slice()[i] - target.as_slice()[i];
        loss += d * d;
        grad.as_mut_slice()[i] = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Samples an index from a categorical distribution given probabilities.
///
/// `u` must be a uniform random number in `[0, 1)`.
pub fn sample_categorical(probs: &[f32], u: f32) -> usize {
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len() - 1
}

/// Index of the maximum value (argmax); ties resolve to the first maximum.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn argmax(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = softmax(&m);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&Matrix::from_vec(1, 3, vec![1., 2., 3.]));
        let b = softmax(&Matrix::from_vec(1, 3, vec![1001., 1002., 1003.]));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let m = Matrix::from_vec(1, 4, vec![0.5, -1.0, 2.0, 0.0]);
        let ls = log_softmax(&m);
        let s = softmax(&m);
        for (a, b) in ls.as_slice().iter().zip(s.as_slice()) {
            assert!((a - b.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn entropy_is_max_for_uniform() {
        let uniform = entropy(&Matrix::from_vec(1, 4, vec![0.0; 4]))[0];
        let peaked = entropy(&Matrix::from_vec(1, 4, vec![10.0, 0.0, 0.0, 0.0]))[0];
        assert!((uniform - (4.0f32).ln()).abs() < 1e-5);
        assert!(peaked < uniform);
    }

    #[test]
    fn mse_and_gradient() {
        let pred = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let target = Matrix::from_vec(1, 2, vec![0.0, 2.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 0.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[1.0, 0.0]);
    }

    #[test]
    fn sample_categorical_boundaries() {
        let p = [0.25, 0.25, 0.5];
        assert_eq!(sample_categorical(&p, 0.0), 0);
        assert_eq!(sample_categorical(&p, 0.3), 1);
        assert_eq!(sample_categorical(&p, 0.99), 2);
        assert_eq!(sample_categorical(&p, 1.0), 2, "u at upper bound clamps");
    }

    #[test]
    fn argmax_first_max_wins() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
    }
}
