//! Row-major 2-D `f32` tensors.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32` values.
///
/// This is the only tensor type the reproduction needs: observations, logits,
/// and layer activations are all batches of row vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// An all-ones matrix.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![1.0; rows * cols] }
    }

    /// A matrix of samples from a scaled uniform distribution in `[-scale, scale]`.
    pub fn uniform<R: Rng>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(-scale..=scale)).collect();
        Matrix { rows, cols, data }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product `self × rhs`, via the tiled [`crate::kernel::gemm_nn`].
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::kernel::gemm_nn(self.rows, self.cols, rhs.cols, &self.data, &rhs.data, &mut out.data);
        out
    }

    /// `selfᵀ × rhs` without materializing the transpose, via the tiled
    /// [`crate::kernel::gemm_tn`].
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "t_matmul leading dimensions must agree");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        crate::kernel::gemm_tn(self.rows, self.cols, rhs.cols, &self.data, &rhs.data, &mut out.data);
        out
    }

    /// `self × rhsᵀ` without materializing the transpose, via the tiled
    /// [`crate::kernel::gemm_nt`]. Allocates a fresh pack panel; hot paths
    /// should call the kernel directly with a reused [`crate::Workspace`].
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_t trailing dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        let mut pack = Vec::new();
        crate::kernel::gemm_nt(self.rows, self.cols, rhs.rows, &self.data, &rhs.data, &mut pack, &mut out.data);
        out
    }

    /// Transposed copy.
    #[allow(clippy::needless_range_loop)] // index form mirrors the (i, j) math
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Adds `row` to every row of `self` (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    #[allow(clippy::needless_range_loop)] // index form mirrors the (r, c) math
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "broadcast row length mismatch");
        for r in 0..self.rows {
            let base = r * self.cols;
            for c in 0..self.cols {
                self.data[base + c] += row[c];
            }
        }
    }

    /// Sum over rows, yielding one value per column (bias gradients).
    #[allow(clippy::needless_range_loop)] // index form mirrors the (r, c) math
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let base = r * self.cols;
            for c in 0..self.cols {
                out[c] += self.data[base + c];
            }
        }
        out
    }

    /// Consumes the matrix, returning its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(2, 2, vec![1., 0., 2., 1.]);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, vec![1., 0., 2., 1., 1., 1., 0., 0., 1., 2., 2., 2.]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcast_and_col_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dimensions")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn uniform_respects_scale() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = Matrix::uniform(10, 10, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.5));
    }
}
