//! Property-based tests of the neural-network substrate.

use proptest::prelude::*;
use tinynn::optim::{clip_global_norm, Adam, Sgd};
use tinynn::{Activation, Matrix, Mlp};

fn arb_sizes() -> impl Strategy<Value = Vec<usize>> {
    (1usize..6, 1usize..8, 1usize..8, 1usize..5)
        .prop_map(|(i, h1, h2, o)| vec![i, h1, h2, o])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forward_is_deterministic(sizes in arb_sizes(), seed in any::<u64>()) {
        let net = Mlp::new(&sizes, Activation::Tanh, seed);
        let x = Matrix::ones(3, sizes[0]);
        prop_assert_eq!(net.forward(&x), net.forward(&x));
    }

    #[test]
    fn params_round_trip_preserves_behavior(sizes in arb_sizes(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = Mlp::new(&sizes, Activation::Relu, s1);
        let mut b = Mlp::new(&sizes, Activation::Relu, s2);
        b.set_params(a.params());
        let x = Matrix::ones(2, sizes[0]);
        prop_assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn gradient_step_reduces_sum_loss(sizes in arb_sizes(), seed in any::<u64>()) {
        // Loss = sum of outputs; stepping against the gradient must not
        // increase it (for a small enough step).
        let mut net = Mlp::new(&sizes, Activation::Tanh, seed);
        let x = Matrix::ones(4, sizes[0]);
        let before: f32 = net.forward(&x).as_slice().iter().sum();
        let dout = Matrix::ones(4, *sizes.last().unwrap());
        let grads = net.backward(&x, &dout);
        let mut opt = Sgd::new(net.num_params(), 1e-4);
        opt.step(net.params_mut(), &grads);
        let after: f32 = net.forward(&x).as_slice().iter().sum();
        prop_assert!(after <= before + 1e-4, "loss rose: {before} -> {after}");
    }

    #[test]
    fn adam_steps_stay_finite(seed in any::<u64>(), grads in proptest::collection::vec(-10.0f32..10.0, 16)) {
        let mut net = Mlp::new(&[4, 2], Activation::Relu, seed);
        let mut opt = Adam::new(net.num_params(), 1e-2);
        let mut g = grads;
        g.resize(net.num_params(), 0.1);
        for _ in 0..50 {
            opt.step(net.params_mut(), &g);
        }
        prop_assert!(net.params().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn clip_never_increases_norm(mut grads in proptest::collection::vec(-100.0f32..100.0, 1..64), max in 0.01f32..10.0) {
        let before = grads.iter().map(|g| g * g).sum::<f32>().sqrt();
        clip_global_norm(&mut grads, max);
        let after = grads.iter().map(|g| g * g).sum::<f32>().sqrt();
        prop_assert!(after <= before + 1e-4);
        prop_assert!(after <= max + 1e-3);
    }

    #[test]
    fn matmul_is_distributive_over_addition(
        a in proptest::collection::vec(-2.0f32..2.0, 6),
        b in proptest::collection::vec(-2.0f32..2.0, 6),
        c in proptest::collection::vec(-2.0f32..2.0, 6),
    ) {
        // (A + B) C == AC + BC for 2x3 * 3x2 matrices.
        let ma = Matrix::from_vec(2, 3, a);
        let mb = Matrix::from_vec(2, 3, b);
        let mc = Matrix::from_vec(3, 2, c);
        let mut sum = ma.clone();
        sum.add_assign(&mb);
        let lhs = sum.matmul(&mc);
        let mut rhs = ma.matmul(&mc);
        rhs.add_assign(&mb.matmul(&mc));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }
}
