//! Seeded, deterministic fault plans.
//!
//! A [`FaultPlan`] is the single artifact a chaos run is configured with: it
//! bundles the scheduled link faults netsim executes on the virtual clock,
//! the per-route injection rules the comm router executes, and the kill
//! switches that take processes down at a precise point. Everything is
//! derived from one `u64` seed — rerunning the same plan against the same
//! deployment produces the same chaos, which is what makes chaos regressions
//! reproducible and bisectable.

use crate::inject::PlanInjector;
use crate::probe::ProcessProbe;
use netsim::{Cluster, LinkFault, LinkFaultSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use xingtian_comm::Broker;
use xingtian_message::{MessageKind, ProcessId, ProcessRole};
use xt_telemetry::TimeSource;

/// When a kill switch fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KillTrigger {
    /// Fire once the deployment's clock (the probe's [`TimeSource`]) passes
    /// this many nanoseconds.
    AtNanos(u64),
    /// Fire on the `n`-th pulse of the process's workhorse loop (environment
    /// steps for explorers, training sessions for the learner), making the
    /// kill point exact and scheduler-independent.
    AfterSteps(u64),
}

/// One scheduled process kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KillSpec {
    /// The process to take down.
    pub target: ProcessId,
    /// When to take it down.
    pub trigger: KillTrigger,
}

/// One route-injection rule: a match pattern plus fault probabilities.
///
/// Rules are consulted in plan order; the first rule whose pattern matches a
/// *(message, destination)* pair decides its fate. Within a rule the rolls
/// are evaluated in a fixed order — drop, then duplicate, then delay — and
/// each roll is a pure hash of `(seed, message id, destination, salt)`, so a
/// given message/destination pair gets the same verdict regardless of thread
/// interleaving or delivery order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteRule {
    /// Match only messages of this kind (`None` = any kind except heartbeats;
    /// injecting on liveness beacons is possible but must be asked for
    /// explicitly, or every drop rule would double as a false-positive
    /// generator for the failure detector).
    pub kind: Option<MessageKind>,
    /// Match only messages from processes of this role.
    pub src_role: Option<ProcessRole>,
    /// Match only deliveries to processes of this role.
    pub dst_role: Option<ProcessRole>,
    /// Probability a matched delivery is dropped.
    pub drop_prob: f64,
    /// Probability a matched (non-dropped) delivery is duplicated.
    pub duplicate_prob: f64,
    /// Extra copies delivered when the duplicate roll hits.
    pub duplicate_copies: u32,
    /// Probability a matched (non-dropped, non-duplicated) delivery is
    /// delayed.
    pub delay_prob: f64,
    /// How long a delayed delivery is parked, in milliseconds.
    pub delay_ms: u64,
    /// The rule is active only from this many milliseconds after the plan is
    /// installed (`None` = from the start).
    pub active_from_ms: Option<u64>,
    /// The rule deactivates at this many milliseconds after the plan is
    /// installed (`None` = never).
    pub active_until_ms: Option<u64>,
}

impl RouteRule {
    /// A rule matching everything (except heartbeats) with no faults; combine
    /// with the builder methods.
    pub fn any() -> Self {
        RouteRule {
            kind: None,
            src_role: None,
            dst_role: None,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            duplicate_copies: 1,
            delay_prob: 0.0,
            delay_ms: 0,
            active_from_ms: None,
            active_until_ms: None,
        }
    }

    /// Restricts the rule to a window of the run: deliveries are matched only
    /// between `from_ms` (inclusive) and `until_ms` (exclusive) after the
    /// plan's injector is installed (builder style). Windowed rules shape
    /// *temporal* fault scenarios — a congestion burst, a flaky period — the
    /// way [`netsim::LinkFault`] windows shape link schedules. The verdict
    /// rolls inside the window stay pure hashes; only rule *activation*
    /// depends on delivery time.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn during_ms(mut self, from_ms: u64, until_ms: u64) -> Self {
        assert!(from_ms < until_ms, "rule window [{from_ms}, {until_ms}) is empty");
        self.active_from_ms = Some(from_ms);
        self.active_until_ms = Some(until_ms);
        self
    }

    /// Whether the rule is active `elapsed_ms` after its plan was installed.
    pub fn active_at(&self, elapsed_ms: u64) -> bool {
        self.active_from_ms.is_none_or(|f| elapsed_ms >= f)
            && self.active_until_ms.is_none_or(|u| elapsed_ms < u)
    }

    /// Restricts the rule to messages of `kind` (builder style).
    pub fn on_kind(mut self, kind: MessageKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Restricts the rule to messages sent by `role` processes (builder
    /// style).
    pub fn from_role(mut self, role: ProcessRole) -> Self {
        self.src_role = Some(role);
        self
    }

    /// Restricts the rule to deliveries to `role` processes (builder style).
    pub fn to_role(mut self, role: ProcessRole) -> Self {
        self.dst_role = Some(role);
        self
    }

    /// Sets the drop probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `[0, 1]`.
    pub fn dropping(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "drop probability must be in [0, 1]");
        self.drop_prob = prob;
        self
    }

    /// Sets the duplicate probability and copy count (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `[0, 1]` or `copies` is zero.
    pub fn duplicating(mut self, prob: f64, copies: u32) -> Self {
        assert!((0.0..=1.0).contains(&prob), "duplicate probability must be in [0, 1]");
        assert!(copies > 0, "duplicating zero copies is a no-op; use probability 0 instead");
        self.duplicate_prob = prob;
        self.duplicate_copies = copies;
        self
    }

    /// Sets the delay probability and duration (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `[0, 1]`.
    pub fn delaying(mut self, prob: f64, delay_ms: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "delay probability must be in [0, 1]");
        self.delay_prob = prob;
        self.delay_ms = delay_ms;
        self
    }

    /// Whether this rule applies to delivering a message from `src` of
    /// `kind` to `dst`.
    pub fn matches(&self, kind: MessageKind, src: ProcessId, dst: ProcessId) -> bool {
        let kind_ok = match self.kind {
            Some(k) => k == kind,
            // Unqualified rules never touch liveness beacons.
            None => kind != MessageKind::Heartbeat,
        };
        kind_ok
            && self.src_role.is_none_or(|r| r == src.role)
            && self.dst_role.is_none_or(|r| r == dst.role)
    }
}

/// A complete, reproducible chaos scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    links: LinkFaultSchedule,
    rules: Vec<RouteRule>,
    kills: Vec<KillSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults) rooted at `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, links: LinkFaultSchedule::new(), rules: Vec::new(), kills: Vec::new() }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds a scheduled link fault (builder style).
    pub fn with_link_fault(mut self, fault: LinkFault) -> Self {
        self.links = self.links.with(fault);
        self
    }

    /// Adds a scheduled link fault in both directions (builder style).
    pub fn with_symmetric_link_fault(mut self, fault: LinkFault) -> Self {
        self.links = self.links.with_symmetric(fault);
        self
    }

    /// Partitions `machine` from all `machines` others during
    /// `[start_nanos, end_nanos)` of the cluster clock (builder style).
    pub fn isolating_machine(
        mut self,
        machine: usize,
        machines: usize,
        start_nanos: u64,
        end_nanos: u64,
    ) -> Self {
        self.links = self.links.isolate_machine(machine, machines, start_nanos, end_nanos);
        self
    }

    /// Adds a route-injection rule (builder style). Rules are consulted in
    /// insertion order; first match wins.
    pub fn with_rule(mut self, rule: RouteRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Schedules a process kill (builder style).
    pub fn with_kill(mut self, target: ProcessId, trigger: KillTrigger) -> Self {
        self.kills.push(KillSpec { target, trigger });
        self
    }

    /// The scheduled link faults.
    pub fn link_schedule(&self) -> &LinkFaultSchedule {
        &self.links
    }

    /// The route-injection rules, in consultation order.
    pub fn rules(&self) -> &[RouteRule] {
        &self.rules
    }

    /// The scheduled kills.
    pub fn kills(&self) -> &[KillSpec] {
        &self.kills
    }

    /// Whether the plan contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.rules.is_empty() && self.kills.is_empty()
    }

    /// Installs the plan's network-level faults into a deployment: the link
    /// schedule onto `cluster` and (when the plan has route rules) one seeded
    /// [`PlanInjector`] onto every broker. Kill switches are not installed
    /// here — they are handed to processes via [`FaultPlan::probe_for`].
    pub fn install(&self, cluster: &Cluster, brokers: &[Broker]) {
        if !self.links.is_empty() {
            cluster.install_faults(self.links.clone());
        }
        if !self.rules.is_empty() {
            for broker in brokers {
                broker.set_injector(Arc::new(PlanInjector::new(self.seed, self.rules.clone())));
            }
        }
    }

    /// The kill switch for `target`: armed with the first matching
    /// [`KillSpec`], or inert if the plan never kills `target`. Pass the
    /// deployment clock as `time` so [`KillTrigger::AtNanos`] fires on the
    /// same timeline as the link schedule; probes with step triggers don't
    /// need one.
    pub fn probe_for(
        &self,
        target: ProcessId,
        time: Option<Box<dyn TimeSource>>,
    ) -> ProcessProbe {
        match self.kills.iter().find(|k| k.target == target) {
            Some(spec) => ProcessProbe::armed(target, spec.trigger, time),
            None => ProcessProbe::inert(target),
        }
    }

    /// A randomized but fully seed-determined chaos scenario for a
    /// deployment of `machines` machines and `explorers` explorers: one
    /// explorer is killed partway through its expected `horizon_steps`
    /// lifetime, one non-learner machine (when the cluster has one) is
    /// partitioned for a window of the virtual clock, and rollout deliveries
    /// get a small drop probability. The same `(seed, shape)` always yields
    /// the same scenario.
    pub fn random_chaos(
        seed: u64,
        machines: usize,
        explorers: u32,
        horizon_steps: u64,
        horizon_nanos: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let victim = rng.gen_range(0..explorers.max(1));
        let kill_at = horizon_steps / 4 + rng.gen_range(0..horizon_steps.max(4) / 2);
        let mut plan = FaultPlan::seeded(seed)
            .with_kill(ProcessId::explorer(victim), KillTrigger::AfterSteps(kill_at))
            .with_rule(
                RouteRule::any().on_kind(MessageKind::Rollout).dropping(0.02 + rng.gen::<f64>() * 0.03),
            );
        if machines > 1 {
            // Never isolate machine 0 (the conventional learner machine):
            // partitioning the learner away from everything stalls training
            // for the whole window, which is a different experiment.
            let island = 1 + rng.gen_range(0..machines - 1);
            let start = horizon_nanos / 4 + rng.gen_range(0..horizon_nanos.max(4) / 4);
            let width = horizon_nanos / 8;
            plan = plan.isolating_machine(island, machines, start, start + width);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::LinkCondition;

    #[test]
    fn rules_match_on_kind_and_roles() {
        let rule = RouteRule::any()
            .on_kind(MessageKind::Rollout)
            .from_role(ProcessRole::Explorer)
            .to_role(ProcessRole::Learner);
        assert!(rule.matches(MessageKind::Rollout, ProcessId::explorer(2), ProcessId::learner(0)));
        assert!(!rule.matches(MessageKind::Stats, ProcessId::explorer(2), ProcessId::learner(0)));
        assert!(!rule.matches(MessageKind::Rollout, ProcessId::learner(0), ProcessId::learner(0)));
        assert!(!rule.matches(MessageKind::Rollout, ProcessId::explorer(2), ProcessId::controller(0)));
    }

    #[test]
    fn windowed_rules_activate_only_inside_their_window() {
        let rule = RouteRule::any().delaying(1.0, 10).during_ms(100, 200);
        assert!(!rule.active_at(0));
        assert!(!rule.active_at(99));
        assert!(rule.active_at(100));
        assert!(rule.active_at(199));
        assert!(!rule.active_at(200));
        let open = RouteRule::any().dropping(1.0);
        assert!(open.active_at(0) && open.active_at(u64::MAX));
    }

    #[test]
    fn unqualified_rules_spare_heartbeats() {
        let rule = RouteRule::any().dropping(1.0);
        assert!(rule.matches(MessageKind::Rollout, ProcessId::explorer(0), ProcessId::learner(0)));
        assert!(
            !rule.matches(MessageKind::Heartbeat, ProcessId::explorer(0), ProcessId::broker(0)),
            "catch-all rules must not forge liveness failures"
        );
        let explicit = RouteRule::any().on_kind(MessageKind::Heartbeat).dropping(1.0);
        assert!(explicit.matches(MessageKind::Heartbeat, ProcessId::explorer(0), ProcessId::broker(0)));
    }

    #[test]
    fn plan_builder_accumulates_faults() {
        let plan = FaultPlan::seeded(7)
            .with_symmetric_link_fault(LinkFault::partition(0, 1, 100, 200))
            .with_rule(RouteRule::any().dropping(0.5))
            .with_kill(ProcessId::explorer(3), KillTrigger::AfterSteps(50));
        assert!(!plan.is_empty());
        assert_eq!(plan.rules().len(), 1);
        assert_eq!(plan.kills(), &[KillSpec {
            target: ProcessId::explorer(3),
            trigger: KillTrigger::AfterSteps(50),
        }]);
        assert!(matches!(
            plan.link_schedule().condition(1, 0, 150),
            LinkCondition::Partitioned { .. }
        ));
    }

    #[test]
    fn probe_for_arms_only_the_victim() {
        let plan =
            FaultPlan::seeded(1).with_kill(ProcessId::explorer(2), KillTrigger::AfterSteps(3));
        let victim = plan.probe_for(ProcessId::explorer(2), None);
        let bystander = plan.probe_for(ProcessId::explorer(1), None);
        assert!(victim.is_armed());
        assert!(!bystander.is_armed());
    }

    #[test]
    fn random_chaos_is_seed_deterministic() {
        let a = FaultPlan::random_chaos(42, 2, 8, 1_000, 1_000_000);
        let b = FaultPlan::random_chaos(42, 2, 8, 1_000, 1_000_000);
        assert_eq!(a.kills(), b.kills());
        assert_eq!(a.rules(), b.rules());
        assert_eq!(a.link_schedule().faults(), b.link_schedule().faults());
        let c = FaultPlan::random_chaos(43, 2, 8, 1_000, 1_000_000);
        assert!(a.kills() != c.kills() || a.rules() != c.rules(), "different seeds differ");
    }

    #[test]
    fn random_chaos_never_isolates_the_learner_machine() {
        for seed in 0..32 {
            let plan = FaultPlan::random_chaos(seed, 3, 6, 1_000, 1_000_000);
            let faults = plan.link_schedule().faults();
            let keeps_a_link = (1..3).any(|m| {
                !faults
                    .iter()
                    .any(|f| (f.from == 0 && f.to == m) || (f.from == m && f.to == 0))
            });
            assert!(keeps_a_link, "machine 0 must keep at least one healthy link (seed {seed})");
        }
    }
}
