//! Heartbeat-fed failure detection.
//!
//! Every endpoint of a broker configured with
//! `xingtian_comm::HeartbeatConfig` beacons
//! [`MessageKind::Heartbeat`] messages to a monitor endpoint; the supervisor
//! drains that endpoint into a [`FailureDetector`]. The detector is a
//! timeout/accrual hybrid: it tracks an exponentially-weighted moving average
//! of each process's heartbeat inter-arrival time and declares the process
//! down once its silence exceeds `max(base_timeout, accrual_factor × EWMA)` —
//! a slow-beaconing process earns a proportionally longer leash, while the
//! base timeout keeps fast beacons from producing a hair-trigger detector.
//!
//! Liveness transitions are published two ways: as
//! [`EventKind::ProcessDown`]/[`EventKind::ProcessUp`] telemetry events
//! (keyed by a monotone incident id, with the packed process identity in
//! `aux`) plus `fault.process_down`/`fault.process_up` counters, and as an
//! in-memory [`LivenessTransition`] log the supervisor reads to build its
//! recovery report.
//!
//! Detection is intentionally *advisory*: a partitioned-but-alive process
//! looks exactly like a dead one from here (its beats stop arriving), so the
//! supervisor must confirm death through its `JoinHandle` before respawning.
//! The detector's job is latency — noticing within a bounded window that
//! liveness evidence stopped — and bookkeeping, not authority.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use xingtian_message::{Header, MessageKind, ProcessId};
use xt_telemetry::{EventKind, Telemetry};

/// Tuning of the accrual failure detector.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Minimum silence, in milliseconds, before any process is suspected.
    pub base_timeout_ms: u64,
    /// Multiple of the observed mean inter-arrival time a process may stay
    /// silent before being declared down.
    pub accrual_factor: f64,
    /// EWMA smoothing factor for inter-arrival times, in `(0, 1]` (higher =
    /// adapts faster to the latest interval).
    pub ewma_alpha: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { base_timeout_ms: 500, accrual_factor: 6.0, ewma_alpha: 0.2 }
    }
}

impl DetectorConfig {
    /// A config sized for heartbeats of period `interval_ms`: the timeout
    /// floor is a few beacon periods, so detection latency is bounded by
    /// `max(4 × interval, base)` without being trigger-happy on jitter.
    pub fn for_interval_ms(interval_ms: u64) -> Self {
        DetectorConfig { base_timeout_ms: interval_ms.saturating_mul(4).max(50), ..Default::default() }
    }
}

/// Current liveness verdict for a watched process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Heartbeats are arriving within the adaptive timeout.
    Alive,
    /// Heartbeats stopped: dead, partitioned away, or wedged.
    Down,
}

/// One recorded liveness transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessTransition {
    /// The process whose liveness changed.
    pub pid: ProcessId,
    /// The new verdict.
    pub liveness: Liveness,
    /// Nanoseconds since the detector was created.
    pub at_nanos: u64,
    /// Monotone incident id shared with the telemetry event this transition
    /// was published as.
    pub incident: u64,
}

#[derive(Debug)]
struct Watched {
    last_beat: Instant,
    /// EWMA of heartbeat inter-arrival time, in nanoseconds (0 until the
    /// second beat).
    ewma_interval_ns: f64,
    beats: u64,
    down: bool,
}

/// The deployment-level failure detector.
#[derive(Debug)]
pub struct FailureDetector {
    config: DetectorConfig,
    telemetry: Telemetry,
    origin: Instant,
    watched: Mutex<HashMap<ProcessId, Watched>>,
    transitions: Mutex<Vec<LivenessTransition>>,
    incidents: AtomicU64,
}

/// Packs a process identity into the `aux` word of a liveness event.
pub fn pack_pid(pid: ProcessId) -> u64 {
    ((pid.role as u64) << 32) | u64::from(pid.index)
}

impl FailureDetector {
    /// A detector publishing liveness transitions into `telemetry`.
    pub fn new(config: DetectorConfig, telemetry: Telemetry) -> Self {
        FailureDetector {
            config,
            telemetry,
            origin: Instant::now(),
            watched: Mutex::new(HashMap::new()),
            transitions: Mutex::new(Vec::new()),
            incidents: AtomicU64::new(0),
        }
    }

    /// Starts watching `pid`, treating "now" as its first sign of life so a
    /// slow-starting process is not declared down before its first beat is
    /// even due. Idempotent.
    pub fn watch(&self, pid: ProcessId) {
        self.watched.lock().entry(pid).or_insert_with(|| Watched {
            last_beat: Instant::now(),
            ewma_interval_ns: 0.0,
            beats: 0,
            down: false,
        });
    }

    /// Starts watching every pid in `pids` under one lock acquisition — the
    /// bulk path for deployments registering 1K+ explorers at launch, where
    /// per-pid locking would contend with the monitor drain already feeding
    /// `observe`. Idempotent per pid, like [`FailureDetector::watch`].
    pub fn watch_many(&self, pids: impl IntoIterator<Item = ProcessId>) {
        let mut watched = self.watched.lock();
        let now = Instant::now();
        for pid in pids {
            watched.entry(pid).or_insert_with(|| Watched {
                last_beat: now,
                ewma_interval_ns: 0.0,
                beats: 0,
                down: false,
            });
        }
    }

    /// Stops watching `pid` (deliberate teardown must not read as failure).
    pub fn forget(&self, pid: ProcessId) {
        self.watched.lock().remove(&pid);
    }

    /// Feeds one heartbeat arrival from `pid`. A beat from a down process
    /// flips it back to [`Liveness::Alive`] and publishes a
    /// [`EventKind::ProcessUp`] event — that is how recovery (respawn or
    /// partition heal) becomes visible.
    pub fn observe(&self, pid: ProcessId) {
        let mut watched = self.watched.lock();
        let now = Instant::now();
        let entry = watched.entry(pid).or_insert_with(|| Watched {
            last_beat: now,
            ewma_interval_ns: 0.0,
            beats: 0,
            down: false,
        });
        if entry.beats > 0 {
            let interval = now.duration_since(entry.last_beat).as_nanos() as f64;
            entry.ewma_interval_ns = if entry.ewma_interval_ns == 0.0 {
                interval
            } else {
                self.config.ewma_alpha * interval
                    + (1.0 - self.config.ewma_alpha) * entry.ewma_interval_ns
            };
        }
        entry.last_beat = now;
        entry.beats += 1;
        if entry.down {
            entry.down = false;
            drop(watched);
            self.publish(pid, Liveness::Alive);
        }
    }

    /// Feeds one message received by the monitor endpoint; heartbeats are
    /// observed, everything else ignored. Returns `true` if it was a
    /// heartbeat.
    pub fn observe_message(&self, header: &Header) -> bool {
        if header.kind == MessageKind::Heartbeat {
            self.observe(header.src);
            true
        } else {
            false
        }
    }

    /// The adaptive timeout currently applied to a process with the given
    /// EWMA inter-arrival time.
    fn timeout_ns(&self, ewma_interval_ns: f64) -> u64 {
        let accrual = self.config.accrual_factor * ewma_interval_ns;
        let base = Duration::from_millis(self.config.base_timeout_ms).as_nanos() as f64;
        accrual.max(base) as u64
    }

    /// Checks every watched process's silence against its adaptive timeout,
    /// publishing a [`EventKind::ProcessDown`] event per new suspect.
    /// Returns the processes that transitioned to down *in this sweep*.
    pub fn sweep(&self) -> Vec<ProcessId> {
        let mut newly_down = Vec::new();
        {
            let mut watched = self.watched.lock();
            let now = Instant::now();
            for (&pid, entry) in watched.iter_mut() {
                if entry.down {
                    continue;
                }
                let silence = now.duration_since(entry.last_beat).as_nanos() as u64;
                if silence > self.timeout_ns(entry.ewma_interval_ns) {
                    entry.down = true;
                    newly_down.push(pid);
                }
            }
        }
        for &pid in &newly_down {
            self.publish(pid, Liveness::Down);
        }
        newly_down
    }

    fn publish(&self, pid: ProcessId, liveness: Liveness) {
        let incident = self.incidents.fetch_add(1, Ordering::Relaxed);
        let kind = match liveness {
            Liveness::Alive => EventKind::ProcessUp,
            Liveness::Down => EventKind::ProcessDown,
        };
        self.telemetry.emit(kind, incident, pack_pid(pid));
        let stem = match liveness {
            Liveness::Alive => "fault.process_up",
            Liveness::Down => "fault.process_down",
        };
        self.telemetry.counter(stem).inc();
        // Role-tagged twin beside the aggregate: learner-shard liveness
        // transitions are distinguishable from explorer ones (heartbeats of
        // both fan into the same MONITOR endpoint).
        self.telemetry.counter(&format!("{stem}.{}", pid.role)).inc();
        self.transitions.lock().push(LivenessTransition {
            pid,
            liveness,
            at_nanos: self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            incident,
        });
    }

    /// Current verdict for `pid`; `None` if it is not watched.
    pub fn liveness(&self, pid: ProcessId) -> Option<Liveness> {
        self.watched
            .lock()
            .get(&pid)
            .map(|w| if w.down { Liveness::Down } else { Liveness::Alive })
    }

    /// Processes currently considered down.
    pub fn down(&self) -> Vec<ProcessId> {
        let mut down: Vec<ProcessId> =
            self.watched.lock().iter().filter(|(_, w)| w.down).map(|(&p, _)| p).collect();
        down.sort();
        down
    }

    /// Heartbeats observed from `pid` so far.
    pub fn beats(&self, pid: ProcessId) -> u64 {
        self.watched.lock().get(&pid).map_or(0, |w| w.beats)
    }

    /// The liveness transition log, in publication order.
    pub fn transitions(&self) -> Vec<LivenessTransition> {
        self.transitions.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> DetectorConfig {
        DetectorConfig { base_timeout_ms: 40, accrual_factor: 4.0, ewma_alpha: 0.3 }
    }

    #[test]
    fn silent_process_is_declared_down_once() {
        let telemetry = Telemetry::with_capacity(64);
        let d = FailureDetector::new(fast_config(), telemetry.clone());
        let pid = ProcessId::explorer(0);
        d.watch(pid);
        assert!(d.sweep().is_empty(), "not down before the base timeout");
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(d.sweep(), vec![pid]);
        assert!(d.sweep().is_empty(), "down is edge-triggered, not re-reported");
        assert_eq!(d.liveness(pid), Some(Liveness::Down));
        assert_eq!(d.down(), vec![pid]);
        assert_eq!(telemetry.counter("fault.process_down").get(), 1);
        assert_eq!(
            telemetry.counter("fault.process_down.explorer").get(),
            1,
            "role-tagged twin counter tracks the aggregate"
        );
        assert_eq!(telemetry.counter("fault.process_down.learner").get(), 0);
        let events = telemetry.events();
        let down = events.iter().find(|e| e.kind == EventKind::ProcessDown).expect("event");
        assert_eq!(down.aux, pack_pid(pid));
    }

    #[test]
    fn heartbeat_resurrects_a_down_process() {
        let telemetry = Telemetry::with_capacity(64);
        let d = FailureDetector::new(fast_config(), telemetry.clone());
        let pid = ProcessId::explorer(3);
        d.watch(pid);
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(d.sweep(), vec![pid]);
        d.observe(pid);
        assert_eq!(d.liveness(pid), Some(Liveness::Alive));
        assert_eq!(telemetry.counter("fault.process_up").get(), 1);
        assert_eq!(telemetry.counter("fault.process_up.explorer").get(), 1);
        let t = d.transitions();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].liveness, Liveness::Down);
        assert_eq!(t[1].liveness, Liveness::Alive);
        assert!(t[1].at_nanos >= t[0].at_nanos);
        assert_ne!(t[0].incident, t[1].incident);
    }

    #[test]
    fn accrual_extends_the_leash_for_slow_beacons() {
        // A process beaconing every ~30ms under a 40ms base timeout survives
        // because the accrual term (4 × EWMA ≈ 120ms) dominates.
        let d = FailureDetector::new(fast_config(), Telemetry::disabled());
        let pid = ProcessId::learner(0);
        d.watch(pid);
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(30));
            d.observe(pid);
            assert!(d.sweep().is_empty(), "regular (if slow) beacons stay alive");
        }
        std::thread::sleep(Duration::from_millis(60));
        assert!(d.sweep().is_empty(), "one missed beat is within the accrual leash");
    }

    #[test]
    fn observe_message_filters_heartbeats() {
        let d = FailureDetector::new(fast_config(), Telemetry::disabled());
        let beat = Header::new(
            ProcessId::explorer(1),
            vec![ProcessId::broker(0)],
            MessageKind::Heartbeat,
        );
        let rollout =
            Header::new(ProcessId::explorer(1), vec![ProcessId::learner(0)], MessageKind::Rollout);
        assert!(d.observe_message(&beat));
        assert!(!d.observe_message(&rollout));
        assert_eq!(d.beats(ProcessId::explorer(1)), 1);
    }

    #[test]
    fn watch_many_registers_in_bulk() {
        let d = FailureDetector::new(fast_config(), Telemetry::disabled());
        d.observe(ProcessId::explorer(0)); // pre-existing entry survives the bulk add
        d.watch_many((0..1024).map(ProcessId::explorer));
        assert_eq!(d.beats(ProcessId::explorer(0)), 1, "watch_many is idempotent");
        assert_eq!(d.liveness(ProcessId::explorer(1023)), Some(Liveness::Alive));
        assert!(d.sweep().is_empty(), "bulk registration baselines everyone at now");
    }

    #[test]
    fn forget_suppresses_false_positives_at_teardown() {
        let d = FailureDetector::new(fast_config(), Telemetry::disabled());
        let pid = ProcessId::explorer(0);
        d.watch(pid);
        d.forget(pid);
        std::thread::sleep(Duration::from_millis(80));
        assert!(d.sweep().is_empty(), "a forgotten process is never reported down");
        assert_eq!(d.liveness(pid), None);
    }
}
