//! Fault injection, failure detection, and recovery primitives (`xt-fault`).
//!
//! The paper argues (§4.2) that periodic DNN checkpoints give DRL "sufficient
//! fault tolerance … without significant overheads" — but exercising that
//! claim requires making things fail on purpose and noticing when they do.
//! This crate supplies the three layers the supervised deployment in
//! `xingtian::supervisor` is built from:
//!
//! * **Injection** ([`plan`], [`inject`]) — a seeded, deterministic
//!   [`FaultPlan`]: scheduled link partitions/degradations that
//!   [`netsim::Cluster`] executes on the virtual clock, per-route
//!   drop/duplicate/delay rules the comm router executes through its
//!   [`xingtian_comm::RouteInjector`] hook, and kill switches that take
//!   processes down at a precise point ([`probe`]). The same seed always
//!   produces the same chaos, so chaos runs are reproducible and their
//!   regressions bisectable.
//! * **Detection** ([`detect`]) — a heartbeat-fed accrual failure detector.
//!   Endpoints beacon [`xingtian_message::MessageKind::Heartbeat`] messages to
//!   a monitor endpoint (see `xingtian_comm::HeartbeatConfig`); the detector
//!   tracks per-process inter-arrival times and declares a process down when
//!   its silence exceeds an adaptive timeout, publishing
//!   [`xt_telemetry::EventKind::ProcessDown`]/[`ProcessUp`] events and
//!   counters.
//! * **Recovery support** ([`probe`]) — [`ProcessProbe`] kill switches that
//!   workhorse loops pulse; a triggered probe panics the process exactly the
//!   way an organic bug would, which is what the supervisor catches and
//!   recovers from.
//!
//! The crate deliberately contains *no* respawn logic: supervision needs the
//! deployment wiring (environments, agents, checkpoints) and therefore lives
//! in the core crate. `xt-fault` is mechanism and measurement.
//!
//! [`ProcessUp`]: xt_telemetry::EventKind::ProcessUp
//! [`FaultPlan`]: plan::FaultPlan
//! [`ProcessProbe`]: probe::ProcessProbe

pub mod detect;
pub mod inject;
pub mod plan;
pub mod probe;

pub use detect::{DetectorConfig, FailureDetector, Liveness, LivenessTransition};
pub use inject::PlanInjector;
pub use plan::{FaultPlan, KillSpec, KillTrigger, RouteRule};
pub use probe::ProcessProbe;
