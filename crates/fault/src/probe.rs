//! Kill switches pulsed by workhorse loops.
//!
//! A [`ProcessProbe`] is how a [`FaultPlan`](crate::plan::FaultPlan) reaches
//! inside a process: the explorer loop pulses its probe once per environment
//! step, the learner once per training session, and when the armed trigger
//! matches, the probe panics — from the deployment's point of view this is
//! indistinguishable from an organic crash (the thread unwinds, its endpoint
//! drops and deregisters, heartbeats stop), which is exactly what the
//! supervisor must be able to recover from. Unarmed probes are a relaxed
//! atomic increment, cheap enough to leave in production loops.

use crate::plan::KillTrigger;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use xingtian_message::ProcessId;
use xt_telemetry::TimeSource;

struct ProbeInner {
    target: ProcessId,
    trigger: Option<KillTrigger>,
    time: Option<Box<dyn TimeSource>>,
    pulses: AtomicU64,
    fired: AtomicBool,
}

impl std::fmt::Debug for ProbeInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbeInner")
            .field("target", &self.target)
            .field("trigger", &self.trigger)
            .field("pulses", &self.pulses.load(Ordering::Relaxed))
            .field("fired", &self.fired.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A per-process kill switch. Clones share state, so a supervisor can keep a
/// handle to observe whether (and when) the kill fired.
#[derive(Debug, Clone)]
pub struct ProcessProbe {
    inner: Arc<ProbeInner>,
}

impl ProcessProbe {
    /// A probe that never fires.
    pub fn inert(target: ProcessId) -> Self {
        ProcessProbe {
            inner: Arc::new(ProbeInner {
                target,
                trigger: None,
                time: None,
                pulses: AtomicU64::new(0),
                fired: AtomicBool::new(false),
            }),
        }
    }

    /// A probe armed with `trigger`. [`KillTrigger::AtNanos`] needs `time`
    /// (the deployment clock); without one it never fires.
    pub fn armed(
        target: ProcessId,
        trigger: KillTrigger,
        time: Option<Box<dyn TimeSource>>,
    ) -> Self {
        ProcessProbe {
            inner: Arc::new(ProbeInner {
                target,
                trigger: Some(trigger),
                time,
                pulses: AtomicU64::new(0),
                fired: AtomicBool::new(false),
            }),
        }
    }

    /// The process this probe can kill.
    pub fn target(&self) -> ProcessId {
        self.inner.target
    }

    /// Whether a trigger is armed.
    pub fn is_armed(&self) -> bool {
        self.inner.trigger.is_some()
    }

    /// Whether the kill already fired.
    pub fn fired(&self) -> bool {
        self.inner.fired.load(Ordering::Acquire)
    }

    /// Pulses observed so far.
    pub fn pulses(&self) -> u64 {
        self.inner.pulses.load(Ordering::Relaxed)
    }

    /// Whether the trigger condition holds after one more pulse, *without*
    /// firing (exposed for tests and dry runs). Each call counts a pulse.
    pub fn check(&self) -> bool {
        let pulses = self.inner.pulses.fetch_add(1, Ordering::Relaxed) + 1;
        match self.inner.trigger {
            None => false,
            Some(KillTrigger::AfterSteps(n)) => pulses >= n,
            Some(KillTrigger::AtNanos(t)) => {
                self.inner.time.as_ref().is_some_and(|clock| clock.now_nanos() >= t)
            }
        }
    }

    /// One workhorse-loop tick.
    ///
    /// # Panics
    ///
    /// Panics (once) when the armed trigger condition is met — this *is* the
    /// injected fault.
    pub fn pulse(&self) {
        if self.check() && !self.inner.fired.swap(true, Ordering::AcqRel) {
            panic!(
                "xt-fault: injected kill of {} after {} pulses",
                self.inner.target,
                self.pulses()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_probe_never_fires() {
        let probe = ProcessProbe::inert(ProcessId::explorer(0));
        for _ in 0..1000 {
            probe.pulse();
        }
        assert!(!probe.fired());
        assert_eq!(probe.pulses(), 1000);
    }

    #[test]
    fn after_steps_fires_on_the_exact_pulse() {
        let probe = ProcessProbe::armed(ProcessId::explorer(1), KillTrigger::AfterSteps(5), None);
        for _ in 0..4 {
            probe.pulse();
        }
        assert!(!probe.fired());
        let p = probe.clone();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || p.pulse()))
            .expect_err("fires on pulse 5");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("injected kill"), "unexpected message: {msg}");
        assert!(probe.fired());
    }

    #[test]
    fn fires_at_most_once() {
        let probe = ProcessProbe::armed(ProcessId::learner(0), KillTrigger::AfterSteps(1), None);
        let p = probe.clone();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || p.pulse())).is_err());
        // The condition still holds, but the fault was already injected.
        probe.pulse();
        assert!(probe.fired());
    }

    #[test]
    fn at_nanos_follows_the_clock() {
        #[derive(Debug)]
        struct Fixed(u64);
        impl TimeSource for Fixed {
            fn now_nanos(&self) -> u64 {
                self.0
            }
        }
        let early =
            ProcessProbe::armed(ProcessId::explorer(0), KillTrigger::AtNanos(100), Some(Box::new(Fixed(99))));
        assert!(!early.check());
        let due =
            ProcessProbe::armed(ProcessId::explorer(0), KillTrigger::AtNanos(100), Some(Box::new(Fixed(100))));
        assert!(due.check());
        let clockless = ProcessProbe::armed(ProcessId::explorer(0), KillTrigger::AtNanos(0), None);
        assert!(!clockless.check(), "AtNanos without a clock never fires");
    }
}
