//! The seeded route injector a [`FaultPlan`](crate::plan::FaultPlan)
//! installs on brokers.
//!
//! Determinism is the design constraint: chaos regressions are only
//! bisectable if the same plan makes the same messages fail. Router and
//! uplink threads consult the injector concurrently and in
//! scheduling-dependent order, so stateful RNG (whose output depends on call
//! order) would not be reproducible. Instead every probability roll is a pure
//! hash of `(seed, message id, destination, salt)` mapped to `[0, 1)` — the
//! verdict for a given delivery is a function of the delivery alone.

use crate::plan::RouteRule;
use std::time::{Duration, Instant};
use xingtian_comm::{InjectDecision, RouteInjector};
use xingtian_message::{Header, ProcessId};

/// Executes a [`FaultPlan`](crate::plan::FaultPlan)'s route rules as a
/// broker-side [`RouteInjector`].
///
/// Windowed rules ([`RouteRule::during_ms`]) are measured from this
/// injector's construction, which [`FaultPlan::install`](crate::plan::FaultPlan::install)
/// performs at deployment start — the same origin the link-fault schedule's
/// virtual clock is anchored to.
#[derive(Debug)]
pub struct PlanInjector {
    seed: u64,
    rules: Vec<RouteRule>,
    installed: Instant,
}

impl PlanInjector {
    /// An injector executing `rules` (first match wins), with all rolls
    /// derived from `seed`.
    pub fn new(seed: u64, rules: Vec<RouteRule>) -> Self {
        PlanInjector { seed, rules, installed: Instant::now() }
    }

    /// A pure roll in `[0, 1)` for one (delivery, salt) pair.
    fn roll(&self, msg_id: u64, dst: ProcessId, salt: u64) -> f64 {
        let dst_bits = ((dst.role as u64) << 32) | u64::from(dst.index);
        let mut x = self
            .seed
            .wrapping_add(msg_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(dst_bits.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
        // splitmix64 finalizer: avalanche the structured inputs into
        // uniformly distributed bits.
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        // 53 high-entropy bits → the unit interval, like rand's f64 sampling.
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl RouteInjector for PlanInjector {
    fn decide(&self, header: &Header, dst: ProcessId) -> InjectDecision {
        let elapsed_ms = self.installed.elapsed().as_millis() as u64;
        let Some(rule) = self
            .rules
            .iter()
            .find(|r| r.active_at(elapsed_ms) && r.matches(header.kind, header.src, dst))
        else {
            return InjectDecision::Deliver;
        };
        // Fixed evaluation order (drop, duplicate, delay) with distinct
        // salts: the three outcomes are independent coins, and a delivery's
        // fate never depends on which other deliveries were consulted first.
        if rule.drop_prob > 0.0 && self.roll(header.id, dst, 1) < rule.drop_prob {
            return InjectDecision::Drop;
        }
        if rule.duplicate_prob > 0.0 && self.roll(header.id, dst, 2) < rule.duplicate_prob {
            return InjectDecision::Duplicate(rule.duplicate_copies);
        }
        if rule.delay_prob > 0.0 && self.roll(header.id, dst, 3) < rule.delay_prob {
            return InjectDecision::Delay(Duration::from_millis(rule.delay_ms));
        }
        InjectDecision::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xingtian_message::MessageKind;

    fn header(kind: MessageKind) -> Header {
        Header::new(ProcessId::explorer(0), vec![ProcessId::learner(0)], kind)
    }

    #[test]
    fn decisions_are_reproducible_across_instances() {
        let rules = vec![RouteRule::any().dropping(0.5).delaying(0.5, 10)];
        let a = PlanInjector::new(99, rules.clone());
        let b = PlanInjector::new(99, rules);
        for _ in 0..64 {
            let h = header(MessageKind::Rollout);
            assert_eq!(a.decide(&h, ProcessId::learner(0)), b.decide(&h, ProcessId::learner(0)));
        }
    }

    #[test]
    fn probability_extremes_are_exact() {
        let never = PlanInjector::new(1, vec![RouteRule::any().dropping(0.0)]);
        let always = PlanInjector::new(1, vec![RouteRule::any().dropping(1.0)]);
        for _ in 0..32 {
            let h = header(MessageKind::Rollout);
            assert_eq!(never.decide(&h, ProcessId::learner(0)), InjectDecision::Deliver);
            assert_eq!(always.decide(&h, ProcessId::learner(0)), InjectDecision::Drop);
        }
    }

    #[test]
    fn drop_rate_tracks_the_configured_probability() {
        let injector = PlanInjector::new(7, vec![RouteRule::any().dropping(0.25)]);
        let trials = 4000;
        let dropped = (0..trials)
            .filter(|_| {
                injector.decide(&header(MessageKind::Rollout), ProcessId::learner(0))
                    == InjectDecision::Drop
            })
            .count();
        let rate = dropped as f64 / trials as f64;
        assert!((0.20..0.30).contains(&rate), "drop rate {rate} far from 0.25");
    }

    #[test]
    fn first_matching_rule_wins() {
        let injector = PlanInjector::new(3, vec![
            RouteRule::any().on_kind(MessageKind::Stats).dropping(1.0),
            RouteRule::any().duplicating(1.0, 2),
        ]);
        assert_eq!(
            injector.decide(&header(MessageKind::Stats), ProcessId::controller(0)),
            InjectDecision::Drop
        );
        assert_eq!(
            injector.decide(&header(MessageKind::Rollout), ProcessId::learner(0)),
            InjectDecision::Duplicate(2)
        );
    }

    #[test]
    fn unmatched_kinds_pass_through() {
        let injector = PlanInjector::new(5, vec![RouteRule::any().dropping(1.0)]);
        assert_eq!(
            injector.decide(&header(MessageKind::Heartbeat), ProcessId::broker(0)),
            InjectDecision::Deliver,
            "catch-all rules spare heartbeats"
        );
    }
}
