//! Multi-learner sharded training: the determinism and equivalence contracts.
//!
//! The sync allreduce's core promise is PR 4's bitwise-determinism story
//! extended across shard counts: the same seed and the same round data must
//! produce bit-identical parameters whether 1, 2, or 4 shards split the
//! work. That is proven here at the harness level — `GradExchange` +
//! `ShardedSync` (DQN) driven over real broker endpoints with controlled
//! slot data, in the style of `tests/param_plane.rs` — because an end-to-end
//! deployment cannot hold replay contents constant across shard counts
//! (each shard owns a different explorer slice). What a deployment *can*
//! promise is that all shards of one sync run agree bitwise at exit, and
//! that the opt-in relaxed mode stays in the same reward band as the classic
//! single learner.

use bytes::Bytes;
use netsim::Cluster;
use std::time::Duration;
use xingtian::allreduce::{GradExchange, GRAD_SLOTS};
use xingtian::config::{AllreduceMode, AlgorithmSpec, DeploymentConfig};
use xingtian::Deployment;
use xingtian_algos::api::Algorithm;
use xingtian_algos::payload::RolloutStep;
use xingtian_algos::{DqnAlgorithm, DqnConfig, GradBlob};
use xingtian_comm::{Broker, CommConfig};
use xingtian_message::codec::{Decode, Encode};
use xingtian_message::{MessageKind, ProcessId};

const OBS_DIM: usize = 6;
const N_ACTIONS: usize = 3;
const BATCH: usize = 16;
const ROUNDS: u64 = 12;

/// Deterministic pseudo-random vector (xorshift; no RNG crate state shared
/// with the algorithm under test).
fn seeded(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).max(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// The controlled slot minibatch for (round, slot): identical for every
/// shard count, which is exactly what a deployment cannot guarantee and a
/// determinism proof must.
fn slot_steps(round: u64, slot: usize) -> Vec<RolloutStep> {
    (0..BATCH)
        .map(|row| {
            let tag = round * 1_000 + slot as u64 * 100 + row as u64;
            RolloutStep {
                observation: seeded(OBS_DIM, tag * 2 + 1),
                action: (tag % N_ACTIONS as u64) as u32,
                reward: (tag % 7) as f32 - 3.0,
                done: tag.is_multiple_of(11),
                behavior_logits: Vec::new(),
                value: 0.0,
                next_observation: Some(seeded(OBS_DIM, tag * 2 + 2)),
            }
        })
        .collect()
}

fn shard_algorithm() -> DqnAlgorithm {
    let mut c = DqnConfig::new(OBS_DIM, N_ACTIONS);
    c.batch_size = BATCH;
    c.seed = 23;
    DqnAlgorithm::new(c)
}

/// Runs `ROUNDS` sync-allreduce rounds across `shards` learner replicas over
/// real broker endpoints and returns every replica's final parameters.
fn run_sync_harness(shards: u32) -> Vec<Vec<f32>> {
    let broker = Broker::new(0, Cluster::single(), CommConfig::default());
    let eps: Vec<_> = (0..shards).map(|s| broker.endpoint(ProcessId::learner(s))).collect();
    let mut algs: Vec<DqnAlgorithm> = (0..shards).map(|_| shard_algorithm()).collect();
    let mut exchanges: Vec<GradExchange> =
        (0..shards).map(|s| GradExchange::new(s, shards)).collect();
    let global_rows = BATCH * GRAD_SLOTS;

    for round in 0..ROUNDS {
        // Compute phase: every shard grades its own slots on the controlled
        // data and allgathers the blobs to its peers.
        for s in 0..shards as usize {
            let sync = algs[s].sharded_sync().expect("DQN is ShardedSync");
            for slot in exchanges[s].local_slots() {
                let steps = slot_steps(round, slot);
                let mut grad = Vec::new();
                let loss = sync.grad_on_steps(&steps, global_rows, &mut grad);
                grad.push(loss);
                let peers: Vec<ProcessId> = (0..shards)
                    .filter(|&p| p != s as u32)
                    .map(ProcessId::learner)
                    .collect();
                if !peers.is_empty() {
                    let blob = exchanges[s].blob_for(slot, grad.clone());
                    eps[s].send_to(peers, MessageKind::Gradient, Bytes::from(blob.to_bytes()));
                }
                exchanges[s].offer_local(slot, grad);
            }
        }
        // Collect phase: drain endpoints until the round closes, then fold
        // flat in slot order and take exactly one optimizer step.
        for s in 0..shards as usize {
            while !exchanges[s].ready() {
                let msg = eps[s]
                    .recv_timeout(Duration::from_secs(10))
                    .unwrap_or_else(|| panic!("shard {s} starved in round {round}"));
                assert_eq!(msg.header.kind, MessageKind::Gradient);
                exchanges[s].ingest(GradBlob::from_bytes(&msg.body).expect("decodable blob"));
            }
            let mut folded = exchanges[s].reduce().expect("ready round reduces");
            let loss = folded.pop().expect("trailing loss element");
            algs[s]
                .sharded_sync()
                .expect("DQN is ShardedSync")
                .apply_reduced_grad(&folded, global_rows, loss);
        }
    }
    let params: Vec<Vec<f32>> = algs.iter().map(|a| a.param_blob().params).collect();
    drop(eps);
    broker.shutdown();
    params
}

fn bits(params: &[f32]) -> Vec<u32> {
    params.iter().map(|p| p.to_bits()).collect()
}

/// The tentpole determinism contract: the same seed and the same round data
/// yield bit-identical parameters for 1, 2, and 4 shards, and every shard of
/// one run agrees with every other.
#[test]
fn sync_allreduce_is_bit_identical_across_1_2_4_shards() {
    let mut reference: Option<Vec<u32>> = None;
    for shards in [1u32, 2, 4] {
        let all = run_sync_harness(shards);
        assert_eq!(all.len(), shards as usize);
        for (s, params) in all.iter().enumerate() {
            assert!(!params.is_empty());
            assert_eq!(
                bits(params),
                bits(&all[0]),
                "shard {s} of {shards} diverged from shard 0"
            );
        }
        match &reference {
            None => reference = Some(bits(&all[0])),
            Some(r) => assert_eq!(&bits(&all[0]), r, "{shards} shards diverged from 1 shard"),
        }
    }
}

fn sharded_dqn(shards: usize, mode: AllreduceMode) -> DeploymentConfig {
    let mut c = DqnConfig::new(0, 0); // dimensions filled in at deployment
    c.buffer_capacity = 8_192;
    c.warmup_steps = 200;
    c.train_every_inserts = 8;
    c.batch_size = 32;
    DeploymentConfig::cartpole(AlgorithmSpec::Dqn(c), 4)
        .with_rollout_len(25)
        .with_goal_steps(2_000)
        .with_max_seconds(60.0)
        .with_seed(29)
        .with_learner_shards(shards)
        .with_allreduce(mode)
}

/// End-to-end sync run: both shards train real rollout data and exit with
/// bit-identical parameters — the symmetric shutdown drain means a round
/// either closes on every shard or on none.
#[test]
fn deployment_sync_shards_agree_bitwise_at_exit() {
    let report = Deployment::run(sharded_dqn(2, AllreduceMode::Sync))
        .expect("2-shard sync deployment runs");
    assert!(report.steps_consumed >= 2_000, "consumed {}", report.steps_consumed);
    assert!(report.train_sessions > 0);
    assert_eq!(report.learner_shard_params.len(), 2);
    let [a, b] = &report.learner_shard_params[..] else { unreachable!() };
    assert!(!a.is_empty());
    assert_eq!(bits(a), bits(b), "sync shards must exit bit-identical");
}

fn mean(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty(), "run produced no complete episodes");
    xs.iter().sum::<f32>() / xs.len() as f32
}

fn assert_in_band(tag: &str, sharded: &[f32], baseline: &[f32]) {
    let ratio = mean(sharded) / mean(baseline);
    assert!(
        (0.5..=2.0).contains(&ratio),
        "{tag}: relaxed sharding changed learning: {:.1} vs {:.1}",
        mean(sharded),
        mean(baseline)
    );
}

/// Relaxed mode trades determinism for throughput, not for learning: a
/// 2-shard relaxed DQN run lands in the same reward band as the classic
/// single learner under the same seed.
#[test]
fn relaxed_dqn_matches_single_learner_reward_band() {
    let baseline =
        Deployment::run(sharded_dqn(1, AllreduceMode::Sync)).expect("classic deployment runs");
    let sharded = Deployment::run(sharded_dqn(2, AllreduceMode::Relaxed))
        .expect("relaxed sharded deployment runs");
    assert!(baseline.steps_consumed >= 2_000);
    assert!(sharded.steps_consumed >= 2_000);
    assert!(sharded.train_sessions > 0);
    assert_eq!(sharded.learner_shard_params.len(), 2);
    assert_in_band("dqn", &sharded.episode_returns, &baseline.episode_returns);
}

fn sharded_ppo(shards: usize) -> DeploymentConfig {
    let mut config = DeploymentConfig::cartpole(AlgorithmSpec::ppo(), 4)
        .with_rollout_len(50)
        .with_goal_steps(2_000)
        .with_max_seconds(60.0)
        .with_seed(31)
        .with_learner_shards(shards);
    if shards > 1 {
        config = config.with_allreduce(AllreduceMode::Relaxed);
    }
    config
}

/// On-policy algorithms shard too (relaxed mode only): each PPO shard's
/// batch gate spans just its owned explorers, and the delta gossip keeps the
/// replicas close enough that learning stays in the classic band.
#[test]
fn relaxed_ppo_matches_single_learner_reward_band() {
    let baseline = Deployment::run(sharded_ppo(1)).expect("classic PPO deployment runs");
    let sharded = Deployment::run(sharded_ppo(2)).expect("relaxed sharded PPO runs");
    assert!(baseline.steps_consumed >= 2_000);
    assert!(sharded.steps_consumed >= 2_000, "consumed {}", sharded.steps_consumed);
    assert!(sharded.train_sessions > 0);
    assert_in_band("ppo", &sharded.episode_returns, &baseline.episode_returns);
}
