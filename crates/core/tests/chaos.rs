//! Chaos integration tests: deterministic fault plans driven through
//! supervised deployments.
//!
//! Every test uses a fixed seed and asserts on *eventual* recovery facts —
//! which processes died, which were respawned, that training made progress,
//! and that the brokers' object stores drained to empty — not on exact
//! timings, which vary with scheduling.

use std::time::Duration;
use xingtian::checkpoint::CheckpointConfig;
use xingtian::config::{AlgorithmSpec, DeploymentConfig};
use xingtian::deployment::Deployment;
use xingtian::supervisor::SupervisionConfig;
use xingtian_message::{MessageKind, ProcessId};
use xt_fault::{FaultPlan, KillTrigger, Liveness, LivenessTransition, RouteRule};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xt-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// True if `transitions` contains a Down for `pid` followed (later in the
/// published order) by an Up for the same pid.
fn down_then_up(transitions: &[LivenessTransition], pid: ProcessId) -> bool {
    let down_at = transitions
        .iter()
        .position(|t| t.pid == pid && t.liveness == Liveness::Down);
    match down_at {
        Some(i) => transitions[i + 1..]
            .iter()
            .any(|t| t.pid == pid && t.liveness == Liveness::Alive),
        None => false,
    }
}

/// The capstone scenario: a 2-machine × 8-explorer deployment where one
/// explorer is killed mid-run, the non-learner machine is partitioned away
/// for a window, and rollouts suffer random drops — all from one seeded
/// plan. The run must detect both failures, respawn the victim, and keep
/// training on whatever survives, without leaking a single store object.
#[test]
fn kill_and_partition_two_machine_deployment() {
    const VICTIM: u32 = 1; // machine 0, so the kill and the partition don't overlap
    let config = DeploymentConfig::cartpole(AlgorithmSpec::impala(), 8)
        .spread_across(2)
        .with_rollout_len(25)
        .with_goal_steps(u64::MAX) // duration-bounded: chaos timeline fits in the window
        .with_max_seconds(2.5)
        .with_seed(7);
    let supervision = SupervisionConfig::with_heartbeat_interval_ms(15);
    let plan = FaultPlan::seeded(7)
        .with_kill(ProcessId::explorer(VICTIM), KillTrigger::AfterSteps(400))
        .isolating_machine(1, 2, 600_000_000, 1_200_000_000)
        .with_rule(RouteRule::any().on_kind(MessageKind::Rollout).dropping(0.05));
    // The event ring drops oldest; 2.5 s of rollout/heartbeat/params traffic
    // emits ~1<<16 lifecycle events, so a ring that small can evict the
    // mid-run ProcessDown events asserted below. Size it to hold the run.
    let telemetry = xt_telemetry::Telemetry::with_capacity(1 << 18);

    let (report, recovery) =
        Deployment::run_supervised(config, supervision, plan, telemetry.clone())
            .expect("supervised run completes");

    // Training progressed despite a death, a partition, and rollout drops.
    assert!(
        report.steps_consumed > 500,
        "training should progress under chaos, consumed only {}",
        report.steps_consumed
    );
    // The killed explorer was detected and respawned exactly once.
    assert_eq!(recovery.explorer_respawns, vec![VICTIM]);
    assert!(
        down_then_up(&recovery.transitions, ProcessId::explorer(VICTIM)),
        "victim must be seen down then up: {:?}",
        recovery.transitions
    );
    // At least one partitioned explorer (machine 1 hosts indices 4..8) was
    // declared down by heartbeat silence and recovered when the link healed —
    // without ever being respawned (it was alive the whole time).
    assert!(
        (4..8).any(|i| down_then_up(&recovery.transitions, ProcessId::explorer(i))),
        "a partitioned explorer must be seen down then up: {:?}",
        recovery.transitions
    );
    for i in 4..8 {
        assert!(
            !recovery.explorer_respawns.contains(&i),
            "partitioned-but-alive explorer {i} must not be respawned"
        );
    }
    // Everyone recovered by the end; nothing left in any store.
    assert!(recovery.down_at_exit.is_empty(), "down at exit: {:?}", recovery.down_at_exit);
    assert_eq!(recovery.leaked_objects, 0, "object store leak");
    // The detector published its events into telemetry too.
    assert!(telemetry.counter("fault.process_down").get() >= 2);
    assert!(telemetry.counter("fault.process_up").get() >= 2);
    let events = telemetry.events();
    assert!(events.iter().any(|e| e.kind == xt_telemetry::EventKind::ProcessDown));
    assert!(events.iter().any(|e| e.kind == xt_telemetry::EventKind::ProcessUp));
}

/// Learner recovery: a learner killed after its fifth training session is
/// detected, restored from the newest checkpoint, and finishes the run.
#[test]
fn learner_restored_from_checkpoint_after_kill() {
    let dir = tmpdir("learner-restore");
    let config = DeploymentConfig::cartpole(AlgorithmSpec::impala(), 4)
        .with_rollout_len(25)
        .with_goal_steps(4_000)
        .with_max_seconds(60.0)
        .with_seed(11)
        .with_checkpoint(CheckpointConfig::new(&dir, 1));
    let supervision = SupervisionConfig::with_heartbeat_interval_ms(15);
    let plan = FaultPlan::seeded(11)
        .with_kill(ProcessId::learner(0), KillTrigger::AfterSteps(5));
    let telemetry = xt_telemetry::Telemetry::with_capacity(1 << 14);

    let (report, recovery) =
        Deployment::run_supervised(config, supervision, plan, telemetry)
            .expect("supervised run completes");

    assert_eq!(recovery.learner_restores, 1);
    // Checkpointing ran every session and the kill fired after session 5, so
    // the restore had a checkpoint to load.
    let restored = recovery.restored_param_version.expect("restored from a checkpoint");
    assert!(restored >= 1, "restored version {restored}");
    assert!(
        down_then_up(&recovery.transitions, ProcessId::learner(0)),
        "learner must be seen down then up: {:?}",
        recovery.transitions
    );
    // The second incarnation trained on to the goal (the controller sums
    // steps across incarnations; the report counts joined incarnations).
    assert!(report.train_sessions >= 1);
    assert!(report.steps_consumed > 0);
    assert!(recovery.down_at_exit.is_empty(), "down at exit: {:?}", recovery.down_at_exit);
    assert_eq!(recovery.leaked_objects, 0, "object store leak");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A supervised run with an empty fault plan behaves exactly like a plain
/// run: no respawns, no liveness transitions, no leaks.
#[test]
fn supervised_run_without_faults_is_quiet() {
    let config = DeploymentConfig::cartpole(AlgorithmSpec::impala(), 2)
        .with_rollout_len(25)
        .with_goal_steps(1_500)
        .with_max_seconds(30.0)
        .with_seed(3);
    let (report, recovery) = Deployment::run_supervised(
        config,
        SupervisionConfig::default(),
        FaultPlan::seeded(3),
        xt_telemetry::Telemetry::with_capacity(1 << 12),
    )
    .expect("supervised run completes");

    assert!(report.steps_consumed >= 1_500);
    assert!(recovery.explorer_respawns.is_empty());
    assert_eq!(recovery.learner_restores, 0);
    assert!(recovery.transitions.is_empty(), "transitions: {:?}", recovery.transitions);
    assert!(recovery.down_at_exit.is_empty());
    assert_eq!(recovery.leaked_objects, 0);
}

/// Store-resident replay under chaos: a DQN deployment whose replay lives in
/// the communication layer, with one explorer killed mid-run and the learner
/// killed after its fifth training session. The plane must survive the
/// learner restore (experience outlives the crashed incarnation), and at exit
/// the audit must find zero leaked store objects AND zero dangling replay
/// arena slots — a crash mid-ingest may never leave a torn transition behind.
#[test]
fn store_resident_replay_survives_kills_without_leaks() {
    const VICTIM: u32 = 1;
    let dir = tmpdir("replay-chaos");
    let mut dqn = xingtian_algos::DqnConfig::new(0, 0);
    dqn.buffer_capacity = 8_192;
    dqn.warmup_steps = 400;
    dqn.train_every_inserts = 8;
    dqn.batch_size = 32;
    let config = DeploymentConfig::cartpole(AlgorithmSpec::Dqn(dqn), 4)
        .with_rollout_len(25)
        .with_goal_steps(1_500)
        .with_max_seconds(60.0)
        .with_seed(13)
        .with_checkpoint(CheckpointConfig::new(&dir, 1))
        .with_store_resident_replay();
    let supervision = SupervisionConfig::with_heartbeat_interval_ms(15);
    let plan = FaultPlan::seeded(13)
        .with_kill(ProcessId::explorer(VICTIM), KillTrigger::AfterSteps(400))
        .with_kill(ProcessId::learner(0), KillTrigger::AfterSteps(5));
    let telemetry = xt_telemetry::Telemetry::with_capacity(1 << 16);

    let (report, recovery) =
        Deployment::run_supervised(config, supervision, plan, telemetry)
            .expect("supervised run completes");

    // Both victims were detected and recovered.
    assert_eq!(recovery.explorer_respawns, vec![VICTIM]);
    assert!(down_then_up(&recovery.transitions, ProcessId::explorer(VICTIM)));
    assert_eq!(recovery.learner_restores, 1);
    assert!(down_then_up(&recovery.transitions, ProcessId::learner(0)));
    // The restored learner trained on experience that survived its
    // predecessor: the run reached its goal.
    assert!(report.steps_consumed >= 1_500, "consumed {}", report.steps_consumed);
    // The replay plane stayed coherent through both crashes.
    let replay = report.replay.expect("store-resident run reports replay");
    assert!(replay.batches_ingested > 0);
    assert!(replay.resident > 0, "plane emptied");
    assert_eq!(replay.dangling_slots, 0, "torn ingest left dangling slots");
    assert_eq!(recovery.dangling_replay_slots, 0, "dangling replay arena slots");
    // Nothing leaked anywhere: stores drained, no process still down.
    assert_eq!(recovery.leaked_objects, 0, "object store leak");
    assert!(recovery.down_at_exit.is_empty(), "down at exit: {:?}", recovery.down_at_exit);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shared 2-shard DQN chaos config: 4 explorers, shard 0 owns {0,1} and
/// shard 1 owns {2,3} via the assignment table.
fn sharded_dqn_chaos(mode: xingtian::config::AllreduceMode, dir: &std::path::Path) -> DeploymentConfig {
    let mut dqn = xingtian_algos::DqnConfig::new(0, 0);
    dqn.buffer_capacity = 8_192;
    dqn.warmup_steps = 200;
    dqn.train_every_inserts = 8;
    dqn.batch_size = 32;
    DeploymentConfig::cartpole(AlgorithmSpec::Dqn(dqn), 4)
        .with_rollout_len(25)
        .with_goal_steps(2_000)
        .with_max_seconds(60.0)
        .with_seed(19)
        .with_checkpoint(CheckpointConfig::new(dir, 1))
        .with_learner_shards(2)
        .with_allreduce(mode)
}

/// Kill-one-learner-shard, sync ring: shard 1 dies after its third training
/// round, the supervisor restores it from its own checkpoint subdirectory,
/// and it rejoins the allreduce ring — announced by its startup hello, the
/// surviving shard answers with a parameter snapshot plus a retransmission
/// of its open round's slot blobs, and lockstep resumes. (Recovery restores
/// parameters, not optimizer state, so post-crash runs do not claim the
/// fault-free bitwise guarantee — `multi_learner.rs` covers that one.)
#[test]
fn killed_learner_shard_rejoins_sync_allreduce_ring() {
    let dir = tmpdir("shard-sync-rejoin");
    let config = sharded_dqn_chaos(xingtian::config::AllreduceMode::Sync, &dir);
    let supervision = SupervisionConfig::with_heartbeat_interval_ms(15);
    let plan = FaultPlan::seeded(19)
        .with_kill(ProcessId::learner(1), KillTrigger::AfterSteps(3));
    let telemetry = xt_telemetry::Telemetry::with_capacity(1 << 16);

    let (report, recovery) =
        Deployment::run_supervised(config, supervision, plan, telemetry.clone())
            .expect("supervised run completes");

    // The ring resumed after the restore: the controller's step sum reached
    // the goal. (The report's own sum runs slightly short of the goal: the
    // killed incarnation's share died with its thread.)
    assert!(report.steps_consumed >= 1_500, "consumed {}", report.steps_consumed);
    // Exactly shard 1 was restored, from a real checkpoint.
    assert_eq!(recovery.learner_restores, 1);
    assert_eq!(recovery.learner_shard_restores, vec![0, 1]);
    assert!(recovery.restored_param_version.expect("restored from checkpoint") >= 1);
    assert!(
        down_then_up(&recovery.transitions, ProcessId::learner(1)),
        "shard 1 must be seen down then up: {:?}",
        recovery.transitions
    );
    // The liveness transitions are role-tagged: the learner-shard death is
    // visible without scanning explorer noise.
    assert!(!recovery.learner_transitions().is_empty());
    assert!(telemetry.counter("fault.process_down.learner").get() >= 1);
    assert!(telemetry.counter("fault.process_up.learner").get() >= 1);
    // The restored shard rejoined the *ring*, not just the deployment: the
    // kill fired on its third closed round, so any count beyond that proves
    // rounds closed in lockstep again after the restore (a round cannot
    // close without every shard's slots).
    let rounds0 = telemetry.counter("learn.shard0.rounds").get();
    let rounds1 = telemetry.counter("learn.shard1.rounds").get();
    assert!(rounds1 > 3, "restored shard closed no rounds after rejoining: {rounds1}");
    assert!(rounds0 > 3, "surviving shard never resumed: {rounds0}");
    assert_eq!(report.learner_shard_params.len(), 2);
    // Nothing leaked, nothing dangling, nobody down.
    assert_eq!(recovery.leaked_objects, 0, "object store leak");
    assert_eq!(recovery.dangling_replay_slots, 0, "dangling replay arena slots");
    assert!(recovery.down_at_exit.is_empty(), "down at exit: {:?}", recovery.down_at_exit);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill-one-learner-shard, relaxed mode: the surviving shard never stalls —
/// its owned explorers keep feeding it and it keeps training right through
/// the outage — and the restored shard resumes delta gossip from its
/// checkpointed version.
#[test]
fn killed_learner_shard_relaxed_peers_keep_training() {
    let dir = tmpdir("shard-relaxed-kill");
    // Longer goal than the sync variant: a relaxed survivor trains right
    // through the outage, and a 2k-step run can reach the goal before the
    // detector even confirms the death — the restore needs runway.
    let config =
        sharded_dqn_chaos(xingtian::config::AllreduceMode::Relaxed, &dir).with_goal_steps(8_000);
    let supervision = SupervisionConfig::with_heartbeat_interval_ms(15);
    let plan = FaultPlan::seeded(23)
        .with_kill(ProcessId::learner(1), KillTrigger::AfterSteps(3));
    let telemetry = xt_telemetry::Telemetry::with_capacity(1 << 16);

    let (report, recovery) =
        Deployment::run_supervised(config, supervision, plan, telemetry.clone())
            .expect("supervised run completes");

    assert!(report.steps_consumed >= 1_500, "consumed {}", report.steps_consumed);
    assert!(report.train_sessions > 3, "peers kept training through the outage");
    assert_eq!(recovery.learner_restores, 1);
    assert_eq!(recovery.learner_shard_restores, vec![0, 1]);
    assert!(down_then_up(&recovery.transitions, ProcessId::learner(1)));
    assert!(telemetry.counter("fault.process_down.learner").get() >= 1);
    // No explorer was ever respawned: the assignment table kept routing
    // their rollouts to the (eventually restored) shard endpoint.
    assert!(recovery.explorer_respawns.is_empty());
    assert_eq!(recovery.leaked_objects, 0, "object store leak");
    assert_eq!(recovery.dangling_replay_slots, 0, "dangling replay arena slots");
    assert!(recovery.down_at_exit.is_empty(), "down at exit: {:?}", recovery.down_at_exit);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CI `chaos` smoke stage: a seeded kill-one-explorer run on the virtual
/// clock (cross-machine transfers advance simulated time instead of
/// sleeping), bounded in wall time by the controller deadline.
#[test]
fn chaos_smoke_kill_one_explorer_virtual_clock() {
    const VICTIM: u32 = 2;
    let mut config = DeploymentConfig::cartpole(AlgorithmSpec::impala(), 4)
        .spread_across(2)
        .with_rollout_len(25)
        .with_goal_steps(5_000)
        .with_max_seconds(30.0)
        .with_seed(42);
    config.cluster.virtual_time = true;
    let supervision = SupervisionConfig::with_heartbeat_interval_ms(10);
    let plan = FaultPlan::seeded(42)
        .with_kill(ProcessId::explorer(VICTIM), KillTrigger::AfterSteps(500));

    let start = std::time::Instant::now();
    let (report, recovery) = Deployment::run_supervised(
        config,
        supervision,
        plan,
        xt_telemetry::Telemetry::with_capacity(1 << 14),
    )
    .expect("supervised run completes");

    assert!(report.steps_consumed >= 5_000, "goal reached: {}", report.steps_consumed);
    assert_eq!(recovery.explorer_respawns, vec![VICTIM]);
    assert!(down_then_up(&recovery.transitions, ProcessId::explorer(VICTIM)));
    assert_eq!(recovery.leaked_objects, 0, "object store leak");
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "smoke run must stay well inside its wall-time bound"
    );
}
