//! Unit-level tests of the explorer and learner process loops, driven with
//! scripted agents/algorithms over a real channel.

use bytes::Bytes;
use netsim::Cluster;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xingtian::controller::ControllerProcess;
use xingtian::explorer::{ExplorerProcess, RolloutRoute, MAX_INFLIGHT_BATCHES};
use xingtian::learner::LearnerProcess;
use xingtian::messages::ControlCommand;
use xingtian_algos::api::{ActionSelection, Agent, Algorithm, SyncMode, TrainReport};
use xingtian_algos::payload::{ParamBlob, RolloutBatch};
use xingtian_comm::{Broker, CommConfig};
use xingtian_message::codec::Encode;
use xingtian_message::{MessageKind, ProcessId};

/// An agent that always picks action 0 and tracks applied parameter versions.
struct ScriptedAgent {
    version: u64,
}

impl Agent for ScriptedAgent {
    fn act(&mut self, _observation: &[f32]) -> ActionSelection {
        ActionSelection { action: 0, logits: vec![0.0, 0.0], value: 0.0 }
    }

    fn apply_params(&mut self, blob: &ParamBlob) {
        if blob.version > self.version {
            self.version = blob.version;
        }
    }

    fn param_version(&self) -> u64 {
        self.version
    }
}

/// An algorithm that counts consumed batches and replies to the source.
struct CountingAlgorithm {
    queued: Vec<RolloutBatch>,
    version: u64,
    consumed: Arc<AtomicUsize>,
    sync: SyncMode,
}

impl Algorithm for CountingAlgorithm {
    fn on_rollout(&mut self, batch: RolloutBatch) {
        self.queued.push(batch);
    }

    fn try_train(&mut self) -> Option<TrainReport> {
        let batch = self.queued.pop()?;
        self.version += 1;
        self.consumed.fetch_add(batch.len(), Ordering::Relaxed);
        Some(TrainReport {
            steps_consumed: batch.len(),
            loss: 0.0,
            version: self.version,
            notify: vec![batch.explorer],
        })
    }

    fn param_blob(&self) -> ParamBlob {
        ParamBlob { version: self.version, params: vec![0.5; 4] }
    }

    fn load_params(&mut self, _params: &[f32]) {}

    fn version(&self) -> u64 {
        self.version
    }

    fn sync_mode(&self) -> SyncMode {
        self.sync
    }

    fn name(&self) -> &str {
        "counting"
    }
}

#[test]
fn explorer_learner_pair_round_trips_until_shutdown() {
    let broker = Broker::new(0, Cluster::single(), CommConfig::default());
    let learner_ep = broker.endpoint(ProcessId::learner(0));
    let explorer_ep = broker.endpoint(ProcessId::explorer(0));
    let controller_ep = broker.endpoint(ProcessId::controller(0));
    let consumed = Arc::new(AtomicUsize::new(0));

    let learner = LearnerProcess {
        endpoint: learner_ep,
        algorithm: Box::new(CountingAlgorithm {
            queued: Vec::new(),
            version: 0,
            consumed: Arc::clone(&consumed),
            sync: SyncMode::OffPolicy,
        }),
        checkpointer: None,
        probe: None,
        param_compression: xingtian_comm::ParamCompression::default(),
    };
    let learner_thread = std::thread::spawn(move || learner.run());

    let explorer = ExplorerProcess {
        index: 0,
        endpoint: explorer_ep,
        env: Box::new(gymlite::CartPole::new(0)),
        agent: Box::new(ScriptedAgent { version: 0 }),
        rollout_len: 25,
        route: RolloutRoute::Fixed(ProcessId::learner(0)),
        sync: SyncMode::OffPolicy,
        probe: None,
    };
    let explorer_thread = std::thread::spawn(move || explorer.run());

    // The controller stops the run once the learner reports 500 steps.
    let outcome = ControllerProcess {
        endpoint: controller_ep,
        goal_steps: 500,
        max_duration: Duration::from_secs(30),
        num_explorers: 1,
        num_learner_shards: 1,
    }
    .run();
    assert!(outcome.goal_reached, "goal should be reached well before the deadline");

    let learner_outcome = learner_thread.join().unwrap();
    let explorer_outcome = explorer_thread.join().unwrap();
    assert!(learner_outcome.steps_consumed >= 500);
    assert_eq!(learner_outcome.steps_consumed as usize, consumed.load(Ordering::Relaxed));
    assert!(explorer_outcome.batches_sent >= 20, "25-step batches toward a 500-step goal");
    assert!(explorer_outcome.tracker.total_steps() >= 500);
    broker.shutdown();
}

#[test]
fn on_policy_explorer_waits_for_fresh_parameters() {
    let broker = Broker::new(0, Cluster::single(), CommConfig::default());
    let learner_ep = broker.endpoint(ProcessId::learner(0));
    let explorer_ep = broker.endpoint(ProcessId::explorer(0));

    let explorer = ExplorerProcess {
        index: 0,
        endpoint: explorer_ep,
        env: Box::new(gymlite::CartPole::new(1)),
        agent: Box::new(ScriptedAgent { version: 0 }),
        rollout_len: 10,
        route: RolloutRoute::Fixed(ProcessId::learner(0)),
        sync: SyncMode::OnPolicy,
        probe: None,
    };
    let explorer_thread = std::thread::spawn(move || explorer.run());

    // Exactly one batch arrives, then the explorer blocks on parameters.
    let first = learner_ep.recv_timeout(Duration::from_secs(10)).expect("first batch");
    assert_eq!(first.header.kind, MessageKind::Rollout);
    assert!(
        learner_ep.recv_timeout(Duration::from_millis(300)).is_none(),
        "on-policy gate must hold without new parameters"
    );

    // Fresh parameters release the gate for exactly one more batch.
    let blob = ParamBlob { version: 1, params: vec![0.0; 4] };
    learner_ep.send_to(vec![ProcessId::explorer(0)], MessageKind::Parameters, Bytes::from(blob.to_bytes()));
    assert!(
        learner_ep.recv_timeout(Duration::from_secs(10)).is_some(),
        "gate released by the broadcast"
    );

    // Shutdown ends the explorer even while it is gated.
    learner_ep.send_to(
        vec![ProcessId::explorer(0)],
        MessageKind::Control,
        Bytes::from(ControlCommand::Shutdown.to_bytes()),
    );
    let outcome = explorer_thread.join().unwrap();
    assert!(outcome.batches_sent >= 2);
    drop(learner_ep);
    broker.shutdown();
}

#[test]
fn explorer_flow_control_caps_the_send_backlog() {
    // No learner consumes, so the store fills and the backlog must plateau at
    // the flow-control limit instead of growing unboundedly.
    let broker = Broker::new(0, Cluster::single(), CommConfig::uncompressed());
    // A learner endpoint exists (so routing works) but never receives.
    let learner_ep = broker.endpoint(ProcessId::learner(0));
    let explorer_ep = broker.endpoint(ProcessId::explorer(0));

    // Atari observations make batches big enough to fill the 128 MiB store.
    let env = gymlite::SynthAtari::with_config(
        gymlite::AtariGame::Qbert.config().with_obs_dim(84 * 84).with_step_latency_us(0),
        0,
    );
    let explorer = ExplorerProcess {
        index: 0,
        endpoint: explorer_ep,
        env: Box::new(env),
        agent: Box::new(ScriptedAgent { version: 0 }),
        rollout_len: 500,
        route: RolloutRoute::Fixed(ProcessId::learner(0)),
        sync: SyncMode::OffPolicy,
        probe: None,
    };
    let explorer_thread = std::thread::spawn(move || explorer.run());

    // Give it time to run far ahead if flow control were broken (an
    // unbounded pipeline generates roughly 10 batches/s here).
    std::thread::sleep(Duration::from_secs(8));
    learner_ep.send_to(
        vec![ProcessId::explorer(0)],
        MessageKind::Control,
        Bytes::from(ControlCommand::Shutdown.to_bytes()),
    );
    // "Kill" the wedged learner: closing its endpoint drains the credits it
    // was sitting on, releasing any sender blocked on the full store so the
    // explorer can shut down cleanly.
    drop(learner_ep);
    let outcome = explorer_thread.join().unwrap();
    // The store admits ~9 × 14 MiB bodies, the learner's bounded receive
    // buffer 8 more, the send-side gate 4; allow slack for in-hand messages.
    let ceiling = (128 / 14) + 8 + MAX_INFLIGHT_BATCHES as u64 + 4;
    assert!(
        outcome.batches_sent <= ceiling,
        "explorer ran ahead: {} batches (ceiling {ceiling})",
        outcome.batches_sent
    );
    broker.shutdown();
}
