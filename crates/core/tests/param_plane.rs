//! Differential tests of the parameter plane over real channel endpoints:
//! the delta chain must be bit-lossless, the quantized chain error-bounded
//! (thanks to error feedback), the ack/nack protocol must self-heal, and a
//! seeded deployment under quantized broadcasts must learn like the
//! full-precision baseline.

use bytes::Bytes;
use netsim::Cluster;
use std::time::Duration;
use xingtian::config::{AlgorithmSpec, DeploymentConfig};
use xingtian::messages::ParamAck;
use xingtian::{Deployment, IngestOutcome, ParamBroadcaster, ParamReceiver};
use xingtian_algos::payload::ParamBlob;
use xingtian_algos::{DqnConfig, GradBlob, LazyGradConfig, LazyGradGate};
use xingtian_comm::{Broker, CommConfig, Endpoint, ParamCompression};
use xingtian_message::codec::{Decode, Encode};
use xingtian_message::{CompressionKind, Header, Message, MessageKind, ProcessId};

const N_PARAMS: usize = 8192;

/// Deterministic pseudo-random parameter vector (xorshift; no RNG crate
/// state shared with the algorithms under test).
fn seeded_params(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).max(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// SGD-like drift: small structured update on top of the previous weights.
fn drift(params: &[f32], round: u64, magnitude: f32) -> Vec<f32> {
    let noise = seeded_params(params.len(), round + 101);
    params.iter().zip(&noise).map(|(p, n)| p + n * magnitude).collect()
}

/// Sends one encoded broadcast from `learner` to `explorers` and returns the
/// per-receiver ingest outcomes; each applied frame is acked back.
fn broadcast_round(
    learner: &Endpoint,
    tx: &mut ParamBroadcaster,
    blob: &ParamBlob,
    explorers: &mut [(Endpoint, ParamReceiver)],
) -> CompressionKind {
    let dst: Vec<u32> = (0..explorers.len() as u32).collect();
    let enc = tx.encode(blob, &dst);
    let kind = enc.compression;
    let pids: Vec<ProcessId> = dst.iter().map(|&e| ProcessId::explorer(e)).collect();
    let mut header = Header::new(learner.pid(), pids, MessageKind::Parameters)
        .with_param_version(enc.version);
    header.compression = enc.compression;
    assert!(learner.send(Message::new(header, enc.body)));

    for (i, (ep, rx)) in explorers.iter_mut().enumerate() {
        let msg = ep
            .recv_timeout(Duration::from_secs(10))
            .unwrap_or_else(|| panic!("explorer {i} missed v{}", blob.version));
        assert_eq!(msg.header.kind, MessageKind::Parameters);
        let ack = match rx.ingest(msg.header.compression, &msg.body) {
            IngestOutcome::Applied(v) => ParamAck { explorer: i as u32, version: v, applied: true },
            IngestOutcome::Stale => continue,
            IngestOutcome::Rejected { held } => {
                ParamAck { explorer: i as u32, version: held, applied: false }
            }
        };
        ep.send_to(vec![learner.pid()], MessageKind::ParamAck, Bytes::from(ack.to_bytes()));
    }
    // Fold whatever acks have arrived back into the broadcaster (the real
    // learner does this opportunistically between training sessions too).
    while let Some(msg) = learner.recv_timeout(Duration::from_millis(50)) {
        if msg.header.kind == MessageKind::ParamAck {
            tx.on_ack(&ParamAck::from_bytes(&msg.body).expect("well-formed ack"));
        }
    }
    kind
}

#[test]
fn delta_chain_is_bit_lossless_over_real_endpoints() {
    let broker = Broker::new(0, Cluster::single(), CommConfig::default());
    let learner = broker.endpoint(ProcessId::learner(0));
    let mut explorers: Vec<(Endpoint, ParamReceiver)> = (0..2)
        .map(|e| (broker.endpoint(ProcessId::explorer(e)), ParamReceiver::new()))
        .collect();
    let mut tx = ParamBroadcaster::new(ParamCompression::DeltaF32, learner.telemetry());

    let mut params = seeded_params(N_PARAMS, 7);
    let mut deltas = 0u32;
    let rounds = 40u64;
    for version in 1..=rounds {
        params = drift(&params, version, 1e-4);
        let blob = ParamBlob { version, params: params.clone() };
        let kind = broadcast_round(&learner, &mut tx, &blob, &mut explorers);
        if kind == CompressionKind::DeltaF32 {
            deltas += 1;
        }
        // Bit-losslessness is the contract that makes DeltaF32 safe for
        // on-policy algorithms: every receiver holds the learner's exact
        // weights after every applied frame.
        for (i, (_, rx)) in explorers.iter().enumerate() {
            assert_eq!(rx.version(), version);
            for (j, (got, want)) in rx.blob().params.iter().zip(&params).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "explorer {i} param {j} diverged at v{version}"
                );
            }
        }
    }
    assert!(deltas >= rounds as u32 - 2, "chain stayed on deltas: {deltas}/{rounds}");
    assert_eq!(tx.acked(0), Some(rounds), "acks flowed back");
    broker.shutdown();
}

#[test]
fn quantized_chain_is_error_bounded_over_real_endpoints() {
    let broker = Broker::new(0, Cluster::single(), CommConfig::default());
    let learner = broker.endpoint(ProcessId::learner(0));
    let mut explorers: Vec<(Endpoint, ParamReceiver)> =
        vec![(broker.endpoint(ProcessId::explorer(0)), ParamReceiver::new())];
    let mut tx = ParamBroadcaster::new(ParamCompression::DeltaQuantizedI8, learner.telemetry());

    let mut params = seeded_params(N_PARAMS, 11);
    let mut max_err = 0.0f32;
    for version in 1..=60u64 {
        params = drift(&params, version, 1e-3);
        let blob = ParamBlob { version, params: params.clone() };
        broadcast_round(&learner, &mut tx, &blob, &mut explorers);
        let rx = &explorers[0].1;
        assert_eq!(rx.version(), version);
        max_err = rx
            .blob()
            .params
            .iter()
            .zip(&params)
            .map(|(r, p)| (r - p).abs())
            .fold(max_err, f32::max);
    }
    // Error feedback keeps the receiver within a couple of quantization
    // steps of the truth instead of accumulating bias over 60 rounds.
    assert!(max_err < 5e-4, "quantized reconstruction drifted: {max_err}");
    broker.shutdown();
}

#[test]
fn respawned_receiver_nacks_and_the_chain_self_heals() {
    let broker = Broker::new(0, Cluster::single(), CommConfig::default());
    let learner = broker.endpoint(ProcessId::learner(0));
    let mut explorers: Vec<(Endpoint, ParamReceiver)> =
        vec![(broker.endpoint(ProcessId::explorer(0)), ParamReceiver::new())];
    let mut tx = ParamBroadcaster::new(ParamCompression::DeltaF32, learner.telemetry());

    let mut params = seeded_params(2048, 13);
    for version in 1..=3u64 {
        params = drift(&params, version, 1e-3);
        let blob = ParamBlob { version, params: params.clone() };
        broadcast_round(&learner, &mut tx, &blob, &mut explorers);
    }
    // "Respawn" the explorer: fresh receiver, no base. The next delta frame
    // must be rejected, nacked, and the round after must arrive full.
    explorers[0].1 = ParamReceiver::new();
    params = drift(&params, 4, 1e-3);
    let kind = broadcast_round(
        &learner,
        &mut tx,
        &ParamBlob { version: 4, params: params.clone() },
        &mut explorers,
    );
    assert_eq!(kind, CompressionKind::DeltaF32, "sender still believed the base");
    assert_eq!(explorers[0].1.version(), 0, "delta without a base was rejected");

    params = drift(&params, 5, 1e-3);
    let kind = broadcast_round(
        &learner,
        &mut tx,
        &ParamBlob { version: 5, params: params.clone() },
        &mut explorers,
    );
    assert_eq!(kind, CompressionKind::None, "nack healed the chain with a full send");
    assert_eq!(explorers[0].1.version(), 5);
    for (got, want) in explorers[0].1.blob().params.iter().zip(&params) {
        assert_eq!(got.to_bits(), want.to_bits());
    }
    broker.shutdown();
}

#[test]
fn lazy_gradient_uploads_ride_the_gradient_kind() {
    let broker = Broker::new(0, Cluster::single(), CommConfig::default());
    let learner = broker.endpoint(ProcessId::learner(0));
    let worker = broker.endpoint(ProcessId::explorer(0));
    let mut gate = LazyGradGate::with_telemetry(LazyGradConfig::default(), worker.telemetry());

    // The worker runs SGD on ½‖θ‖² and offers every gradient; only accepted
    // rounds travel. The learner must see a decodable GradBlob per upload.
    let mut theta = seeded_params(256, 17);
    let mut sent = 0u64;
    for round in 1..=120u64 {
        gate.observe_params(&theta);
        let grad = theta.clone();
        if let Some(up) = gate.offer(&grad) {
            let blob = GradBlob { worker: 0, version: round, grad: up };
            worker.send_to(
                vec![learner.pid()],
                MessageKind::Gradient,
                Bytes::from(blob.to_bytes()),
            );
            sent += 1;
        }
        for t in &mut theta {
            *t *= 0.9;
        }
    }
    let (uploads, skips) = gate.counts();
    assert_eq!(uploads, sent);
    assert!(skips > 0, "LAPG skipped nothing on a smooth quadratic");
    for _ in 0..sent {
        let msg = learner.recv_timeout(Duration::from_secs(10)).expect("upload arrived");
        assert_eq!(msg.header.kind, MessageKind::Gradient);
        let blob = GradBlob::from_bytes(&msg.body).expect("decodable gradient");
        assert_eq!(blob.worker, 0);
        assert!(!blob.grad.is_empty());
    }
    broker.shutdown();
}

/// Shared small-DQN deployment config; only the parameter compression varies.
fn dqn_deployment(mode: ParamCompression) -> DeploymentConfig {
    let mut c = DqnConfig::new(0, 0); // dimensions filled in at deployment
    c.buffer_capacity = 8_192;
    c.warmup_steps = 400;
    c.train_every_inserts = 8;
    c.batch_size = 32;
    DeploymentConfig::cartpole(AlgorithmSpec::Dqn(c), 2)
        .with_rollout_len(50)
        .with_goal_steps(2_000)
        .with_max_seconds(60.0)
        .with_seed(3)
        .with_param_compression(mode)
}

fn mean(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty(), "run produced no complete episodes");
    xs.iter().sum::<f32>() / xs.len() as f32
}

#[test]
fn seeded_dqn_learns_equally_under_quantized_broadcasts() {
    let baseline = Deployment::run(dqn_deployment(ParamCompression::FullF32))
        .expect("baseline deployment runs");
    let quantized = Deployment::run(dqn_deployment(ParamCompression::DeltaQuantizedI8))
        .expect("quantized deployment runs");
    assert!(baseline.steps_consumed >= 2_000);
    assert!(quantized.steps_consumed >= 2_000);
    assert!(quantized.train_sessions > 0);
    // Quantization with error feedback must not change what the run learns:
    // the mean episode return stays in the same band as full precision (the
    // runs are seeded but scheduling is asynchronous, so "equal" is a band,
    // not a bit-match).
    let base_mean = mean(&baseline.episode_returns);
    let quant_mean = mean(&quantized.episode_returns);
    let ratio = quant_mean / base_mean;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "quantized broadcasts changed learning: {quant_mean:.1} vs {base_mean:.1}"
    );
}

#[test]
fn seeded_ppo_learns_under_delta_broadcasts() {
    let config = DeploymentConfig::cartpole(AlgorithmSpec::ppo(), 2)
        .with_rollout_len(50)
        .with_goal_steps(2_000)
        .with_max_seconds(60.0)
        .with_seed(5)
        .with_param_compression(ParamCompression::DeltaF32);
    let report = Deployment::run(config).expect("delta PPO deployment runs");
    assert!(report.steps_consumed >= 2_000, "goal not reached: {}", report.steps_consumed);
    assert!(report.train_sessions > 0);
    // DeltaF32 is bit-lossless, so the on-policy gate behaves exactly as
    // with full blobs: episodes complete and training proceeds.
    assert!(!report.episode_returns.is_empty());
}
