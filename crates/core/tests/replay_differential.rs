//! Differential proof that moving DQN's replay into the communication layer
//! changes *where* experience lives but not *what* gets trained: an
//! in-learner DQN and a store-resident DQN fed the identical seeded rollout
//! stream must produce bit-identical losses, versions, and final parameters.
//!
//! This is the guarantee that makes the replay plane a pure communication
//! optimization — the sharded arenas plus ring/sum-tree indices are a
//! re-indexing of the legacy buffers, so every RNG draw lands on the same
//! transition.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use xingtian::config::{AlgorithmSpec, DeploymentConfig};
use xingtian::Deployment;
use xingtian_algos::api::Algorithm;
use xingtian_algos::payload::{RolloutBatch, RolloutStep};
use xingtian_algos::{DqnAlgorithm, DqnConfig};
use xt_replay::{ReplayConfig, ReplayPlane, StoreResidentBackend};

const OBS_DIM: usize = 4;
const NUM_ACTIONS: usize = 3;

/// Deterministic rollout batch: every field seeded, next observations always
/// present (DQN's eligibility filter keeps full transitions only).
fn make_batch(rng: &mut StdRng, explorer: u32, steps: usize) -> RolloutBatch {
    let steps = (0..steps)
        .map(|_| {
            let observation: Vec<f32> = (0..OBS_DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let next: Vec<f32> = (0..OBS_DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
            RolloutStep {
                observation,
                action: rng.gen_range(0..NUM_ACTIONS as u32),
                reward: rng.gen_range(-1.0..1.0),
                done: rng.gen_bool(0.08),
                behavior_logits: Vec::new(),
                value: 0.0,
                next_observation: Some(next),
            }
        })
        .collect();
    RolloutBatch { explorer, param_version: 0, steps, bootstrap_observation: vec![0.0; OBS_DIM] }
}

fn small_config(prioritized: Option<(f64, f64)>) -> DqnConfig {
    let mut c = DqnConfig::new(OBS_DIM, NUM_ACTIONS);
    c.hidden = vec![16];
    c.buffer_capacity = 256; // 12 batches x 64 steps = 768 inserts: 2 wraparounds
    c.warmup_steps = 64;
    c.train_every_inserts = 16;
    c.batch_size = 16;
    c.target_sync_every = 5;
    c.broadcast_every = 3;
    c.prioritized = prioritized;
    c.seed = 42;
    c
}

/// Feeds the identical seeded stream to both placements, training in
/// lockstep, and asserts bitwise-identical trajectories.
fn assert_placements_identical(prioritized: Option<(f64, f64)>) {
    let config = small_config(prioritized);
    let mut legacy = DqnAlgorithm::new(config.clone());

    let telemetry = xt_telemetry::Telemetry::disabled();
    let rc = match prioritized {
        Some((alpha, _)) => ReplayConfig::prioritized(config.buffer_capacity, OBS_DIM, alpha),
        None => ReplayConfig::uniform(config.buffer_capacity, OBS_DIM),
    };
    let plane = Arc::new(ReplayPlane::new(rc, &telemetry));
    let mut store =
        DqnAlgorithm::with_backend(config, Box::new(StoreResidentBackend::new(plane.clone())));

    let mut stream = StdRng::seed_from_u64(7);
    let mut sessions = 0u32;
    for round in 0..12 {
        let batch = make_batch(&mut stream, round % 2, 64);
        legacy.on_rollout(batch.clone());
        store.on_rollout(batch);
        loop {
            let a = legacy.try_train();
            let b = store.try_train();
            assert_eq!(
                a.is_some(),
                b.is_some(),
                "round {round}: placements disagree on training readiness"
            );
            let (Some(a), Some(b)) = (a, b) else { break };
            sessions += 1;
            assert_eq!(a.steps_consumed, b.steps_consumed);
            assert_eq!(a.version, b.version);
            assert_eq!(
                a.loss.to_bits(),
                b.loss.to_bits(),
                "round {round} session {sessions}: losses diverge ({} vs {})",
                a.loss,
                b.loss
            );
            assert_eq!(a.notify, b.notify);
        }
        // Recycle spent batches like the learner loop does (exercises the
        // copying backend's hand-back path).
        while legacy.take_spent().is_some() {}
        while store.take_spent().is_some() {}
    }
    assert!(sessions > 20, "expected a real training run, got {sessions} sessions");
    assert_eq!(plane.integrity().dangling_slots, 0);

    let pa = legacy.param_blob();
    let pb = store.param_blob();
    assert_eq!(pa.version, pb.version);
    assert_eq!(pa.params.len(), pb.params.len());
    for (i, (x, y)) in pa.params.iter().zip(&pb.params).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "parameter {i} diverges: {x} vs {y}");
    }
}

#[test]
fn uniform_dqn_is_trajectory_identical_across_placements() {
    assert_placements_identical(None);
}

#[test]
fn prioritized_dqn_is_trajectory_identical_across_placements() {
    assert_placements_identical(Some((0.6, 0.4)));
}

#[test]
fn store_resident_deployment_trains_end_to_end() {
    let mut c = DqnConfig::new(0, 0); // dimensions filled in at deployment
    c.buffer_capacity = 8_192;
    c.warmup_steps = 400;
    c.train_every_inserts = 8;
    c.batch_size = 32;
    let config = DeploymentConfig::cartpole(AlgorithmSpec::Dqn(c), 2)
        .with_rollout_len(50)
        .with_goal_steps(2_000)
        .with_max_seconds(30.0)
        .with_seed(3)
        .with_store_resident_replay();
    let report = Deployment::run(config).expect("store-resident deployment runs");
    let replay = report.replay.expect("store-resident run must report replay measurements");
    assert!(replay.batches_ingested > 0, "the shard service ingested nothing");
    assert!(replay.steps_ingested > 0);
    assert!(replay.resident > 0);
    assert_eq!(replay.dangling_slots, 0, "torn ingest left dangling arena slots");
    assert!(report.steps_consumed >= 2_000, "goal not reached: {}", report.steps_consumed);
    assert!(report.train_sessions > 0);
}

#[test]
fn in_learner_deployment_reports_no_replay_plane() {
    let config = DeploymentConfig::cartpole(AlgorithmSpec::ppo(), 1)
        .with_rollout_len(50)
        .with_goal_steps(500)
        .with_max_seconds(30.0);
    let report = Deployment::run(config).expect("classic deployment runs");
    assert!(report.replay.is_none());
}
