//! Elastic explorer-pool integration: induced store backpressure grows the
//! pool at runtime, and the pool drains back toward its base size once the
//! pressure clears.
//!
//! The backpressure is induced deterministically with a *windowed delay
//! rule*: during the window every rollout delivery to the learner is parked
//! in the broker's delay line, and a parked delivery holds its store fetch
//! credit — so rollout bodies pin learner-machine store capacity for the
//! delay instead of being consumed immediately. Production keeps inserting
//! while consumption is parked, so the store-occupancy signal the elastic
//! supervisor polls rises. When the window closes the parked backlog drains
//! within one delay period and the signal collapses.

use xingtian::config::{AlgorithmSpec, DeploymentConfig};
use xingtian::deployment::Deployment;
use xingtian::elastic::ElasticConfig;
use xingtian::supervisor::SupervisionConfig;
use xingtian_message::{MessageKind, ProcessRole};
use xt_fault::{FaultPlan, RouteRule};

#[test]
fn pool_grows_under_store_backpressure_and_drains_after() {
    const BASE: u32 = 4;
    let config = DeploymentConfig::cartpole(AlgorithmSpec::impala(), BASE)
        .spread_across(2)
        .with_rollout_len(25)
        .with_goal_steps(u64::MAX) // duration-bounded: the pressure window must fit
        .with_max_seconds(4.2)
        .with_seed(23)
        // Pace the environments so steady-state production sits far below
        // the learner's consumption rate *even at the elastic ceiling and in
        // debug builds*: outside the pressure window the store holds only
        // in-transit rollouts and the occupancy signal idles near zero.
        // Pacing this too fast tips the run into a saturated equilibrium —
        // the grown pool out-produces the learner, the signal never clears,
        // and the shrink never fires (the same positive feedback the
        // Fig. 11 frontier shows past the saturation point).
        .with_step_latency_us(8000)
        // Arena sized for signal separation: the pool's *parked* working set
        // (credits held by the delay line) fills the arena well before the
        // window closes — so blocked senders accumulate the backpressure
        // waits asserted below — while the post-window in-transit working
        // set stays under the low watermark.
        .with_store_capacity(16 * 1024);
    let supervision = SupervisionConfig::with_heartbeat_interval_ms(15)
        .with_monitor_shards(2) // exercise the sharded heartbeat sink end to end
        .with_elastic(ElasticConfig {
            high_watermark: 0.25,
            low_watermark: 0.10,
            max_explorers: BASE + 4,
            step: 2,
            cooldown_ticks: 4,
        });
    // Park every rollout delivery to the learner for 1.2 s during
    // [0.3 s, 1.8 s): delayed-but-delivered, so nothing is ever dropped. The
    // park outlives the window remainder, so the arena stays pinned for the
    // whole window — long enough for the paced senders to fill their
    // in-flight allowance and surface backpressure waits — and the backlog
    // finishes delivering by 3.0 s, leaving the tail of the run for the
    // shrink decisions.
    let plan = FaultPlan::seeded(23).with_rule(
        RouteRule::any()
            .on_kind(MessageKind::Rollout)
            .to_role(ProcessRole::Learner)
            .delaying(1.0, 1200)
            .during_ms(300, 1800),
    );
    let telemetry = xt_telemetry::Telemetry::with_capacity(1 << 18);

    let (report, recovery) =
        Deployment::run_supervised(config, supervision, plan, telemetry.clone())
            .expect("supervised elastic run completes");

    // Up under pressure: the supervisor materialized extra explorers.
    assert!(
        recovery.elastic_spawns >= 2,
        "pool must grow under store backpressure, spawned {}",
        recovery.elastic_spawns
    );
    assert!(
        recovery.peak_explorer_pool >= BASE + 2,
        "peak pool {} should exceed the base {BASE}",
        recovery.peak_explorer_pool
    );
    // Down when it clears: retires happened, and the pool never ended larger
    // than it grew.
    assert!(
        recovery.elastic_retires >= 2,
        "pool must drain after the pressure clears, retired {}",
        recovery.elastic_retires
    );
    assert!(recovery.elastic_spawns >= recovery.elastic_retires);

    // The delay parks but never destroys: nothing dropped, nothing leaked.
    assert_eq!(report.dropped_messages, 0, "a delayed delivery must not be dropped");
    assert_eq!(recovery.leaked_objects, 0, "object store leak");
    assert!(recovery.down_at_exit.is_empty(), "down at exit: {:?}", recovery.down_at_exit);

    // Training progressed through the whole episode.
    assert!(report.steps_consumed > 0, "learner must make progress");

    // The source-side flow control engaged while rollout consumption was
    // parked — the same signal the Fig. 11 saturation analysis reads.
    assert!(
        telemetry.counter("explorer.backpressure_waits").get() > 0,
        "blocked senders must surface as backpressure waits"
    );
}
