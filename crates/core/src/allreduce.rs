//! Deterministic cross-learner gradient allreduce (ROADMAP item 2).
//!
//! The sync mode's core obligation is the PR 4 determinism story: *the same
//! seed must produce bit-identical parameters for 1, 2, and 4 learner
//! shards*. f32 addition is not associative, so "each shard reduces its own
//! minibatch, then shards combine" cannot work — the reduction tree would
//! change shape with the shard count. Instead every training round is
//! partitioned into [`GRAD_SLOTS`] fixed **gradient slots**, independent of
//! how many shards exist:
//!
//! * shard `s` of `S` computes one raw (pre-optimizer) gradient per slot in
//!   `slot_range(s, S)`, each scaled by the round's *global* row count;
//! * shards allgather the slot gradients as [`GradBlob`]s over the comm
//!   channel (`MessageKind::Gradient`, `worker` = slot index, `version` =
//!   round number);
//! * every shard folds the slots **flat, left to right, in slot order** —
//!   the same float additions in the same order no matter which shard
//!   computed which slot — and applies exactly one optimizer step per round.
//!
//! [`GradExchange`] is the per-shard state machine for that allgather: it
//! holds the current round's slot table, buffers gradients from peers that
//! have already raced ahead to a future round, and drops stale duplicates.
//! It is transport-agnostic (the shard process moves `GradBlob`s in and out
//! of endpoints), which is what lets the determinism test drive it directly
//! over real broker endpoints in the style of `tests/param_plane.rs`.

use std::collections::BTreeMap;
use std::ops::Range;
use xingtian_algos::GradBlob;

/// Fixed number of gradient slots per sync training round. Shard counts must
/// divide this (enforced by `DeploymentConfig::validate`), so the legal
/// counts are 1, 2, and 4.
pub const GRAD_SLOTS: usize = 4;

/// The contiguous slot range owned by `shard` of `shards`.
///
/// # Panics
///
/// Panics unless `shards` divides [`GRAD_SLOTS`] and `shard < shards`.
pub fn slot_range(shard: u32, shards: u32) -> Range<usize> {
    assert!(shards > 0 && GRAD_SLOTS.is_multiple_of(shards as usize), "{shards} shards");
    assert!(shard < shards, "shard {shard} of {shards}");
    let per = GRAD_SLOTS / shards as usize;
    shard as usize * per..(shard as usize + 1) * per
}

/// The shard owning `slot` when `shards` shards split the round.
pub fn slot_owner(slot: usize, shards: u32) -> u32 {
    let per = GRAD_SLOTS / shards as usize;
    (slot / per) as u32
}

/// True when a relaxed-mode delta computed at `remote` version may still be
/// applied by a shard at `local` version; anything farther apart is shed,
/// `Algorithm::take_spent`-style (the sender's gate residual means the mass
/// is deferred, not lost).
pub fn within_skew(local: u64, remote: u64, max_skew: u64) -> bool {
    local.abs_diff(remote) <= max_skew
}

/// Per-shard allgather state for the sync allreduce.
#[derive(Debug)]
pub struct GradExchange {
    shard: u32,
    shards: u32,
    /// The round this shard is currently assembling.
    round: u64,
    /// `rounds[r][slot]` = the slot gradient, once seen. Peers may run up to
    /// one collect-phase ahead, so future rounds buffer here (BTreeMap keeps
    /// cleanup of old rounds ordered and cheap).
    rounds: BTreeMap<u64, Vec<Option<Vec<f32>>>>,
    /// Stale or duplicate blobs dropped so far.
    dropped: u64,
}

impl GradExchange {
    /// An exchange for `shard` of `shards`, starting at round 0.
    pub fn new(shard: u32, shards: u32) -> Self {
        assert!(shards > 0 && GRAD_SLOTS.is_multiple_of(shards as usize), "{shards} shards");
        GradExchange { shard, shards, round: 0, rounds: BTreeMap::new(), dropped: 0 }
    }

    /// The round currently being assembled.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The slot range this shard must compute locally each round.
    pub fn local_slots(&self) -> Range<usize> {
        slot_range(self.shard, self.shards)
    }

    /// Records a locally computed slot gradient for the current round.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not owned by this shard.
    pub fn offer_local(&mut self, slot: usize, grad: Vec<f32>) {
        assert!(self.local_slots().contains(&slot), "slot {slot} not local");
        let round = self.round;
        self.slot_table(round)[slot] = Some(grad);
    }

    /// The blob a peer expects for `slot` this round: `worker` carries the
    /// slot index, `version` the round number.
    pub fn blob_for(&self, slot: usize, grad: Vec<f32>) -> GradBlob {
        GradBlob { worker: slot as u32, version: self.round, grad }
    }

    /// Ingests a peer's slot gradient. Blobs for finished rounds (or slots
    /// already filled) are dropped; blobs for future rounds are buffered
    /// until this shard catches up.
    pub fn ingest(&mut self, blob: GradBlob) {
        let slot = blob.worker as usize;
        if blob.version < self.round || slot >= GRAD_SLOTS {
            self.dropped += 1;
            return;
        }
        let entry = &mut self.slot_table(blob.version)[slot];
        if entry.is_some() {
            self.dropped += 1;
            return;
        }
        *entry = Some(blob.grad);
    }

    /// True once every slot of the current round is present.
    pub fn ready(&self) -> bool {
        self.rounds
            .get(&self.round)
            .is_some_and(|slots| slots.iter().all(Option::is_some))
    }

    /// When the round is complete, folds the slots flat in slot order and
    /// advances to the next round. The returned gradient is bit-identical on
    /// every shard and for every legal shard count, because the additions
    /// are the same f32 operations in the same sequence.
    pub fn reduce(&mut self) -> Option<Vec<f32>> {
        if !self.ready() {
            return None;
        }
        let slots = self.rounds.remove(&self.round).expect("ready round present");
        let mut folded: Option<Vec<f32>> = None;
        for grad in slots.into_iter().flatten() {
            match &mut folded {
                None => folded = Some(grad),
                Some(acc) => {
                    assert_eq!(acc.len(), grad.len(), "slot gradient widths agree");
                    for (a, g) in acc.iter_mut().zip(&grad) {
                        *a += g;
                    }
                }
            }
        }
        self.round += 1;
        folded
    }

    /// Abandons the current round (shutdown mid-collect) and all buffers.
    pub fn abandon(&mut self) {
        self.rounds.clear();
    }

    /// Jumps the exchange to `round`, discarding anything buffered for
    /// earlier rounds. Used at startup (the first round is the algorithm's
    /// current parameter version) and when a respawned shard adopts a peer's
    /// parameter snapshot to rejoin the ring.
    pub fn fast_forward(&mut self, round: u64) {
        if round <= self.round {
            return;
        }
        self.round = round;
        self.rounds = self.rounds.split_off(&round);
    }

    /// The locally computed slot blobs of the *current* round, for
    /// retransmission to a rejoining peer (its first transmission died with
    /// the peer's old endpoint). Empty when the round has not been opened.
    pub fn local_blobs(&self) -> Vec<GradBlob> {
        let Some(slots) = self.rounds.get(&self.round) else { return Vec::new() };
        self.local_slots()
            .filter_map(|slot| {
                slots[slot].as_ref().map(|grad| GradBlob {
                    worker: slot as u32,
                    version: self.round,
                    grad: grad.clone(),
                })
            })
            .collect()
    }

    /// Stale/duplicate blobs dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn slot_table(&mut self, round: u64) -> &mut Vec<Option<Vec<f32>>> {
        self.rounds.entry(round).or_insert_with(|| vec![None; GRAD_SLOTS])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot_grad(slot: usize) -> Vec<f32> {
        // Values chosen so that reduction-order changes would be visible in
        // the low mantissa bits.
        (0..6).map(|i| (slot as f32 + 1.0) * 0.1 + i as f32 * 1e-7).collect()
    }

    /// The same four slot gradients reduce to bit-identical sums no matter
    /// how the slots were split across 1, 2, or 4 shards.
    #[test]
    fn reduction_is_bit_identical_across_shard_counts() {
        let mut reference: Option<Vec<f32>> = None;
        for shards in [1u32, 2, 4] {
            // Assemble the round from shard 0's point of view: its own slots
            // locally, everyone else's via ingest, in worst-case order
            // (reversed).
            let mut ex = GradExchange::new(0, shards);
            for slot in ex.local_slots() {
                ex.offer_local(slot, slot_grad(slot));
            }
            for slot in (0..GRAD_SLOTS).rev() {
                if slot_owner(slot, shards) != 0 {
                    ex.ingest(GradBlob {
                        worker: slot as u32,
                        version: 0,
                        grad: slot_grad(slot),
                    });
                }
            }
            let folded = ex.reduce().expect("round complete");
            match &reference {
                None => reference = Some(folded),
                Some(r) => {
                    let bits: Vec<u32> = folded.iter().map(|f| f.to_bits()).collect();
                    let rbits: Vec<u32> = r.iter().map(|f| f.to_bits()).collect();
                    assert_eq!(bits, rbits, "{shards} shards diverged bitwise");
                }
            }
            assert_eq!(ex.round(), 1, "round advanced");
        }
    }

    #[test]
    fn future_rounds_buffer_and_stale_blobs_drop() {
        let mut ex = GradExchange::new(0, 2);
        // A peer already finished round 0 and races ahead: its round-1 slot
        // arrives before we have assembled round 0.
        ex.ingest(GradBlob { worker: 2, version: 1, grad: slot_grad(2) });
        ex.ingest(GradBlob { worker: 3, version: 1, grad: slot_grad(3) });
        assert!(!ex.ready());
        // Round 0 assembles and reduces.
        ex.offer_local(0, slot_grad(0));
        ex.offer_local(1, slot_grad(1));
        ex.ingest(GradBlob { worker: 2, version: 0, grad: slot_grad(2) });
        ex.ingest(GradBlob { worker: 3, version: 0, grad: slot_grad(3) });
        assert!(ex.reduce().is_some());
        // The buffered round-1 peer slots are already in place.
        ex.offer_local(0, slot_grad(0));
        ex.offer_local(1, slot_grad(1));
        assert!(ex.ready(), "buffered future-round slots count");
        assert!(ex.reduce().is_some());
        // Replays of a finished round are dropped, as are duplicates.
        ex.ingest(GradBlob { worker: 2, version: 0, grad: slot_grad(2) });
        ex.offer_local(0, slot_grad(0));
        ex.ingest(GradBlob { worker: 0, version: 2, grad: slot_grad(0) });
        assert_eq!(ex.dropped(), 2, "stale replay and duplicate dropped");
    }

    #[test]
    fn slot_ownership_partitions() {
        for shards in [1u32, 2, 4] {
            let mut seen = [false; GRAD_SLOTS];
            for s in 0..shards {
                for slot in slot_range(s, shards) {
                    assert!(!seen[slot], "slot {slot} owned twice");
                    seen[slot] = true;
                    assert_eq!(slot_owner(slot, shards), s);
                }
            }
            assert!(seen.iter().all(|&s| s), "all slots owned");
        }
    }

    #[test]
    fn fast_forward_discards_earlier_rounds_keeps_later() {
        let mut ex = GradExchange::new(0, 2);
        ex.ingest(GradBlob { worker: 2, version: 1, grad: slot_grad(2) });
        ex.ingest(GradBlob { worker: 2, version: 5, grad: slot_grad(2) });
        ex.fast_forward(5);
        assert_eq!(ex.round(), 5);
        ex.offer_local(0, slot_grad(0));
        ex.offer_local(1, slot_grad(1));
        ex.ingest(GradBlob { worker: 3, version: 5, grad: slot_grad(3) });
        assert!(ex.ready(), "round-5 buffer survived the jump");
        ex.fast_forward(3);
        assert_eq!(ex.round(), 5, "fast_forward never goes backwards");
    }

    #[test]
    fn skew_gate() {
        assert!(within_skew(10, 8, 2));
        assert!(within_skew(8, 10, 2));
        assert!(!within_skew(10, 7, 2));
    }
}
