//! Elastic explorer-pool control: watermark policy over backpressure
//! telemetry.
//!
//! The paper's Fig. 11 maps throughput against a *statically* chosen explorer
//! count; finding the saturation frontier means redeploying at every pool
//! size. The elastic mode automates that probe at runtime: the supervisor
//! samples a backpressure signal each poll tick — the maximum broker-store
//! occupancy, i.e. how full the channel's in-flight arena is — and a
//! [`ElasticController`] turns the sampled signal into grow/shrink/hold
//! decisions. While the signal holds above the high watermark the pool grows
//! toward the configured ceiling; once it clears below the low watermark the
//! pool drains back to its base size. Explorers spawned this way are real
//! supervised slots: they register in the assignment table before their
//! first rollout resolves, beacon heartbeats like everyone else, and retire
//! through the ordinary shutdown path.
//!
//! Two standard control-loop guards keep the policy stable:
//!
//! * **hysteresis** — the watermark band `[low, high]` is a dead zone where
//!   the controller holds, so a signal hovering near one threshold does not
//!   flap the pool;
//! * **cooldown** — after every action the controller holds for a fixed
//!   number of ticks, long enough for the action's effect to show up in the
//!   signal before the next decision compounds it.
//!
//! The controller is deliberately pure (no clocks, no channels): it consumes
//! one `f64` per tick and returns a decision, which keeps the policy fully
//! unit-testable apart from the supervisor that executes it.

/// What the controller wants done with the pool this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticDecision {
    /// Spawn this many additional explorers.
    Grow(u32),
    /// Retire this many elastic explorers (highest indices first).
    Shrink(u32),
    /// Leave the pool alone.
    Hold,
}

/// Tuning for the elastic explorer pool.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Signal at or above this grows the pool (store-occupancy fraction).
    pub high_watermark: f64,
    /// Signal at or below this shrinks the pool back toward its base size.
    /// Must sit below `high_watermark`; the gap is the hysteresis band.
    pub low_watermark: f64,
    /// Hard pool ceiling (clamped up to the base size if set lower).
    pub max_explorers: u32,
    /// Explorers added or retired per action.
    pub step: u32,
    /// Policy ticks to hold after every action before acting again.
    pub cooldown_ticks: u32,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            high_watermark: 0.6,
            low_watermark: 0.2,
            max_explorers: 1024,
            step: 1,
            cooldown_ticks: 8,
        }
    }
}

/// Watermark controller for the explorer pool. Tracks the *intended* pool
/// size; the supervisor owns the actual slots and executes each decision.
#[derive(Debug)]
pub struct ElasticController {
    config: ElasticConfig,
    /// Configured pool size — shrink never goes below this.
    base: u32,
    /// Intended pool size after every decision so far.
    pool: u32,
    /// Ticks left before the next action is allowed.
    cooldown: u32,
}

impl ElasticController {
    /// A controller for a deployment whose configured pool size is `base`.
    pub fn new(config: ElasticConfig, base: u32) -> Self {
        ElasticController { config, base, pool: base, cooldown: 0 }
    }

    /// The intended pool size (base + net elastic growth).
    pub fn pool(&self) -> u32 {
        self.pool
    }

    /// One policy tick: fold the sampled backpressure signal into a
    /// decision. Mutates the intended pool size when it decides to act.
    pub fn decide(&mut self, signal: f64) -> ElasticDecision {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return ElasticDecision::Hold;
        }
        let ceiling = self.config.max_explorers.max(self.base);
        let step = self.config.step.max(1);
        if signal >= self.config.high_watermark && self.pool < ceiling {
            let n = step.min(ceiling - self.pool);
            self.pool += n;
            self.cooldown = self.config.cooldown_ticks;
            return ElasticDecision::Grow(n);
        }
        if signal <= self.config.low_watermark && self.pool > self.base {
            let n = step.min(self.pool - self.base);
            self.pool -= n;
            self.cooldown = self.config.cooldown_ticks;
            return ElasticDecision::Shrink(n);
        }
        ElasticDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ElasticConfig {
        ElasticConfig {
            high_watermark: 0.6,
            low_watermark: 0.2,
            max_explorers: 8,
            step: 2,
            cooldown_ticks: 2,
        }
    }

    #[test]
    fn grows_under_pressure_up_to_the_ceiling() {
        let mut ctl = ElasticController::new(config(), 4);
        assert_eq!(ctl.decide(0.9), ElasticDecision::Grow(2));
        assert_eq!(ctl.pool(), 6);
        // Cooldown: two ticks of Hold even though pressure persists.
        assert_eq!(ctl.decide(0.9), ElasticDecision::Hold);
        assert_eq!(ctl.decide(0.9), ElasticDecision::Hold);
        assert_eq!(ctl.decide(0.9), ElasticDecision::Grow(2));
        assert_eq!(ctl.pool(), 8);
        // Ceiling reached: pressure no longer grows the pool.
        for _ in 0..4 {
            assert_eq!(ctl.decide(0.9), ElasticDecision::Hold);
        }
        assert_eq!(ctl.pool(), 8);
    }

    #[test]
    fn shrinks_back_to_base_when_pressure_clears() {
        let mut ctl = ElasticController::new(config(), 4);
        ctl.decide(0.9);
        ctl.decide(0.9);
        ctl.decide(0.9);
        ctl.decide(0.9);
        assert_eq!(ctl.pool(), 8);
        // Clear the signal: the pool drains in steps, never below base.
        assert_eq!(ctl.decide(0.0), ElasticDecision::Hold); // cooldown
        assert_eq!(ctl.decide(0.0), ElasticDecision::Hold); // cooldown
        assert_eq!(ctl.decide(0.0), ElasticDecision::Shrink(2));
        ctl.decide(0.0);
        ctl.decide(0.0);
        assert_eq!(ctl.decide(0.0), ElasticDecision::Shrink(2));
        assert_eq!(ctl.pool(), 4);
        ctl.decide(0.0);
        ctl.decide(0.0);
        assert_eq!(ctl.decide(0.0), ElasticDecision::Hold, "never below base");
    }

    #[test]
    fn hysteresis_band_holds_steady() {
        let mut ctl = ElasticController::new(config(), 4);
        ctl.decide(0.9); // pool 6
        ctl.decide(0.4);
        ctl.decide(0.4);
        // Mid-band signal after cooldown: neither grow nor shrink.
        assert_eq!(ctl.decide(0.4), ElasticDecision::Hold);
        assert_eq!(ctl.pool(), 6);
    }

    #[test]
    fn watermark_edges_are_inclusive() {
        let mut ctl = ElasticController::new(
            ElasticConfig { cooldown_ticks: 0, ..config() },
            4,
        );
        // A signal sitting exactly on the high watermark already grows...
        assert_eq!(ctl.decide(0.6), ElasticDecision::Grow(2));
        // ...and exactly on the low watermark already shrinks.
        assert_eq!(ctl.decide(0.2), ElasticDecision::Shrink(2));
        assert_eq!(ctl.pool(), 4);
        // Just inside the band, both edges hold.
        ctl.decide(0.6); // pool 6 again
        assert_eq!(ctl.decide(0.2 + f64::EPSILON), ElasticDecision::Hold);
        assert_eq!(ctl.decide(0.6 - f64::EPSILON), ElasticDecision::Hold);
        assert_eq!(ctl.pool(), 6);
    }

    #[test]
    fn saturated_ceiling_never_overshoots() {
        let mut ctl = ElasticController::new(
            ElasticConfig { cooldown_ticks: 0, ..config() },
            4,
        );
        ctl.decide(1.0);
        ctl.decide(1.0);
        assert_eq!(ctl.pool(), 8, "at the ceiling");
        // Sustained maximum pressure at the ceiling: hold forever, the pool
        // must never exceed max_explorers.
        for _ in 0..20 {
            assert_eq!(ctl.decide(1.0), ElasticDecision::Hold);
            assert_eq!(ctl.pool(), 8);
        }
    }

    #[test]
    fn saturated_floor_never_undershoots() {
        let mut ctl = ElasticController::new(
            ElasticConfig { cooldown_ticks: 0, ..config() },
            4,
        );
        // Never grew: sustained zero signal must not dig below the base.
        for _ in 0..20 {
            assert_eq!(ctl.decide(0.0), ElasticDecision::Hold);
            assert_eq!(ctl.pool(), 4);
        }
        // After a grow/shrink round trip the floor still holds.
        ctl.decide(1.0);
        assert_eq!(ctl.decide(0.0), ElasticDecision::Shrink(2));
        for _ in 0..20 {
            assert_eq!(ctl.decide(0.0), ElasticDecision::Hold);
            assert_eq!(ctl.pool(), 4);
        }
    }

    #[test]
    fn partial_steps_at_the_boundaries() {
        let mut ctl = ElasticController::new(
            ElasticConfig { max_explorers: 5, step: 2, cooldown_ticks: 0, ..config() },
            4,
        );
        assert_eq!(ctl.decide(1.0), ElasticDecision::Grow(1), "clamped to the ceiling");
        assert_eq!(ctl.decide(0.0), ElasticDecision::Shrink(1), "clamped to base");
        // A ceiling below the base never shrinks the configured pool.
        let mut tiny = ElasticController::new(
            ElasticConfig { max_explorers: 1, cooldown_ticks: 0, ..config() },
            4,
        );
        assert_eq!(tiny.decide(1.0), ElasticDecision::Hold);
        assert_eq!(tiny.pool(), 4);
    }
}
