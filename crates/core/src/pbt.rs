//! Population-based training on top of XingTian (paper §4.3).
//!
//! PBT runs several *populations* — complete deployments with different
//! hyperparameter combinations — in isolated broker sets. After each
//! generation the center scheduler compares average episode returns,
//! eliminates the worst population, and replaces it with a mutation of the
//! best population's hyperparameters, seeding the new population with the
//! best population's DNN weights so it "can catch up with others at the
//! beginning".

use crate::config::{AlgorithmSpec, DeploymentConfig};
use crate::deployment::Deployment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// PBT schedule configuration.
#[derive(Debug, Clone)]
pub struct PbtConfig {
    /// Deployment template shared by every population (hyperparameters are
    /// overridden per population).
    pub base: DeploymentConfig,
    /// Learning rates of the initial populations (one population per entry).
    pub initial_lrs: Vec<f32>,
    /// Number of evolution intervals.
    pub generations: usize,
    /// Learner steps per generation.
    pub steps_per_generation: u64,
    /// Multiplicative mutation factors applied to the best learning rate when
    /// respawning the eliminated population.
    pub mutation_factors: Vec<f32>,
    /// Scheduler seed.
    pub seed: u64,
}

/// One population's result within a generation.
#[derive(Debug, Clone)]
pub struct PopulationResult {
    /// Learning rate used this generation.
    pub lr: f32,
    /// Mean return over the final episodes (the PBT metric), or `f32::MIN`
    /// when no episode completed.
    pub score: f32,
    /// Learner steps consumed.
    pub steps: u64,
}

/// One evolution interval.
#[derive(Debug, Clone)]
pub struct GenerationSummary {
    /// Per-population results, indexed by population slot.
    pub populations: Vec<PopulationResult>,
    /// Slot eliminated this generation.
    pub eliminated: usize,
    /// Slot whose hyperparameters and weights were inherited.
    pub parent: usize,
    /// Learning rate of the respawned population.
    pub new_lr: f32,
}

/// Output of a full PBT run.
#[derive(Debug, Clone)]
pub struct PbtOutcome {
    /// Per-generation history.
    pub history: Vec<GenerationSummary>,
    /// Best learning rate found.
    pub best_lr: f32,
    /// Best final score.
    pub best_score: f32,
}

fn set_lr(spec: &mut AlgorithmSpec, lr: f32) {
    match spec {
        AlgorithmSpec::Dqn(c) => c.lr = lr,
        AlgorithmSpec::Ppo(c) => c.lr = lr,
        AlgorithmSpec::Impala(c) => c.lr = lr,
        AlgorithmSpec::A2c(c) => c.lr = lr,
        AlgorithmSpec::Reinforce(c) => c.lr = lr,
    }
}

/// Runs PBT, executing each generation's populations in parallel threads
/// (each population owns an isolated broker set, as in the paper's Fig. 3).
///
/// # Panics
///
/// Panics if `initial_lrs` is empty, `mutation_factors` is empty, or a
/// population deployment fails.
pub fn run_pbt(config: PbtConfig) -> PbtOutcome {
    assert!(!config.initial_lrs.is_empty(), "need at least one population");
    assert!(!config.mutation_factors.is_empty(), "need at least one mutation factor");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut lrs = config.initial_lrs.clone();
    let mut weights: Vec<Option<Vec<f32>>> = vec![None; lrs.len()];
    let mut history = Vec::with_capacity(config.generations);

    for generation in 0..config.generations {
        // Launch every population in its own isolated deployment.
        let mut handles = Vec::new();
        for (slot, &lr) in lrs.iter().enumerate() {
            let mut cfg = config.base.clone();
            set_lr(&mut cfg.algorithm, lr);
            cfg.goal_steps = config.steps_per_generation;
            cfg.seed = config.seed
                .wrapping_add(generation as u64 * 1009)
                .wrapping_add(slot as u64 * 7919);
            cfg.initial_params = weights[slot].clone();
            handles.push(std::thread::spawn(move || {
                let report = Deployment::run(cfg).expect("population deployment failed");
                let score = report.final_return(50).unwrap_or(f32::MIN);
                (report.steps_consumed, score, report.final_params)
            }));
        }
        let mut results = Vec::new();
        let mut new_weights = Vec::new();
        for (slot, h) in handles.into_iter().enumerate() {
            let (steps, score, params) = h.join().expect("population thread panicked");
            results.push(PopulationResult { lr: lrs[slot], score, steps });
            new_weights.push(Some(params));
        }
        weights = new_weights;

        // Evolution: eliminate the worst, mutate the best.
        let best = (0..results.len())
            .max_by(|&a, &b| results[a].score.total_cmp(&results[b].score))
            .expect("non-empty");
        let worst = (0..results.len())
            .min_by(|&a, &b| results[a].score.total_cmp(&results[b].score))
            .expect("non-empty");
        let factor = config.mutation_factors[rng.gen_range(0..config.mutation_factors.len())];
        let new_lr = results[best].lr * factor;
        if worst != best {
            lrs[worst] = new_lr;
            weights[worst] = weights[best].clone();
        }
        history.push(GenerationSummary {
            populations: results,
            eliminated: worst,
            parent: best,
            new_lr,
        });
    }

    let (best_lr, best_score) = {
        let last = history.last().expect("at least one generation");
        let best = last
            .populations
            .iter()
            .max_by(|a, b| a.score.total_cmp(&b.score))
            .expect("non-empty");
        (best.lr, best.score)
    };
    PbtOutcome { history, best_lr, best_score }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_lr_reaches_all_variants() {
        for mut spec in [
            AlgorithmSpec::dqn(),
            AlgorithmSpec::ppo(),
            AlgorithmSpec::impala(),
            AlgorithmSpec::a2c(),
            AlgorithmSpec::reinforce(),
        ] {
            set_lr(&mut spec, 0.123);
            let lr = match &spec {
                AlgorithmSpec::Dqn(c) => c.lr,
                AlgorithmSpec::Ppo(c) => c.lr,
                AlgorithmSpec::Impala(c) => c.lr,
                AlgorithmSpec::A2c(c) => c.lr,
                AlgorithmSpec::Reinforce(c) => c.lr,
            };
            assert_eq!(lr, 0.123);
        }
    }

    #[test]
    fn pbt_evolves_toward_better_lr() {
        // A fast smoke run: two IMPALA populations on CartPole, tiny budgets.
        // One population gets a pathologically large learning rate; PBT must
        // keep the sane one as parent in at least one generation.
        let base = DeploymentConfig::cartpole(AlgorithmSpec::impala(), 2)
            .with_rollout_len(64)
            .with_max_seconds(30.0);
        let outcome = run_pbt(PbtConfig {
            base,
            initial_lrs: vec![1e-3, 5.0],
            generations: 2,
            steps_per_generation: 3_000,
            mutation_factors: vec![0.8, 1.2],
            seed: 1,
        });
        assert_eq!(outcome.history.len(), 2);
        for g in &outcome.history {
            assert_eq!(g.populations.len(), 2);
        }
        // The surviving best lr should descend from the sane one.
        assert!(outcome.best_lr < 2.0, "best lr {} should not be the diverged 5.0", outcome.best_lr);
    }
}
