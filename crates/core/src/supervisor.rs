//! Supervised deployments: failure detection and process recovery.
//!
//! [`Deployment::run`] assumes every process survives to shutdown; a single
//! explorer panic aborts the whole run. This module adds the fault-tolerance
//! layer the paper attributes to the framework (§4.2): a supervisor thread
//! owns every workhorse `JoinHandle`, a broker-level heartbeat stream feeds
//! an [`xt_fault::FailureDetector`], and dead processes are respawned onto
//! fresh endpoints whose routes propagate live through the broker fabric.
//!
//! Division of authority, deliberately split:
//!
//! * the **detector** is advisory — it watches heartbeat silence and publishes
//!   liveness transitions to telemetry. Silence can mean a dead process *or* a
//!   severed link; the two are indistinguishable from the monitor's chair.
//! * the **supervisor** respawns only on proof of death: a `JoinHandle` that
//!   joins with `Err` (the thread panicked and fully unwound, so its endpoint
//!   is deregistered). Respawning a merely-partitioned process would register
//!   a duplicate endpoint and corrupt routing. The respawn itself additionally
//!   waits for the detector to confirm the death, so recovery provably flows
//!   injection → detection → recovery and telemetry always shows the
//!   `ProcessDown` before the respawned process's `ProcessUp`.
//!
//! Recovery paths:
//!
//! * **Explorer death** — respawn with a fresh endpoint (same `ProcessId`,
//!   new generation seed). Registration re-propagates the route to every
//!   peer broker, so cross-machine senders recover automatically. Budget
//!   exhausted → degrade: training continues on the survivors.
//! * **Learner death** — rebuild the algorithm, restore parameters from the
//!   newest restorable checkpoint ([`crate::checkpoint::load_latest`] falls
//!   back through versioned files), respawn. Rollouts buffered for the dead
//!   incarnation are consumed by the new one; batches staler than the
//!   restored parameters are ordinary off-policy data, and spent batches are
//!   shed through `Algorithm::take_spent` recycling as usual.

use crate::assignment::AssignmentTable;
use crate::checkpoint::load_latest;
use crate::config::DeploymentConfig;
use crate::controller::{ControllerOutcome, ControllerProcess};
use crate::deployment::{
    build_agent, build_algorithm, build_algorithm_with_replay, build_env, build_replay_plane,
    spawn_process, DeployError,
};
use crate::elastic::{ElasticConfig, ElasticController, ElasticDecision};
use crate::explorer::{ExplorerOutcome, ExplorerProcess, RolloutRoute};
use crate::learner::{LearnerOutcome, LearnerProcess};
use crate::shard::LearnerShardProcess;
use crate::stats::{ReplayReport, RunReport};
use crate::Deployment;
use bytes::Bytes;
use netsim::Cluster;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xingtian_comm::{connect_brokers, Broker, Endpoint};
use xingtian_message::codec::Encode;
use xingtian_message::{MessageKind, ProcessId, ProcessRole};
use xt_fault::{DetectorConfig, FailureDetector, FaultPlan, LivenessTransition};

/// The failure detector's inbox. Broker-role endpoints do not beacon, so the
/// monitor watches everyone without watching itself; the index keeps it clear
/// of real broker-facing ids.
pub const MONITOR: ProcessId = ProcessId { role: ProcessRole::Broker, index: u32::MAX };

/// Supervision policy for [`Deployment::run_supervised`].
#[derive(Debug, Clone)]
pub struct SupervisionConfig {
    /// Heartbeat beacon period for every endpoint (milliseconds).
    pub heartbeat_interval_ms: u64,
    /// Failure-detector tuning. Defaults match `heartbeat_interval_ms`.
    pub detector: DetectorConfig,
    /// How many times one explorer may be respawned before the deployment
    /// degrades to running without it.
    pub max_respawns_per_explorer: u32,
    /// How many times the learner may be restored from checkpoint.
    pub max_learner_restores: u32,
    /// Supervisor poll period (milliseconds): heartbeat drain, detector
    /// sweep, and join-handle reaping happen once per tick.
    pub poll_interval_ms: u64,
    /// Monitor heartbeat-sink shards. Every beacon hashes onto one of this
    /// many monitor endpoints (stable per sender, so inter-arrival stays
    /// meaningful), letting the heartbeat fan-in scale past one inbox at
    /// 1K+ explorers.
    pub monitor_shards: u32,
    /// Elastic explorer-pool policy (`None` = the pool stays at the
    /// configured size).
    pub elastic: Option<ElasticConfig>,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig::with_heartbeat_interval_ms(20)
    }
}

impl SupervisionConfig {
    /// A policy built around a heartbeat period, with the detector timeout
    /// derived from it.
    pub fn with_heartbeat_interval_ms(interval_ms: u64) -> Self {
        SupervisionConfig {
            heartbeat_interval_ms: interval_ms,
            detector: DetectorConfig::for_interval_ms(interval_ms),
            max_respawns_per_explorer: 2,
            max_learner_restores: 2,
            poll_interval_ms: (interval_ms / 4).max(1),
            monitor_shards: 1,
            elastic: None,
        }
    }

    /// Shards the monitor heartbeat sink (builder style; clamped to ≥ 1).
    pub fn with_monitor_shards(mut self, shards: u32) -> Self {
        self.monitor_shards = shards.max(1);
        self
    }

    /// Enables the elastic explorer pool (builder style).
    pub fn with_elastic(mut self, elastic: ElasticConfig) -> Self {
        self.elastic = Some(elastic);
        self
    }
}

/// What the supervisor did over one run, alongside the usual [`RunReport`].
#[derive(Debug)]
pub struct RecoveryReport {
    /// Indices of explorers that were respawned, in respawn order (an index
    /// appears once per respawn).
    pub explorer_respawns: Vec<u32>,
    /// How many times a learner (any shard) was restored from checkpoint.
    pub learner_restores: u32,
    /// Restore count per learner shard, in shard order (length 1 for the
    /// classic single-learner deployment).
    pub learner_shard_restores: Vec<u32>,
    /// Parameter version of the last checkpoint a learner restore loaded.
    pub restored_param_version: Option<u64>,
    /// Liveness transitions the failure detector published, in order.
    pub transitions: Vec<LivenessTransition>,
    /// Processes still considered down when the run ended (degraded
    /// explorers, or partitioned processes whose beats never resumed).
    pub down_at_exit: Vec<ProcessId>,
    /// Objects left in the brokers' stores after every process exited —
    /// anything nonzero is a leak.
    pub leaked_objects: usize,
    /// Replay-arena slots whose write never completed when the run ended
    /// (always 0 for in-learner replay) — anything nonzero is a torn ingest
    /// left behind by a crash.
    pub dangling_replay_slots: usize,
    /// Explorers the elastic mode spawned beyond the configured pool (0 when
    /// elastic supervision is off).
    pub elastic_spawns: u32,
    /// Elastic explorers retired after the backpressure signal cleared.
    pub elastic_retires: u32,
    /// Largest explorer-pool size reached (the configured count when elastic
    /// supervision is off).
    pub peak_explorer_pool: u32,
}

impl RecoveryReport {
    /// The liveness transitions of learner shards only.
    pub fn learner_transitions(&self) -> Vec<LivenessTransition> {
        self.transitions.iter().filter(|t| t.pid.role == ProcessRole::Learner).copied().collect()
    }

    /// The liveness transitions of explorers only.
    pub fn explorer_transitions(&self) -> Vec<LivenessTransition> {
        self.transitions.iter().filter(|t| t.pid.role == ProcessRole::Explorer).copied().collect()
    }
}

/// Handles and bookkeeping for one supervised explorer slot.
struct ExplorerSlot {
    handle: Option<JoinHandle<ExplorerOutcome>>,
    respawns: u32,
    /// Outcomes of every finished incarnation (episode stats accumulate
    /// across respawns).
    outcomes: Vec<ExplorerOutcome>,
    /// Death is proven (joined `Err`) but the respawn waits for the failure
    /// detector to publish the matching `ProcessDown` first.
    awaiting_detection: bool,
    /// The elastic controller retired this explorer: a targeted shutdown is
    /// in flight and the slot must not be respawned.
    retired: bool,
}

/// Handles and bookkeeping for one supervised learner shard (the classic
/// deployment is the one-shard case).
struct LearnerSlot {
    handle: Option<JoinHandle<LearnerOutcome>>,
    restores: u32,
    awaiting_detection: bool,
    /// Outcome of the most recent finished incarnation (final parameters and
    /// timeline come from here).
    last_outcome: Option<LearnerOutcome>,
}

impl Deployment {
    /// Runs `config` under supervision: heartbeat-driven failure detection,
    /// panic recovery with respawn, and fault injection from `plan`.
    ///
    /// Pass [`FaultPlan::seeded`] with no faults for plain supervised
    /// operation, or a populated plan for a chaos run — the plan's link
    /// schedule runs on the cluster's virtual clock, its route rules are
    /// installed on every broker, and its kill switches are armed inside the
    /// matching processes.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] if the configuration is invalid, a process
    /// cannot be (re)spawned, or the controller itself dies.
    pub fn run_supervised(
        config: DeploymentConfig,
        supervision: SupervisionConfig,
        plan: FaultPlan,
        telemetry: xt_telemetry::Telemetry,
    ) -> Result<(RunReport, RecoveryReport), DeployError> {
        config.validate().map_err(DeployError::new)?;
        let dims = build_env(&config.env, 0, config.obs_dim_override, config.step_latency_us)
            .map_err(DeployError::new)?;
        let obs_dim = dims.observation_dim();
        let num_actions = dims.num_actions();
        drop(dims);
        let num_explorers = config.total_explorers();

        let cluster = Cluster::new(config.cluster.clone());
        let comm = config
            .comm
            .clone()
            .with_heartbeat(supervision.heartbeat_interval_ms, MONITOR)
            .with_monitor_shards(supervision.monitor_shards);
        let brokers: Vec<Broker> = (0..cluster.len())
            .map(|m| Broker::with_telemetry(m, cluster.clone(), comm.clone(), telemetry.clone()))
            .collect();
        connect_brokers(&brokers);

        // Every monitor-shard endpoint must exist before any beaconing
        // endpoint: the very first heartbeat fires at endpoint spawn and
        // needs a route. Beacons hash onto shards per sender pid.
        let monitor_eps: Vec<Endpoint> = comm
            .heartbeat
            .expect("heartbeat configured above")
            .monitor_pids()
            .into_iter()
            .map(|pid| brokers[config.learner_machine].endpoint(pid))
            .collect();
        let drain_monitors = |detector: &FailureDetector| {
            for ep in &monitor_eps {
                while let Some(msg) = ep.try_recv() {
                    detector.observe_message(&msg.header);
                }
            }
        };
        plan.install(&cluster, &brokers);

        let shards = config.learner_shards as u32;
        let detector = FailureDetector::new(supervision.detector, telemetry.clone());
        detector.watch_many(
            (0..shards.max(1))
                .map(ProcessId::learner)
                .chain((0..num_explorers).map(ProcessId::explorer)),
        );

        // Store-resident replay: the shard service lives beside the learner's
        // broker and outlives learner incarnations — experience survives a
        // learner crash. Its endpoint beacons like every other, so the
        // detector auto-registers it on the first heartbeat.
        let plane = build_replay_plane(&config, obs_dim, &telemetry);
        let replay_service = match &plane {
            Some(plane) => {
                let ep = brokers[config.learner_machine].endpoint(ProcessId::replay(0));
                let stop = Arc::new(AtomicBool::new(false));
                let (plane, stop2) = (plane.clone(), stop.clone());
                let handle = spawn_process("xt-replay-0".into(), move || {
                    xt_replay::run_replay_service(ep, plane, ProcessId::learner(0), stop2)
                })?;
                Some((stop, handle))
            }
            None => None,
        };
        // Rollouts follow the live assignment table when learners are
        // sharded: the destination is resolved per batch, so a rebalance or
        // a shard respawn redirects traffic without restarting explorers.
        let table = Arc::new(AssignmentTable::contiguous(num_explorers, shards.max(1)));
        let route = if plane.is_some() {
            RolloutRoute::Fixed(ProcessId::replay(0))
        } else if shards > 1 {
            RolloutRoute::Assigned(table.clone())
        } else {
            RolloutRoute::Fixed(ProcessId::learner(0))
        };

        // Algorithm replica for one learner shard. Sharded replicas are all
        // seeded identically (the sync allreduce requires identical initial
        // parameters) and sized to the explorer slice they own.
        let build_shard_algorithm = |shard: u32| -> Box<dyn xingtian_algos::api::Algorithm> {
            let mut algorithm = if shards > 1 {
                build_algorithm(
                    &config.algorithm,
                    obs_dim,
                    num_actions,
                    table.owned(shard).len() as u32,
                    config.rollout_len,
                    config.seed,
                )
            } else {
                build_algorithm_with_replay(
                    &config.algorithm,
                    obs_dim,
                    num_actions,
                    num_explorers,
                    config.rollout_len,
                    config.seed,
                    plane.as_ref(),
                )
            };
            if let Some(params) = &config.initial_params {
                algorithm.load_params(params);
            }
            algorithm
        };
        let mut initial_algorithms: Vec<Box<dyn xingtian_algos::api::Algorithm>> =
            (0..shards.max(1)).map(build_shard_algorithm).collect();
        let sync = initial_algorithms[0].sync_mode();
        let algo_name = initial_algorithms[0].name().to_string();
        let start = Instant::now();

        let spawn_learner = |shard: u32,
                             algorithm: Box<dyn xingtian_algos::api::Algorithm>,
                             endpoint: Endpoint,
                             probe: Option<xt_fault::ProcessProbe>|
         -> Result<JoinHandle<LearnerOutcome>, DeployError> {
            let ckpt_config = config.checkpoint.clone().map(|mut c| {
                if shards > 1 {
                    c.dir = c.dir.join(format!("shard{shard}"));
                }
                c
            });
            let checkpointer = match ckpt_config {
                Some(c) => Some(
                    crate::checkpoint::Checkpointer::new(c)
                        .map_err(|e| DeployError::new(format!("cannot set up checkpoints: {e}")))?,
                ),
                None => None,
            };
            let param_compression = config.comm.param_compression;
            if shards > 1 {
                let (table, mode) = (table.clone(), config.allreduce);
                spawn_process(format!("xt-learner-{shard}"), move || {
                    LearnerShardProcess {
                        shard,
                        endpoint,
                        algorithm,
                        table,
                        mode,
                        checkpointer,
                        probe,
                        param_compression,
                    }
                    .run()
                })
            } else {
                spawn_process("xt-learner".into(), move || {
                    LearnerProcess { endpoint, algorithm, checkpointer, probe, param_compression }
                        .run()
                })
            }
        };
        let spawn_explorer = |i: u32,
                              generation: u32,
                              endpoint: Endpoint,
                              probe: Option<xt_fault::ProcessProbe>|
         -> Result<JoinHandle<ExplorerOutcome>, DeployError> {
            // Each incarnation explores from a distinct seed so a respawned
            // explorer does not re-walk its predecessor's exact trajectory.
            let seed = config
                .seed
                .wrapping_mul(1000)
                .wrapping_add(u64::from(i))
                .wrapping_add(u64::from(generation).wrapping_mul(0x9E37_79B9));
            let env = build_env(&config.env, seed, config.obs_dim_override, config.step_latency_us)
                .map_err(DeployError::new)?;
            let agent = build_agent(
                &config.algorithm,
                obs_dim,
                num_actions,
                num_explorers,
                config.rollout_len,
                config.seed,
                i,
            );
            let rollout_len = config.rollout_len;
            let route = route.clone();
            spawn_process(format!("xt-explorer-{i}"), move || {
                ExplorerProcess {
                    index: i,
                    endpoint,
                    env,
                    agent,
                    rollout_len,
                    route,
                    sync,
                    probe,
                }
                .run()
            })
        };

        let mut learner_slots: Vec<LearnerSlot> = Vec::with_capacity(shards.max(1) as usize);
        let mut rollout_latency_src = None;
        for (s, algorithm) in initial_algorithms.drain(..).enumerate() {
            let s = s as u32;
            let endpoint = brokers[config.learner_machine].endpoint(ProcessId::learner(s));
            if s == 0 {
                rollout_latency_src = Some(endpoint.delivery_stats_arc());
            }
            let probe = Some(plan.probe_for(ProcessId::learner(s), Some(cluster.time_source())));
            learner_slots.push(LearnerSlot {
                handle: Some(spawn_learner(s, algorithm, endpoint, probe)?),
                restores: 0,
                awaiting_detection: false,
                last_outcome: None,
            });
        }
        let mut rollout_latency_src = rollout_latency_src.expect("at least one learner shard");

        // Elastic explorers have indices beyond the configured placement
        // table; they round-robin over the cluster's machines instead.
        let machine_of = |i: u32| -> usize {
            if i < num_explorers {
                config.explorer_machine(i)
            } else {
                i as usize % cluster.len()
            }
        };

        let mut slots: Vec<ExplorerSlot> = Vec::with_capacity(num_explorers as usize);
        for i in 0..num_explorers {
            let endpoint = brokers[machine_of(i)].endpoint(ProcessId::explorer(i));
            let probe = Some(plan.probe_for(ProcessId::explorer(i), Some(cluster.time_source())));
            slots.push(ExplorerSlot {
                handle: Some(spawn_explorer(i, 0, endpoint, probe)?),
                respawns: 0,
                outcomes: Vec::new(),
                awaiting_detection: false,
                retired: false,
            });
        }

        let controller_ep = brokers[config.learner_machine].endpoint(ProcessId::controller(0));
        let controller_handle = spawn_process("xt-controller".into(), move || {
            ControllerProcess {
                endpoint: controller_ep,
                goal_steps: config.goal_steps,
                max_duration: Duration::from_secs_f64(config.max_seconds),
                num_explorers,
                num_learner_shards: shards.max(1),
            }
            .run()
        })?;

        // Learner-incarnation accumulators (summed across shards and
        // restores; the timeline and final parameters come from each slot's
        // last incarnation).
        let mut steps_consumed = 0u64;
        let mut train_sessions = 0u64;
        let mut train_time = Duration::ZERO;
        let mut explorer_respawns: Vec<u32> = Vec::new();
        let mut learner_restores = 0u32;
        let mut restored_param_version: Option<u64> = None;

        // Elastic pool state: the controller tracks intent; `slots` beyond
        // `num_explorers` are the elastic incarnations it materialized.
        let mut elastic =
            supervision.elastic.clone().map(|cfg| ElasticController::new(cfg, num_explorers));
        let mut elastic_spawns = 0u32;
        let mut elastic_retires = 0u32;
        let mut peak_explorer_pool = num_explorers;
        // Retired explorers keep beaconing until their targeted shutdown
        // lands, and `observe` auto-registers unknown pids — so a retiree's
        // trailing beats would re-enter the detector after the reap's
        // `forget` and later sweep to a spurious Down. Re-forgetting every
        // tick keeps them out for good.
        let mut retired_pids: Vec<ProcessId> = Vec::new();

        // ---- Supervision loop -------------------------------------------
        let poll = Duration::from_millis(supervision.poll_interval_ms.max(1));
        loop {
            // 1. Feed the detector: drain every monitor shard, sweep for
            // silence.
            drain_monitors(&detector);
            for &pid in &retired_pids {
                detector.forget(pid);
            }
            detector.sweep();

            // 2. Reap dead explorers. `Err` from join proves the thread
            // panicked and unwound — its endpoint is deregistered, so the
            // same ProcessId can re-register safely. The respawn itself is
            // deferred until the detector publishes the death.
            for (i, slot) in slots.iter_mut().enumerate() {
                let i_u32 = i as u32;
                let pid = ProcessId::explorer(i_u32);
                if slot.handle.as_ref().is_some_and(std::thread::JoinHandle::is_finished) {
                    let handle = slot.handle.take().expect("finished handle present");
                    match handle.join() {
                        Ok(outcome) => {
                            // Normal exit (shutdown reached it): keep the stats.
                            detector.forget(pid);
                            slot.outcomes.push(outcome);
                        }
                        Err(_)
                            if !slot.retired
                                && slot.respawns < supervision.max_respawns_per_explorer =>
                        {
                            slot.awaiting_detection = true;
                        }
                        Err(_) => {
                            eprintln!(
                                "supervisor: explorer {i_u32} out of respawn budget, degrading"
                            );
                        }
                    }
                }
                if slot.awaiting_detection
                    && detector.liveness(pid) == Some(xt_fault::Liveness::Down)
                {
                    slot.awaiting_detection = false;
                    slot.respawns += 1;
                    let generation = slot.respawns;
                    let endpoint = brokers[machine_of(i_u32)].endpoint(pid);
                    match spawn_explorer(i_u32, generation, endpoint, None) {
                        Ok(h) => {
                            explorer_respawns.push(i_u32);
                            slot.handle = Some(h);
                        }
                        Err(e) => {
                            eprintln!(
                                "supervisor: cannot respawn explorer {i_u32} (degrading): {e}"
                            );
                        }
                    }
                }
            }

            // 3. Reap dead learner shards: once the detector confirms a
            // death, restore that shard from its own checkpoint directory
            // and respawn it. Surviving shards keep training meanwhile; the
            // rejoiner re-enters the gradient exchange on its first send
            // (sync mode adopts a peer snapshot, relaxed mode just resumes
            // gossip within the skew bound).
            for (s, slot) in learner_slots.iter_mut().enumerate() {
                let s_u32 = s as u32;
                let pid = ProcessId::learner(s_u32);
                if slot.handle.as_ref().is_some_and(JoinHandle::is_finished) {
                    let handle = slot.handle.take().expect("finished handle present");
                    match handle.join() {
                        Ok(outcome) => {
                            detector.forget(pid);
                            steps_consumed += outcome.steps_consumed;
                            train_sessions += outcome.train_sessions;
                            train_time += outcome.train_time;
                            slot.last_outcome = Some(outcome);
                        }
                        Err(_) if slot.restores < supervision.max_learner_restores => {
                            slot.awaiting_detection = true;
                        }
                        Err(_) => {
                            return Err(DeployError::new(format!(
                                "learner shard {s_u32} died and is out of restore budget"
                            )));
                        }
                    }
                }
                if slot.awaiting_detection
                    && detector.liveness(pid) == Some(xt_fault::Liveness::Down)
                {
                    slot.awaiting_detection = false;
                    slot.restores += 1;
                    learner_restores += 1;
                    // The rebuilt learner re-attaches to the surviving replay
                    // plane (classic path): everything ingested before the
                    // crash is still sampleable the moment the restore
                    // completes.
                    let mut algorithm = build_shard_algorithm(s_u32);
                    let ckpt_dir = config.checkpoint.as_ref().map(|c| {
                        if shards > 1 {
                            c.dir.join(format!("shard{s_u32}"))
                        } else {
                            c.dir.clone()
                        }
                    });
                    match ckpt_dir.map(|d| load_latest(&d)) {
                        Some(Ok(blob)) => {
                            restored_param_version = Some(blob.version);
                            algorithm.adopt_params(&blob.params, blob.version);
                        }
                        Some(Err(e)) => {
                            eprintln!(
                                "supervisor: learner shard {s_u32} restarting from scratch \
                                 (no restorable checkpoint: {e})"
                            );
                        }
                        None => {
                            eprintln!(
                                "supervisor: learner shard {s_u32} restarting from scratch \
                                 (checkpointing disabled)"
                            );
                        }
                    }
                    let endpoint = brokers[config.learner_machine].endpoint(pid);
                    if s_u32 == 0 {
                        rollout_latency_src = endpoint.delivery_stats_arc();
                    }
                    slot.handle = Some(spawn_learner(s_u32, algorithm, endpoint, None)?);
                }
            }

            // 4. Elastic pool control: fold the brokers' *data-plane* store
            // occupancy — the channel's in-flight backpressure signal — into
            // the watermark policy and execute its decision. Control-plane
            // traffic (parameter broadcasts, stats) bypasses the capacity
            // gate and is excluded, so a chatty learner cannot pin the
            // signal above the low watermark and stall the drain.
            if let Some(ctl) = elastic.as_mut() {
                let occupancy =
                    brokers.iter().map(|b| b.store().data_occupancy()).fold(0.0f64, f64::max);
                match ctl.decide(occupancy) {
                    ElasticDecision::Grow(n) => {
                        for _ in 0..n {
                            let i = slots.len() as u32;
                            let pid = ProcessId::explorer(i);
                            // Owner first, then endpoint, then spawn: the new
                            // explorer's first rollout must resolve an owner
                            // and its first heartbeat must find the detector
                            // already watching.
                            table.register(i);
                            detector.watch(pid);
                            let endpoint = brokers[machine_of(i)].endpoint(pid);
                            match spawn_explorer(i, 0, endpoint, None) {
                                Ok(h) => {
                                    elastic_spawns += 1;
                                    slots.push(ExplorerSlot {
                                        handle: Some(h),
                                        respawns: 0,
                                        outcomes: Vec::new(),
                                        awaiting_detection: false,
                                        retired: false,
                                    });
                                }
                                Err(e) => {
                                    detector.forget(pid);
                                    eprintln!("supervisor: cannot grow explorer pool: {e}");
                                }
                            }
                        }
                        peak_explorer_pool = peak_explorer_pool.max(slots.len() as u32);
                    }
                    ElasticDecision::Shrink(n) => {
                        // Retire the highest-index live elastic explorers
                        // with a targeted shutdown; the ordinary reap path
                        // joins them and forgets their pids.
                        let mut remaining = n;
                        for i in (num_explorers as usize..slots.len()).rev() {
                            if remaining == 0 {
                                break;
                            }
                            let slot = &mut slots[i];
                            if slot.retired || slot.handle.is_none() {
                                continue;
                            }
                            slot.retired = true;
                            elastic_retires += 1;
                            remaining -= 1;
                            retired_pids.push(ProcessId::explorer(i as u32));
                            monitor_eps[0].send_to(
                                vec![ProcessId::explorer(i as u32)],
                                MessageKind::Control,
                                Bytes::from(crate::messages::ControlCommand::Shutdown.to_bytes()),
                            );
                        }
                    }
                    ElasticDecision::Hold => {}
                }
            }

            // 5. The controller ending the run ends supervision.
            if controller_handle.is_finished() {
                break;
            }
            std::thread::sleep(poll);
        }

        let controller_outcome: ControllerOutcome = controller_handle
            .join()
            .map_err(|_| DeployError::new("controller thread panicked"))?;
        detector.forget(ProcessId::controller(0));

        // A process respawned *after* the controller broadcast shutdown never
        // saw the command; one more broadcast from the monitor endpoint
        // guarantees every live process gets it (shutdown is idempotent).
        // The broadcast covers the *peak* pool: elastic explorers have
        // indices beyond the count the controller knew about.
        let mut dst: Vec<ProcessId> = (0..slots.len() as u32).map(ProcessId::explorer).collect();
        dst.extend((0..shards.max(1)).map(ProcessId::learner));
        monitor_eps[0].send_to(
            dst,
            MessageKind::Control,
            Bytes::from(crate::messages::ControlCommand::Shutdown.to_bytes()),
        );

        // Final joins. Post-shutdown panics are possible (a probe can fire on
        // the last pulse before the command is handled) — they degrade, never
        // respawn.
        for (s, slot) in learner_slots.iter_mut().enumerate() {
            if let Some(handle) = slot.handle.take() {
                match handle.join() {
                    Ok(outcome) => {
                        steps_consumed += outcome.steps_consumed;
                        train_sessions += outcome.train_sessions;
                        train_time += outcome.train_time;
                        slot.last_outcome = Some(outcome);
                    }
                    Err(_) => {
                        return Err(DeployError::new(format!(
                            "learner shard {s} panicked during shutdown"
                        )));
                    }
                }
            }
        }
        for (i, slot) in slots.iter_mut().enumerate() {
            if let Some(handle) = slot.handle.take() {
                match handle.join() {
                    Ok(outcome) => slot.outcomes.push(outcome),
                    Err(_) => {
                        eprintln!("supervisor: explorer {i} panicked during shutdown");
                    }
                }
            }
        }

        // The replay service stops only after every producer and consumer has
        // joined: rollouts still in the channel get ingested, and the plane's
        // torn-write audit runs on the final state.
        let replay_summary = match replay_service {
            Some((stop, handle)) => {
                stop.store(true, Ordering::Release);
                let outcome = handle
                    .join()
                    .map_err(|_| DeployError::new("replay service thread panicked"))?;
                detector.forget(ProcessId::replay(0));
                let integrity =
                    plane.as_ref().expect("replay service implies a plane").integrity();
                Some((outcome, integrity))
            }
            None => None,
        };

        // Everything has exited; the stores should drain to empty as routers
        // finish in-flight work. Give them a bounded moment before declaring
        // leftovers a leak.
        let drain_deadline = Instant::now() + Duration::from_secs(2);
        let leaked_objects = loop {
            drain_monitors(&detector);
            let remaining: usize = brokers.iter().map(|b| b.store().len()).sum();
            if remaining == 0 || Instant::now() >= drain_deadline {
                break remaining;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        for &pid in &retired_pids {
            detector.forget(pid);
        }
        let down_at_exit = detector.down();
        let transitions = detector.transitions();
        for ep in &monitor_eps {
            ep.close();
        }
        let wall_time = start.elapsed();
        for b in &brokers {
            b.shutdown();
        }
        let dropped_messages: u64 = brokers.iter().map(Broker::dropped).sum();

        let mut episode_returns = Vec::new();
        for slot in &slots {
            for o in &slot.outcomes {
                episode_returns.extend_from_slice(o.tracker.returns());
            }
        }
        let _ = controller_outcome;

        let dangling_replay_slots =
            replay_summary.as_ref().map_or(0, |(_, integrity)| integrity.dangling_slots);
        let replay = replay_summary.map(|(outcome, integrity)| ReplayReport {
            batches_ingested: outcome.batches_ingested,
            steps_ingested: outcome.steps_ingested,
            sample_requests: outcome.sample_requests,
            resident: integrity.resident,
            dangling_slots: integrity.dangling_slots,
        });

        let learner_shard_params: Vec<Vec<f32>> = if shards > 1 {
            learner_slots
                .iter()
                .map(|s| {
                    s.last_outcome.as_ref().map(|o| o.final_params.clone()).unwrap_or_default()
                })
                .collect()
        } else {
            Vec::new()
        };
        let learner_shard_restores: Vec<u32> = learner_slots.iter().map(|s| s.restores).collect();
        let last = learner_slots[0]
            .last_outcome
            .take()
            .ok_or_else(|| DeployError::new("no learner incarnation completed"))?;
        let mean_train_time = if train_sessions > 0 {
            train_time / train_sessions as u32
        } else {
            Duration::ZERO
        };
        let report = RunReport {
            algorithm: algo_name,
            env: config.env.clone(),
            steps_consumed,
            wall_time,
            timeline: last.timeline,
            learner_wait: last.wait_stats,
            rollout_latency: rollout_latency_src,
            episode_returns,
            train_sessions,
            mean_train_time,
            final_params: last.final_params,
            learner_shard_params,
            replay,
            dropped_messages,
        };
        let recovery = RecoveryReport {
            explorer_respawns,
            learner_restores,
            learner_shard_restores,
            restored_param_version,
            transitions,
            down_at_exit,
            leaked_objects,
            dangling_replay_slots,
            elastic_spawns,
            elastic_retires,
            peak_explorer_pool,
        };
        Ok((report, recovery))
    }
}
