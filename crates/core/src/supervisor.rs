//! Supervised deployments: failure detection and process recovery.
//!
//! [`Deployment::run`] assumes every process survives to shutdown; a single
//! explorer panic aborts the whole run. This module adds the fault-tolerance
//! layer the paper attributes to the framework (§4.2): a supervisor thread
//! owns every workhorse `JoinHandle`, a broker-level heartbeat stream feeds
//! an [`xt_fault::FailureDetector`], and dead processes are respawned onto
//! fresh endpoints whose routes propagate live through the broker fabric.
//!
//! Division of authority, deliberately split:
//!
//! * the **detector** is advisory — it watches heartbeat silence and publishes
//!   liveness transitions to telemetry. Silence can mean a dead process *or* a
//!   severed link; the two are indistinguishable from the monitor's chair.
//! * the **supervisor** respawns only on proof of death: a `JoinHandle` that
//!   joins with `Err` (the thread panicked and fully unwound, so its endpoint
//!   is deregistered). Respawning a merely-partitioned process would register
//!   a duplicate endpoint and corrupt routing. The respawn itself additionally
//!   waits for the detector to confirm the death, so recovery provably flows
//!   injection → detection → recovery and telemetry always shows the
//!   `ProcessDown` before the respawned process's `ProcessUp`.
//!
//! Recovery paths:
//!
//! * **Explorer death** — respawn with a fresh endpoint (same `ProcessId`,
//!   new generation seed). Registration re-propagates the route to every
//!   peer broker, so cross-machine senders recover automatically. Budget
//!   exhausted → degrade: training continues on the survivors.
//! * **Learner death** — rebuild the algorithm, restore parameters from the
//!   newest restorable checkpoint ([`crate::checkpoint::load_latest`] falls
//!   back through versioned files), respawn. Rollouts buffered for the dead
//!   incarnation are consumed by the new one; batches staler than the
//!   restored parameters are ordinary off-policy data, and spent batches are
//!   shed through `Algorithm::take_spent` recycling as usual.

use crate::checkpoint::load_latest;
use crate::config::DeploymentConfig;
use crate::controller::{ControllerOutcome, ControllerProcess};
use crate::deployment::{
    build_agent, build_algorithm_with_replay, build_env, build_replay_plane, spawn_process,
    DeployError,
};
use crate::explorer::{ExplorerOutcome, ExplorerProcess};
use crate::learner::{LearnerOutcome, LearnerProcess};
use crate::stats::{ReplayReport, RunReport};
use crate::Deployment;
use bytes::Bytes;
use netsim::Cluster;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xingtian_comm::{connect_brokers, Broker, Endpoint};
use xingtian_message::codec::Encode;
use xingtian_message::{MessageKind, ProcessId, ProcessRole};
use xt_fault::{DetectorConfig, FailureDetector, FaultPlan, LivenessTransition};

/// The failure detector's inbox. Broker-role endpoints do not beacon, so the
/// monitor watches everyone without watching itself; the index keeps it clear
/// of real broker-facing ids.
pub const MONITOR: ProcessId = ProcessId { role: ProcessRole::Broker, index: u32::MAX };

/// Supervision policy for [`Deployment::run_supervised`].
#[derive(Debug, Clone)]
pub struct SupervisionConfig {
    /// Heartbeat beacon period for every endpoint (milliseconds).
    pub heartbeat_interval_ms: u64,
    /// Failure-detector tuning. Defaults match `heartbeat_interval_ms`.
    pub detector: DetectorConfig,
    /// How many times one explorer may be respawned before the deployment
    /// degrades to running without it.
    pub max_respawns_per_explorer: u32,
    /// How many times the learner may be restored from checkpoint.
    pub max_learner_restores: u32,
    /// Supervisor poll period (milliseconds): heartbeat drain, detector
    /// sweep, and join-handle reaping happen once per tick.
    pub poll_interval_ms: u64,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig::with_heartbeat_interval_ms(20)
    }
}

impl SupervisionConfig {
    /// A policy built around a heartbeat period, with the detector timeout
    /// derived from it.
    pub fn with_heartbeat_interval_ms(interval_ms: u64) -> Self {
        SupervisionConfig {
            heartbeat_interval_ms: interval_ms,
            detector: DetectorConfig::for_interval_ms(interval_ms),
            max_respawns_per_explorer: 2,
            max_learner_restores: 2,
            poll_interval_ms: (interval_ms / 4).max(1),
        }
    }
}

/// What the supervisor did over one run, alongside the usual [`RunReport`].
#[derive(Debug)]
pub struct RecoveryReport {
    /// Indices of explorers that were respawned, in respawn order (an index
    /// appears once per respawn).
    pub explorer_respawns: Vec<u32>,
    /// How many times the learner was restored from checkpoint.
    pub learner_restores: u32,
    /// Parameter version of the last checkpoint a learner restore loaded.
    pub restored_param_version: Option<u64>,
    /// Liveness transitions the failure detector published, in order.
    pub transitions: Vec<LivenessTransition>,
    /// Processes still considered down when the run ended (degraded
    /// explorers, or partitioned processes whose beats never resumed).
    pub down_at_exit: Vec<ProcessId>,
    /// Objects left in the brokers' stores after every process exited —
    /// anything nonzero is a leak.
    pub leaked_objects: usize,
    /// Replay-arena slots whose write never completed when the run ended
    /// (always 0 for in-learner replay) — anything nonzero is a torn ingest
    /// left behind by a crash.
    pub dangling_replay_slots: usize,
}

/// Handles and bookkeeping for one supervised explorer slot.
struct ExplorerSlot {
    handle: Option<JoinHandle<ExplorerOutcome>>,
    respawns: u32,
    /// Outcomes of every finished incarnation (episode stats accumulate
    /// across respawns).
    outcomes: Vec<ExplorerOutcome>,
    /// Death is proven (joined `Err`) but the respawn waits for the failure
    /// detector to publish the matching `ProcessDown` first.
    awaiting_detection: bool,
}

impl Deployment {
    /// Runs `config` under supervision: heartbeat-driven failure detection,
    /// panic recovery with respawn, and fault injection from `plan`.
    ///
    /// Pass [`FaultPlan::seeded`] with no faults for plain supervised
    /// operation, or a populated plan for a chaos run — the plan's link
    /// schedule runs on the cluster's virtual clock, its route rules are
    /// installed on every broker, and its kill switches are armed inside the
    /// matching processes.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] if the configuration is invalid, a process
    /// cannot be (re)spawned, or the controller itself dies.
    pub fn run_supervised(
        config: DeploymentConfig,
        supervision: SupervisionConfig,
        plan: FaultPlan,
        telemetry: xt_telemetry::Telemetry,
    ) -> Result<(RunReport, RecoveryReport), DeployError> {
        config.validate().map_err(DeployError::new)?;
        let dims = build_env(&config.env, 0, config.obs_dim_override, config.step_latency_us)
            .map_err(DeployError::new)?;
        let obs_dim = dims.observation_dim();
        let num_actions = dims.num_actions();
        drop(dims);
        let num_explorers = config.total_explorers();

        let cluster = Cluster::new(config.cluster.clone());
        let comm = config
            .comm
            .clone()
            .with_heartbeat(supervision.heartbeat_interval_ms, MONITOR);
        let brokers: Vec<Broker> = (0..cluster.len())
            .map(|m| Broker::with_telemetry(m, cluster.clone(), comm.clone(), telemetry.clone()))
            .collect();
        connect_brokers(&brokers);

        // The monitor endpoint must exist before any beaconing endpoint: the
        // very first heartbeat fires at endpoint spawn and needs a route.
        let monitor_ep = brokers[config.learner_machine].endpoint(MONITOR);
        plan.install(&cluster, &brokers);

        let detector = FailureDetector::new(supervision.detector, telemetry.clone());
        detector.watch(ProcessId::learner(0));
        for i in 0..num_explorers {
            detector.watch(ProcessId::explorer(i));
        }

        // Store-resident replay: the shard service lives beside the learner's
        // broker and outlives learner incarnations — experience survives a
        // learner crash. Its endpoint beacons like every other, so the
        // detector auto-registers it on the first heartbeat.
        let plane = build_replay_plane(&config, obs_dim, &telemetry);
        let replay_service = match &plane {
            Some(plane) => {
                let ep = brokers[config.learner_machine].endpoint(ProcessId::replay(0));
                let stop = Arc::new(AtomicBool::new(false));
                let (plane, stop2) = (plane.clone(), stop.clone());
                let handle = spawn_process("xt-replay-0".into(), move || {
                    xt_replay::run_replay_service(ep, plane, ProcessId::learner(0), stop2)
                })?;
                Some((stop, handle))
            }
            None => None,
        };
        let rollout_dst =
            if plane.is_some() { ProcessId::replay(0) } else { ProcessId::learner(0) };

        let mut algorithm = build_algorithm_with_replay(
            &config.algorithm,
            obs_dim,
            num_actions,
            num_explorers,
            config.rollout_len,
            config.seed,
            plane.as_ref(),
        );
        if let Some(params) = &config.initial_params {
            algorithm.load_params(params);
        }
        let sync = algorithm.sync_mode();
        let algo_name = algorithm.name().to_string();
        let start = Instant::now();

        let spawn_learner = |algorithm: Box<dyn xingtian_algos::api::Algorithm>,
                             endpoint: Endpoint,
                             probe: Option<xt_fault::ProcessProbe>|
         -> Result<JoinHandle<LearnerOutcome>, DeployError> {
            let checkpointer = match &config.checkpoint {
                Some(c) => Some(
                    crate::checkpoint::Checkpointer::new(c.clone())
                        .map_err(|e| DeployError::new(format!("cannot set up checkpoints: {e}")))?,
                ),
                None => None,
            };
            let param_compression = config.comm.param_compression;
            spawn_process("xt-learner".into(), move || {
                LearnerProcess { endpoint, algorithm, checkpointer, probe, param_compression }.run()
            })
        };
        let spawn_explorer = |i: u32,
                              generation: u32,
                              endpoint: Endpoint,
                              probe: Option<xt_fault::ProcessProbe>|
         -> Result<JoinHandle<ExplorerOutcome>, DeployError> {
            // Each incarnation explores from a distinct seed so a respawned
            // explorer does not re-walk its predecessor's exact trajectory.
            let seed = config
                .seed
                .wrapping_mul(1000)
                .wrapping_add(u64::from(i))
                .wrapping_add(u64::from(generation).wrapping_mul(0x9E37_79B9));
            let env = build_env(&config.env, seed, config.obs_dim_override, config.step_latency_us)
                .map_err(DeployError::new)?;
            let agent = build_agent(
                &config.algorithm,
                obs_dim,
                num_actions,
                num_explorers,
                config.rollout_len,
                config.seed,
                i,
            );
            let rollout_len = config.rollout_len;
            spawn_process(format!("xt-explorer-{i}"), move || {
                ExplorerProcess {
                    index: i,
                    endpoint,
                    env,
                    agent,
                    rollout_len,
                    rollout_dst,
                    sync,
                    probe,
                }
                .run()
            })
        };

        let learner_ep = brokers[config.learner_machine].endpoint(ProcessId::learner(0));
        let mut rollout_latency_src = learner_ep.delivery_stats_arc();
        let mut learner_handle = Some(spawn_learner(
            algorithm,
            learner_ep,
            Some(plan.probe_for(ProcessId::learner(0), Some(cluster.time_source()))),
        )?);

        let mut slots: Vec<ExplorerSlot> = Vec::with_capacity(num_explorers as usize);
        for i in 0..num_explorers {
            let endpoint = brokers[config.explorer_machine(i)].endpoint(ProcessId::explorer(i));
            let probe = Some(plan.probe_for(ProcessId::explorer(i), Some(cluster.time_source())));
            slots.push(ExplorerSlot {
                handle: Some(spawn_explorer(i, 0, endpoint, probe)?),
                respawns: 0,
                outcomes: Vec::new(),
                awaiting_detection: false,
            });
        }

        let controller_ep = brokers[config.learner_machine].endpoint(ProcessId::controller(0));
        let controller_handle = spawn_process("xt-controller".into(), move || {
            ControllerProcess {
                endpoint: controller_ep,
                goal_steps: config.goal_steps,
                max_duration: Duration::from_secs_f64(config.max_seconds),
                num_explorers,
            }
            .run()
        })?;

        // Learner-incarnation accumulators (summed across restores; the
        // timeline and final parameters come from the last incarnation).
        let mut steps_consumed = 0u64;
        let mut train_sessions = 0u64;
        let mut train_time = Duration::ZERO;
        let mut last_learner_outcome: Option<LearnerOutcome> = None;
        let mut explorer_respawns: Vec<u32> = Vec::new();
        let mut learner_restores = 0u32;
        let mut learner_awaiting_detection = false;
        let mut restored_param_version: Option<u64> = None;

        // ---- Supervision loop -------------------------------------------
        let poll = Duration::from_millis(supervision.poll_interval_ms.max(1));
        loop {
            // 1. Feed the detector: drain heartbeats, sweep for silence.
            while let Some(msg) = monitor_ep.try_recv() {
                detector.observe_message(&msg.header);
            }
            detector.sweep();

            // 2. Reap dead explorers. `Err` from join proves the thread
            // panicked and unwound — its endpoint is deregistered, so the
            // same ProcessId can re-register safely. The respawn itself is
            // deferred until the detector publishes the death.
            for (i, slot) in slots.iter_mut().enumerate() {
                let i_u32 = i as u32;
                let pid = ProcessId::explorer(i_u32);
                if slot.handle.as_ref().is_some_and(std::thread::JoinHandle::is_finished) {
                    let handle = slot.handle.take().expect("finished handle present");
                    match handle.join() {
                        Ok(outcome) => {
                            // Normal exit (shutdown reached it): keep the stats.
                            detector.forget(pid);
                            slot.outcomes.push(outcome);
                        }
                        Err(_) if slot.respawns < supervision.max_respawns_per_explorer => {
                            slot.awaiting_detection = true;
                        }
                        Err(_) => {
                            eprintln!(
                                "supervisor: explorer {i_u32} out of respawn budget, degrading"
                            );
                        }
                    }
                }
                if slot.awaiting_detection
                    && detector.liveness(pid) == Some(xt_fault::Liveness::Down)
                {
                    slot.awaiting_detection = false;
                    slot.respawns += 1;
                    let generation = slot.respawns;
                    let endpoint = brokers[config.explorer_machine(i_u32)].endpoint(pid);
                    match spawn_explorer(i_u32, generation, endpoint, None) {
                        Ok(h) => {
                            explorer_respawns.push(i_u32);
                            slot.handle = Some(h);
                        }
                        Err(e) => {
                            eprintln!(
                                "supervisor: cannot respawn explorer {i_u32} (degrading): {e}"
                            );
                        }
                    }
                }
            }

            // 3. Reap a dead learner: once the detector confirms the death,
            // restore from checkpoint and respawn.
            if learner_handle.as_ref().is_some_and(JoinHandle::is_finished) {
                let handle = learner_handle.take().expect("finished handle present");
                match handle.join() {
                    Ok(outcome) => {
                        detector.forget(ProcessId::learner(0));
                        steps_consumed += outcome.steps_consumed;
                        train_sessions += outcome.train_sessions;
                        train_time += outcome.train_time;
                        last_learner_outcome = Some(outcome);
                    }
                    Err(_) if learner_restores < supervision.max_learner_restores => {
                        learner_awaiting_detection = true;
                    }
                    Err(_) => {
                        return Err(DeployError::new(
                            "learner died and is out of restore budget",
                        ));
                    }
                }
            }
            if learner_awaiting_detection
                && detector.liveness(ProcessId::learner(0)) == Some(xt_fault::Liveness::Down)
            {
                learner_awaiting_detection = false;
                learner_restores += 1;
                // The rebuilt learner re-attaches to the surviving replay
                // plane: everything ingested before the crash is still
                // sampleable the moment the restore completes.
                let mut algorithm = build_algorithm_with_replay(
                    &config.algorithm,
                    obs_dim,
                    num_actions,
                    num_explorers,
                    config.rollout_len,
                    config.seed,
                    plane.as_ref(),
                );
                match config.checkpoint.as_ref().map(|c| load_latest(&c.dir)) {
                    Some(Ok(blob)) => {
                        restored_param_version = Some(blob.version);
                        algorithm.load_params(&blob.params);
                    }
                    Some(Err(e)) => {
                        eprintln!(
                            "supervisor: learner restarting from scratch \
                             (no restorable checkpoint: {e})"
                        );
                    }
                    None => {
                        eprintln!(
                            "supervisor: learner restarting from scratch \
                             (checkpointing disabled)"
                        );
                    }
                }
                let endpoint = brokers[config.learner_machine].endpoint(ProcessId::learner(0));
                rollout_latency_src = endpoint.delivery_stats_arc();
                learner_handle = Some(spawn_learner(algorithm, endpoint, None)?);
            }

            // 4. The controller ending the run ends supervision.
            if controller_handle.is_finished() {
                break;
            }
            std::thread::sleep(poll);
        }

        let controller_outcome: ControllerOutcome = controller_handle
            .join()
            .map_err(|_| DeployError::new("controller thread panicked"))?;
        detector.forget(ProcessId::controller(0));

        // A process respawned *after* the controller broadcast shutdown never
        // saw the command; one more broadcast from the monitor endpoint
        // guarantees every live process gets it (shutdown is idempotent).
        let mut dst: Vec<ProcessId> = (0..num_explorers).map(ProcessId::explorer).collect();
        dst.push(ProcessId::learner(0));
        monitor_ep.send_to(
            dst,
            MessageKind::Control,
            Bytes::from(crate::messages::ControlCommand::Shutdown.to_bytes()),
        );

        // Final joins. Post-shutdown panics are possible (a probe can fire on
        // the last pulse before the command is handled) — they degrade, never
        // respawn.
        if let Some(handle) = learner_handle.take() {
            match handle.join() {
                Ok(outcome) => {
                    steps_consumed += outcome.steps_consumed;
                    train_sessions += outcome.train_sessions;
                    train_time += outcome.train_time;
                    last_learner_outcome = Some(outcome);
                }
                Err(_) => return Err(DeployError::new("learner panicked during shutdown")),
            }
        }
        for (i, slot) in slots.iter_mut().enumerate() {
            if let Some(handle) = slot.handle.take() {
                match handle.join() {
                    Ok(outcome) => slot.outcomes.push(outcome),
                    Err(_) => {
                        eprintln!("supervisor: explorer {i} panicked during shutdown");
                    }
                }
            }
        }

        // The replay service stops only after every producer and consumer has
        // joined: rollouts still in the channel get ingested, and the plane's
        // torn-write audit runs on the final state.
        let replay_summary = match replay_service {
            Some((stop, handle)) => {
                stop.store(true, Ordering::Release);
                let outcome = handle
                    .join()
                    .map_err(|_| DeployError::new("replay service thread panicked"))?;
                detector.forget(ProcessId::replay(0));
                let integrity =
                    plane.as_ref().expect("replay service implies a plane").integrity();
                Some((outcome, integrity))
            }
            None => None,
        };

        // Everything has exited; the stores should drain to empty as routers
        // finish in-flight work. Give them a bounded moment before declaring
        // leftovers a leak.
        let drain_deadline = Instant::now() + Duration::from_secs(2);
        let leaked_objects = loop {
            while let Some(msg) = monitor_ep.try_recv() {
                detector.observe_message(&msg.header);
            }
            let remaining: usize = brokers.iter().map(|b| b.store().len()).sum();
            if remaining == 0 || Instant::now() >= drain_deadline {
                break remaining;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        let down_at_exit = detector.down();
        let transitions = detector.transitions();
        monitor_ep.close();
        let wall_time = start.elapsed();
        for b in &brokers {
            b.shutdown();
        }

        let mut episode_returns = Vec::new();
        for slot in &slots {
            for o in &slot.outcomes {
                episode_returns.extend_from_slice(o.tracker.returns());
            }
        }
        let _ = controller_outcome;

        let dangling_replay_slots =
            replay_summary.as_ref().map_or(0, |(_, integrity)| integrity.dangling_slots);
        let replay = replay_summary.map(|(outcome, integrity)| ReplayReport {
            batches_ingested: outcome.batches_ingested,
            steps_ingested: outcome.steps_ingested,
            sample_requests: outcome.sample_requests,
            resident: integrity.resident,
            dangling_slots: integrity.dangling_slots,
        });

        let last = last_learner_outcome
            .ok_or_else(|| DeployError::new("no learner incarnation completed"))?;
        let mean_train_time = if train_sessions > 0 {
            train_time / train_sessions as u32
        } else {
            Duration::ZERO
        };
        let report = RunReport {
            algorithm: algo_name,
            env: config.env.clone(),
            steps_consumed,
            wall_time,
            timeline: last.timeline,
            learner_wait: last.wait_stats,
            rollout_latency: rollout_latency_src,
            episode_returns,
            train_sessions,
            mean_train_time,
            final_params: last.final_params,
            replay,
        };
        let recovery = RecoveryReport {
            explorer_respawns,
            learner_restores,
            restored_param_version,
            transitions,
            down_at_exit,
            leaked_objects,
            dangling_replay_slots,
        };
        Ok((report, recovery))
    }
}
