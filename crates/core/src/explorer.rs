//! The explorer process: environment interaction and rollout generation.
//!
//! An explorer owns one environment instance and one agent (the paper's
//! `Agent` class holding DNN copies). Its workhorse loop is fully
//! decentralized: it reacts to parameter messages whenever they arrive, steps
//! the environment otherwise, and pushes a rollout batch into its send buffer
//! the instant `rollout_len` steps have accumulated — the sender thread of the
//! endpoint takes it from there, so transmission overlaps the very next
//! environment step.

use crate::assignment::AssignmentTable;
use crate::messages::{ControlCommand, ParamAck, StatsMsg};
use crate::parameters::{IngestOutcome, ParamReceiver};
use bytes::Bytes;
use std::sync::Arc;
use gymlite::{Environment, EpisodeTracker};
use xingtian_algos::api::{Agent, SyncMode};
use xingtian_algos::payload::{RolloutBatch, RolloutStep};
use xingtian_comm::Endpoint;
use xingtian_message::codec::{Decode, Encode};
use xingtian_message::{Header, MessageKind, ProcessId};

/// How many rollout batches an explorer may have staged in its send buffer
/// before it pauses generation (source-side flow control).
pub const MAX_INFLIGHT_BATCHES: usize = 4;

/// Where an explorer's rollout batches go.
///
/// The classic deployments froze one [`ProcessId`] at build time; with
/// sharded learners the destination is re-read from the live
/// [`AssignmentTable`] before *every* send, so a rebalance (or a learner
/// shard respawning under supervision) redirects the very next batch without
/// restarting the explorer.
#[derive(Clone)]
pub enum RolloutRoute {
    /// Destination resolved once at deployment build (single learner, or the
    /// store-resident replay shard).
    Fixed(ProcessId),
    /// Destination looked up per batch in the shared assignment table.
    Assigned(Arc<AssignmentTable>),
}

impl RolloutRoute {
    /// The destination for `explorer`'s next batch.
    pub fn resolve(&self, explorer: u32) -> ProcessId {
        match self {
            RolloutRoute::Fixed(dst) => *dst,
            RolloutRoute::Assigned(table) => table.rollout_dst(explorer),
        }
    }
}

/// Configuration of one explorer process.
pub struct ExplorerProcess {
    /// Explorer index within the deployment.
    pub index: u32,
    /// Communication endpoint (`ProcessId::explorer(index)`).
    pub endpoint: Endpoint,
    /// The environment to interact with.
    pub env: Box<dyn Environment>,
    /// The agent choosing actions.
    pub agent: Box<dyn Agent>,
    /// Steps per rollout message.
    pub rollout_len: usize,
    /// Where rollout batches go: a fixed destination (classic), or the live
    /// assignment table (sharded learners).
    pub route: RolloutRoute,
    /// The deployment's synchronization discipline.
    pub sync: SyncMode,
    /// Fault-injection kill switch, pulsed once per environment step
    /// (`None` = not under chaos).
    pub probe: Option<xt_fault::ProcessProbe>,
}

/// What an explorer reports when it shuts down.
#[derive(Debug)]
pub struct ExplorerOutcome {
    /// Episode statistics gathered over the explorer's lifetime.
    pub tracker: EpisodeTracker,
    /// Rollout batches sent.
    pub batches_sent: u64,
}

impl ExplorerProcess {
    /// Runs the explorer until the controller broadcasts shutdown.
    pub fn run(mut self) -> ExplorerOutcome {
        let controller = ProcessId::controller(0);
        let mut tracker = EpisodeTracker::new(100);
        // Parameter-plane decoder: the current reconstruction, updated in
        // place from delta/quantized frames (or plain blobs).
        let mut params = ParamReceiver::new();
        let mut steps: Vec<RolloutStep> = Vec::with_capacity(self.rollout_len);
        let batches_counter = self.endpoint.telemetry().counter("explorer.batches_sent");
        let backpressure_counter = self.endpoint.telemetry().counter("explorer.backpressure_waits");
        let infer_hist = self.endpoint.telemetry().histogram("learn.infer_ns");
        let mut batches_sent = 0u64;
        let mut steps_since_stats = 0u64;
        let mut returns_since_stats: Vec<f32> = Vec::new();
        let mut episodes_before = 0usize;
        let mut obs = self.env.reset();

        loop {
            // React to everything that has already arrived (parameters,
            // control commands) without blocking.
            while let Some(msg) = self.endpoint.try_recv() {
                if self.handle_message(&msg.header, &msg.body, &mut params) {
                    return ExplorerOutcome { tracker, batches_sent };
                }
            }

            // Chaos hook: an armed probe panics here, mid-loop, exactly like
            // an organic crash would — the endpoint drops during unwind and
            // heartbeats stop.
            if let Some(probe) = &self.probe {
                probe.pulse();
            }

            let t_act = std::time::Instant::now();
            let selection = self.agent.act(&obs);
            infer_hist.record_duration(t_act.elapsed());
            let step = self.env.step(selection.action);
            tracker.record_step(step.reward, step.done);
            steps_since_stats += 1;
            if tracker.episodes() > episodes_before {
                returns_since_stats.extend_from_slice(&tracker.returns()[episodes_before..]);
                episodes_before = tracker.episodes();
            }
            steps.push(RolloutStep {
                observation: std::mem::take(&mut obs),
                action: selection.action as u32,
                reward: step.reward,
                done: step.done,
                behavior_logits: selection.logits,
                value: selection.value,
                next_observation: self
                    .agent
                    .records_next_observation()
                    .then(|| step.observation.clone()),
            });
            obs = if step.done { self.env.reset() } else { step.observation };

            if steps.len() >= self.rollout_len {
                // Flow control: an explorer may run at most a few rollouts
                // ahead of the channel. Beyond that it would only burn CPU
                // producing data the saturated learner cannot consume yet
                // (paper Fig. 11: throughput *plateaus* at saturation). The
                // wait is idle, and control traffic stays live.
                if self.endpoint.send_backlog() >= MAX_INFLIGHT_BATCHES {
                    // One count per stalled rollout, not per spin: the gauge
                    // the elastic supervisor and the scale sweeps read is
                    // "how often did generation outpace the channel".
                    backpressure_counter.inc();
                }
                while self.endpoint.send_backlog() >= MAX_INFLIGHT_BATCHES {
                    while let Some(msg) = self.endpoint.try_recv() {
                        if self.handle_message(&msg.header, &msg.body, &mut params) {
                            return ExplorerOutcome { tracker, batches_sent };
                        }
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                let sent_version = self.agent.param_version();
                let batch = RolloutBatch {
                    explorer: self.index,
                    param_version: sent_version,
                    steps: std::mem::take(&mut steps),
                    bootstrap_observation: obs.clone(),
                };
                // Aggressive push: the message is staged and the workhorse
                // keeps going; the sender thread transmits concurrently. The
                // destination is resolved now, not at build time.
                self.endpoint.send_to(
                    vec![self.route.resolve(self.index)],
                    MessageKind::Rollout,
                    Bytes::from(batch.to_bytes()),
                );
                batches_sent += 1;
                batches_counter.inc();
                steps.reserve(self.rollout_len);

                let stats = StatsMsg {
                    source: self.index,
                    steps: steps_since_stats,
                    episode_returns: std::mem::take(&mut returns_since_stats),
                };
                self.endpoint.send_to(vec![controller], MessageKind::Stats, Bytes::from(stats.to_bytes()));
                steps_since_stats = 0;

                if self.sync == SyncMode::OnPolicy {
                    // On-policy gate: wait for parameters newer than the ones
                    // that produced the batch just sent.
                    loop {
                        let Some(msg) = self.endpoint.recv() else {
                            return ExplorerOutcome { tracker, batches_sent };
                        };
                        if self.handle_message(&msg.header, &msg.body, &mut params) {
                            return ExplorerOutcome { tracker, batches_sent };
                        }
                        if self.agent.param_version() > sent_version {
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Processes one incoming message. Returns `true` on shutdown.
    fn handle_message(&mut self, header: &Header, body: &Bytes, params: &mut ParamReceiver) -> bool {
        match header.kind {
            MessageKind::Parameters => {
                match params.ingest(header.compression, body) {
                    IngestOutcome::Applied(version) => {
                        self.agent.apply_params(params.blob());
                        self.ack(header.src, version, true);
                    }
                    IngestOutcome::Stale => {}
                    // Undecodable against what we hold (respawn lost the
                    // base, corrupt frame): report our actual version so the
                    // learner rebases and resends full.
                    IngestOutcome::Rejected { held } => self.ack(header.src, held, false),
                }
                false
            }
            MessageKind::Control => {
                matches!(ControlCommand::from_bytes(body), Ok(ControlCommand::Shutdown))
            }
            _ => false,
        }
    }

    fn ack(&self, to: ProcessId, version: u64, applied: bool) {
        let ack = ParamAck { explorer: self.index, version, applied };
        self.endpoint.send_to(vec![to], MessageKind::ParamAck, Bytes::from(ack.to_bytes()));
    }
}
