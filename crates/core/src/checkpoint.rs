//! Periodic DNN checkpoints (paper §4.2).
//!
//! The paper's `Algorithm` class "save[s] the checkpoints of the DNNs
//! periodically to restore DNN parameters after failure, which provides
//! sufficient fault tolerance for DRL algorithms without significant
//! overheads". The learner process writes a [`ParamBlob`] snapshot every
//! `every_sessions` training sessions; [`load_latest`] restores one into a
//! new deployment via `DeploymentConfig::initial_params`.

use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use xingtian_algos::payload::ParamBlob;
use xingtian_message::codec::{Decode, Encode};

/// Checkpointing policy for a deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Directory checkpoints are written into (created if absent).
    pub dir: PathBuf,
    /// Training sessions between checkpoints.
    pub every_sessions: u64,
    /// How many versioned checkpoints to retain (oldest are deleted;
    /// `latest.ckpt` always exists in addition).
    pub keep: usize,
}

impl CheckpointConfig {
    /// Checkpoints into `dir` every `every_sessions` sessions, keeping 3.
    pub fn new(dir: impl Into<PathBuf>, every_sessions: u64) -> Self {
        CheckpointConfig { dir: dir.into(), every_sessions: every_sessions.max(1), keep: 3 }
    }
}

/// Writes checkpoints according to a [`CheckpointConfig`].
#[derive(Debug)]
pub struct Checkpointer {
    config: CheckpointConfig,
    written: Vec<PathBuf>,
    sessions_since: u64,
}

impl Checkpointer {
    /// Creates the checkpointer, ensuring the directory exists.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory cannot be created.
    pub fn new(config: CheckpointConfig) -> io::Result<Self> {
        fs::create_dir_all(&config.dir)?;
        Ok(Checkpointer { config, written: Vec::new(), sessions_since: 0 })
    }

    /// Notifies the checkpointer that a training session completed; persists
    /// `blob` when the period elapses. Returns the path written, if any.
    ///
    /// I/O failures are reported but intentionally non-fatal: losing a
    /// checkpoint must not kill training.
    pub fn on_session(&mut self, blob: &ParamBlob) -> Option<PathBuf> {
        self.sessions_since += 1;
        if self.sessions_since < self.config.every_sessions {
            return None;
        }
        self.sessions_since = 0;
        match self.write(blob) {
            Ok(path) => Some(path),
            Err(e) => {
                eprintln!("checkpoint write failed (continuing): {e}");
                None
            }
        }
    }

    fn write(&mut self, blob: &ParamBlob) -> io::Result<PathBuf> {
        let bytes = blob.to_bytes();
        let path = self.config.dir.join(format!("checkpoint_v{}.ckpt", blob.version));
        atomic_write(&path, &bytes)?;
        atomic_write(&self.config.dir.join("latest.ckpt"), &bytes)?;
        self.written.push(path.clone());
        while self.written.len() > self.config.keep {
            let old = self.written.remove(0);
            let _ = fs::remove_file(old);
        }
        Ok(path)
    }
}

fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Loads a checkpoint file written by [`Checkpointer`].
///
/// # Errors
///
/// Returns an error if the file is unreadable or not a valid checkpoint.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<ParamBlob, String> {
    let bytes = fs::read(path.as_ref())
        .map_err(|e| format!("cannot read {}: {e}", path.as_ref().display()))?;
    ParamBlob::from_bytes(&bytes).map_err(|e| format!("corrupt checkpoint: {e}"))
}

/// Loads the newest restorable checkpoint from a checkpoint directory.
///
/// Prefers `latest.ckpt`; if that file is missing, truncated, or corrupt
/// (e.g. the writer died mid-rename or the disk flipped bits), falls back to
/// the versioned `checkpoint_v{N}.ckpt` files in descending version order and
/// returns the first one that decodes. A crash can cost at most the
/// checkpoints that were themselves damaged — never the whole history.
///
/// # Errors
///
/// Returns an error if no file in the directory decodes as a checkpoint,
/// naming the primary (`latest.ckpt`) failure.
pub fn load_latest(dir: impl AsRef<Path>) -> Result<ParamBlob, String> {
    let dir = dir.as_ref();
    let primary = match load_checkpoint(dir.join("latest.ckpt")) {
        Ok(blob) => return Ok(blob),
        Err(e) => e,
    };
    // Fall back to versioned checkpoints, newest first.
    let mut versioned: Vec<(u64, PathBuf)> = fs::read_dir(dir)
        .map_err(|e| format!("{primary}; cannot scan {}: {e}", dir.display()))?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            let version =
                name.strip_prefix("checkpoint_v")?.strip_suffix(".ckpt")?.parse::<u64>().ok()?;
            Some((version, path))
        })
        .collect();
    versioned.sort_by_key(|&(version, _)| std::cmp::Reverse(version));
    for (version, path) in &versioned {
        if let Ok(blob) = load_checkpoint(path) {
            eprintln!(
                "checkpoint: latest.ckpt unusable ({primary}); restored v{version} from {}",
                path.display()
            );
            return Ok(blob);
        }
    }
    Err(format!("{primary}; no versioned checkpoint in {} decodes either", dir.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xt-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn blob(version: u64) -> ParamBlob {
        ParamBlob { version, params: vec![version as f32; 16] }
    }

    #[test]
    fn writes_on_period_and_round_trips() {
        let dir = tmpdir("rt");
        let mut c = Checkpointer::new(CheckpointConfig::new(&dir, 2)).unwrap();
        assert!(c.on_session(&blob(1)).is_none(), "period not reached");
        let path = c.on_session(&blob(2)).expect("period reached");
        assert!(path.exists());
        let restored = load_latest(&dir).unwrap();
        assert_eq!(restored, blob(2));
        assert_eq!(load_checkpoint(path).unwrap(), blob(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_deletes_oldest() {
        let dir = tmpdir("keep");
        let mut cfg = CheckpointConfig::new(&dir, 1);
        cfg.keep = 2;
        let mut c = Checkpointer::new(cfg).unwrap();
        for v in 1..=4 {
            c.on_session(&blob(v)).expect("every session checkpoints");
        }
        assert!(!dir.join("checkpoint_v1.ckpt").exists());
        assert!(!dir.join("checkpoint_v2.ckpt").exists());
        assert!(dir.join("checkpoint_v3.ckpt").exists());
        assert!(dir.join("checkpoint_v4.ckpt").exists());
        assert_eq!(load_latest(&dir).unwrap().version, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_is_an_error() {
        assert!(load_latest(tmpdir("missing")).is_err());
    }

    #[test]
    fn corrupt_checkpoint_is_an_error() {
        let dir = tmpdir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("latest.ckpt"), b"\xff\xfe").unwrap();
        assert!(load_latest(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Writes checkpoints v1..=3 and returns the directory.
    fn dir_with_history(tag: &str) -> PathBuf {
        let dir = tmpdir(tag);
        let mut c = Checkpointer::new(CheckpointConfig::new(&dir, 1)).unwrap();
        for v in 1..=3 {
            c.on_session(&blob(v)).expect("every session checkpoints");
        }
        dir
    }

    #[test]
    fn bit_flipped_latest_falls_back_to_newest_versioned() {
        let dir = dir_with_history("bitflip");
        // Flip a bit in the params-length varint: the decoder sees an
        // inflated length and fails with a short read.
        let mut bytes = fs::read(dir.join("latest.ckpt")).unwrap();
        bytes[8] ^= 0x40;
        fs::write(dir.join("latest.ckpt"), &bytes).unwrap();
        assert!(load_checkpoint(dir.join("latest.ckpt")).is_err(), "corruption must bite");
        let restored = load_latest(&dir).expect("versioned fallback");
        assert_eq!(restored, blob(3));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_latest_falls_back_to_newest_versioned() {
        let dir = dir_with_history("trunc");
        let bytes = fs::read(dir.join("latest.ckpt")).unwrap();
        fs::write(dir.join("latest.ckpt"), &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_checkpoint(dir.join("latest.ckpt")).is_err(), "truncation must bite");
        let restored = load_latest(&dir).expect("versioned fallback");
        assert_eq!(restored, blob(3));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fallback_skips_corrupt_versioned_checkpoints() {
        let dir = dir_with_history("skip");
        // Both latest and the newest versioned checkpoint are damaged; the
        // loader must reach back to v2.
        fs::write(dir.join("latest.ckpt"), b"").unwrap();
        let mut bytes = fs::read(dir.join("checkpoint_v3.ckpt")).unwrap();
        bytes[8] ^= 0x40;
        fs::write(dir.join("checkpoint_v3.ckpt"), &bytes).unwrap();
        let restored = load_latest(&dir).expect("reaches back past damaged v3");
        assert_eq!(restored, blob(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_checkpoints_corrupt_is_an_error_naming_the_primary() {
        let dir = dir_with_history("hopeless");
        for name in ["latest.ckpt", "checkpoint_v1.ckpt", "checkpoint_v2.ckpt", "checkpoint_v3.ckpt"]
        {
            fs::write(dir.join(name), b"\x00").unwrap();
        }
        let err = load_latest(&dir).unwrap_err();
        assert!(err.contains("corrupt checkpoint"), "primary failure named: {err}");
        assert!(err.contains("no versioned checkpoint"), "fallback exhaustion named: {err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
