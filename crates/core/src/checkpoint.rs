//! Periodic DNN checkpoints (paper §4.2).
//!
//! The paper's `Algorithm` class "save[s] the checkpoints of the DNNs
//! periodically to restore DNN parameters after failure, which provides
//! sufficient fault tolerance for DRL algorithms without significant
//! overheads". The learner process writes a [`ParamBlob`] snapshot every
//! `every_sessions` training sessions; [`load_latest`] restores one into a
//! new deployment via `DeploymentConfig::initial_params`.

use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use xingtian_algos::payload::ParamBlob;
use xingtian_message::codec::{Decode, Encode};

/// Checkpointing policy for a deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Directory checkpoints are written into (created if absent).
    pub dir: PathBuf,
    /// Training sessions between checkpoints.
    pub every_sessions: u64,
    /// How many versioned checkpoints to retain (oldest are deleted;
    /// `latest.ckpt` always exists in addition).
    pub keep: usize,
}

impl CheckpointConfig {
    /// Checkpoints into `dir` every `every_sessions` sessions, keeping 3.
    pub fn new(dir: impl Into<PathBuf>, every_sessions: u64) -> Self {
        CheckpointConfig { dir: dir.into(), every_sessions: every_sessions.max(1), keep: 3 }
    }
}

/// Writes checkpoints according to a [`CheckpointConfig`].
#[derive(Debug)]
pub struct Checkpointer {
    config: CheckpointConfig,
    written: Vec<PathBuf>,
    sessions_since: u64,
}

impl Checkpointer {
    /// Creates the checkpointer, ensuring the directory exists.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory cannot be created.
    pub fn new(config: CheckpointConfig) -> io::Result<Self> {
        fs::create_dir_all(&config.dir)?;
        Ok(Checkpointer { config, written: Vec::new(), sessions_since: 0 })
    }

    /// Notifies the checkpointer that a training session completed; persists
    /// `blob` when the period elapses. Returns the path written, if any.
    ///
    /// I/O failures are reported but intentionally non-fatal: losing a
    /// checkpoint must not kill training.
    pub fn on_session(&mut self, blob: &ParamBlob) -> Option<PathBuf> {
        self.sessions_since += 1;
        if self.sessions_since < self.config.every_sessions {
            return None;
        }
        self.sessions_since = 0;
        match self.write(blob) {
            Ok(path) => Some(path),
            Err(e) => {
                eprintln!("checkpoint write failed (continuing): {e}");
                None
            }
        }
    }

    fn write(&mut self, blob: &ParamBlob) -> io::Result<PathBuf> {
        let bytes = blob.to_bytes();
        let path = self.config.dir.join(format!("checkpoint_v{}.ckpt", blob.version));
        atomic_write(&path, &bytes)?;
        atomic_write(&self.config.dir.join("latest.ckpt"), &bytes)?;
        self.written.push(path.clone());
        while self.written.len() > self.config.keep {
            let old = self.written.remove(0);
            let _ = fs::remove_file(old);
        }
        Ok(path)
    }
}

fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Loads a checkpoint file written by [`Checkpointer`].
///
/// # Errors
///
/// Returns an error if the file is unreadable or not a valid checkpoint.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<ParamBlob, String> {
    let bytes = fs::read(path.as_ref())
        .map_err(|e| format!("cannot read {}: {e}", path.as_ref().display()))?;
    ParamBlob::from_bytes(&bytes).map_err(|e| format!("corrupt checkpoint: {e}"))
}

/// Loads `latest.ckpt` from a checkpoint directory.
///
/// # Errors
///
/// Returns an error if no valid latest checkpoint exists.
pub fn load_latest(dir: impl AsRef<Path>) -> Result<ParamBlob, String> {
    load_checkpoint(dir.as_ref().join("latest.ckpt"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xt-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn blob(version: u64) -> ParamBlob {
        ParamBlob { version, params: vec![version as f32; 16] }
    }

    #[test]
    fn writes_on_period_and_round_trips() {
        let dir = tmpdir("rt");
        let mut c = Checkpointer::new(CheckpointConfig::new(&dir, 2)).unwrap();
        assert!(c.on_session(&blob(1)).is_none(), "period not reached");
        let path = c.on_session(&blob(2)).expect("period reached");
        assert!(path.exists());
        let restored = load_latest(&dir).unwrap();
        assert_eq!(restored, blob(2));
        assert_eq!(load_checkpoint(path).unwrap(), blob(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_deletes_oldest() {
        let dir = tmpdir("keep");
        let mut cfg = CheckpointConfig::new(&dir, 1);
        cfg.keep = 2;
        let mut c = Checkpointer::new(cfg).unwrap();
        for v in 1..=4 {
            c.on_session(&blob(v)).expect("every session checkpoints");
        }
        assert!(!dir.join("checkpoint_v1.ckpt").exists());
        assert!(!dir.join("checkpoint_v2.ckpt").exists());
        assert!(dir.join("checkpoint_v3.ckpt").exists());
        assert!(dir.join("checkpoint_v4.ckpt").exists());
        assert_eq!(load_latest(&dir).unwrap().version, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_is_an_error() {
        assert!(load_latest(tmpdir("missing")).is_err());
    }

    #[test]
    fn corrupt_checkpoint_is_an_error() {
        let dir = tmpdir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("latest.ckpt"), b"\xff\xfe").unwrap();
        assert!(load_latest(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
