//! XingTian: a DRL framework that co-designs communication and computation.
//!
//! This crate is the Rust reproduction of the framework described in
//! *Optimizing Communication in Deep Reinforcement Learning with XingTian*
//! (Middleware '22). The design principles (paper §3.1):
//!
//! * **Decentralized computation** — no task graph, no central scheduler.
//!   Explorer and learner workhorse threads are driven purely by the arrival
//!   of the data they await, and publish what they produce immediately.
//! * **Asynchronous, aggressive communication** — the sender initiates every
//!   transfer the moment data exist (see [`xingtian_comm`]), hiding
//!   serialization, compression, and NIC transfer behind computation.
//!
//! The crate wires the communication channel to the algorithm zoo:
//!
//! * [`config`] — deployment description (machines, explorer placement,
//!   algorithm, goals);
//! * [`explorer`] / [`learner`] — the two workhorse processes;
//! * [`controller`] — the center controller: statistics collection and
//!   goal-driven shutdown (paper §3.2.2);
//! * [`deployment`] — builds brokers and processes, runs to completion, and
//!   returns a [`stats::RunReport`];
//! * [`dummy`] — the paper's dummy DRL algorithm (§5.1) for measuring raw
//!   data-transmission efficiency;
//! * [`pbt`] — population-based training on top of isolated broker sets
//!   (paper §4.3);
//! * [`checkpoint`] — periodic DNN checkpoints for fault tolerance (paper
//!   §4.2);
//! * [`supervisor`] — heartbeat-driven failure detection and supervised
//!   recovery (respawn, checkpoint restore) under injected faults.
//!
//! # Examples
//!
//! Train PPO on CartPole with four explorers on one simulated machine:
//!
//! ```no_run
//! use xingtian::config::{AlgorithmSpec, DeploymentConfig};
//! use xingtian::deployment::Deployment;
//!
//! let config = DeploymentConfig::cartpole(AlgorithmSpec::ppo(), 4)
//!     .with_goal_steps(50_000);
//! let report = Deployment::run(config).expect("deployment runs");
//! println!("throughput: {:.0} steps/s", report.mean_throughput());
//! ```

pub mod allreduce;
pub mod assignment;
pub mod checkpoint;
pub mod config;
pub mod controller;
pub mod deployment;
pub mod dummy;
pub mod elastic;
pub mod explorer;
pub mod learner;
pub mod messages;
pub mod parameters;
pub mod pbt;
pub mod shard;
pub mod stats;
pub mod supervisor;

pub use config::{AlgorithmSpec, DeploymentConfig};
pub use elastic::{ElasticConfig, ElasticController, ElasticDecision};
pub use deployment::Deployment;
pub use parameters::{EncodedBroadcast, IngestOutcome, ParamBroadcaster, ParamReceiver};
pub use stats::RunReport;
pub use supervisor::{RecoveryReport, SupervisionConfig, MONITOR};
