//! The learner↔explorer parameter plane: delta bases, error feedback, and
//! the broadcast/ack protocol.
//!
//! [`ParamBroadcaster`] lives beside the learner's training loop and turns
//! each `param_blob` into the smallest frame every destination can decode:
//!
//! * It keeps a ring of the last [`RING_DEPTH`] *reconstructed* parameter
//!   vectors (what receivers actually hold, bit-for-bit — for quantized modes
//!   that is the dequantized form, not the learner's own weights) keyed by
//!   version, as candidate delta bases.
//! * Per explorer it tracks the last version `sent`; a delta frame is only
//!   emitted when every destination of the broadcast was last sent the *same*
//!   version and that version is still in the ring. Anything else — fresh
//!   explorer, respawned explorer, destinations out of sync, delta bigger
//!   than full — falls back to a full-f32 blob (`CompressionKind::None`, so
//!   the ordinary transport LZ4 path still applies to it).
//! * For the quantized modes it carries an error-feedback accumulator
//!   (arXiv:1812.03239): quantization error is added back into the next
//!   broadcast instead of being lost, so the explorers' policies track the
//!   learner's weights without bias. Full sends are exact and zero it.
//!
//! Receivers answer with [`crate::messages::ParamAck`]. A *nack*
//! (`applied == false`, carrying the version the receiver actually holds)
//! rebases the sender's `sent` entry so the next broadcast self-heals to a
//! full send — this is how a respawned explorer (which lost its base) rejoins
//! the delta chain. Ordinary acks only feed telemetry/bookkeeping: under the
//! channel's per-sender FIFO, `sent` is already the receiver's state.
//!
//! [`ParamReceiver`] is the explorer half: it holds the single current
//! reconstruction and applies frames *in place* into recycled buffers
//! (nothing is allocated per broadcast once warm).

use crate::messages::ParamAck;
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use xingtian_algos::payload::ParamBlob;
use xingtian_comm::ParamCompression;
use xingtian_message::codec::{decode_f32s_into, Decode, Encode, Reader};
use xingtian_message::{param, CompressionKind};
use xt_telemetry::{CounterHandle, Telemetry};

/// Recent parameter versions the learner keeps as candidate delta bases.
/// Deep enough for the notify cadences of the algo zoo at typical ack lag;
/// a destination older than the ring just gets a full send.
pub const RING_DEPTH: usize = 8;

/// A parameter broadcast ready to send: the encoded body plus the
/// [`CompressionKind`] to stamp on the header.
#[derive(Debug)]
pub struct EncodedBroadcast {
    /// Encoded body (a param-plane frame, or a plain [`ParamBlob`] for full
    /// sends).
    pub body: Bytes,
    /// Header compression kind (`None` for full sends — the transport LZ4
    /// threshold still applies to those).
    pub compression: CompressionKind,
    /// The parameter version carried.
    pub version: u64,
}

/// Learner-side encoder state for the parameter plane. See the module docs.
#[derive(Debug)]
pub struct ParamBroadcaster {
    mode: ParamCompression,
    /// `(version, receiver-visible reconstruction)`, oldest first.
    ring: VecDeque<(u64, Vec<f32>)>,
    /// Last version sent to each explorer (== what it holds, under FIFO
    /// delivery, until a nack says otherwise).
    sent: HashMap<u32, u64>,
    /// Highest version each explorer has confirmed applying.
    acked: HashMap<u32, u64>,
    /// Error-feedback accumulator for the quantized modes.
    err: Vec<f32>,
    full_sends: CounterHandle,
    delta_sends: CounterHandle,
    nacks: CounterHandle,
}

impl ParamBroadcaster {
    /// Creates a broadcaster in `mode`, reporting into `telemetry`.
    pub fn new(mode: ParamCompression, telemetry: &Telemetry) -> Self {
        ParamBroadcaster {
            mode,
            ring: VecDeque::with_capacity(RING_DEPTH + 1),
            sent: HashMap::new(),
            acked: HashMap::new(),
            err: Vec::new(),
            full_sends: telemetry.counter("param.full_sends"),
            delta_sends: telemetry.counter("param.delta_sends"),
            nacks: telemetry.counter("param.nacks"),
        }
    }

    /// The encoding mode this broadcaster runs in.
    pub fn mode(&self) -> ParamCompression {
        self.mode
    }

    /// Highest version `explorer` has confirmed applying.
    pub fn acked(&self, explorer: u32) -> Option<u64> {
        self.acked.get(&explorer).copied()
    }

    /// Encodes a broadcast of `blob` to `dst` and updates the delta-base
    /// bookkeeping (each destination is now assumed to hold `blob.version`
    /// until it nacks).
    pub fn encode(&mut self, blob: &ParamBlob, dst: &[u32]) -> EncodedBroadcast {
        let version = blob.version;
        let n = blob.params.len();
        let enc = match self.mode {
            ParamCompression::FullF32 => self.full(blob),
            _ => {
                // A resized network invalidates every old base and the
                // error accumulator.
                self.ring.retain(|(_, r)| r.len() == n);
                if self.err.len() != n {
                    self.err.clear();
                    self.err.resize(n, 0.0);
                }
                let base = self.common_base(dst);
                match self.mode {
                    ParamCompression::DeltaF32 => self.encode_delta_f32(blob, base),
                    ParamCompression::QuantizedI8 => self.encode_quant(blob),
                    ParamCompression::DeltaQuantizedI8 => self.encode_delta_quant(blob, base),
                    ParamCompression::FullF32 => unreachable!(),
                }
            }
        };
        for &e in dst {
            self.sent.insert(e, version);
        }
        enc
    }

    /// Folds an explorer's ack into the base bookkeeping.
    pub fn on_ack(&mut self, ack: &ParamAck) {
        if ack.applied {
            let e = self.acked.entry(ack.explorer).or_insert(0);
            *e = (*e).max(ack.version);
        } else {
            // The receiver reports the version it actually holds (possibly
            // nothing, after a respawn). Rebase `sent` to that reality: the
            // next broadcast either deltas from a ring entry it truly holds,
            // or finds no common base and goes out full.
            self.sent.insert(ack.explorer, ack.version);
            self.nacks.inc();
        }
    }

    /// The delta base usable for *all* of `dst`: every destination was last
    /// sent the same version and the ring still holds its reconstruction.
    /// (`min` over unequal versions would be wrong — a receiver holding a
    /// *newer* version cannot apply a delta from an older base.)
    fn common_base(&self, dst: &[u32]) -> Option<usize> {
        let mut it = dst.iter();
        let first = *self.sent.get(it.next()?)?;
        if !it.all(|e| self.sent.get(e) == Some(&first)) {
            return None;
        }
        self.ring.iter().position(|(v, _)| *v == first)
    }

    fn push_ring(&mut self, version: u64, recon: Vec<f32>) {
        self.ring.push_back((version, recon));
        while self.ring.len() > RING_DEPTH {
            self.ring.pop_front();
        }
    }

    /// Full-f32 fallback: exact, so the error accumulator resets.
    fn full(&mut self, blob: &ParamBlob) -> EncodedBroadcast {
        for e in &mut self.err {
            *e = 0.0;
        }
        self.push_ring(blob.version, blob.params.clone());
        self.full_sends.inc();
        EncodedBroadcast {
            body: Bytes::from(blob.to_bytes()),
            compression: CompressionKind::None,
            version: blob.version,
        }
    }

    fn encode_delta_f32(&mut self, blob: &ParamBlob, base: Option<usize>) -> EncodedBroadcast {
        let Some(idx) = base else { return self.full(blob) };
        let (base_version, base_params) = &self.ring[idx];
        let body =
            param::encode_delta_f32(blob.version, *base_version, &blob.params, base_params);
        if body.len() >= blob.encoded_size() {
            return self.full(blob);
        }
        self.push_ring(blob.version, blob.params.clone());
        self.delta_sends.inc();
        EncodedBroadcast {
            body: Bytes::from(body),
            compression: CompressionKind::DeltaF32,
            version: blob.version,
        }
    }

    fn encode_quant(&mut self, blob: &ParamBlob) -> EncodedBroadcast {
        // Compensated values: re-inject the quantization error of every
        // previous broadcast.
        let values: Vec<f32> =
            blob.params.iter().zip(&self.err).map(|(p, e)| p + e).collect();
        let mut recon = Vec::new();
        let body = param::encode_quantized_i8(blob.version, &values, &mut recon);
        if body.len() >= blob.encoded_size() {
            return self.full(blob);
        }
        for ((e, v), r) in self.err.iter_mut().zip(&values).zip(&recon) {
            *e = v - r;
        }
        self.push_ring(blob.version, recon);
        self.delta_sends.inc();
        EncodedBroadcast {
            body: Bytes::from(body),
            compression: CompressionKind::QuantizedI8,
            version: blob.version,
        }
    }

    fn encode_delta_quant(&mut self, blob: &ParamBlob, base: Option<usize>) -> EncodedBroadcast {
        let Some(idx) = base else { return self.full(blob) };
        let values: Vec<f32> =
            blob.params.iter().zip(&self.err).map(|(p, e)| p + e).collect();
        let (base_version, base_params) = &self.ring[idx];
        let deltas: Vec<f32> = values.iter().zip(base_params).map(|(v, b)| v - b).collect();
        let mut recon_d = Vec::new();
        let body =
            param::encode_delta_quantized_i8(blob.version, *base_version, &deltas, &mut recon_d);
        if body.len() >= blob.encoded_size() {
            return self.full(blob);
        }
        // The receiver computes `held[i] + dq[i]` — reproduce the identical
        // f32 add so the ring entry matches receiver state bit-for-bit.
        let recon: Vec<f32> =
            base_params.iter().zip(&recon_d).map(|(b, d)| b + d).collect();
        for ((e, v), r) in self.err.iter_mut().zip(&values).zip(&recon) {
            *e = v - r;
        }
        self.push_ring(blob.version, recon);
        self.delta_sends.inc();
        EncodedBroadcast {
            body: Bytes::from(body),
            compression: CompressionKind::DeltaQuantizedI8,
            version: blob.version,
        }
    }
}

/// What [`ParamReceiver::ingest`] did with a broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Applied; the receiver now holds this version. Ack it.
    Applied(u64),
    /// Older than (or equal to) what the receiver already holds; ignored.
    Stale,
    /// Could not be decoded (missing base, count mismatch, corrupt frame).
    /// Nack with the held version so the sender rebases.
    Rejected {
        /// The version the receiver still holds.
        held: u64,
    },
}

/// Explorer-side decoder state: the current parameter reconstruction, updated
/// in place from whatever frame kind arrives. Warm steady state allocates
/// nothing per broadcast.
#[derive(Debug)]
pub struct ParamReceiver {
    /// Current reconstruction, exposed as a [`ParamBlob`] so it can be handed
    /// straight to `Agent::apply_params`.
    blob: ParamBlob,
    /// Recycled decompression scratch.
    scratch: Vec<u8>,
}

impl Default for ParamReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl ParamReceiver {
    /// A receiver holding nothing (version 0, empty parameters).
    pub fn new() -> Self {
        ParamReceiver {
            blob: ParamBlob { version: 0, params: Vec::new() },
            scratch: Vec::new(),
        }
    }

    /// The version currently held.
    pub fn version(&self) -> u64 {
        self.blob.version
    }

    /// The current reconstruction, ready for `Agent::apply_params`.
    pub fn blob(&self) -> &ParamBlob {
        &self.blob
    }

    /// Applies one `Parameters` body (full blob or param-plane frame,
    /// dispatched on the header's `compression`) to the held reconstruction.
    pub fn ingest(&mut self, compression: CompressionKind, body: &[u8]) -> IngestOutcome {
        let held = self.blob.version;
        if compression.is_param_plane() {
            match param::peek_frame(body) {
                Ok(hdr) if hdr.version <= held => IngestOutcome::Stale,
                Ok(_) => match param::apply_frame(
                    body,
                    held,
                    &mut self.blob.params,
                    &mut self.scratch,
                ) {
                    Ok(v) => {
                        self.blob.version = v;
                        IngestOutcome::Applied(v)
                    }
                    Err(_) => IngestOutcome::Rejected { held },
                },
                Err(_) => IngestOutcome::Rejected { held },
            }
        } else {
            // Full ParamBlob (transport compression was already stripped by
            // the endpoint's receiver thread). Decoded into the recycled
            // params buffer.
            let mut r = Reader::new(body);
            let Ok(version) = u64::decode(&mut r) else {
                return IngestOutcome::Rejected { held };
            };
            if version < held {
                return IngestOutcome::Stale;
            }
            match decode_f32s_into(&mut r, &mut self.blob.params) {
                Ok(()) => {
                    self.blob.version = version;
                    IngestOutcome::Applied(version)
                }
                Err(_) => IngestOutcome::Rejected { held },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(version: u64, n: usize, seed: u64) -> ParamBlob {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).max(1);
        let params = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect();
        ParamBlob { version, params }
    }

    fn drift(b: &ParamBlob, magnitude: f32) -> ParamBlob {
        let noise = blob(0, b.params.len(), b.version + 99);
        ParamBlob {
            version: b.version + 1,
            params: b
                .params
                .iter()
                .zip(&noise.params)
                .map(|(p, n)| p + n * magnitude)
                .collect(),
        }
    }

    #[test]
    fn first_broadcast_is_full_then_deltas_chain_losslessly() {
        let t = Telemetry::disabled();
        let mut tx = ParamBroadcaster::new(ParamCompression::DeltaF32, &t);
        let mut rx = ParamReceiver::new();
        let dst = [0u32, 1, 2];
        let mut b = blob(1, 4096, 7);
        let enc = tx.encode(&b, &dst);
        assert_eq!(enc.compression, CompressionKind::None, "no base yet: full");
        assert_eq!(rx.ingest(enc.compression, &enc.body), IngestOutcome::Applied(1));
        for _ in 0..10 {
            b = drift(&b, 1e-4);
            let enc = tx.encode(&b, &dst);
            assert_eq!(enc.compression, CompressionKind::DeltaF32);
            assert_eq!(
                rx.ingest(enc.compression, &enc.body),
                IngestOutcome::Applied(b.version)
            );
            for (got, want) in rx.blob().params.iter().zip(&b.params) {
                assert_eq!(got.to_bits(), want.to_bits(), "delta chain is bit-lossless");
            }
        }
    }

    #[test]
    fn unequal_destination_versions_force_full_fallback() {
        let t = Telemetry::disabled();
        let mut tx = ParamBroadcaster::new(ParamCompression::DeltaF32, &t);
        let b1 = blob(1, 256, 3);
        // Explorer 0 got v1; explorer 1 never got anything.
        tx.encode(&b1, &[0]);
        let b2 = drift(&b1, 1e-3);
        let enc = tx.encode(&b2, &[0, 1]);
        assert_eq!(enc.compression, CompressionKind::None, "mixed bases: full");
        // Now both hold v2; the next broadcast deltas.
        let b3 = drift(&b2, 1e-3);
        assert_eq!(tx.encode(&b3, &[0, 1]).compression, CompressionKind::DeltaF32);
    }

    #[test]
    fn nack_rebases_and_heals_with_a_full_send() {
        let t = Telemetry::disabled();
        let mut tx = ParamBroadcaster::new(ParamCompression::DeltaF32, &t);
        let mut b = blob(1, 256, 5);
        tx.encode(&b, &[0]);
        b = drift(&b, 1e-3);
        let enc = tx.encode(&b, &[0]);
        assert_eq!(enc.compression, CompressionKind::DeltaF32);
        // A respawned explorer 0 holds nothing and nacks with version 0.
        let mut fresh = ParamReceiver::new();
        assert_eq!(
            fresh.ingest(enc.compression, &enc.body),
            IngestOutcome::Rejected { held: 0 }
        );
        tx.on_ack(&ParamAck { explorer: 0, version: 0, applied: false });
        b = drift(&b, 1e-3);
        let enc = tx.encode(&b, &[0]);
        assert_eq!(enc.compression, CompressionKind::None, "healed with a full send");
        assert_eq!(fresh.ingest(enc.compression, &enc.body), IngestOutcome::Applied(b.version));
        // And the chain resumes.
        b = drift(&b, 1e-3);
        let enc = tx.encode(&b, &[0]);
        assert_eq!(enc.compression, CompressionKind::DeltaF32);
        assert_eq!(fresh.ingest(enc.compression, &enc.body), IngestOutcome::Applied(b.version));
    }

    #[test]
    fn replica_joining_mid_chain_converges_after_exactly_one_full_send() {
        // The serving-plane attach case: a replica dies and its replacement
        // joins mid-delta-chain holding no base version, while the
        // broadcaster's bookkeeping still credits that index with the old
        // chain. The join must cost exactly one full send — the nack
        // rebases the broadcaster once, and the chain resumes as deltas
        // for everyone.
        let t = Telemetry::enabled();
        let full_sends = t.counter("param.full_sends");
        let mut tx = ParamBroadcaster::new(ParamCompression::DeltaF32, &t);
        let mut veteran = ParamReceiver::new();
        let mut original = ParamReceiver::new();

        // Establish a chain to both destinations: one boot full send, then
        // deltas, everyone acking.
        let mut b = blob(1, 512, 3);
        let enc = tx.encode(&b, &[0, 1]);
        assert_eq!(veteran.ingest(enc.compression, &enc.body), IngestOutcome::Applied(1));
        assert_eq!(original.ingest(enc.compression, &enc.body), IngestOutcome::Applied(1));
        tx.on_ack(&ParamAck { explorer: 0, version: 1, applied: true });
        tx.on_ack(&ParamAck { explorer: 1, version: 1, applied: true });
        for _ in 0..3 {
            b = drift(&b, 1e-3);
            let enc = tx.encode(&b, &[0, 1]);
            assert_eq!(enc.compression, CompressionKind::DeltaF32);
            assert_eq!(veteran.ingest(enc.compression, &enc.body), IngestOutcome::Applied(b.version));
            assert_eq!(original.ingest(enc.compression, &enc.body), IngestOutcome::Applied(b.version));
            tx.on_ack(&ParamAck { explorer: 0, version: b.version, applied: true });
            tx.on_ack(&ParamAck { explorer: 1, version: b.version, applied: true });
        }
        let boot_fulls = full_sends.get();

        // Destination 1 respawns with empty state; the broadcaster does not
        // know. The next broadcast is still a delta against the common base:
        // the veteran applies it, the joiner holds no base and nacks.
        let mut joiner = ParamReceiver::new();
        drop(original);
        b = drift(&b, 1e-3);
        let enc = tx.encode(&b, &[0, 1]);
        assert_eq!(enc.compression, CompressionKind::DeltaF32, "stale bookkeeping still deltas");
        assert_eq!(veteran.ingest(enc.compression, &enc.body), IngestOutcome::Applied(b.version));
        assert_eq!(joiner.ingest(enc.compression, &enc.body), IngestOutcome::Rejected { held: 0 });
        tx.on_ack(&ParamAck { explorer: 0, version: b.version, applied: true });
        tx.on_ack(&ParamAck { explorer: 1, version: 0, applied: false });

        // Self-heal: the send after the nack is full, both sides apply it...
        b = drift(&b, 1e-3);
        let enc = tx.encode(&b, &[0, 1]);
        assert_eq!(enc.compression, CompressionKind::None, "nack forces a rebase");
        assert_eq!(veteran.ingest(enc.compression, &enc.body), IngestOutcome::Applied(b.version));
        assert_eq!(joiner.ingest(enc.compression, &enc.body), IngestOutcome::Applied(b.version));
        tx.on_ack(&ParamAck { explorer: 0, version: b.version, applied: true });
        tx.on_ack(&ParamAck { explorer: 1, version: b.version, applied: true });
        assert_eq!(full_sends.get(), boot_fulls + 1, "the join costs exactly one full send");

        // ...and the chain resumes as deltas for the whole group, bit-exact.
        for _ in 0..3 {
            b = drift(&b, 1e-3);
            let enc = tx.encode(&b, &[0, 1]);
            assert_eq!(enc.compression, CompressionKind::DeltaF32);
            assert_eq!(veteran.ingest(enc.compression, &enc.body), IngestOutcome::Applied(b.version));
            assert_eq!(joiner.ingest(enc.compression, &enc.body), IngestOutcome::Applied(b.version));
            tx.on_ack(&ParamAck { explorer: 0, version: b.version, applied: true });
            tx.on_ack(&ParamAck { explorer: 1, version: b.version, applied: true });
        }
        assert_eq!(full_sends.get(), boot_fulls + 1, "no further full sends after healing");
        for (a, c) in joiner.blob().params.iter().zip(&b.params) {
            assert_eq!(a.to_bits(), c.to_bits(), "joiner reconstruction is bit-exact");
        }
    }

    #[test]
    fn quantized_error_feedback_keeps_reconstruction_unbiased() {
        let t = Telemetry::disabled();
        let mut tx = ParamBroadcaster::new(ParamCompression::DeltaQuantizedI8, &t);
        let mut rx = ParamReceiver::new();
        let mut b = blob(1, 4096, 11);
        let enc = tx.encode(&b, &[0]);
        rx.ingest(enc.compression, &enc.body);
        let mut max_err = 0.0f32;
        for _ in 0..50 {
            b = drift(&b, 1e-3);
            let enc = tx.encode(&b, &[0]);
            assert!(matches!(rx.ingest(enc.compression, &enc.body), IngestOutcome::Applied(_)));
            max_err = rx
                .blob()
                .params
                .iter()
                .zip(&b.params)
                .map(|(r, p)| (r - p).abs())
                .fold(max_err, f32::max);
        }
        // Error feedback bounds drift: without it, per-step quantization
        // error (~delta_scale/2 each round) accumulates linearly over the 50
        // rounds; with it the reconstruction stays within a couple of
        // quantization steps of the truth.
        assert!(max_err < 5e-4, "reconstruction drifted: max err {max_err}");
    }

    #[test]
    fn stale_frames_are_ignored_not_applied() {
        let t = Telemetry::disabled();
        let mut tx = ParamBroadcaster::new(ParamCompression::QuantizedI8, &t);
        let mut rx = ParamReceiver::new();
        let b1 = blob(5, 128, 13);
        let enc1 = tx.encode(&b1, &[0]);
        let b2 = drift(&b1, 1e-2);
        let enc2 = tx.encode(&b2, &[0]);
        assert!(matches!(rx.ingest(enc2.compression, &enc2.body), IngestOutcome::Applied(6)));
        assert_eq!(rx.ingest(enc1.compression, &enc1.body), IngestOutcome::Stale);
        assert_eq!(rx.version(), 6);
    }

    #[test]
    fn resized_network_invalidates_bases() {
        let t = Telemetry::disabled();
        let mut tx = ParamBroadcaster::new(ParamCompression::DeltaF32, &t);
        let b1 = blob(1, 128, 17);
        tx.encode(&b1, &[0]);
        // Same explorer, different parameter count: must not delta.
        let b2 = blob(2, 256, 19);
        assert_eq!(tx.encode(&b2, &[0]).compression, CompressionKind::None);
    }
}
