//! The center controller: statistics collection and goal-driven shutdown.
//!
//! The controller is algorithm-agnostic (paper §3.2.2): it watches the stats
//! stream from workhorse threads, and when the training goal is achieved —
//! the learner has consumed enough rollout steps, or the wall-clock cap is
//! hit — it broadcasts a shutdown command to every process and the deployment
//! winds down.

use crate::messages::{ControlCommand, StatsMsg};
use bytes::Bytes;
use std::time::{Duration, Instant};
use xingtian_comm::Endpoint;
use xingtian_message::codec::{Decode, Encode};
use xingtian_message::{MessageKind, ProcessId};

/// Configuration of the center controller.
pub struct ControllerProcess {
    /// Communication endpoint (`ProcessId::controller(0)`).
    pub endpoint: Endpoint,
    /// Stop once the learner reports this many consumed steps.
    pub goal_steps: u64,
    /// Stop after this much wall-clock time regardless of progress.
    pub max_duration: Duration,
    /// Explorer count (for the shutdown broadcast).
    pub num_explorers: u32,
    /// Learner-shard count (for the shutdown broadcast; the classic
    /// deployments pass 1).
    pub num_learner_shards: u32,
}

/// What the controller reports when the run ends.
#[derive(Debug)]
pub struct ControllerOutcome {
    /// Steps the learner reported consuming.
    pub learner_steps: u64,
    /// Environment steps explorers reported taking.
    pub explorer_steps: u64,
    /// Episode returns collected from explorer stats, in arrival order.
    pub episode_returns: Vec<f32>,
    /// True if the run ended by reaching the step goal (false = deadline).
    pub goal_reached: bool,
}

impl ControllerProcess {
    /// Runs the controller until the goal or deadline, then broadcasts
    /// shutdown.
    pub fn run(self) -> ControllerOutcome {
        let start = Instant::now();
        let mut learner_steps = 0u64;
        let mut explorer_steps = 0u64;
        let mut episode_returns = Vec::new();
        let goal_reached;

        loop {
            if learner_steps >= self.goal_steps {
                goal_reached = true;
                break;
            }
            if start.elapsed() >= self.max_duration {
                goal_reached = false;
                break;
            }
            let Some(msg) = self.endpoint.recv_timeout(Duration::from_millis(50)) else {
                continue;
            };
            if msg.header.kind != MessageKind::Stats {
                continue;
            }
            let Ok(stats) = StatsMsg::from_bytes(&msg.body) else { continue };
            if stats.source == StatsMsg::LEARNER {
                learner_steps += stats.steps;
            } else {
                explorer_steps += stats.steps;
                episode_returns.extend_from_slice(&stats.episode_returns);
            }
        }

        // Broadcast shutdown to every learner shard and every explorer.
        let mut dst: Vec<ProcessId> = (0..self.num_explorers).map(ProcessId::explorer).collect();
        dst.extend((0..self.num_learner_shards.max(1)).map(ProcessId::learner));
        self.endpoint.send_to(dst, MessageKind::Control, Bytes::from(ControlCommand::Shutdown.to_bytes()));

        ControllerOutcome { learner_steps, explorer_steps, episode_returns, goal_reached }
    }
}
