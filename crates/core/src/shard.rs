//! The sharded learner process: one of N learner shards cooperating on a
//! single model.
//!
//! Each shard owns a slice of the explorer population through the relaxed
//! [`AssignmentTable`] (rollouts follow the table, not a destination frozen
//! at deployment build), trains on its locally received data, and exchanges
//! gradients with its peer shards over the ordinary comm channel
//! (`MessageKind::Gradient`). Two exchange disciplines exist, selected by
//! [`AllreduceMode`]:
//!
//! * **Sync** — lockstep rounds through [`GradExchange`]: the round's global
//!   batch is split into [`GRAD_SLOTS`] fixed slots, every shard computes raw
//!   gradients for its owned slots (scaled by the *global* row count, with
//!   the loss contribution carried as one trailing element), the slot blobs
//!   are allgathered, folded flat in slot order, and exactly one optimizer
//!   step applies the fold. The same float additions happen in the same
//!   order on every shard and for every legal shard count, so the same seed
//!   yields bit-identical parameters for 1, 2, and 4 shards. A shard that
//!   rejoins after a crash announces itself by sending slot blobs for an old
//!   round; any peer answers with a full parameter snapshot
//!   (`MessageKind::Parameters`, shard→shard) that the rejoiner adopts via
//!   [`GradExchange::fast_forward`].
//!
//! * **Relaxed** — each shard trains independently with
//!   [`Algorithm::try_train`] and gossips parameter *deltas* to its peers
//!   through the LAPG [`LazyGradGate`] (uploads only when the compensated
//!   delta beats the adaptive threshold — `comm.grad_skips` counts the
//!   saved sends). A receiving shard applies a delta only while the sender's
//!   version is within [`MAX_SKEW`] of its own; anything staler is shed
//!   (`learn.grad_shed`), trading determinism for never stalling the ring.
//!
//! In both modes the shard broadcasts fresh parameters to the explorers it
//! *currently* owns per the assignment table — a rebalanced or re-owned
//! explorer simply starts receiving from its new shard (the broadcaster's
//! per-explorer delta bookkeeping falls back to full-f32 for first contact).

use crate::allreduce::{within_skew, GradExchange, GRAD_SLOTS};
use crate::assignment::AssignmentTable;
use crate::checkpoint::Checkpointer;
use crate::config::AllreduceMode;
use crate::learner::LearnerOutcome;
use crate::messages::{ControlCommand, ParamAck, StatsMsg};
use crate::parameters::ParamBroadcaster;
use crate::stats::ThroughputTimeline;
use bytes::Bytes;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xingtian_algos::api::Algorithm;
use xingtian_algos::payload::{BatchDecoder, ParamBlob, RolloutStep};
use xingtian_algos::{GradBlob, LazyGradConfig, LazyGradGate};
use xingtian_comm::{Endpoint, ParamCompression, TransmissionStats};
use xingtian_message::codec::{Decode, Encode};
use xingtian_message::{Header, Message, MessageKind, ProcessId, ProcessRole};

/// Maximum parameter-version distance a relaxed-mode delta may carry before
/// the receiving shard sheds it instead of applying it.
pub const MAX_SKEW: u64 = 8;

/// How long a sync-mode shard blocks per wait slice while its peers finish
/// their slots. Short enough that round completion is checked promptly,
/// long enough not to spin.
const SYNC_POLL: Duration = Duration::from_millis(2);

/// One learner shard (`ProcessId::learner(shard)`).
pub struct LearnerShardProcess {
    /// This shard's index in the learner group.
    pub shard: u32,
    /// Communication endpoint (`ProcessId::learner(shard)`).
    pub endpoint: Endpoint,
    /// The algorithm replica this shard trains.
    pub algorithm: Box<dyn Algorithm>,
    /// Live explorer→shard ownership, shared with the explorers' routing.
    pub table: Arc<AssignmentTable>,
    /// Gradient-exchange discipline.
    pub mode: AllreduceMode,
    /// Optional periodic checkpointing (pointed at this shard's own
    /// subdirectory by the deployment).
    pub checkpointer: Option<Checkpointer>,
    /// Fault-injection kill switch, pulsed once per completed session.
    pub probe: Option<xt_fault::ProcessProbe>,
    /// Parameter-broadcast encoding toward owned explorers.
    pub param_compression: ParamCompression,
}

/// Per-run mutable state shared by both exchange disciplines.
struct ShardRun {
    timeline: ThroughputTimeline,
    wait_stats: TransmissionStats,
    steps_consumed: u64,
    train_sessions: u64,
    train_time: Duration,
    waited: Duration,
}

impl LearnerShardProcess {
    /// Runs the shard until the controller broadcasts shutdown.
    pub fn run(mut self) -> LearnerOutcome {
        self.algorithm.attach_telemetry(self.endpoint.telemetry());
        let run = ShardRun {
            timeline: ThroughputTimeline::new(),
            wait_stats: TransmissionStats::new(),
            steps_consumed: 0,
            train_sessions: 0,
            train_time: Duration::ZERO,
            waited: Duration::ZERO,
        };
        let run = match self.mode {
            AllreduceMode::Sync => self.run_sync(run),
            AllreduceMode::Relaxed => self.run_relaxed(run),
        };
        let final_params = self.algorithm.param_blob().params;
        LearnerOutcome {
            steps_consumed: run.steps_consumed,
            timeline: run.timeline,
            wait_stats: run.wait_stats,
            train_sessions: run.train_sessions,
            train_time: run.train_time,
            final_params,
        }
    }

    /// Post-session bookkeeping shared by both modes: timeline, wait, the
    /// checkpoint→probe ordering, the parameter broadcast to currently owned
    /// explorers, and the stats report to the controller.
    fn finish_session(
        &mut self,
        run: &mut ShardRun,
        broadcaster: &mut ParamBroadcaster,
        steps_consumed: usize,
        notify: bool,
    ) {
        run.train_sessions += 1;
        run.steps_consumed += steps_consumed as u64;
        run.timeline.record(steps_consumed as u64);
        run.wait_stats.record(run.waited);
        run.waited = Duration::ZERO;
        if let Some(ckpt) = &mut self.checkpointer {
            ckpt.on_session(&self.algorithm.param_blob());
        }
        // Chaos hook after the checkpoint hook, as in the classic learner: a
        // shard killed on session N has persisted what the policy promised.
        if let Some(probe) = &self.probe {
            probe.pulse();
        }
        if notify {
            // Broadcast to whatever the table says we own *right now* — the
            // algorithm's notify indices reflect the deployment-wide explorer
            // count, not this shard's live slice.
            let owned = self.table.owned(self.shard);
            if !owned.is_empty() {
                let blob = self.algorithm.param_blob();
                let enc = broadcaster.encode(&blob, &owned);
                let dst: Vec<ProcessId> = owned.iter().map(|&e| ProcessId::explorer(e)).collect();
                let mut header = Header::new(self.endpoint.pid(), dst, MessageKind::Parameters)
                    .with_param_version(enc.version);
                header.compression = enc.compression;
                self.endpoint.send(Message::new(header, enc.body));
            }
        }
        let stats = StatsMsg {
            source: StatsMsg::LEARNER,
            steps: steps_consumed as u64,
            episode_returns: Vec::new(),
        };
        self.endpoint.send_to(
            vec![ProcessId::controller(0)],
            MessageKind::Stats,
            Bytes::from(stats.to_bytes()),
        );
    }

    // ---------------------------------------------------------------- sync

    fn run_sync(&mut self, mut run: ShardRun) -> ShardRun {
        let shards = self.table.shards();
        let peers: Vec<ProcessId> =
            (0..shards).filter(|&p| p != self.shard).map(ProcessId::learner).collect();
        let telemetry = self.endpoint.telemetry();
        let wait_hist = telemetry.histogram("learner.wait_ns");
        let train_hist = telemetry.histogram("learn.train_ns");
        let decode_hist = telemetry.histogram("learn.decode_ns");
        let allreduce_hist = telemetry.histogram("learn.allreduce_ns");
        let sessions_counter = telemetry.counter("learner.train_sessions");
        let rounds_counter = telemetry.counter(&format!("learn.shard{}.rounds", self.shard));
        let mut decoder = BatchDecoder::new();
        let mut broadcaster = ParamBroadcaster::new(self.param_compression, telemetry);

        let mut exchange = GradExchange::new(self.shard, shards);
        exchange.fast_forward(self.algorithm.version());
        // Announce ourselves to the ring. On a fresh start every shard is at
        // round 0 and the answers are no-ops; a shard respawned by the
        // supervisor instead learns the ring's real position — the peers
        // answer with a parameter snapshot to adopt plus a retransmission of
        // their current round's slot blobs (the originals died with our old
        // endpoint). The sentinel slot index keeps `ingest` from mistaking
        // the hello for a gradient.
        if !peers.is_empty() {
            let hello =
                GradBlob { worker: u32::MAX, version: exchange.round(), grad: Vec::new() };
            self.endpoint.send_to(
                peers.clone(),
                MessageKind::Gradient,
                Bytes::from(hello.to_bytes()),
            );
        }
        let global_rows = {
            let sync = self.algorithm.sharded_sync().expect(
                "sync allreduce requires a ShardedSync algorithm (checked by config validation)",
            );
            sync.slot_rows() * GRAD_SLOTS
        };
        // This shard's share of each round's global batch (for step
        // accounting: the shards together consume `global_rows` per round).
        let local_rows = global_rows / shards as usize;
        // Round at which we last answered a given rejoining peer — one
        // resync answer per (peer, round) is plenty.
        let mut snapshot_sent: HashMap<u32, u64> = HashMap::new();
        let mut steps: Vec<RolloutStep> = Vec::new();
        let mut grad: Vec<f32> = Vec::new();
        // Set while this shard has contributed its slots for the current
        // round and is waiting on peers; holds the round number and the
        // collect-phase start.
        let mut round_open: Option<(u64, Instant)> = None;
        // When the previous iteration made local progress, drain without
        // blocking; otherwise block one poll slice for peer traffic.
        let mut progressed = true;

        'outer: loop {
            if !progressed {
                let t0 = Instant::now();
                let msg = self.endpoint.recv_timeout(SYNC_POLL);
                run.waited += t0.elapsed();
                if let Some(msg) = msg {
                    if self.on_sync_message(
                        msg,
                        &mut exchange,
                        &mut decoder,
                        &decode_hist,
                        &mut broadcaster,
                        &mut snapshot_sent,
                    ) {
                        break 'outer;
                    }
                }
            }
            while let Some(msg) = self.endpoint.try_recv() {
                if self.on_sync_message(
                    msg,
                    &mut exchange,
                    &mut decoder,
                    &decode_hist,
                    &mut broadcaster,
                    &mut snapshot_sent,
                ) {
                    break 'outer;
                }
            }
            progressed = false;

            // A snapshot adoption fast-forwarded the exchange past a round we
            // had opened: that round's local slots are gone, so re-arm the
            // gate instead of waiting on a round that can never close.
            if let Some((r, _)) = round_open {
                if r != exchange.round() {
                    round_open = None;
                }
            }

            // Open the next round once the local gate has enough data.
            if round_open.is_none() {
                let sync = self.algorithm.sharded_sync().expect("checked above");
                if sync.take_round_credit() {
                    let t_compute = Instant::now();
                    for slot in exchange.local_slots() {
                        sync.sample_slot(&mut steps);
                        let loss = sync.grad_on_steps(&steps, global_rows, &mut grad);
                        // The loss rides as one trailing element, so the flat
                        // fold reduces it bit-identically alongside the
                        // gradient.
                        grad.push(loss);
                        if !peers.is_empty() {
                            let blob = exchange.blob_for(slot, grad.clone());
                            self.endpoint.send_to(
                                peers.clone(),
                                MessageKind::Gradient,
                                Bytes::from(blob.to_bytes()),
                            );
                        }
                        exchange.offer_local(slot, std::mem::take(&mut grad));
                    }
                    let dt = t_compute.elapsed();
                    run.train_time += dt;
                    train_hist.record_duration(dt);
                    round_open = Some((exchange.round(), Instant::now()));
                    progressed = true;
                }
            }

            // Close the round once every slot (local and peer) is present.
            if let Some((_, t_open)) = round_open {
                if exchange.ready() {
                    let mut folded = exchange.reduce().expect("ready round reduces");
                    let loss = folded.pop().expect("trailing loss element");
                    allreduce_hist.record_duration(t_open.elapsed());
                    let t_apply = Instant::now();
                    let report = self
                        .algorithm
                        .sharded_sync()
                        .expect("checked above")
                        .apply_reduced_grad(&folded, global_rows, loss);
                    let dt = t_apply.elapsed();
                    run.train_time += dt;
                    train_hist.record_duration(dt);
                    wait_hist.record_duration(run.waited);
                    sessions_counter.inc();
                    rounds_counter.inc();
                    let notify = !report.notify.is_empty();
                    // Report only this shard's share of the round: every
                    // shard applies the same global batch, so reporting the
                    // full count S times would make goal semantics (and the
                    // controller's step sum) depend on the shard count.
                    self.finish_session(&mut run, &mut broadcaster, local_rows, notify);
                    round_open = None;
                    progressed = true;
                }
            }
        }
        // Symmetric shutdown: a round this shard has announced (blobs sent)
        // must close on every shard or on none, or final parameters would
        // differ by one optimizer step depending on who saw the shutdown
        // first. A shard never announces after shutdown, so the peers' slot
        // blobs for our open round are either already in flight (drain and
        // close) or will never come (grace expires and nobody closes it).
        if let Some((r, _)) = round_open {
            let deadline = Instant::now() + Duration::from_millis(300);
            while exchange.round() == r && !exchange.ready() && Instant::now() < deadline {
                if let Some(msg) = self.endpoint.recv_timeout(SYNC_POLL) {
                    if msg.header.kind == MessageKind::Gradient {
                        if let Ok(blob) = GradBlob::from_bytes(&msg.body) {
                            exchange.ingest(blob);
                        }
                    }
                }
            }
            if exchange.ready() {
                let mut folded = exchange.reduce().expect("ready round reduces");
                let loss = folded.pop().expect("trailing loss element");
                let report = self
                    .algorithm
                    .sharded_sync()
                    .expect("checked above")
                    .apply_reduced_grad(&folded, global_rows, loss);
                // Bookkeeping only: the controller and the explorers are
                // already shutting down, so no broadcast and no stats send.
                let _ = report;
                run.train_sessions += 1;
                run.steps_consumed += local_rows as u64;
                run.timeline.record(local_rows as u64);
                if let Some(ckpt) = &mut self.checkpointer {
                    ckpt.on_session(&self.algorithm.param_blob());
                }
            }
        }
        exchange.abandon();
        run
    }

    /// Processes one sync-mode message. Returns `true` on shutdown.
    fn on_sync_message(
        &mut self,
        msg: Message,
        exchange: &mut GradExchange,
        decoder: &mut BatchDecoder,
        decode_hist: &xt_telemetry::HistogramHandle,
        broadcaster: &mut ParamBroadcaster,
        snapshot_sent: &mut HashMap<u32, u64>,
    ) -> bool {
        match msg.header.kind {
            MessageKind::Rollout => {
                let t0 = Instant::now();
                if let Ok(batch) = decoder.decode(&msg.body) {
                    self.algorithm.on_rollout(batch);
                }
                decode_hist.record_duration(t0.elapsed());
                false
            }
            MessageKind::Gradient => {
                if let Ok(blob) = GradBlob::from_bytes(&msg.body) {
                    let src = msg.header.src;
                    // A startup hello (sentinel slot) or a blob for a round
                    // the ring already finished identifies a (re)joining peer
                    // — in steady state every blob is needed to close its
                    // round, so nothing arrives late. Answer with a full
                    // parameter snapshot so it can adopt the ring's position,
                    // plus a retransmission of our current round's slot blobs
                    // (the originals may have died with its old endpoint).
                    let resync = blob.worker as usize >= GRAD_SLOTS
                        || blob.version < exchange.round();
                    if resync && src.role == ProcessRole::Learner {
                        let round = exchange.round();
                        if snapshot_sent.get(&src.index) != Some(&round) {
                            snapshot_sent.insert(src.index, round);
                            let snap = self.algorithm.param_blob();
                            self.endpoint.send_to(
                                vec![src],
                                MessageKind::Parameters,
                                Bytes::from(snap.to_bytes()),
                            );
                            for local in exchange.local_blobs() {
                                self.endpoint.send_to(
                                    vec![src],
                                    MessageKind::Gradient,
                                    Bytes::from(local.to_bytes()),
                                );
                            }
                        }
                    }
                    exchange.ingest(blob);
                }
                false
            }
            MessageKind::Parameters => {
                // A peer's snapshot answering our stale slot blobs: adopt it
                // and jump to the ring's round. (Explorer-bound broadcasts
                // never target a learner, so any Parameters here is
                // shard→shard.)
                if msg.header.src.role == ProcessRole::Learner {
                    if let Ok(blob) = ParamBlob::from_bytes(&msg.body) {
                        if blob.version > exchange.round() {
                            self.algorithm.adopt_params(&blob.params, blob.version);
                            exchange.fast_forward(blob.version);
                        }
                    }
                }
                false
            }
            MessageKind::ParamAck => {
                if let Ok(ack) = ParamAck::from_bytes(&msg.body) {
                    broadcaster.on_ack(&ack);
                }
                false
            }
            MessageKind::Control => {
                matches!(ControlCommand::from_bytes(&msg.body), Ok(ControlCommand::Shutdown))
            }
            _ => false,
        }
    }

    // ------------------------------------------------------------- relaxed

    fn run_relaxed(&mut self, mut run: ShardRun) -> ShardRun {
        let shards = self.table.shards();
        let peers: Vec<ProcessId> =
            (0..shards).filter(|&p| p != self.shard).map(ProcessId::learner).collect();
        let telemetry = self.endpoint.telemetry();
        let wait_hist = telemetry.histogram("learner.wait_ns");
        let train_hist = telemetry.histogram("learn.train_ns");
        let decode_hist = telemetry.histogram("learn.decode_ns");
        let sessions_counter = telemetry.counter("learner.train_sessions");
        let shed_counter = telemetry.counter("learn.grad_shed");
        let applied_counter = telemetry.counter("learn.grad_applied");
        let mut decoder = BatchDecoder::new();
        let mut broadcaster = ParamBroadcaster::new(self.param_compression, telemetry);
        let mut gate = LazyGradGate::with_telemetry(LazyGradConfig::default(), telemetry);
        // Parameters at the previous offer, the baseline the next delta is
        // measured against. Peer deltas are folded into it on apply so the
        // gossip does not echo back what a peer just sent us.
        let mut prev = self.algorithm.param_blob().params;
        gate.observe_params(&prev);

        'outer: loop {
            let t0 = Instant::now();
            let Some(msg) = self.endpoint.recv() else { break };
            run.waited += t0.elapsed();
            if self.on_relaxed_message(
                msg,
                &mut decoder,
                &decode_hist,
                &mut broadcaster,
                &mut prev,
                &shed_counter,
                &applied_counter,
            ) {
                break;
            }
            while let Some(extra) = self.endpoint.try_recv() {
                if self.on_relaxed_message(
                    extra,
                    &mut decoder,
                    &decode_hist,
                    &mut broadcaster,
                    &mut prev,
                    &shed_counter,
                    &applied_counter,
                ) {
                    break 'outer;
                }
            }
            while let Some(report) = {
                let t = Instant::now();
                let r = self.algorithm.try_train();
                if r.is_some() {
                    let dt = t.elapsed();
                    run.train_time += dt;
                    train_hist.record_duration(dt);
                }
                r
            } {
                wait_hist.record_duration(run.waited);
                sessions_counter.inc();
                // Offer this session's parameter movement to the LAPG gate;
                // accepted deltas gossip to every peer shard.
                let blob = self.algorithm.param_blob();
                gate.observe_params(&blob.params);
                if prev.len() == blob.params.len() {
                    let delta: Vec<f32> =
                        blob.params.iter().zip(&prev).map(|(n, p)| n - p).collect();
                    if let Some(up) = gate.offer(&delta) {
                        if !peers.is_empty() {
                            let gb =
                                GradBlob { worker: self.shard, version: blob.version, grad: up };
                            self.endpoint.send_to(
                                peers.clone(),
                                MessageKind::Gradient,
                                Bytes::from(gb.to_bytes()),
                            );
                        }
                    }
                }
                prev = blob.params;
                let notify = !report.notify.is_empty();
                self.finish_session(&mut run, &mut broadcaster, report.steps_consumed, notify);
            }
            while let Some(spent) = self.algorithm.take_spent() {
                decoder.recycle(spent);
            }
        }
        run
    }

    /// Processes one relaxed-mode message. Returns `true` on shutdown.
    #[allow(clippy::too_many_arguments)]
    fn on_relaxed_message(
        &mut self,
        msg: Message,
        decoder: &mut BatchDecoder,
        decode_hist: &xt_telemetry::HistogramHandle,
        broadcaster: &mut ParamBroadcaster,
        prev: &mut [f32],
        shed_counter: &xt_telemetry::CounterHandle,
        applied_counter: &xt_telemetry::CounterHandle,
    ) -> bool {
        match msg.header.kind {
            MessageKind::Rollout => {
                let t0 = Instant::now();
                if let Ok(batch) = decoder.decode(&msg.body) {
                    self.algorithm.on_rollout(batch);
                }
                decode_hist.record_duration(t0.elapsed());
                false
            }
            MessageKind::Gradient => {
                if let Ok(blob) = GradBlob::from_bytes(&msg.body) {
                    if !within_skew(self.algorithm.version(), blob.version, MAX_SKEW) {
                        // Too stale (or too far ahead): shed. The sender's
                        // gate residual keeps the mass for its next offer.
                        shed_counter.inc();
                    } else {
                        let mut params = self.algorithm.param_blob().params;
                        if params.len() == blob.grad.len() {
                            for (p, d) in params.iter_mut().zip(&blob.grad) {
                                *p += d;
                            }
                            self.algorithm.load_params(&params);
                            // Fold the peer delta into the offer baseline so
                            // our next delta is our own movement only.
                            if prev.len() == blob.grad.len() {
                                for (p, d) in prev.iter_mut().zip(&blob.grad) {
                                    *p += d;
                                }
                            }
                            applied_counter.inc();
                        }
                    }
                }
                false
            }
            MessageKind::ParamAck => {
                if let Ok(ack) = ParamAck::from_bytes(&msg.body) {
                    broadcaster.on_ack(&ack);
                }
                false
            }
            MessageKind::Control => {
                matches!(ControlCommand::from_bytes(&msg.body), Ok(ControlCommand::Shutdown))
            }
            _ => false,
        }
    }
}
