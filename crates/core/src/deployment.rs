//! Builds and runs a complete XingTian deployment.
//!
//! Mirrors the paper's launch sequence (§3.2.2): create a broker per machine,
//! connect the broker fabric, start the learner, the explorers, and the
//! center controller, then run until the controller broadcasts shutdown.
//! "Processes" are threads here (see DESIGN.md §2 on the substitution), but
//! the communication between them flows exclusively through the asynchronous
//! channel, never through shared state.

use crate::assignment::AssignmentTable;
use crate::config::{AlgorithmSpec, DeploymentConfig, ReplayPlacement};
use crate::controller::{ControllerOutcome, ControllerProcess};
use crate::explorer::{ExplorerOutcome, ExplorerProcess, RolloutRoute};
use crate::learner::{LearnerOutcome, LearnerProcess};
use crate::shard::LearnerShardProcess;
use crate::stats::{ReplayReport, RunReport};
use gymlite::{AtariGame, CartPole, Environment, SynthAtari};
use netsim::Cluster;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xt_replay::{ReplayConfig, ReplayPlane, StoreResidentBackend};
use xingtian_algos::api::{Agent, Algorithm, SyncMode};
use xingtian_algos::{
    A2cAgent, A2cAlgorithm, DqnAgent, DqnAlgorithm, ImpalaAgent, ImpalaAlgorithm, PpoAgent,
    PpoAlgorithm, ReinforceAgent, ReinforceAlgorithm,
};
use xingtian_comm::{connect_brokers, Broker};
use xingtian_message::ProcessId;

/// Error launching or validating a deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployError(String);

impl DeployError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        DeployError(msg.into())
    }
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deployment error: {}", self.0)
    }
}

impl std::error::Error for DeployError {}

/// Spawns a named process thread, turning OS-level spawn failure (thread
/// limits, exhausted stacks) into a [`DeployError`] the caller can surface
/// instead of a panic that takes the whole deployment down.
pub(crate) fn spawn_process<T: Send + 'static>(
    name: String,
    f: impl FnOnce() -> T + Send + 'static,
) -> Result<std::thread::JoinHandle<T>, DeployError> {
    std::thread::Builder::new()
        .name(name.clone())
        .spawn(f)
        .map_err(|e| DeployError(format!("cannot spawn {name}: {e}")))
}

/// Builds the environment for one explorer, honoring the observation
/// override for synthetic games.
pub fn build_env(
    name: &str,
    seed: u64,
    obs_dim_override: Option<usize>,
    step_latency_us: Option<u64>,
) -> Result<Box<dyn Environment>, String> {
    // Classic-control environments step in nanoseconds; `step_latency_us`
    // must still pace them (a pacing knob that silently ignores some
    // environments makes every throughput experiment built on it a lie), so
    // they are wrapped in [`gymlite::env::Paced`] rather than returned raw.
    let pace = |env: Box<dyn Environment>| -> Box<dyn Environment> {
        match step_latency_us {
            Some(us) if us > 0 => Box::new(gymlite::env::Paced::new(env, us)),
            _ => env,
        }
    };
    let game = match name.to_ascii_lowercase().as_str() {
        "cartpole" => return Ok(pace(Box::new(CartPole::new(seed)))),
        "mountaincar" => return Ok(pace(Box::new(gymlite::MountainCar::new(seed)))),
        "beamrider" => AtariGame::BeamRider,
        "breakout" => AtariGame::Breakout,
        "qbert" => AtariGame::Qbert,
        "spaceinvaders" => AtariGame::SpaceInvaders,
        other => return Err(format!("unknown environment `{other}`")),
    };
    let mut cfg = game.config();
    if let Some(dim) = obs_dim_override {
        cfg = cfg.with_obs_dim(dim);
    }
    if let Some(us) = step_latency_us {
        cfg = cfg.with_step_latency_us(us);
    }
    Ok(Box::new(SynthAtari::with_config(cfg, seed)))
}

/// Fills environment dimensions and deployment-wide counts into the
/// algorithm spec, returning the learner-side algorithm.
pub fn build_algorithm(
    spec: &AlgorithmSpec,
    obs_dim: usize,
    num_actions: usize,
    num_explorers: u32,
    rollout_len: usize,
    seed: u64,
) -> Box<dyn Algorithm> {
    match spec {
        AlgorithmSpec::Dqn(c) => {
            let mut c = c.clone();
            c.obs_dim = obs_dim;
            c.num_actions = num_actions;
            c.num_explorers = num_explorers;
            c.seed = seed;
            Box::new(DqnAlgorithm::new(c))
        }
        AlgorithmSpec::Ppo(c) => {
            let mut c = c.clone();
            c.obs_dim = obs_dim;
            c.num_actions = num_actions;
            c.num_explorers = num_explorers;
            c.rollout_len = rollout_len;
            c.seed = seed;
            Box::new(PpoAlgorithm::new(c))
        }
        AlgorithmSpec::Impala(c) => {
            let mut c = c.clone();
            c.obs_dim = obs_dim;
            c.num_actions = num_actions;
            c.seed = seed;
            Box::new(ImpalaAlgorithm::new(c))
        }
        AlgorithmSpec::A2c(c) => {
            let mut c = c.clone();
            c.obs_dim = obs_dim;
            c.num_actions = num_actions;
            c.num_explorers = num_explorers;
            c.rollout_len = rollout_len;
            c.seed = seed;
            Box::new(A2cAlgorithm::new(c))
        }
        AlgorithmSpec::Reinforce(c) => {
            let mut c = c.clone();
            c.obs_dim = obs_dim;
            c.num_actions = num_actions;
            c.num_explorers = num_explorers;
            c.seed = seed;
            Box::new(ReinforceAlgorithm::new(c))
        }
    }
}

/// Builds the store-resident replay plane when `config` asks for one
/// (`None` for in-learner replay — validation guarantees StoreResident only
/// occurs with DQN, whose buffer sizing it mirrors).
pub fn build_replay_plane(
    config: &DeploymentConfig,
    obs_dim: usize,
    telemetry: &xt_telemetry::Telemetry,
) -> Option<Arc<ReplayPlane>> {
    if config.replay != ReplayPlacement::StoreResident {
        return None;
    }
    let AlgorithmSpec::Dqn(c) = &config.algorithm else { return None };
    let rc = match c.prioritized {
        Some((alpha, _)) => ReplayConfig::prioritized(c.buffer_capacity, obs_dim, alpha),
        None => ReplayConfig::uniform(c.buffer_capacity, obs_dim),
    };
    Some(Arc::new(ReplayPlane::new(rc, telemetry)))
}

/// Like [`build_algorithm`], but wires DQN onto the store-resident replay
/// `plane` when one exists. Used by both the plain deployment and the
/// supervisor's learner-restore path (the rebuilt learner must keep sampling
/// the plane that survived its death).
pub fn build_algorithm_with_replay(
    spec: &AlgorithmSpec,
    obs_dim: usize,
    num_actions: usize,
    num_explorers: u32,
    rollout_len: usize,
    seed: u64,
    plane: Option<&Arc<ReplayPlane>>,
) -> Box<dyn Algorithm> {
    if let (AlgorithmSpec::Dqn(c), Some(plane)) = (spec, plane) {
        let mut c = c.clone();
        c.obs_dim = obs_dim;
        c.num_actions = num_actions;
        c.num_explorers = num_explorers;
        c.seed = seed;
        return Box::new(DqnAlgorithm::with_backend(
            c,
            Box::new(StoreResidentBackend::new(plane.clone())),
        ));
    }
    build_algorithm(spec, obs_dim, num_actions, num_explorers, rollout_len, seed)
}

/// Builds the explorer-side agent matching `spec`.
pub fn build_agent(
    spec: &AlgorithmSpec,
    obs_dim: usize,
    num_actions: usize,
    num_explorers: u32,
    rollout_len: usize,
    seed: u64,
    explorer_index: u32,
) -> Box<dyn Agent> {
    match spec {
        AlgorithmSpec::Dqn(c) => {
            let mut c = c.clone();
            c.obs_dim = obs_dim;
            c.num_actions = num_actions;
            c.num_explorers = num_explorers;
            c.seed = seed;
            Box::new(DqnAgent::new(c, u64::from(explorer_index)))
        }
        AlgorithmSpec::Ppo(c) => {
            let mut c = c.clone();
            c.obs_dim = obs_dim;
            c.num_actions = num_actions;
            c.num_explorers = num_explorers;
            c.rollout_len = rollout_len;
            c.seed = seed;
            Box::new(PpoAgent::new(c, u64::from(explorer_index)))
        }
        AlgorithmSpec::Impala(c) => {
            let mut c = c.clone();
            c.obs_dim = obs_dim;
            c.num_actions = num_actions;
            c.seed = seed;
            Box::new(ImpalaAgent::new(c, u64::from(explorer_index)))
        }
        AlgorithmSpec::A2c(c) => {
            let mut c = c.clone();
            c.obs_dim = obs_dim;
            c.num_actions = num_actions;
            c.num_explorers = num_explorers;
            c.rollout_len = rollout_len;
            c.seed = seed;
            Box::new(A2cAgent::new(c, u64::from(explorer_index)))
        }
        AlgorithmSpec::Reinforce(c) => {
            let mut c = c.clone();
            c.obs_dim = obs_dim;
            c.num_actions = num_actions;
            c.num_explorers = num_explorers;
            c.seed = seed;
            Box::new(ReinforceAgent::new(c, u64::from(explorer_index)))
        }
    }
}

/// A fully-wired XingTian deployment.
pub struct Deployment;

impl Deployment {
    /// Runs `config` to completion (goal steps or wall-clock cap) and returns
    /// the measurements.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] if the configuration is inconsistent or names
    /// an unknown environment.
    pub fn run(config: DeploymentConfig) -> Result<RunReport, DeployError> {
        Deployment::run_with_telemetry(config, xt_telemetry::Telemetry::disabled())
    }

    /// Like [`Deployment::run`], but threads `telemetry` through every broker
    /// and endpoint so the run records message-lifecycle events and metrics.
    ///
    /// All brokers share the one handle, and callers who want NIC transfer
    /// events on the same timeline as endpoint events should build it from
    /// the cluster clock:
    /// `Telemetry::with_time_source(cap, cluster.time_source())`.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] if the configuration is inconsistent or names
    /// an unknown environment.
    pub fn run_with_telemetry(
        config: DeploymentConfig,
        telemetry: xt_telemetry::Telemetry,
    ) -> Result<RunReport, DeployError> {
        config.validate().map_err(DeployError)?;
        let probe = build_env(&config.env, 0, config.obs_dim_override, config.step_latency_us)
            .map_err(DeployError)?;
        let obs_dim = probe.observation_dim();
        let num_actions = probe.num_actions();
        drop(probe);
        let num_explorers = config.total_explorers();

        let cluster = Cluster::new(config.cluster.clone());
        let brokers: Vec<Broker> = (0..cluster.len())
            .map(|m| {
                Broker::with_telemetry(m, cluster.clone(), config.comm.clone(), telemetry.clone())
            })
            .collect();

        // Connect the fabric first: endpoints registered afterwards propagate
        // their routes to every peer broker live, so deployments can grow
        // (or restart processes) without re-running a table merge.
        connect_brokers(&brokers);
        let shards = config.learner_shards as u32;
        let mut learner_eps: Vec<_> = (0..shards.max(1))
            .map(|s| brokers[config.learner_machine].endpoint(ProcessId::learner(s)))
            .collect();
        let controller_ep = brokers[config.learner_machine].endpoint(ProcessId::controller(0));
        let explorer_eps: Vec<_> = (0..num_explorers)
            .map(|i| brokers[config.explorer_machine(i)].endpoint(ProcessId::explorer(i)))
            .collect();

        // Store-resident replay: a shard service on the learner's machine owns
        // ingestion; its endpoint is registered before the explorers start so
        // their very first rollout has a route.
        let plane = build_replay_plane(&config, obs_dim, &telemetry);
        let replay_service = match &plane {
            Some(plane) => {
                let ep = brokers[config.learner_machine].endpoint(ProcessId::replay(0));
                let stop = Arc::new(AtomicBool::new(false));
                let (plane, stop2) = (plane.clone(), stop.clone());
                let handle = spawn_process("xt-replay-0".into(), move || {
                    xt_replay::run_replay_service(ep, plane, ProcessId::learner(0), stop2)
                })?;
                Some((stop, handle))
            }
            None => None,
        };
        // Explorer→learner routing (the relaxed assignment dependency):
        // rollouts follow the live table with sharded learners, so a
        // rebalance or shard respawn redirects the next batch; the classic
        // destinations stay resolved once.
        let table = Arc::new(AssignmentTable::contiguous(num_explorers, shards.max(1)));
        let route = if plane.is_some() {
            RolloutRoute::Fixed(ProcessId::replay(0))
        } else if shards > 1 {
            RolloutRoute::Assigned(table.clone())
        } else {
            RolloutRoute::Fixed(ProcessId::learner(0))
        };

        let build_checkpointer = |subdir: Option<String>| -> Result<_, DeployError> {
            match &config.checkpoint {
                Some(ckpt_config) => {
                    let mut ckpt_config = ckpt_config.clone();
                    if let Some(sub) = subdir {
                        ckpt_config.dir = ckpt_config.dir.join(sub);
                    }
                    crate::checkpoint::Checkpointer::new(ckpt_config)
                        .map(Some)
                        .map_err(|e| DeployError(format!("cannot set up checkpoints: {e}")))
                }
                None => Ok(None),
            }
        };
        let start = Instant::now();
        let rollout_latency_src = learner_eps[0].delivery_stats_arc();
        let param_compression = config.comm.param_compression;
        let sync;
        let algo_name;
        let mut learner_thread = None;
        let mut shard_threads = Vec::new();
        if shards > 1 {
            // One algorithm replica per shard, all built from the same seed
            // (identical initial parameters — the sync allreduce requires
            // it), each sized to the explorer slice it owns.
            let mut first: Option<(SyncMode, String)> = None;
            for (s, endpoint) in learner_eps.drain(..).enumerate() {
                let s = s as u32;
                let owned = table.owned(s).len() as u32;
                let mut algorithm = build_algorithm(
                    &config.algorithm,
                    obs_dim,
                    num_actions,
                    owned,
                    config.rollout_len,
                    config.seed,
                );
                if let Some(params) = &config.initial_params {
                    algorithm.load_params(params);
                }
                if first.is_none() {
                    first = Some((algorithm.sync_mode(), algorithm.name().to_string()));
                }
                let checkpointer = build_checkpointer(Some(format!("shard{s}")))?;
                let (table, mode) = (table.clone(), config.allreduce);
                let handle = spawn_process(format!("xt-learner-{s}"), move || {
                    LearnerShardProcess {
                        shard: s,
                        endpoint,
                        algorithm,
                        table,
                        mode,
                        checkpointer,
                        probe: None,
                        param_compression,
                    }
                    .run()
                })?;
                shard_threads.push(handle);
            }
            let (s, n) = first.expect("at least one shard");
            sync = s;
            algo_name = n;
        } else {
            let mut algorithm = build_algorithm_with_replay(
                &config.algorithm,
                obs_dim,
                num_actions,
                num_explorers,
                config.rollout_len,
                config.seed,
                plane.as_ref(),
            );
            if let Some(params) = &config.initial_params {
                algorithm.load_params(params);
            }
            sync = algorithm.sync_mode();
            algo_name = algorithm.name().to_string();
            let checkpointer = build_checkpointer(None)?;
            let endpoint = learner_eps.pop().expect("one learner endpoint");
            learner_thread = Some(spawn_process("xt-learner".into(), move || {
                LearnerProcess {
                    endpoint,
                    algorithm,
                    checkpointer,
                    probe: None,
                    param_compression,
                }
                .run()
            })?);
        }

        let mut explorer_threads = Vec::new();
        for (i, endpoint) in explorer_eps.into_iter().enumerate() {
            let i = i as u32;
            let env = build_env(
                &config.env,
                config.seed.wrapping_mul(1000).wrapping_add(u64::from(i)),
                config.obs_dim_override,
                config.step_latency_us,
            )
            .map_err(DeployError)?;
            let agent = build_agent(
                &config.algorithm,
                obs_dim,
                num_actions,
                num_explorers,
                config.rollout_len,
                config.seed,
                i,
            );
            let rollout_len = config.rollout_len;
            let route = route.clone();
            let handle = spawn_process(format!("xt-explorer-{i}"), move || {
                ExplorerProcess {
                    index: i,
                    endpoint,
                    env,
                    agent,
                    rollout_len,
                    route,
                    sync,
                    probe: None,
                }
                .run()
            })?;
            explorer_threads.push(handle);
        }

        let controller = ControllerProcess {
            endpoint: controller_ep,
            goal_steps: config.goal_steps,
            max_duration: Duration::from_secs_f64(config.max_seconds),
            num_explorers,
            num_learner_shards: shards.max(1),
        };
        let controller_outcome: ControllerOutcome = controller.run();

        // Join the learner side: the single classic learner, or every shard.
        // The aggregate outcome sums work across shards; the report's
        // timeline/wait views are shard 0's (one representative stream).
        let mut learner_shard_params: Vec<Vec<f32>> = Vec::new();
        let learner_outcome: LearnerOutcome = if let Some(t) = learner_thread {
            t.join().map_err(|_| DeployError("learner thread panicked".into()))?
        } else {
            let mut outcomes: Vec<LearnerOutcome> = Vec::new();
            for t in shard_threads {
                outcomes.push(
                    t.join().map_err(|_| DeployError("learner shard thread panicked".into()))?,
                );
            }
            learner_shard_params = outcomes.iter().map(|o| o.final_params.clone()).collect();
            let mut agg = outcomes.remove(0);
            for o in outcomes {
                agg.steps_consumed += o.steps_consumed;
                agg.train_sessions += o.train_sessions;
                agg.train_time += o.train_time;
            }
            agg
        };
        let mut explorer_outcomes: Vec<ExplorerOutcome> = Vec::new();
        for t in explorer_threads {
            explorer_outcomes
                .push(t.join().map_err(|_| DeployError("explorer thread panicked".into()))?);
        }
        let wall_time = start.elapsed();
        // The replay service stops after the producers and the consumer: every
        // rollout already in the channel still gets ingested, and the plane's
        // integrity audit runs on the final state.
        let replay = match replay_service {
            Some((stop, handle)) => {
                stop.store(true, Ordering::Release);
                let outcome = handle
                    .join()
                    .map_err(|_| DeployError("replay service thread panicked".into()))?;
                let integrity =
                    plane.as_ref().expect("replay service implies a plane").integrity();
                Some(ReplayReport {
                    batches_ingested: outcome.batches_ingested,
                    steps_ingested: outcome.steps_ingested,
                    sample_requests: outcome.sample_requests,
                    resident: integrity.resident,
                    dangling_slots: integrity.dangling_slots,
                })
            }
            None => None,
        };
        for b in &brokers {
            b.shutdown();
        }
        let dropped_messages: u64 = brokers.iter().map(Broker::dropped).sum();

        // Episode returns: authoritative from explorer trackers (the
        // controller's copy may miss in-flight tails at shutdown).
        let mut episode_returns = Vec::new();
        for o in &explorer_outcomes {
            episode_returns.extend_from_slice(o.tracker.returns());
        }
        let _ = controller_outcome;

        let mean_train_time = if learner_outcome.train_sessions > 0 {
            learner_outcome.train_time / learner_outcome.train_sessions as u32
        } else {
            Duration::ZERO
        };
        Ok(RunReport {
            algorithm: algo_name,
            env: config.env.clone(),
            steps_consumed: learner_outcome.steps_consumed,
            wall_time,
            timeline: learner_outcome.timeline,
            learner_wait: learner_outcome.wait_stats,
            rollout_latency: rollout_latency_src,
            episode_returns,
            train_sessions: learner_outcome.train_sessions,
            mean_train_time,
            final_params: learner_outcome.final_params,
            learner_shard_params,
            replay,
            dropped_messages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_env_respects_override() {
        let env = build_env("Qbert", 0, Some(64), Some(0)).unwrap();
        assert_eq!(env.observation_dim(), 64);
        let cp = build_env("CartPole", 0, Some(64), Some(0)).unwrap();
        assert_eq!(cp.observation_dim(), 4, "CartPole ignores the override");
    }

    #[test]
    fn build_env_unknown_errors() {
        assert!(build_env("Pong", 0, None, None).is_err());
    }

    #[test]
    fn algorithm_and_agent_dimensions_agree() {
        let spec = AlgorithmSpec::impala();
        let alg = build_algorithm(&spec, 8, 3, 4, 16, 1);
        let agent = build_agent(&spec, 8, 3, 4, 16, 1, 0);
        assert_eq!(alg.param_blob().params.len(), {
            // Agent must accept the learner's blob without panicking.
            let mut a = agent;
            let blob = xingtian_algos::ParamBlob { version: 1, params: alg.param_blob().params };
            a.apply_params(&blob);
            blob.params.len()
        });
    }
}
