//! Deployment configuration.
//!
//! The paper's configuration file names the machines, where the learner runs,
//! how many explorers each machine hosts, and which algorithm classes to
//! instantiate (§3.2.2, §4.2). [`DeploymentConfig`] is the equivalent
//! structure; `serde` impls make it loadable from any serde format.

use crate::checkpoint::CheckpointConfig;
use netsim::ClusterSpec;
use serde::{Deserialize, Serialize};
use xingtian_algos::{A2cConfig, DqnConfig, ImpalaConfig, PpoConfig, ReinforceConfig};
use xingtian_comm::CommConfig;

/// Which DRL algorithm to deploy, with its hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AlgorithmSpec {
    /// Deep Q-Networks (value-based, off-policy).
    Dqn(DqnConfig),
    /// Proximal Policy Optimization (actor-critic, on-policy).
    Ppo(PpoConfig),
    /// IMPALA with V-trace (actor-critic, off-policy).
    Impala(ImpalaConfig),
    /// Synchronous advantage actor-critic (on-policy).
    A2c(A2cConfig),
    /// Episodic REINFORCE with a moving-average baseline (policy-based).
    Reinforce(ReinforceConfig),
}

impl AlgorithmSpec {
    /// PPO with paper-shaped defaults (dimensions filled in at deployment).
    pub fn ppo() -> Self {
        AlgorithmSpec::Ppo(PpoConfig::new(0, 0))
    }

    /// DQN with paper-shaped defaults (dimensions filled in at deployment).
    pub fn dqn() -> Self {
        AlgorithmSpec::Dqn(DqnConfig::new(0, 0))
    }

    /// IMPALA with paper-shaped defaults (dimensions filled in at deployment).
    pub fn impala() -> Self {
        AlgorithmSpec::Impala(ImpalaConfig::new(0, 0))
    }

    /// A2C with defaults (dimensions filled in at deployment).
    pub fn a2c() -> Self {
        AlgorithmSpec::A2c(A2cConfig::new(0, 0))
    }

    /// REINFORCE with defaults (dimensions filled in at deployment).
    pub fn reinforce() -> Self {
        AlgorithmSpec::Reinforce(ReinforceConfig::new(0, 0))
    }

    /// The algorithm's display name.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmSpec::Dqn(_) => "DQN",
            AlgorithmSpec::Ppo(_) => "PPO",
            AlgorithmSpec::Impala(_) => "IMPALA",
            AlgorithmSpec::A2c(_) => "A2C",
            AlgorithmSpec::Reinforce(_) => "REINFORCE",
        }
    }
}

/// Where DQN's experience replay lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReplayPlacement {
    /// Inside the learner's trainer thread (classic XingTian, paper §3.2.1):
    /// every rollout message is fetched, decoded, and re-inserted into the
    /// buffer before sampling.
    #[default]
    InLearner,
    /// Inside the communication layer, beside the object store: a replay
    /// shard service ingests rollouts once and the learner samples directly
    /// from the shared plane (`xt-replay`).
    StoreResident,
}

/// How learner shards exchange gradients when `learner_shards > 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AllreduceMode {
    /// Deterministic lockstep: every shard contributes its slice of the
    /// round's fixed gradient-slot partition, all shards reduce the slots in
    /// the same fixed order, and one optimizer step is applied per round.
    /// Same seed → bit-identical parameters for 1, 2, and 4 shards.
    #[default]
    Sync,
    /// Stale-tolerant delta exchange: each shard trains locally and gossips
    /// parameter deltas through a [`xingtian_algos::LazyGradGate`]; deltas
    /// arriving with too much version skew are shed. Trades the bitwise
    /// determinism story for near-linear throughput scaling.
    Relaxed,
}

impl AllreduceMode {
    /// Stable lowercase name (telemetry / bench table labels).
    pub const fn name(self) -> &'static str {
        match self {
            AllreduceMode::Sync => "sync",
            AllreduceMode::Relaxed => "relaxed",
        }
    }
}

// Referenced by `#[serde(default = "default_learner_shards")]`; the vendored
// offline serde_derive expands derives to nothing, so without the allow the
// compiler sees no caller.
#[allow(dead_code)]
fn default_learner_shards() -> usize {
    1
}

/// Complete description of one XingTian deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// The simulated cluster to deploy onto.
    pub cluster: ClusterSpec,
    /// Number of explorers hosted by each machine (`explorers_per_machine[m]`
    /// explorers run on machine `m`). Explorer indices are assigned machine by
    /// machine.
    pub explorers_per_machine: Vec<u32>,
    /// Machine hosting the learner (the center for data transmission).
    pub learner_machine: usize,
    /// Communication-channel configuration.
    pub comm: CommConfig,
    /// Environment name (see [`gymlite::make_env`]).
    pub env: String,
    /// Observation size override for synthetic environments (None = the
    /// environment's default; tests shrink it for speed).
    pub obs_dim_override: Option<usize>,
    /// Per-step emulation latency override in microseconds for synthetic
    /// environments (None = the environment's default; tests use Some(0)).
    pub step_latency_us: Option<u64>,
    /// The algorithm and its hyperparameters.
    pub algorithm: AlgorithmSpec,
    /// Where DQN's replay buffer lives (ignored by on-policy algorithms).
    #[serde(default)]
    pub replay: ReplayPlacement,
    /// Number of learner shards. 1 runs the classic single-learner process;
    /// more than 1 splits the learner across shards that each own a slice
    /// of the explorer pool (via the relaxed assignment table) and exchange
    /// gradients per [`AllreduceMode`]. All shards run on `learner_machine`.
    #[serde(default = "default_learner_shards")]
    pub learner_shards: usize,
    /// Gradient-exchange discipline between learner shards (ignored when
    /// `learner_shards == 1`).
    #[serde(default)]
    pub allreduce: AllreduceMode,
    /// Steps per rollout message (paper: 200 for CartPole, 500 for Atari).
    pub rollout_len: usize,
    /// Stop once the learner has consumed this many rollout steps.
    pub goal_steps: u64,
    /// Hard wall-clock cap in seconds (safety net for CI).
    pub max_seconds: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Periodic DNN checkpointing (paper §4.2 fault tolerance).
    pub checkpoint: Option<CheckpointConfig>,
    /// Optional initial learner parameters (PBT seeds new populations with the
    /// best population's weights, paper §4.3).
    #[serde(skip)]
    pub initial_params: Option<Vec<f32>>,
}

impl DeploymentConfig {
    /// A single-machine CartPole deployment with `explorers` explorers.
    pub fn cartpole(algorithm: AlgorithmSpec, explorers: u32) -> Self {
        DeploymentConfig {
            cluster: ClusterSpec::default(),
            explorers_per_machine: vec![explorers],
            learner_machine: 0,
            comm: CommConfig::default(),
            env: "CartPole".into(),
            obs_dim_override: None,
            step_latency_us: None,
            algorithm,
            replay: ReplayPlacement::InLearner,
            learner_shards: 1,
            allreduce: AllreduceMode::Sync,
            rollout_len: 200,
            goal_steps: 100_000,
            max_seconds: 600.0,
            seed: 0,
            checkpoint: None,
            initial_params: None,
        }
    }

    /// A single-machine synthetic-Atari deployment.
    pub fn atari(env: &str, algorithm: AlgorithmSpec, explorers: u32) -> Self {
        DeploymentConfig {
            cluster: ClusterSpec::default(),
            explorers_per_machine: vec![explorers],
            learner_machine: 0,
            comm: CommConfig::default(),
            env: env.into(),
            obs_dim_override: None,
            step_latency_us: None,
            algorithm,
            replay: ReplayPlacement::InLearner,
            learner_shards: 1,
            allreduce: AllreduceMode::Sync,
            rollout_len: 500,
            goal_steps: 200_000,
            max_seconds: 3600.0,
            seed: 0,
            checkpoint: None,
            initial_params: None,
        }
    }

    /// Sets the learner's step goal (builder style).
    pub fn with_goal_steps(mut self, steps: u64) -> Self {
        self.goal_steps = steps;
        self
    }

    /// Selects the parameter-broadcast encoding (builder style) — see
    /// [`xingtian_comm::ParamCompression`].
    pub fn with_param_compression(mut self, kind: xingtian_comm::ParamCompression) -> Self {
        self.comm = self.comm.with_param_compression(kind);
        self
    }

    /// Sets the transport compression threshold in bytes (builder style):
    /// bodies larger than this are LZ4-chunked when entering the store.
    pub fn with_compress_threshold(mut self, threshold: usize) -> Self {
        self.comm = self.comm.with_compress_threshold(threshold);
        self
    }

    /// Sets the wall-clock cap (builder style).
    pub fn with_max_seconds(mut self, secs: f64) -> Self {
        self.max_seconds = secs;
        self
    }

    /// Sets the rollout length (builder style).
    pub fn with_rollout_len(mut self, len: usize) -> Self {
        self.rollout_len = len;
        self
    }

    /// Sets the observation-size override (builder style).
    pub fn with_obs_dim(mut self, dim: usize) -> Self {
        self.obs_dim_override = Some(dim);
        self
    }

    /// Sets the synthetic-environment step-latency override (builder style).
    pub fn with_step_latency_us(mut self, us: u64) -> Self {
        self.step_latency_us = Some(us);
        self
    }

    /// Enables periodic checkpointing (builder style).
    pub fn with_checkpoint(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Sets the base seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Moves DQN's replay buffer into the communication layer (builder
    /// style): explorers address rollouts to the replay shard and the
    /// learner samples from the shared plane.
    pub fn with_store_resident_replay(mut self) -> Self {
        self.replay = ReplayPlacement::StoreResident;
        self
    }

    /// Shards the learner across `shards` threads (builder style). Shard `s`
    /// owns a contiguous slice of the explorer pool through the assignment
    /// table and participates in the cross-learner gradient exchange.
    pub fn with_learner_shards(mut self, shards: usize) -> Self {
        self.learner_shards = shards;
        self
    }

    /// Selects the cross-shard gradient-exchange mode (builder style).
    pub fn with_allreduce(mut self, mode: AllreduceMode) -> Self {
        self.allreduce = mode;
        self
    }

    /// Shards each broker's router fabric `shards` ways (builder style).
    /// Destinations hash onto shards, so per-sender-per-destination ordering
    /// is preserved while command drains proceed in parallel.
    pub fn with_router_shards(mut self, shards: usize) -> Self {
        self.comm = self.comm.with_router_shards(shards);
        self
    }

    /// Caps each broker's object-store arena in bytes (builder style). Small
    /// caps are the deterministic backpressure lever for elastic-supervision
    /// tests: a full store parks senders and raises occupancy telemetry.
    pub fn with_store_capacity(mut self, bytes: usize) -> Self {
        self.comm = self.comm.with_store_capacity(bytes);
        self
    }

    /// Spreads explorers across `machines` machines (equal split, remainder on
    /// the earliest machines) and sizes the cluster accordingly.
    pub fn spread_across(mut self, machines: usize) -> Self {
        let total: u32 = self.explorers_per_machine.iter().sum();
        let base = total / machines as u32;
        let rem = total % machines as u32;
        self.explorers_per_machine =
            (0..machines as u32).map(|m| base + u32::from(m < rem)).collect();
        self.cluster.machines = machines;
        self
    }

    /// Total explorer count.
    pub fn total_explorers(&self) -> u32 {
        self.explorers_per_machine.iter().sum()
    }

    /// Machine hosting explorer `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn explorer_machine(&self, index: u32) -> usize {
        let mut remaining = index;
        for (m, &count) in self.explorers_per_machine.iter().enumerate() {
            if remaining < count {
                return m;
            }
            remaining -= count;
        }
        panic!("explorer index {index} out of range ({} explorers)", self.total_explorers());
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.explorers_per_machine.len() != self.cluster.machines {
            return Err(format!(
                "explorers_per_machine has {} entries but the cluster has {} machines",
                self.explorers_per_machine.len(),
                self.cluster.machines
            ));
        }
        if self.learner_machine >= self.cluster.machines {
            return Err(format!(
                "learner machine {} out of range ({} machines)",
                self.learner_machine, self.cluster.machines
            ));
        }
        if self.total_explorers() == 0 {
            return Err("deployment needs at least one explorer".into());
        }
        if self.rollout_len == 0 {
            return Err("rollout_len must be positive".into());
        }
        if self.replay == ReplayPlacement::StoreResident
            && !matches!(self.algorithm, AlgorithmSpec::Dqn(_))
        {
            return Err(format!(
                "store-resident replay requires DQN (got {})",
                self.algorithm.name()
            ));
        }
        if self.learner_shards == 0 {
            return Err("learner_shards must be positive".into());
        }
        if self.learner_shards > 1 {
            // The sync allreduce partitions each round into a fixed number of
            // gradient slots (crate::allreduce::GRAD_SLOTS = 4) that the shard
            // count must divide, or slot ownership would differ across counts
            // and the cross-count bit-identity guarantee would not hold.
            if !matches!(self.learner_shards, 2 | 4) {
                return Err(format!(
                    "learner_shards must be 1, 2, or 4 (got {}): the sync \
                     allreduce partitions rounds into 4 fixed gradient slots",
                    self.learner_shards
                ));
            }
            if self.learner_shards > self.total_explorers() as usize {
                return Err(format!(
                    "{} learner shards need at least as many explorers (got {})",
                    self.learner_shards,
                    self.total_explorers()
                ));
            }
            if self.allreduce == AllreduceMode::Sync {
                match &self.algorithm {
                    AlgorithmSpec::Dqn(c) if c.prioritized.is_none() => {}
                    AlgorithmSpec::Dqn(_) => {
                        return Err("sync allreduce requires uniform replay: priority \
                                    weights are shard-private and would break slot \
                                    interchangeability; use AllreduceMode::Relaxed"
                            .into());
                    }
                    _ => {
                        return Err(format!(
                            "sync allreduce requires DQN (got {}); use AllreduceMode::Relaxed",
                            self.algorithm.name()
                        ));
                    }
                }
            }
            if self.replay == ReplayPlacement::StoreResident {
                return Err("store-resident replay supports a single learner shard".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explorer_machine_assignment() {
        let mut c = DeploymentConfig::cartpole(AlgorithmSpec::impala(), 6);
        c.explorers_per_machine = vec![2, 3, 1];
        c.cluster.machines = 3;
        assert_eq!(c.explorer_machine(0), 0);
        assert_eq!(c.explorer_machine(1), 0);
        assert_eq!(c.explorer_machine(2), 1);
        assert_eq!(c.explorer_machine(4), 1);
        assert_eq!(c.explorer_machine(5), 2);
    }

    #[test]
    fn spread_across_balances() {
        let c = DeploymentConfig::cartpole(AlgorithmSpec::impala(), 10).spread_across(4);
        assert_eq!(c.explorers_per_machine, vec![3, 3, 2, 2]);
        assert_eq!(c.cluster.machines, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_mismatches() {
        let mut c = DeploymentConfig::cartpole(AlgorithmSpec::ppo(), 2);
        c.learner_machine = 5;
        assert!(c.validate().is_err());
        let mut c2 = DeploymentConfig::cartpole(AlgorithmSpec::ppo(), 0);
        c2.explorers_per_machine = vec![0];
        assert!(c2.validate().is_err());
    }

    #[test]
    fn store_resident_replay_requires_dqn() {
        let ok = DeploymentConfig::cartpole(AlgorithmSpec::dqn(), 2).with_store_resident_replay();
        assert_eq!(ok.replay, ReplayPlacement::StoreResident);
        assert!(ok.validate().is_ok());
        let bad = DeploymentConfig::cartpole(AlgorithmSpec::ppo(), 2).with_store_resident_replay();
        assert!(bad.validate().unwrap_err().contains("requires DQN"));
    }

    #[test]
    fn learner_shard_validation() {
        let ok = DeploymentConfig::cartpole(AlgorithmSpec::dqn(), 4).with_learner_shards(2);
        assert!(ok.validate().is_ok());
        let ok4 = DeploymentConfig::cartpole(AlgorithmSpec::dqn(), 8)
            .with_learner_shards(4)
            .with_allreduce(AllreduceMode::Relaxed);
        assert!(ok4.validate().is_ok());
        // Shard counts outside {1, 2, 4} break the fixed-slot partition.
        let bad = DeploymentConfig::cartpole(AlgorithmSpec::dqn(), 8).with_learner_shards(3);
        assert!(bad.validate().unwrap_err().contains("gradient slots"));
        let zero = DeploymentConfig::cartpole(AlgorithmSpec::dqn(), 8).with_learner_shards(0);
        assert!(zero.validate().is_err());
        // Sync lockstep is DQN-only; relaxed delta exchange takes any algorithm.
        let sync_ppo = DeploymentConfig::cartpole(AlgorithmSpec::ppo(), 4).with_learner_shards(2);
        assert!(sync_ppo.validate().unwrap_err().contains("requires DQN"));
        let relaxed_ppo = DeploymentConfig::cartpole(AlgorithmSpec::ppo(), 4)
            .with_learner_shards(2)
            .with_allreduce(AllreduceMode::Relaxed);
        assert!(relaxed_ppo.validate().is_ok());
        // Each shard needs at least one explorer to own.
        let starved = DeploymentConfig::cartpole(AlgorithmSpec::dqn(), 1).with_learner_shards(2);
        assert!(starved.validate().unwrap_err().contains("at least as many explorers"));
        // The store-resident replay plane still assumes one learner.
        let replayed = DeploymentConfig::cartpole(AlgorithmSpec::dqn(), 4)
            .with_learner_shards(2)
            .with_store_resident_replay();
        assert!(replayed.validate().unwrap_err().contains("single learner shard"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explorer_machine_out_of_range_panics() {
        let c = DeploymentConfig::cartpole(AlgorithmSpec::dqn(), 1);
        let _ = c.explorer_machine(1);
    }
}
