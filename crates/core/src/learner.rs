//! The learner process: DNN training driven by rollout arrival.
//!
//! The trainer thread pops complete messages from its local receive buffer —
//! by the time it looks, the asynchronous channel has already moved rollouts
//! across processes and machines and staged them locally. The only waiting
//! the learner ever does is for data that has not been *produced* yet; that
//! wait is measured and reported as the paper's "actual wait" (Figs. 8–10).

use crate::checkpoint::Checkpointer;
use crate::messages::{ControlCommand, ParamAck, StatsMsg};
use crate::parameters::ParamBroadcaster;
use crate::stats::ThroughputTimeline;
use bytes::Bytes;
use std::time::{Duration, Instant};
use xingtian_algos::api::Algorithm;
use xingtian_algos::payload::BatchDecoder;
use xingtian_comm::{Endpoint, ParamCompression, TransmissionStats};
use xingtian_message::codec::{Decode, Encode};
use xingtian_message::{Header, Message, MessageKind, ProcessId};

/// Configuration of the learner process.
pub struct LearnerProcess {
    /// Communication endpoint (`ProcessId::learner(0)`).
    pub endpoint: Endpoint,
    /// The algorithm being trained.
    pub algorithm: Box<dyn Algorithm>,
    /// Optional periodic checkpointing (paper §4.2).
    pub checkpointer: Option<Checkpointer>,
    /// Fault-injection kill switch, pulsed once per completed training
    /// session (`None` = not under chaos).
    pub probe: Option<xt_fault::ProcessProbe>,
    /// Parameter-broadcast encoding (delta/quantized frames with full-f32
    /// fallback; `FullF32` reproduces the plain-blob behavior).
    pub param_compression: ParamCompression,
}

/// What the learner reports when it shuts down.
#[derive(Debug)]
pub struct LearnerOutcome {
    /// Rollout steps consumed for training.
    pub steps_consumed: u64,
    /// Consumption timeline (steps/s series).
    pub timeline: ThroughputTimeline,
    /// Time blocked waiting for rollouts before each training session.
    pub wait_stats: TransmissionStats,
    /// Training sessions completed.
    pub train_sessions: u64,
    /// Total compute time spent inside `train`.
    pub train_time: Duration,
    /// Final trained parameters (flat), for PBT weight inheritance.
    pub final_params: Vec<f32>,
}

impl LearnerProcess {
    /// Runs the learner until the controller broadcasts shutdown.
    pub fn run(mut self) -> LearnerOutcome {
        let controller = ProcessId::controller(0);
        let mut timeline = ThroughputTimeline::new();
        let wait_stats = TransmissionStats::new();
        let wait_hist = self.endpoint.telemetry().histogram("learner.wait_ns");
        let train_hist = self.endpoint.telemetry().histogram("learn.train_ns");
        // The classic fetch→decode→re-insert stage. Store-resident replay
        // deletes it: the learner then receives only ReplayNotice wakeups and
        // this histogram stays empty.
        let decode_hist = self.endpoint.telemetry().histogram("learn.decode_ns");
        let sessions_counter = self.endpoint.telemetry().counter("learner.train_sessions");
        // Rollout messages decode into recycled step storage: batches the
        // algorithm has fully consumed flow back through `take_spent` and
        // serve the next decode without reallocating.
        let mut decoder = BatchDecoder::new();
        // Parameter-plane encoder: ring of delta bases, per-explorer sent
        // versions, error feedback for the quantized modes.
        let mut broadcaster = ParamBroadcaster::new(self.param_compression, self.endpoint.telemetry());
        // Give the algorithm the endpoint's telemetry so it can publish its
        // internal stage timings (e.g. DQN's `learn.sample_ns`).
        self.algorithm.attach_telemetry(self.endpoint.telemetry());
        let mut steps_consumed = 0u64;
        let mut train_sessions = 0u64;
        let mut train_time = Duration::ZERO;
        // Wait accumulated since the last completed training session.
        let mut waited = Duration::ZERO;

        'outer: loop {
            // Block for the next message, accounting the blocked time as wait.
            let t0 = Instant::now();
            let Some(msg) = self.endpoint.recv() else { break };
            waited += t0.elapsed();
            if self.handle_message(msg.header.kind, &msg.body, &mut decoder, &decode_hist, &mut broadcaster) {
                break;
            }
            // Drain whatever else has already arrived — data already staged
            // locally costs no wait. The drain is bounded: at saturation every
            // decoded rollout releases a store credit that un-blocks a
            // backpressured explorer, whose next rollout lands before the
            // buffer empties — an unbounded drain then decodes forever and
            // never trains (a livelock that reads as multi-second
            // zero-throughput stalls at 64+ explorers). Sixteen messages per
            // pass keeps the batch queue fed without starving training.
            let mut drained = 0;
            while drained < 16 {
                let Some(extra) = self.endpoint.try_recv() else { break };
                drained += 1;
                if self.handle_message(extra.header.kind, &extra.body, &mut decoder, &decode_hist, &mut broadcaster) {
                    break 'outer;
                }
            }
            // Train for as long as the algorithm has work.
            while let Some(report) = {
                let t = Instant::now();
                let r = self.algorithm.try_train();
                if r.is_some() {
                    let dt = t.elapsed();
                    train_time += dt;
                    train_hist.record_duration(dt);
                }
                r
            } {
                train_sessions += 1;
                steps_consumed += report.steps_consumed as u64;
                timeline.record(report.steps_consumed as u64);
                wait_stats.record(waited);
                wait_hist.record_duration(waited);
                sessions_counter.inc();
                waited = Duration::ZERO;
                if let Some(ckpt) = &mut self.checkpointer {
                    ckpt.on_session(&self.algorithm.param_blob());
                }
                // Chaos hook, deliberately *after* the checkpoint hook: a
                // learner killed on session N has persisted everything the
                // checkpoint policy says it should, so recovery measures the
                // policy, not the kill's timing luck.
                if let Some(probe) = &self.probe {
                    probe.pulse();
                }
                if !report.notify.is_empty() {
                    let blob = self.algorithm.param_blob();
                    let enc = broadcaster.encode(&blob, &report.notify);
                    let dst: Vec<ProcessId> =
                        report.notify.iter().map(|&e| ProcessId::explorer(e)).collect();
                    let mut header =
                        Header::new(self.endpoint.pid(), dst, MessageKind::Parameters)
                            .with_param_version(enc.version);
                    header.compression = enc.compression;
                    self.endpoint.send(Message::new(header, enc.body));
                }
                let stats = StatsMsg {
                    source: StatsMsg::LEARNER,
                    steps: report.steps_consumed as u64,
                    episode_returns: Vec::new(),
                };
                self.endpoint.send_to(
                    vec![controller],
                    MessageKind::Stats,
                    Bytes::from(stats.to_bytes()),
                );
            }
            // Recycle the step storage of batches the algorithm is done with.
            while let Some(spent) = self.algorithm.take_spent() {
                decoder.recycle(spent);
            }
        }

        let final_params = self.algorithm.param_blob().params;
        LearnerOutcome {
            steps_consumed,
            timeline,
            wait_stats,
            train_sessions,
            train_time,
            final_params,
        }
    }

    /// Processes one incoming message. Returns `true` on shutdown.
    fn handle_message(
        &mut self,
        kind: MessageKind,
        body: &Bytes,
        decoder: &mut BatchDecoder,
        decode_hist: &xt_telemetry::HistogramHandle,
        broadcaster: &mut ParamBroadcaster,
    ) -> bool {
        match kind {
            MessageKind::ParamAck => {
                if let Ok(ack) = ParamAck::from_bytes(body) {
                    broadcaster.on_ack(&ack);
                }
                false
            }
            MessageKind::Rollout => {
                let t0 = Instant::now();
                if let Ok(batch) = decoder.decode(body) {
                    self.algorithm.on_rollout(batch);
                }
                decode_hist.record_duration(t0.elapsed());
                false
            }
            // Store-resident replay: the shard ingested a batch on our
            // behalf. Nothing to decode — falling through wakes the training
            // loop, which samples straight from the shared plane.
            MessageKind::ReplayNotice => false,
            MessageKind::Control => {
                matches!(ControlCommand::from_bytes(body), Ok(ControlCommand::Shutdown))
            }
            _ => false,
        }
    }
}
