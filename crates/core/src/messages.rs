//! Control and statistics payloads exchanged with the center controller.

use xingtian_message::codec::{Decode, DecodeError, Encode, Reader};

/// Lifecycle commands broadcast by the center controller (paper §3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlCommand {
    /// Stop all processes and release resources.
    Shutdown,
}

impl Encode for ControlCommand {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ControlCommand::Shutdown => out.push(0),
        }
    }
    fn encoded_size(&self) -> usize {
        1
    }
}

impl Decode for ControlCommand {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(ControlCommand::Shutdown),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// Periodic statistics pushed by workhorse threads to the center controller.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsMsg {
    /// Producing explorer index, or `u32::MAX` for the learner.
    pub source: u32,
    /// Environment steps taken (explorers) or consumed (learner) since the
    /// previous stats message.
    pub steps: u64,
    /// Returns of episodes completed since the previous stats message.
    pub episode_returns: Vec<f32>,
}

impl StatsMsg {
    /// Marker value for learner-originated stats.
    pub const LEARNER: u32 = u32::MAX;
}

impl Encode for StatsMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.source.encode(out);
        self.steps.encode(out);
        self.episode_returns.encode(out);
    }
    fn encoded_size(&self) -> usize {
        self.source.encoded_size()
            + self.steps.encoded_size()
            + self.episode_returns.encoded_size()
    }
}

impl Decode for StatsMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(StatsMsg {
            source: u32::decode(r)?,
            steps: u64::decode(r)?,
            episode_returns: Vec::<f32>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_round_trips() {
        let bytes = ControlCommand::Shutdown.to_bytes();
        assert_eq!(ControlCommand::from_bytes(&bytes).unwrap(), ControlCommand::Shutdown);
    }

    #[test]
    fn control_rejects_unknown_tag() {
        assert!(ControlCommand::from_bytes(&[9]).is_err());
    }

    #[test]
    fn stats_round_trips() {
        let s = StatsMsg { source: 3, steps: 12345, episode_returns: vec![1.5, -2.0] };
        let bytes = s.to_bytes();
        assert_eq!(StatsMsg::from_bytes(&bytes).unwrap(), s);
    }
}
