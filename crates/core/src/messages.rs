//! Control and statistics payloads exchanged with the center controller.

use xingtian_message::codec::{Decode, DecodeError, Encode, Reader};

/// Lifecycle commands broadcast by the center controller (paper §3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlCommand {
    /// Stop all processes and release resources.
    Shutdown,
}

impl Encode for ControlCommand {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ControlCommand::Shutdown => out.push(0),
        }
    }
    fn encoded_size(&self) -> usize {
        1
    }
}

impl Decode for ControlCommand {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(ControlCommand::Shutdown),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// Periodic statistics pushed by workhorse threads to the center controller.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsMsg {
    /// Producing explorer index, or `u32::MAX` for the learner.
    pub source: u32,
    /// Environment steps taken (explorers) or consumed (learner) since the
    /// previous stats message.
    pub steps: u64,
    /// Returns of episodes completed since the previous stats message.
    pub episode_returns: Vec<f32>,
}

impl StatsMsg {
    /// Marker value for learner-originated stats.
    pub const LEARNER: u32 = u32::MAX;
}

impl Encode for StatsMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.source.encode(out);
        self.steps.encode(out);
        self.episode_returns.encode(out);
    }
    fn encoded_size(&self) -> usize {
        self.source.encoded_size()
            + self.steps.encoded_size()
            + self.episode_returns.encoded_size()
    }
}

impl Decode for StatsMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(StatsMsg {
            source: u32::decode(r)?,
            steps: u64::decode(r)?,
            episode_returns: Vec::<f32>::decode(r)?,
        })
    }
}

/// An explorer confirming (or refusing) a parameter broadcast
/// (`MessageKind::ParamAck`). The learner's delta-base bookkeeping tracks
/// acks to know which base version each receiver can decode against; a
/// refusal (`applied == false`, e.g. after a respawn lost the base) rebases
/// the sender so its next broadcast falls back to full f32.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamAck {
    /// The acking explorer's index.
    pub explorer: u32,
    /// The broadcast's parameter version.
    pub version: u64,
    /// Whether the explorer decoded and applied the broadcast.
    pub applied: bool,
}

impl Encode for ParamAck {
    fn encode(&self, out: &mut Vec<u8>) {
        self.explorer.encode(out);
        self.version.encode(out);
        out.push(self.applied as u8);
    }
    fn encoded_size(&self) -> usize {
        self.explorer.encoded_size() + self.version.encoded_size() + 1
    }
}

impl Decode for ParamAck {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ParamAck {
            explorer: u32::decode(r)?,
            version: u64::decode(r)?,
            applied: match r.u8()? {
                0 => false,
                1 => true,
                t => return Err(DecodeError::InvalidTag(t)),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_round_trips() {
        let bytes = ControlCommand::Shutdown.to_bytes();
        assert_eq!(ControlCommand::from_bytes(&bytes).unwrap(), ControlCommand::Shutdown);
    }

    #[test]
    fn control_rejects_unknown_tag() {
        assert!(ControlCommand::from_bytes(&[9]).is_err());
    }

    #[test]
    fn stats_round_trips() {
        let s = StatsMsg { source: 3, steps: 12345, episode_returns: vec![1.5, -2.0] };
        let bytes = s.to_bytes();
        assert_eq!(StatsMsg::from_bytes(&bytes).unwrap(), s);
    }

    #[test]
    fn param_ack_round_trips() {
        for applied in [true, false] {
            let a = ParamAck { explorer: 17, version: 42, applied };
            assert_eq!(ParamAck::from_bytes(&a.to_bytes()).unwrap(), a);
        }
        assert!(ParamAck::from_bytes(&[0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7]).is_err());
    }
}
