//! The dummy DRL algorithm for measuring raw data-transmission efficiency
//! (paper §5.1).
//!
//! The dummy algorithm keeps the communication mode of DRL algorithms but
//! strips all computation: explorers send a fixed number of fixed-size
//! messages as fast as they can; the learner receives them in rounds (one
//! message from each explorer per round, without caring which explorer sent
//! what) and reports the end-to-end latency and the data-transmission
//! throughput once all rounds complete. Parameter traffic is omitted, exactly
//! as in the paper.

use crate::config::DeploymentConfig;
use bytes::Bytes;
use netsim::{Cluster, ClusterSpec};
use std::time::{Duration, Instant};
use xingtian_comm::{connect_brokers, Broker, CommConfig};
use xingtian_message::{MessageKind, ProcessId};

/// Configuration of one dummy-algorithm run.
#[derive(Debug, Clone)]
pub struct DummyConfig {
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// Explorers hosted per machine.
    pub explorers_per_machine: Vec<u32>,
    /// Machine hosting the learner.
    pub learner_machine: usize,
    /// Message body size in bytes.
    pub message_size: usize,
    /// Messages sent per explorer (paper: 20).
    pub rounds: usize,
    /// Channel configuration. The paper's transmission benchmark payloads are
    /// synthetic; compression is disabled by default so the measured rate is
    /// the channel's, not the compressor's.
    pub comm: CommConfig,
}

impl DummyConfig {
    /// Single-machine run with `explorers` explorers and `message_size`-byte
    /// messages, 20 rounds (the paper's setup).
    pub fn single_machine(explorers: u32, message_size: usize) -> Self {
        DummyConfig {
            cluster: ClusterSpec::default(),
            explorers_per_machine: vec![explorers],
            learner_machine: 0,
            message_size,
            rounds: 20,
            comm: CommConfig::uncompressed(),
        }
    }

    /// Total explorer count.
    pub fn total_explorers(&self) -> u32 {
        self.explorers_per_machine.iter().sum()
    }
}

/// Measurements reported by the dummy learner.
#[derive(Debug, Clone)]
pub struct DummyResult {
    /// Body bytes the learner received in total.
    pub total_bytes: u64,
    /// Time from launch until the last message of the last round arrived.
    pub elapsed: Duration,
    /// Cumulative time at which each round completed.
    pub round_latencies: Vec<Duration>,
}

impl DummyResult {
    /// Data-transmission throughput in MB/s (the paper's Fig. 4/5 y-axis).
    pub fn throughput_mb_s(&self) -> f64 {
        if self.elapsed.as_secs_f64() <= 0.0 {
            return 0.0;
        }
        self.total_bytes as f64 / 1e6 / self.elapsed.as_secs_f64()
    }
}

/// Runs the dummy DRL algorithm on the XingTian channel.
///
/// # Panics
///
/// Panics if the configuration is internally inconsistent (machine counts)
/// or a worker thread panics.
pub fn run_dummy(config: DummyConfig) -> DummyResult {
    assert_eq!(
        config.explorers_per_machine.len(),
        config.cluster.machines,
        "explorers_per_machine must match the machine count"
    );
    let num_explorers = config.total_explorers();
    assert!(num_explorers > 0, "at least one explorer required");

    let cluster = Cluster::new(config.cluster.clone());
    let brokers: Vec<Broker> =
        (0..cluster.len()).map(|m| Broker::new(m, cluster.clone(), config.comm.clone())).collect();
    // Fabric first: endpoint routes created below propagate to peers live.
    connect_brokers(&brokers);
    let learner_ep = brokers[config.learner_machine].endpoint(ProcessId::learner(0));

    let mut explorer_eps = Vec::new();
    let mut next_index = 0u32;
    for (machine, &count) in config.explorers_per_machine.iter().enumerate() {
        for _ in 0..count {
            explorer_eps.push(brokers[machine].endpoint(ProcessId::explorer(next_index)));
            next_index += 1;
        }
    }

    // Incompressible-ish payload: a distinct byte pattern per message index
    // would defeat dedup; a simple ramp suffices since compression is off by
    // default.
    let payload: Vec<u8> = (0..config.message_size).map(|i| (i % 251) as u8).collect();
    let payload = Bytes::from(payload);

    let start = Instant::now();
    let rounds = config.rounds;
    let mut explorer_threads = Vec::new();
    for ep in explorer_eps {
        let payload = payload.clone();
        explorer_threads.push(std::thread::spawn(move || {
            for _ in 0..rounds {
                // Aggressive push: stage every message immediately; the
                // channel transmits them while we stage the next.
                ep.send_to(vec![ProcessId::learner(0)], MessageKind::Dummy, payload.clone());
            }
            // Keep the endpoint alive until everything is drained out of the
            // send buffer (close() joins the sender thread).
            ep.close();
        }));
    }

    // Dummy learner: one message per explorer per round, sender-agnostic.
    let mut total_bytes = 0u64;
    let mut round_latencies = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        for _ in 0..num_explorers {
            let msg = learner_ep.recv().expect("dummy learner starved: channel closed early");
            total_bytes += msg.body.len() as u64;
        }
        round_latencies.push(start.elapsed());
    }
    let elapsed = start.elapsed();

    for t in explorer_threads {
        t.join().expect("dummy explorer panicked");
    }
    learner_ep.close();
    for b in &brokers {
        b.shutdown();
    }

    DummyResult { total_bytes, elapsed, round_latencies }
}

/// Convenience: derives a [`DummyConfig`] from a deployment config (same
/// cluster and placement), used by benches that sweep both.
pub fn dummy_from_deployment(d: &DeploymentConfig, message_size: usize, rounds: usize) -> DummyConfig {
    DummyConfig {
        cluster: d.cluster.clone(),
        explorers_per_machine: d.explorers_per_machine.clone(),
        learner_machine: d.learner_machine,
        message_size,
        rounds,
        comm: CommConfig::uncompressed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_machine_transfers_everything() {
        let cfg = DummyConfig { rounds: 5, ..DummyConfig::single_machine(4, 16 * 1024) };
        let result = run_dummy(cfg);
        assert_eq!(result.total_bytes, 4 * 5 * 16 * 1024);
        assert_eq!(result.round_latencies.len(), 5);
        assert!(result.throughput_mb_s() > 0.0);
    }

    #[test]
    fn round_latencies_are_monotonic() {
        let cfg = DummyConfig { rounds: 4, ..DummyConfig::single_machine(2, 4 * 1024) };
        let result = run_dummy(cfg);
        for w in result.round_latencies.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn two_machine_run_is_nic_bound() {
        // 2 explorers on machine 1 send to a learner on machine 0 through a
        // deliberately slow NIC; achieved throughput must respect it.
        let cfg = DummyConfig {
            cluster: ClusterSpec::default().machines(2).nic_bandwidth(20e6).latency_secs(0.0),
            explorers_per_machine: vec![0, 2],
            learner_machine: 0,
            message_size: 1024 * 1024,
            rounds: 3,
            comm: CommConfig::uncompressed(),
        };
        let result = run_dummy(cfg);
        let mbps = result.throughput_mb_s();
        assert!(mbps < 25.0, "cannot beat the 20 MB/s NIC, got {mbps:.1}");
        assert!(mbps > 5.0, "should approach the NIC rate, got {mbps:.1}");
    }
}
