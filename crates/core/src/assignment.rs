//! Relaxed explorer→learner-shard assignment (ROADMAP item 2).
//!
//! With a single learner every rollout's destination is the fixed
//! `ProcessId::learner(0)`, resolved once when the deployment is built. With
//! sharded learners that coupling breaks twice over: rollouts must spread
//! across shards, and a respawned shard must keep receiving the traffic its
//! predecessor owned. The [`AssignmentTable`] is the indirection that fixes
//! both — a shared map from explorer index to owning learner shard that
//! explorers re-read *per rollout send* and learner shards re-read *per
//! parameter broadcast*.
//!
//! The table is deliberately **relaxed** ("Highly Parallelized RL Training
//! with Relaxed Assignment Dependencies", arXiv:2502.20190): readers take an
//! unsynchronized snapshot, so a rebalance does not fence any sender. An
//! explorer may address one more rollout to its old shard after a move; the
//! old shard still ingests it (off-policy algorithms train on it, on-policy
//! algorithms shed it through `Algorithm::take_spent`). The only invariants
//! are that every explorer always has exactly one owner and that ownership
//! slices stay disjoint — which keeps each shard's `ParamBroadcaster`
//! base-ring private to the explorers it owns.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use xingtian_message::ProcessId;

/// Shared explorer→learner-shard ownership map.
///
/// Cloneable-by-`Arc` by callers; all methods take `&self`.
#[derive(Debug)]
pub struct AssignmentTable {
    /// `owner[e]` = learner shard owning explorer `e`.
    owner: RwLock<Vec<u32>>,
    /// Bumped on every rebalance; readers can cheaply detect staleness.
    epoch: AtomicU64,
    shards: u32,
}

impl AssignmentTable {
    /// The initial contiguous assignment: explorer `e` belongs to shard
    /// `e * shards / num_explorers`, giving every shard a contiguous slice
    /// whose sizes differ by at most one.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `num_explorers < shards`.
    pub fn contiguous(num_explorers: u32, shards: u32) -> Self {
        assert!(shards > 0, "at least one learner shard");
        assert!(num_explorers >= shards, "every shard needs an explorer");
        let owner = (0..num_explorers)
            .map(|e| ((e as u64 * shards as u64) / num_explorers as u64) as u32)
            .collect();
        AssignmentTable { owner: RwLock::new(owner), epoch: AtomicU64::new(0), shards }
    }

    /// Number of learner shards the table spreads over.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of explorers in the table.
    pub fn num_explorers(&self) -> u32 {
        self.owner.read().len() as u32
    }

    /// The shard currently owning `explorer`.
    ///
    /// # Panics
    ///
    /// Panics if `explorer` is out of range.
    pub fn shard_of(&self, explorer: u32) -> u32 {
        self.owner.read()[explorer as usize]
    }

    /// The learner-shard ProcessId rollouts from `explorer` should address
    /// *right now*. Stable across shard respawns: a restored shard re-binds
    /// the same `ProcessId::learner(s)` endpoint, so senders never need to
    /// learn about the respawn.
    pub fn rollout_dst(&self, explorer: u32) -> ProcessId {
        ProcessId::learner(self.shard_of(explorer))
    }

    /// Explorer indices currently owned by `shard`, ascending.
    pub fn owned(&self, shard: u32) -> Vec<u32> {
        self.owner
            .read()
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(e, _)| e as u32)
            .collect()
    }

    /// Current rebalance epoch (0 until the first [`Self::rebalance`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Registers explorers up through index `explorer`, growing the table if
    /// needed (elastic pool growth: the supervisor spawns explorers beyond
    /// the configured count and each must have an owner before its first
    /// rollout resolves). Every new index joins the currently least-loaded
    /// shard, so elastic growth also evens out any skew a prior
    /// [`Self::rebalance`] introduced. Returns the shard owning `explorer`.
    /// Idempotent for indices already in the table.
    pub fn register(&self, explorer: u32) -> u32 {
        let mut owner = self.owner.write();
        if (explorer as usize) < owner.len() {
            return owner[explorer as usize];
        }
        let mut counts = vec![0u32; self.shards as usize];
        for &s in owner.iter() {
            counts[s as usize] += 1;
        }
        while owner.len() <= explorer as usize {
            let target = counts
                .iter()
                .enumerate()
                .min_by_key(|&(_, &c)| c)
                .map(|(s, _)| s as u32)
                .expect("shards > 0");
            counts[target as usize] += 1;
            owner.push(target);
        }
        self.epoch.fetch_add(1, Ordering::Release);
        owner[explorer as usize]
    }

    /// Moves up to `count` explorers from `from` to `to` (backpressure
    /// relief: a shard whose ingest queue is growing sheds owners to an idle
    /// peer). Returns the explorers actually moved. The move is atomic with
    /// respect to other rebalances but intentionally *not* with respect to
    /// readers — in-flight rollouts keep their already-resolved destination.
    pub fn rebalance(&self, from: u32, to: u32, count: usize) -> Vec<u32> {
        if from == to || count == 0 || to >= self.shards {
            return Vec::new();
        }
        let mut owner = self.owner.write();
        // Donate from the high end of the slice so the remaining owners stay
        // contiguous-ish and a later move in the other direction undoes this
        // one first.
        let moved: Vec<u32> = owner
            .iter()
            .enumerate()
            .rev()
            .filter(|&(_, &s)| s == from)
            .take(count.min(owner.len()))
            .map(|(e, _)| e as u32)
            .collect();
        // Never strip a shard of its last explorer: a shard that owns nobody
        // would stop receiving rollouts entirely and stall the sync ring.
        let donor_size = owner.iter().filter(|&&s| s == from).count();
        let movable = donor_size.saturating_sub(1).min(moved.len());
        let moved = &moved[..movable];
        for &e in moved {
            owner[e as usize] = to;
        }
        if !moved.is_empty() {
            self.epoch.fetch_add(1, Ordering::Release);
        }
        moved.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_slices_are_balanced_and_disjoint() {
        let t = AssignmentTable::contiguous(10, 4);
        let sizes: Vec<usize> = (0..4).map(|s| t.owned(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&n| n == 2 || n == 3), "balanced: {sizes:?}");
        // Contiguous: each shard's owners form a run.
        for s in 0..4 {
            let owned = t.owned(s);
            for w in owned.windows(2) {
                assert_eq!(w[1], w[0] + 1, "shard {s} owns a contiguous slice");
            }
        }
        assert_eq!(t.shard_of(0), 0);
        assert_eq!(t.shard_of(9), 3);
    }

    #[test]
    fn single_shard_owns_everything() {
        let t = AssignmentTable::contiguous(5, 1);
        assert_eq!(t.owned(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(t.rollout_dst(3), ProcessId::learner(0));
    }

    #[test]
    fn rebalance_moves_ownership_and_bumps_epoch() {
        let t = AssignmentTable::contiguous(8, 2);
        assert_eq!(t.epoch(), 0);
        let moved = t.rebalance(0, 1, 2);
        assert_eq!(moved, vec![3, 2], "donates from the high end");
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.owned(0), vec![0, 1]);
        assert_eq!(t.owned(1), vec![2, 3, 4, 5, 6, 7]);
        assert_eq!(t.rollout_dst(3), ProcessId::learner(1));
    }

    #[test]
    fn rebalance_never_empties_a_shard() {
        let t = AssignmentTable::contiguous(4, 2);
        let moved = t.rebalance(0, 1, 99);
        assert_eq!(moved.len(), 1, "one owner must stay behind");
        assert_eq!(t.owned(0).len(), 1);
        // No-op moves do not bump the epoch.
        let epoch = t.epoch();
        assert!(t.rebalance(0, 1, 99).is_empty());
        assert_eq!(t.epoch(), epoch);
        assert!(t.rebalance(0, 0, 5).is_empty());
        assert!(t.rebalance(0, 7, 5).is_empty(), "unknown target shard");
    }

    #[test]
    fn register_grows_onto_least_loaded_shard() {
        let t = AssignmentTable::contiguous(4, 2);
        t.rebalance(0, 1, 1); // shard 0 owns {0}, shard 1 owns {1,2,3}
        let epoch = t.epoch();
        assert_eq!(t.register(4), 0, "new explorer joins the lighter shard");
        assert_eq!(t.register(5), 0, "still lighter: 2 vs 3");
        assert_eq!(t.num_explorers(), 6);
        assert!(t.epoch() > epoch, "growth is visible to epoch watchers");
        // Idempotent for known indices, no epoch bump.
        let epoch = t.epoch();
        assert_eq!(t.register(1), 1);
        assert_eq!(t.epoch(), epoch);
        // A gap registers every intermediate index too.
        assert_eq!(t.num_explorers(), 6);
        t.register(9);
        assert_eq!(t.num_explorers(), 10);
    }

    /// Satellite coverage: `rebalance` racing concurrent explorer sends.
    /// Readers resolve destinations while a writer thread rebalances and
    /// grows the table. Invariants: every resolved destination is a valid
    /// shard (no rollout is ever lost to an unowned index), and an epoch
    /// snapshot taken around a stable read pair is consistent — if the epoch
    /// did not move, the two reads agree.
    #[test]
    fn rebalance_races_concurrent_sends_without_losing_rollouts() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let t = Arc::new(AssignmentTable::contiguous(16, 4));
        let stop = Arc::new(AtomicBool::new(false));

        let writer = {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut next = 16u32;
                for i in 0..2_000u32 {
                    let from = i % 4;
                    let to = (i + 1) % 4;
                    t.rebalance(from, to, 2);
                    if i % 64 == 0 {
                        t.register(next);
                        next += 1;
                    }
                }
                stop.store(true, Ordering::Release);
            })
        };

        let readers: Vec<_> = (0..3)
            .map(|r| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut resolved = 0u64;
                    let mut stable_pairs = 0u64;
                    // A single core can run the whole writer before a reader
                    // is scheduled: always take a minimum number of passes so
                    // both the contended and the quiescent regimes are
                    // exercised regardless of interleaving.
                    let mut passes = 0u32;
                    while passes < 50 || !stop.load(Ordering::Acquire) {
                        passes += 1;
                        for e in 0..16u32 {
                            let epoch_before = t.epoch();
                            let first = t.shard_of(e);
                            let dst = t.rollout_dst((e + r) % 16);
                            let second = t.shard_of(e);
                            let epoch_after = t.epoch();
                            // Every send resolves to a live shard: the
                            // rollout always has somewhere to go.
                            assert!(first < 4 && second < 4);
                            assert!(matches!(dst.role, xingtian_message::ProcessRole::Learner));
                            assert!(dst.index < 4);
                            // Epoch snapshot consistency: a quiescent epoch
                            // means the assignment could not have changed.
                            if epoch_before == epoch_after {
                                assert_eq!(first, second, "stable epoch, stable owner");
                                stable_pairs += 1;
                            }
                            resolved += 1;
                        }
                    }
                    (resolved, stable_pairs)
                })
            })
            .collect();

        writer.join().unwrap();
        let mut total = 0u64;
        let mut stable = 0u64;
        for r in readers {
            let (resolved, stable_pairs) = r.join().unwrap();
            total += resolved;
            stable += stable_pairs;
        }
        assert!(total > 0, "readers made progress under contention");
        assert!(stable > 0, "some reads landed in quiescent epochs");
        // After the race: still exactly one owner per explorer, no shard
        // emptied, and the elastic registrations all landed.
        assert!(t.num_explorers() >= 16 + 2_000 / 64);
        for s in 0..4 {
            assert!(!t.owned(s).is_empty(), "shard {s} kept at least one owner");
        }
        let owned_total: usize = (0..4).map(|s| t.owned(s).len()).sum();
        assert_eq!(owned_total as u32, t.num_explorers(), "ownership stays a partition");
    }
}
