//! Relaxed explorer→learner-shard assignment (ROADMAP item 2).
//!
//! With a single learner every rollout's destination is the fixed
//! `ProcessId::learner(0)`, resolved once when the deployment is built. With
//! sharded learners that coupling breaks twice over: rollouts must spread
//! across shards, and a respawned shard must keep receiving the traffic its
//! predecessor owned. The [`AssignmentTable`] is the indirection that fixes
//! both — a shared map from explorer index to owning learner shard that
//! explorers re-read *per rollout send* and learner shards re-read *per
//! parameter broadcast*.
//!
//! The table is deliberately **relaxed** ("Highly Parallelized RL Training
//! with Relaxed Assignment Dependencies", arXiv:2502.20190): readers take an
//! unsynchronized snapshot, so a rebalance does not fence any sender. An
//! explorer may address one more rollout to its old shard after a move; the
//! old shard still ingests it (off-policy algorithms train on it, on-policy
//! algorithms shed it through `Algorithm::take_spent`). The only invariants
//! are that every explorer always has exactly one owner and that ownership
//! slices stay disjoint — which keeps each shard's `ParamBroadcaster`
//! base-ring private to the explorers it owns.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use xingtian_message::ProcessId;

/// Shared explorer→learner-shard ownership map.
///
/// Cloneable-by-`Arc` by callers; all methods take `&self`.
#[derive(Debug)]
pub struct AssignmentTable {
    /// `owner[e]` = learner shard owning explorer `e`.
    owner: RwLock<Vec<u32>>,
    /// Bumped on every rebalance; readers can cheaply detect staleness.
    epoch: AtomicU64,
    shards: u32,
}

impl AssignmentTable {
    /// The initial contiguous assignment: explorer `e` belongs to shard
    /// `e * shards / num_explorers`, giving every shard a contiguous slice
    /// whose sizes differ by at most one.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `num_explorers < shards`.
    pub fn contiguous(num_explorers: u32, shards: u32) -> Self {
        assert!(shards > 0, "at least one learner shard");
        assert!(num_explorers >= shards, "every shard needs an explorer");
        let owner = (0..num_explorers)
            .map(|e| ((e as u64 * shards as u64) / num_explorers as u64) as u32)
            .collect();
        AssignmentTable { owner: RwLock::new(owner), epoch: AtomicU64::new(0), shards }
    }

    /// Number of learner shards the table spreads over.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of explorers in the table.
    pub fn num_explorers(&self) -> u32 {
        self.owner.read().len() as u32
    }

    /// The shard currently owning `explorer`.
    ///
    /// # Panics
    ///
    /// Panics if `explorer` is out of range.
    pub fn shard_of(&self, explorer: u32) -> u32 {
        self.owner.read()[explorer as usize]
    }

    /// The learner-shard ProcessId rollouts from `explorer` should address
    /// *right now*. Stable across shard respawns: a restored shard re-binds
    /// the same `ProcessId::learner(s)` endpoint, so senders never need to
    /// learn about the respawn.
    pub fn rollout_dst(&self, explorer: u32) -> ProcessId {
        ProcessId::learner(self.shard_of(explorer))
    }

    /// Explorer indices currently owned by `shard`, ascending.
    pub fn owned(&self, shard: u32) -> Vec<u32> {
        self.owner
            .read()
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(e, _)| e as u32)
            .collect()
    }

    /// Current rebalance epoch (0 until the first [`Self::rebalance`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Moves up to `count` explorers from `from` to `to` (backpressure
    /// relief: a shard whose ingest queue is growing sheds owners to an idle
    /// peer). Returns the explorers actually moved. The move is atomic with
    /// respect to other rebalances but intentionally *not* with respect to
    /// readers — in-flight rollouts keep their already-resolved destination.
    pub fn rebalance(&self, from: u32, to: u32, count: usize) -> Vec<u32> {
        if from == to || count == 0 || to >= self.shards {
            return Vec::new();
        }
        let mut owner = self.owner.write();
        // Donate from the high end of the slice so the remaining owners stay
        // contiguous-ish and a later move in the other direction undoes this
        // one first.
        let moved: Vec<u32> = owner
            .iter()
            .enumerate()
            .rev()
            .filter(|&(_, &s)| s == from)
            .take(count.min(owner.len()))
            .map(|(e, _)| e as u32)
            .collect();
        // Never strip a shard of its last explorer: a shard that owns nobody
        // would stop receiving rollouts entirely and stall the sync ring.
        let donor_size = owner.iter().filter(|&&s| s == from).count();
        let movable = donor_size.saturating_sub(1).min(moved.len());
        let moved = &moved[..movable];
        for &e in moved {
            owner[e as usize] = to;
        }
        if !moved.is_empty() {
            self.epoch.fetch_add(1, Ordering::Release);
        }
        moved.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_slices_are_balanced_and_disjoint() {
        let t = AssignmentTable::contiguous(10, 4);
        let sizes: Vec<usize> = (0..4).map(|s| t.owned(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&n| n == 2 || n == 3), "balanced: {sizes:?}");
        // Contiguous: each shard's owners form a run.
        for s in 0..4 {
            let owned = t.owned(s);
            for w in owned.windows(2) {
                assert_eq!(w[1], w[0] + 1, "shard {s} owns a contiguous slice");
            }
        }
        assert_eq!(t.shard_of(0), 0);
        assert_eq!(t.shard_of(9), 3);
    }

    #[test]
    fn single_shard_owns_everything() {
        let t = AssignmentTable::contiguous(5, 1);
        assert_eq!(t.owned(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(t.rollout_dst(3), ProcessId::learner(0));
    }

    #[test]
    fn rebalance_moves_ownership_and_bumps_epoch() {
        let t = AssignmentTable::contiguous(8, 2);
        assert_eq!(t.epoch(), 0);
        let moved = t.rebalance(0, 1, 2);
        assert_eq!(moved, vec![3, 2], "donates from the high end");
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.owned(0), vec![0, 1]);
        assert_eq!(t.owned(1), vec![2, 3, 4, 5, 6, 7]);
        assert_eq!(t.rollout_dst(3), ProcessId::learner(1));
    }

    #[test]
    fn rebalance_never_empties_a_shard() {
        let t = AssignmentTable::contiguous(4, 2);
        let moved = t.rebalance(0, 1, 99);
        assert_eq!(moved.len(), 1, "one owner must stay behind");
        assert_eq!(t.owned(0).len(), 1);
        // No-op moves do not bump the epoch.
        let epoch = t.epoch();
        assert!(t.rebalance(0, 1, 99).is_empty());
        assert_eq!(t.epoch(), epoch);
        assert!(t.rebalance(0, 0, 5).is_empty());
        assert!(t.rebalance(0, 7, 5).is_empty(), "unknown target shard");
    }
}
