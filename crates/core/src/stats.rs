//! Run-level measurements: throughput timelines and run reports.
//!
//! The throughput timeline implementation lives in `xt-telemetry` (shared
//! with the baseline drivers and the bench harness); it is re-exported here
//! so existing `xingtian::stats::ThroughputTimeline` users keep compiling.

use std::time::Duration;
use xingtian_comm::TransmissionStats;

pub use xt_telemetry::ThroughputTimeline;

/// What the store-resident replay plane did over one run (`None` on the
/// classic in-learner placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Rollout batches the replay shard ingested.
    pub batches_ingested: u64,
    /// Transitions ingested (post eligibility filter).
    pub steps_ingested: u64,
    /// Sample requests answered over the channel.
    pub sample_requests: u64,
    /// Transitions resident in the plane at shutdown.
    pub resident: usize,
    /// Arena slots whose write never completed — anything nonzero is a torn
    /// ingest.
    pub dangling_slots: usize,
}

/// Everything a deployment run produces for analysis.
#[derive(Debug)]
pub struct RunReport {
    /// Algorithm name.
    pub algorithm: String,
    /// Environment name.
    pub env: String,
    /// Rollout steps the learner consumed.
    pub steps_consumed: u64,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// Learner consumption timeline.
    pub timeline: ThroughputTimeline,
    /// Time the learner spent blocked waiting for rollouts before each
    /// training session ("actual wait", Figs. 8–10).
    pub learner_wait: TransmissionStats,
    /// Producer-to-learner transmission latency of rollout messages.
    pub rollout_latency: std::sync::Arc<TransmissionStats>,
    /// Returns of all completed episodes, in arrival order at the controller.
    pub episode_returns: Vec<f32>,
    /// Training sessions completed.
    pub train_sessions: u64,
    /// Mean training-session compute time.
    pub mean_train_time: Duration,
    /// Final trained parameters (flat), for PBT weight inheritance. With
    /// sharded learners this is shard 0's parameters.
    pub final_params: Vec<f32>,
    /// Final parameters of every learner shard, in shard order (empty for the
    /// classic single-learner path). Under the sync allreduce all entries are
    /// bit-identical — the determinism tests assert on exactly this.
    pub learner_shard_params: Vec<Vec<f32>>,
    /// Store-resident replay plane measurements (`None` for in-learner
    /// replay and non-DQN algorithms).
    pub replay: Option<ReplayReport>,
    /// Messages the brokers dropped over the run (dead uplinks, shutdown
    /// sheds). The scale sweeps assert this stays 0 — a drop at 1K explorers
    /// means the fabric, not the workload, lost data.
    pub dropped_messages: u64,
}

impl RunReport {
    /// Mean learner throughput in rollout steps per second.
    pub fn mean_throughput(&self) -> f64 {
        if self.wall_time.as_secs_f64() <= 0.0 {
            return 0.0;
        }
        self.steps_consumed as f64 / self.wall_time.as_secs_f64()
    }

    /// Mean return over the final `window` episodes (the paper's convergence
    /// metric), or `None` if no episode completed.
    pub fn final_return(&self, window: usize) -> Option<f32> {
        if self.episode_returns.is_empty() {
            return None;
        }
        let tail = &self.episode_returns[self.episode_returns.len().saturating_sub(window)..];
        Some(tail.iter().sum::<f32>() / tail.len() as f32)
    }

    /// Exports the run's statistics as CSV files into `dir` (created if
    /// absent): `summary.csv` (one row of aggregates), `throughput.csv`
    /// (steps/s series in `bucket_secs`-wide buckets), and `returns.csv`
    /// (per-episode returns in arrival order). The paper's center controller
    /// "collects and visualizes statistics"; these files feed any plotting
    /// tool.
    ///
    /// # Errors
    ///
    /// Returns any I/O error encountered.
    pub fn write_csv(&self, dir: impl AsRef<std::path::Path>, bucket_secs: f64) -> std::io::Result<()> {
        use std::io::Write;
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;

        let mut summary = std::fs::File::create(dir.join("summary.csv"))?;
        writeln!(
            summary,
            "algorithm,env,steps_consumed,wall_time_s,mean_throughput,train_sessions,\
             mean_train_time_ms,mean_wait_ms,mean_rollout_latency_ms,episodes,final_return_100"
        )?;
        writeln!(
            summary,
            "{},{},{},{:.3},{:.1},{},{:.3},{:.3},{:.3},{},{}",
            self.algorithm,
            self.env,
            self.steps_consumed,
            self.wall_time.as_secs_f64(),
            self.mean_throughput(),
            self.train_sessions,
            self.mean_train_time.as_secs_f64() * 1e3,
            self.learner_wait.mean().as_secs_f64() * 1e3,
            self.rollout_latency.mean().as_secs_f64() * 1e3,
            self.episode_returns.len(),
            self.final_return(100).map_or(String::from(""), |r| format!("{r:.2}")),
        )?;

        let mut throughput = std::fs::File::create(dir.join("throughput.csv"))?;
        writeln!(throughput, "time_s,steps_per_s")?;
        for (t, v) in self.timeline.series(bucket_secs) {
            writeln!(throughput, "{t:.1},{v:.1}")?;
        }

        let mut returns = std::fs::File::create(dir.join("returns.csv"))?;
        writeln!(returns, "episode,return")?;
        for (i, r) in self.episode_returns.iter().enumerate() {
            writeln!(returns, "{i},{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_totals_and_series() {
        let mut t = ThroughputTimeline::new();
        t.record_at(0.5, 100);
        t.record_at(1.5, 300);
        t.record_at(1.9, 100);
        assert_eq!(t.total_steps(), 500);
        let series = t.series(1.0);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], (0.0, 100.0));
        assert_eq!(series[1], (1.0, 400.0));
    }

    #[test]
    fn empty_timeline_is_zero() {
        let t = ThroughputTimeline::new();
        assert_eq!(t.mean_throughput(), 0.0);
        assert!(t.series(1.0).is_empty());
    }

    #[test]
    fn final_return_windows() {
        let report = RunReport {
            algorithm: "PPO".into(),
            env: "CartPole".into(),
            steps_consumed: 0,
            wall_time: Duration::from_secs(1),
            timeline: ThroughputTimeline::new(),
            learner_wait: TransmissionStats::new(),
            rollout_latency: std::sync::Arc::new(TransmissionStats::new()),
            episode_returns: vec![1.0, 2.0, 3.0, 4.0],
            train_sessions: 0,
            mean_train_time: Duration::ZERO,
            final_params: Vec::new(),
            learner_shard_params: Vec::new(),
            replay: None,
            dropped_messages: 0,
        };
        assert_eq!(report.final_return(2), Some(3.5));
        assert_eq!(report.final_return(100), Some(2.5));
    }

    #[test]
    fn csv_export_writes_three_files() {
        let mut timeline = ThroughputTimeline::new();
        timeline.record(100);
        let report = RunReport {
            algorithm: "IMPALA".into(),
            env: "CartPole".into(),
            steps_consumed: 100,
            wall_time: Duration::from_secs(2),
            timeline,
            learner_wait: TransmissionStats::new(),
            rollout_latency: std::sync::Arc::new(TransmissionStats::new()),
            episode_returns: vec![10.0, 20.0],
            train_sessions: 1,
            mean_train_time: Duration::from_millis(5),
            final_params: Vec::new(),
            learner_shard_params: Vec::new(),
            replay: None,
            dropped_messages: 0,
        };
        let dir = std::env::temp_dir().join(format!("xt-csv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        report.write_csv(&dir, 1.0).unwrap();
        let summary = std::fs::read_to_string(dir.join("summary.csv")).unwrap();
        assert!(summary.contains("IMPALA,CartPole,100"));
        let returns = std::fs::read_to_string(dir.join("returns.csv")).unwrap();
        assert!(returns.contains("1,20"));
        assert!(dir.join("throughput.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
