//! Store-resident replay plane (xt-replay).
//!
//! XingTian's learner owns its replay buffer: every rollout message is fetched
//! from the object store, decoded, and re-inserted into a buffer inside the
//! trainer thread before a single transition can be sampled (paper §3.2.1).
//! That fetch → decode → re-insert stage is pure data motion — the bytes were
//! already resident on the learner's machine, inside the communication
//! layer's sharded object store.
//!
//! This crate moves replay *into* the communication layer. A
//! [`ReplayPlane`] lives beside the object store and owns both storage and
//! sampling:
//!
//! * rollout batches are ingested **once**, straight into per-shard
//!   structure-of-arrays [`arena::TransitionArena`]s (decoded with the same
//!   recycled-buffer [`xingtian_algos::BatchDecoder`] the learner used);
//! * a uniform ring index and a prioritized sum-tree index live with the
//!   data, so sampling is a gather from resident storage;
//! * the learner's DQN samples through [`StoreResidentBackend`] — a single
//!   copy from arena slots into its training buffers, with no intermediate
//!   batch materialization;
//! * remote learners speak the [`wire::SampleRequest`] / [`wire::SampleView`]
//!   protocol, optionally over netsim's kernel-bypass NIC fast path
//!   ([`wire::RemoteSampler`]), skipping the broker hop entirely.
//!
//! The plane emits `replay.ingest_ns` / `replay.sample_ns` histograms and a
//! `replay.occupancy` gauge so stage breakdowns show where replay time went.

pub mod arena;
pub mod backend;
pub mod plane;
pub mod service;
pub mod wire;

pub use backend::StoreResidentBackend;
pub use plane::{PlanePick, ReplayConfig, ReplayIntegrity, ReplayPlane};
pub use service::{run_replay_service, ReplayOutcome};
pub use wire::{RemoteSampler, SampleRequest, SampleView};
