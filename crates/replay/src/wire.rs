//! The sampled-minibatch wire protocol: `SampleRequest` → `SampleView`.
//!
//! A learner that does not co-reside with a replay shard asks for minibatches
//! instead of raw rollout batches. The request is a seeded sampling order —
//! tiny, control-plane prioritized — and the response is a [`SampleView`]:
//! the minibatch already gathered into structure-of-arrays form, so the
//! requester replays it straight into its training buffers with a single
//! copy and zero decode-time allocations beyond the view itself.
//!
//! [`RemoteSampler`] drives the exchange over netsim's kernel-bypass NIC
//! fast path ([`netsim::BypassPath`]): the per-machine replay shard answers
//! without a broker hop, so a remote sample costs two bypass messages
//! (request + view) instead of two kernel-stack broker deliveries.

use crate::plane::{PlanePick, ReplayPlane};
use netsim::{BypassPath, MachineId, RpcReceipt};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use xingtian_message::codec::{Decode, DecodeError, Encode, Reader};

use xingtian_algos::SampleSink;

/// A seeded request for one sampled minibatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRequest {
    /// Minibatch size.
    pub n: u32,
    /// Sample proportional to priority (otherwise uniform).
    pub prioritized: bool,
    /// Importance-weight exponent β (ignored for uniform sampling).
    pub beta: f32,
    /// RNG seed for the draw — the requester controls the trajectory, the
    /// shard just executes it.
    pub seed: u64,
}

impl Encode for SampleRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.n.encode(out);
        self.prioritized.encode(out);
        self.beta.encode(out);
        self.seed.encode(out);
    }
    fn encoded_size(&self) -> usize {
        self.n.encoded_size() + self.prioritized.encoded_size() + self.beta.encoded_size() + self.seed.encoded_size()
    }
}

impl Decode for SampleRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SampleRequest {
            n: u32::decode(r)?,
            prioritized: bool::decode(r)?,
            beta: f32::decode(r)?,
            seed: u64::decode(r)?,
        })
    }
}

/// One sampled minibatch in structure-of-arrays form.
///
/// Built by pointing the plane's sampler at the view (it implements
/// [`SampleSink`]); consumed by replaying it into the learner's own sink via
/// [`SampleView::replay_into`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleView {
    /// Observation dimension of every transition.
    pub obs_dim: u32,
    /// Concatenated observations (`n * obs_dim` floats).
    pub observations: Vec<f32>,
    /// Concatenated next observations (zeros where absent).
    pub next_observations: Vec<f32>,
    /// Whether each transition has a successor state (0/1).
    pub has_next: Vec<u8>,
    /// Actions.
    pub actions: Vec<u32>,
    /// Rewards.
    pub rewards: Vec<f32>,
    /// Terminal flags (0/1).
    pub dones: Vec<u8>,
    /// Importance weights (empty for uniform sampling).
    pub weights: Vec<f32>,
}

impl SampleView {
    /// An empty view expecting transitions of `obs_dim` floats.
    pub fn with_obs_dim(obs_dim: usize) -> Self {
        SampleView { obs_dim: obs_dim as u32, ..SampleView::default() }
    }

    /// Transitions in the view.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when the view holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Pushes the view's transitions (and weights, if any) into `sink` in the
    /// order the shard sampled them — the same weight-then-transition per-pick
    /// order every [`xingtian_algos::ReplayBackend`] uses.
    pub fn replay_into(&self, sink: &mut dyn SampleSink) {
        let dim = self.obs_dim as usize;
        for i in 0..self.len() {
            if !self.weights.is_empty() {
                sink.push_weight(self.weights[i]);
            }
            let base = i * dim;
            let obs = &self.observations[base..base + dim];
            let next = (self.has_next[i] != 0).then(|| &self.next_observations[base..base + dim]);
            sink.push_transition(obs, next, self.actions[i], self.rewards[i], self.dones[i] != 0);
        }
    }
}

impl SampleSink for SampleView {
    fn push_transition(&mut self, observation: &[f32], next_observation: Option<&[f32]>, action: u32, reward: f32, done: bool) {
        debug_assert_eq!(observation.len(), self.obs_dim as usize, "observation dimension mismatch");
        self.observations.extend_from_slice(observation);
        match next_observation {
            Some(next) => {
                self.next_observations.extend_from_slice(next);
                self.has_next.push(1);
            }
            None => {
                self.next_observations.extend(std::iter::repeat_n(0.0, observation.len()));
                self.has_next.push(0);
            }
        }
        self.actions.push(action);
        self.rewards.push(reward);
        self.dones.push(if done { 1 } else { 0 });
    }

    fn push_weight(&mut self, weight: f32) {
        self.weights.push(weight);
    }
}

impl Encode for SampleView {
    fn encode(&self, out: &mut Vec<u8>) {
        self.obs_dim.encode(out);
        self.observations.encode(out);
        self.next_observations.encode(out);
        self.has_next.encode(out);
        self.actions.encode(out);
        self.rewards.encode(out);
        self.dones.encode(out);
        self.weights.encode(out);
    }
    fn encoded_size(&self) -> usize {
        self.obs_dim.encoded_size()
            + self.observations.encoded_size()
            + self.next_observations.encoded_size()
            + self.has_next.encoded_size()
            + self.actions.encoded_size()
            + self.rewards.encoded_size()
            + self.dones.encoded_size()
            + self.weights.encoded_size()
    }
}

impl Decode for SampleView {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SampleView {
            obs_dim: u32::decode(r)?,
            observations: Vec::<f32>::decode(r)?,
            next_observations: Vec::<f32>::decode(r)?,
            has_next: Vec::<u8>::decode(r)?,
            actions: Vec::<u32>::decode(r)?,
            rewards: Vec::<f32>::decode(r)?,
            dones: Vec::<u8>::decode(r)?,
            weights: Vec::<f32>::decode(r)?,
        })
    }
}

/// Executes `req` against `plane`: the shard-side half of the protocol.
/// Deterministic — the trajectory is fully defined by the request's seed and
/// the plane's contents.
pub fn answer(plane: &ReplayPlane, req: &SampleRequest) -> SampleView {
    let mut view = SampleView::with_obs_dim(plane.obs_dim());
    let mut rng = StdRng::seed_from_u64(req.seed);
    if req.prioritized {
        let mut picks: Vec<PlanePick> = Vec::new();
        plane.sample_prioritized(req.n as usize, f64::from(req.beta), &mut rng, &mut view, &mut picks);
    } else {
        plane.sample_uniform(req.n as usize, &mut rng, &mut view);
    }
    view
}

/// A learner-side handle for sampling from a replay shard on another machine
/// over the kernel-bypass fast path.
#[derive(Debug)]
pub struct RemoteSampler {
    path: BypassPath,
    plane: Arc<ReplayPlane>,
    learner_machine: MachineId,
}

impl RemoteSampler {
    /// Connects the learner's machine to the shard's machine. `path` must be
    /// pinned between `learner_machine` and the machine hosting `plane`.
    pub fn new(path: BypassPath, plane: Arc<ReplayPlane>, learner_machine: MachineId) -> Self {
        RemoteSampler { path, plane, learner_machine }
    }

    /// One remote sample: ships the request over the bypass path, the shard
    /// answers, the view ships back. Blocks for the modeled wire time of both
    /// messages; returns the view and the round-trip receipt.
    pub fn sample(&self, req: &SampleRequest) -> (SampleView, RpcReceipt) {
        let request = self.path.send(self.learner_machine, req.to_bytes().len());
        let view = answer(&self.plane, req);
        let (responder, _) = {
            let (a, b) = self.path.endpoints();
            if a == self.learner_machine { (b, a) } else { (a, b) }
        };
        let response = self.path.send(responder, view.to_bytes().len());
        let receipt = RpcReceipt {
            start_nanos: request.start_nanos,
            end_nanos: response.end_nanos,
            duration: request.duration + response.duration,
        };
        (view, receipt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::ReplayConfig;
    use netsim::{Cluster, ClusterSpec};
    use xingtian_algos::payload::{RolloutBatch, RolloutStep};
    use xt_telemetry::Telemetry;

    fn filled_plane(prioritized: bool) -> ReplayPlane {
        let config = if prioritized {
            ReplayConfig::prioritized(32, 2, 0.6)
        } else {
            ReplayConfig::uniform(32, 2)
        };
        let plane = ReplayPlane::new(config, &Telemetry::disabled());
        let batch = RolloutBatch {
            explorer: 0,
            param_version: 0,
            steps: (0..20)
                .map(|i| RolloutStep {
                    observation: vec![i as f32, -(i as f32)],
                    action: (i % 3) as u32,
                    reward: i as f32 * 0.25,
                    done: i == 19,
                    behavior_logits: vec![],
                    value: 0.0,
                    next_observation: Some(vec![i as f32 + 1.0, 0.0]),
                })
                .collect(),
            bootstrap_observation: vec![],
        };
        plane.ingest_batch(&batch);
        plane
    }

    #[test]
    fn request_and_view_round_trip() {
        let req = SampleRequest { n: 32, prioritized: true, beta: 0.4, seed: 99 };
        assert_eq!(SampleRequest::from_bytes(&req.to_bytes()).unwrap(), req);

        let view = answer(&filled_plane(false), &SampleRequest { n: 8, prioritized: false, beta: 0.0, seed: 1 });
        assert_eq!(view.len(), 8);
        assert_eq!(SampleView::from_bytes(&view.to_bytes()).unwrap(), view);
    }

    #[test]
    fn answer_is_deterministic_in_the_seed() {
        let plane = filled_plane(true);
        let req = SampleRequest { n: 16, prioritized: true, beta: 0.4, seed: 7 };
        assert_eq!(answer(&plane, &req), answer(&plane, &req));
        let other = answer(&plane, &SampleRequest { seed: 8, ..req });
        assert_ne!(answer(&plane, &req), other, "different seed draws a different minibatch");
        assert_eq!(answer(&plane, &req).weights.len(), 16, "prioritized views carry weights");
    }

    #[test]
    fn view_replay_preserves_the_stream() {
        let plane = filled_plane(false);
        let req = SampleRequest { n: 8, prioritized: false, beta: 0.0, seed: 3 };
        let view = answer(&plane, &req);
        // Replaying the view into a second view must reproduce it exactly.
        let mut echo = SampleView::with_obs_dim(plane.obs_dim());
        view.replay_into(&mut echo);
        assert_eq!(echo, view);
    }

    #[test]
    fn remote_sampling_skips_the_kernel_stack() {
        let cluster = Cluster::new(ClusterSpec::default().machines(2).virtual_time(true));
        let plane = Arc::new(filled_plane(false));
        let path = BypassPath::new(cluster.clone(), 0, 1);
        let sampler = RemoteSampler::new(path, plane.clone(), 0);
        let req = SampleRequest { n: 8, prioritized: false, beta: 0.0, seed: 3 };
        let (view, receipt) = sampler.sample(&req);
        assert_eq!(view, answer(&plane, &req), "remote view matches a local answer");
        // Both messages went over the bypass path: far under one kernel hop.
        let kernel_one_way = std::time::Duration::from_secs_f64(netsim::DEFAULT_LATENCY_SECS);
        assert!(receipt.duration < kernel_one_way, "rtt {:?} must undercut a single kernel hop", receipt.duration);
    }
}
