//! The replay shard service: the channel-side process that owns ingestion.
//!
//! Explorers address their rollout messages to `ProcessId::replay(i)` instead
//! of the learner. The service pops each batch from its receive buffer
//! (already staged by the asynchronous channel), decodes it once into the
//! shared [`ReplayPlane`], and recycles the decode buffers — this is the one
//! and only decode the batch ever gets. It then nudges the learner with a
//! tiny control-plane [`MessageKind::ReplayNotice`] carrying the insert
//! count, so the learner's training loop wakes without receiving any rollout
//! payload at all. Remote learners are served [`MessageKind::SampleRequest`]s
//! directly from the plane.

use crate::plane::ReplayPlane;
use crate::wire::{answer, SampleRequest};
use bytes::Bytes;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xingtian_algos::payload::BatchDecoder;
use xingtian_comm::Endpoint;
use xingtian_message::codec::{Decode, Encode};
use xingtian_message::{MessageKind, ProcessId};

/// What the service reports when it stops.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Rollout batches ingested.
    pub batches_ingested: u64,
    /// Transitions ingested (post eligibility filter).
    pub steps_ingested: u64,
    /// Sample requests answered.
    pub sample_requests: u64,
}

/// Runs a replay shard until `stop` is raised or a `Control` message arrives.
///
/// The controller's shutdown broadcast targets explorers and the learner;
/// the deployment stops the replay service explicitly via `stop` once the
/// learner has joined (the service must outlive the learner, which may keep
/// sampling until its last training session).
pub fn run_replay_service(
    endpoint: Endpoint,
    plane: Arc<ReplayPlane>,
    notify: ProcessId,
    stop: Arc<AtomicBool>,
) -> ReplayOutcome {
    let mut decoder = BatchDecoder::new();
    let mut outcome = ReplayOutcome::default();
    loop {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Some(msg) = endpoint.recv_timeout(Duration::from_millis(20)) else {
            continue;
        };
        match msg.header.kind {
            MessageKind::Rollout => {
                let Ok(batch) = decoder.decode(&msg.body) else { continue };
                let inserted = plane.ingest_batch(&batch);
                decoder.recycle(batch);
                outcome.batches_ingested += 1;
                outcome.steps_ingested += inserted as u64;
                // Wake the learner with the insert count (the body must be
                // non-empty; endpoints reject empty sends).
                let count = (inserted as u32).to_le_bytes();
                endpoint.send_to(vec![notify], MessageKind::ReplayNotice, Bytes::copy_from_slice(&count));
            }
            MessageKind::SampleRequest => {
                let Ok(req) = SampleRequest::from_bytes(&msg.body) else { continue };
                let view = answer(&plane, &req);
                endpoint.send_to(vec![msg.header.src], MessageKind::SampleView, Bytes::from(view.to_bytes()));
                outcome.sample_requests += 1;
            }
            // Any control message means the deployment is coming down.
            MessageKind::Control => break,
            _ => {}
        }
    }
    endpoint.close();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::ReplayConfig;
    use crate::wire::SampleView;
    use netsim::Cluster;
    use xingtian_algos::payload::{RolloutBatch, RolloutStep};
    use xingtian_comm::{Broker, CommConfig};
    use xt_telemetry::Telemetry;

    fn rollout(n: usize) -> RolloutBatch {
        RolloutBatch {
            explorer: 0,
            param_version: 0,
            steps: (0..n)
                .map(|i| RolloutStep {
                    observation: vec![i as f32],
                    action: 0,
                    reward: i as f32,
                    done: false,
                    behavior_logits: vec![],
                    value: 0.0,
                    next_observation: Some(vec![i as f32 + 1.0]),
                })
                .collect(),
            bootstrap_observation: vec![],
        }
    }

    #[test]
    fn service_ingests_notifies_and_answers() {
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        let learner = broker.endpoint(ProcessId::learner(0));
        let explorer = broker.endpoint(ProcessId::explorer(0));
        let replay_ep = broker.endpoint(ProcessId::replay(0));

        let plane = Arc::new(ReplayPlane::new(ReplayConfig::uniform(64, 1), &Telemetry::disabled()));
        let stop = Arc::new(AtomicBool::new(false));
        let service = {
            let (plane, stop) = (plane.clone(), stop.clone());
            std::thread::spawn(move || run_replay_service(replay_ep, plane, ProcessId::learner(0), stop))
        };

        // Explorer pushes a rollout to the replay shard, not the learner.
        assert!(explorer.send_to(
            vec![ProcessId::replay(0)],
            MessageKind::Rollout,
            Bytes::from(rollout(10).to_bytes())
        ));
        let notice = learner.recv().expect("learner woken by the shard");
        assert_eq!(notice.header.kind, MessageKind::ReplayNotice);
        assert_eq!(u32::from_le_bytes(notice.body[..4].try_into().unwrap()), 10);
        assert_eq!(plane.total_inserted(), 10);

        // The learner can request a sampled minibatch through the channel.
        let req = SampleRequest { n: 4, prioritized: false, beta: 0.0, seed: 11 };
        assert!(learner.send_to(vec![ProcessId::replay(0)], MessageKind::SampleRequest, Bytes::from(req.to_bytes())));
        let resp = learner.recv().expect("sample view delivered");
        assert_eq!(resp.header.kind, MessageKind::SampleView);
        let view = SampleView::from_bytes(&resp.body).unwrap();
        assert_eq!(view.len(), 4);
        assert_eq!(view, answer(&plane, &req), "channel round trip is deterministic");

        stop.store(true, Ordering::Release);
        let outcome = service.join().unwrap();
        assert_eq!(outcome, ReplayOutcome { batches_ingested: 1, steps_ingested: 10, sample_requests: 1 });
        learner.close();
        explorer.close();
        broker.shutdown();
    }
}
