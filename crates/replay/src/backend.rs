//! The learner-side handle onto a [`ReplayPlane`].
//!
//! `StoreResidentBackend` implements [`ReplayBackend`] over a shared
//! [`ReplayPlane`], so `DqnAlgorithm` runs the exact same update math whether
//! its experience lives in-learner or in the communication layer. Sampling is
//! a direct gather from the plane's arenas into the algorithm's staging
//! buffers — the plane lives in the learner machine's address space, beside
//! the object store, so no message hop is involved.

use crate::plane::{PlanePick, ReplayPlane};
use rand::rngs::StdRng;
use std::sync::Arc;
use xingtian_algos::payload::RolloutBatch;
use xingtian_algos::{ReplayBackend, SampleSink};

/// [`ReplayBackend`] over a shared, store-resident [`ReplayPlane`].
#[derive(Debug)]
pub struct StoreResidentBackend {
    plane: Arc<ReplayPlane>,
    /// Picks of the last prioritized sample, for re-prioritization.
    picks: Vec<PlanePick>,
}

impl StoreResidentBackend {
    /// Wraps a plane (typically shared with a running replay service).
    pub fn new(plane: Arc<ReplayPlane>) -> Self {
        StoreResidentBackend { plane, picks: Vec::new() }
    }

    /// The shared plane.
    pub fn plane(&self) -> &Arc<ReplayPlane> {
        &self.plane
    }
}

impl ReplayBackend for StoreResidentBackend {
    fn ingest(&mut self, batch: RolloutBatch) -> Option<RolloutBatch> {
        // The plane copies transitions into its arenas; the batch's step
        // storage goes back to the caller for recycling.
        self.plane.ingest_batch(&batch);
        Some(batch)
    }

    fn len(&self) -> usize {
        self.plane.len()
    }

    fn total_inserted(&self) -> u64 {
        self.plane.total_inserted()
    }

    fn prioritized(&self) -> bool {
        self.plane.prioritized()
    }

    fn sample_uniform(&mut self, n: usize, rng: &mut StdRng, sink: &mut dyn SampleSink) {
        self.plane.sample_uniform(n, rng, sink);
    }

    fn sample_prioritized(&mut self, n: usize, beta: f64, rng: &mut StdRng, sink: &mut dyn SampleSink) {
        self.picks.clear();
        self.plane.sample_prioritized(n, beta, rng, sink, &mut self.picks);
    }

    fn update_priorities(&mut self, td: &[f32]) {
        self.plane.update_priorities(&self.picks, td);
    }

    fn placement(&self) -> &'static str {
        "store-resident"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::ReplayConfig;
    use rand::SeedableRng;
    use xingtian_algos::payload::RolloutStep;
    use xt_telemetry::Telemetry;

    struct CountSink(usize, usize);

    impl SampleSink for CountSink {
        fn push_transition(&mut self, _o: &[f32], _n: Option<&[f32]>, _a: u32, _r: f32, _d: bool) {
            self.0 += 1;
        }
        fn push_weight(&mut self, _w: f32) {
            self.1 += 1;
        }
    }

    fn batch(n: usize) -> RolloutBatch {
        RolloutBatch {
            explorer: 0,
            param_version: 0,
            steps: (0..n)
                .map(|i| RolloutStep {
                    observation: vec![i as f32],
                    action: 0,
                    reward: i as f32,
                    done: false,
                    behavior_logits: vec![],
                    value: 0.0,
                    next_observation: Some(vec![i as f32 + 1.0]),
                })
                .collect(),
            bootstrap_observation: vec![],
        }
    }

    #[test]
    fn backend_returns_batch_for_recycling() {
        let plane = Arc::new(ReplayPlane::new(ReplayConfig::uniform(64, 1), &Telemetry::disabled()));
        let mut backend = StoreResidentBackend::new(plane.clone());
        let returned = backend.ingest(batch(10)).expect("store-resident ingest copies");
        assert_eq!(returned.len(), 10, "step storage comes back intact");
        assert_eq!(backend.len(), 10);
        assert_eq!(backend.total_inserted(), 10);
        assert_eq!(backend.placement(), "store-resident");
        let mut sink = CountSink(0, 0);
        backend.sample_uniform(32, &mut StdRng::seed_from_u64(0), &mut sink);
        assert_eq!((sink.0, sink.1), (32, 0));
    }

    #[test]
    fn prioritized_roundtrip_through_backend() {
        let plane = Arc::new(ReplayPlane::new(ReplayConfig::prioritized(64, 1, 0.6), &Telemetry::disabled()));
        let mut backend = StoreResidentBackend::new(plane);
        backend.ingest(batch(16));
        assert!(backend.prioritized());
        let mut sink = CountSink(0, 0);
        backend.sample_prioritized(8, 0.4, &mut StdRng::seed_from_u64(1), &mut sink);
        assert_eq!((sink.0, sink.1), (8, 8));
        backend.update_priorities(&[0.5; 8]);
    }
}
