//! The replay plane: sharded transition storage plus sampling indices.
//!
//! A [`ReplayPlane`] is the store-resident twin of the in-learner replay
//! buffers. Transition number `t` lands in global ring slot `g = t mod
//! capacity`, which maps to shard `g mod S`, arena slot `g div S` — for `S`
//! dividing the capacity this is exactly a re-indexing of the single
//! in-learner ring, which is what makes uniform sampling here *bit-identical*
//! to [`xingtian_algos::ReplayBuffer`] under the same RNG: one
//! `gen_range(0..len)` per pick, addressing the same transition the legacy
//! ring would have returned. The prioritized index is a single plane-global
//! sum tree keyed by global slot, running the exact draw/weight arithmetic of
//! [`xingtian_algos::PrioritizedReplay`] with the same wraparound-stale
//! sequence guard.

use crate::arena::TransitionArena;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use xingtian_algos::payload::RolloutBatch;
use xingtian_algos::sumtree::SumTree;
use xingtian_algos::SampleSink;
use xt_telemetry::{GaugeHandle, HistogramHandle, Telemetry};

/// Construction parameters of a [`ReplayPlane`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Maximum resident transitions across all shards.
    pub capacity: usize,
    /// Observation dimension (fixed per deployment).
    pub obs_dim: usize,
    /// Shard count; `0` picks the largest power of two ≤ 8 dividing
    /// `capacity`. Must divide `capacity` when non-zero.
    pub shards: usize,
    /// Priority exponent α for prioritized sampling; `None` = uniform only.
    pub prioritized: Option<f64>,
}

impl ReplayConfig {
    /// Uniform-sampling plane of `capacity` transitions.
    pub fn uniform(capacity: usize, obs_dim: usize) -> Self {
        ReplayConfig { capacity, obs_dim, shards: 0, prioritized: None }
    }

    /// Prioritized plane with exponent `alpha`.
    pub fn prioritized(capacity: usize, obs_dim: usize, alpha: f64) -> Self {
        ReplayConfig { capacity, obs_dim, shards: 0, prioritized: Some(alpha) }
    }
}

/// One prioritized sample's identity: global slot plus the insert sequence
/// number of its occupant at sample time (the wraparound guard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanePick {
    /// Global ring slot.
    pub slot: usize,
    /// Insert sequence number of the sampled occupant.
    pub seq: u64,
}

/// Occupancy report used by leak accounting (chaos tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayIntegrity {
    /// Transitions currently resident and sampleable.
    pub resident: usize,
    /// Transitions ingested over the plane's lifetime.
    pub total_inserted: u64,
    /// Arena slots whose write began but never completed. Must be zero after
    /// any run — a non-zero count means an ingest was torn.
    pub dangling_slots: usize,
}

/// Prioritized sampling index: one sum tree over global slots.
#[derive(Debug)]
struct PrioIndex {
    tree: SumTree,
    /// Insert sequence number of each global slot's occupant.
    seq: Vec<u64>,
    max_priority: f64,
    alpha: f64,
}

/// Store-resident replay storage shared between the ingest service and the
/// learner's sampling backend.
#[derive(Debug)]
pub struct ReplayPlane {
    capacity: usize,
    obs_dim: usize,
    shard_count: usize,
    shards: Vec<Mutex<TransitionArena>>,
    /// Transitions fully ingested (insert sequence numbers `0..committed`
    /// are readable).
    committed: AtomicU64,
    batches: AtomicU64,
    prio: Option<Mutex<PrioIndex>>,
    ingest_hist: HistogramHandle,
    sample_hist: HistogramHandle,
    occupancy: GaugeHandle,
}

/// Largest power of two ≤ 8 that divides `capacity`.
fn auto_shards(capacity: usize) -> usize {
    [8, 4, 2].into_iter().find(|s| capacity.is_multiple_of(*s)).unwrap_or(1)
}

impl ReplayPlane {
    /// Builds a plane, registering its `replay.*` instruments on `telemetry`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `obs_dim` is zero, or `shards` does not divide
    /// `capacity`.
    pub fn new(config: ReplayConfig, telemetry: &Telemetry) -> Self {
        assert!(config.capacity > 0, "capacity must be positive");
        let shard_count = if config.shards == 0 { auto_shards(config.capacity) } else { config.shards };
        assert!(
            config.capacity.is_multiple_of(shard_count),
            "shard count {shard_count} must divide capacity {}",
            config.capacity
        );
        let slots = config.capacity / shard_count;
        ReplayPlane {
            capacity: config.capacity,
            obs_dim: config.obs_dim,
            shard_count,
            shards: (0..shard_count).map(|_| Mutex::new(TransitionArena::new(slots, config.obs_dim))).collect(),
            committed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            prio: config.prioritized.map(|alpha| {
                assert!(alpha >= 0.0, "alpha must be non-negative");
                Mutex::new(PrioIndex {
                    tree: SumTree::new(config.capacity),
                    seq: vec![u64::MAX; config.capacity],
                    max_priority: 1.0,
                    alpha,
                })
            }),
            ingest_hist: telemetry.histogram("replay.ingest_ns"),
            sample_hist: telemetry.histogram("replay.sample_ns"),
            occupancy: telemetry.gauge("replay.occupancy"),
        }
    }

    /// Maximum resident transitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Observation dimension every transition must match.
    pub fn obs_dim(&self) -> usize {
        self.obs_dim
    }

    /// Number of storage shards.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// True when the plane samples proportional to priority.
    pub fn prioritized(&self) -> bool {
        self.prio.is_some()
    }

    /// Resident, sampleable transitions.
    pub fn len(&self) -> usize {
        (self.committed.load(Ordering::Acquire).min(self.capacity as u64)) as usize
    }

    /// True when nothing has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Transitions ingested over the plane's lifetime.
    pub fn total_inserted(&self) -> u64 {
        self.committed.load(Ordering::Acquire)
    }

    /// Rollout batches ingested over the plane's lifetime.
    pub fn batches_ingested(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Ingests every usable transition of `batch` (same eligibility rule as
    /// the in-learner backends: a step needs a successor state or a terminal
    /// flag). Returns the number of transitions inserted.
    pub fn ingest_batch(&self, batch: &RolloutBatch) -> usize {
        let t0 = Instant::now();
        let mut t = self.committed.load(Ordering::Acquire);
        let mut inserted = 0usize;
        let mut prio = self.prio.as_ref().map(Mutex::lock);
        for step in &batch.steps {
            if step.next_observation.is_none() && !step.done {
                continue;
            }
            let g = (t % self.capacity as u64) as usize;
            self.shards[g % self.shard_count].lock().write(
                g / self.shard_count,
                &step.observation,
                step.next_observation.as_deref(),
                step.action,
                step.reward,
                step.done,
                t,
            );
            if let Some(prio) = prio.as_mut() {
                prio.seq[g] = t;
                let p = prio.max_priority.powf(prio.alpha);
                prio.tree.set(g, p);
            }
            t += 1;
            inserted += 1;
        }
        drop(prio);
        self.committed.store(t, Ordering::Release);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.occupancy.set(self.len() as i64);
        self.ingest_hist.record_duration(t0.elapsed());
        inserted
    }

    /// Gathers global slot `g` into `sink`.
    fn read_slot(&self, g: usize, sink: &mut dyn SampleSink) {
        self.shards[g % self.shard_count].lock().read_into(g / self.shard_count, sink);
    }

    /// Gathers `n` uniformly sampled transitions into `sink`, consuming
    /// exactly one `gen_range(0..len)` per transition (the trajectory-identity
    /// contract of [`xingtian_algos::ReplayBackend`]).
    ///
    /// # Panics
    ///
    /// Panics if the plane is empty.
    pub fn sample_uniform(&self, n: usize, rng: &mut StdRng, sink: &mut dyn SampleSink) {
        let t0 = Instant::now();
        let len = self.len();
        assert!(len > 0, "cannot sample from an empty replay plane");
        for _ in 0..n {
            let g = rng.gen_range(0..len);
            self.read_slot(g, sink);
        }
        self.sample_hist.record_duration(t0.elapsed());
    }

    /// Gathers `n` priority-sampled transitions (weights first, then the
    /// transition, per pick — the sink order of the in-learner backend) into
    /// `sink`, appending each pick's identity to `picks` for a following
    /// [`ReplayPlane::update_priorities`].
    ///
    /// # Panics
    ///
    /// Panics if the plane is empty or was not built prioritized.
    pub fn sample_prioritized(
        &self,
        n: usize,
        beta: f64,
        rng: &mut StdRng,
        sink: &mut dyn SampleSink,
        picks: &mut Vec<PlanePick>,
    ) {
        let t0 = Instant::now();
        let len = self.len();
        assert!(len > 0, "cannot sample from an empty replay plane");
        let prio = self.prio.as_ref().expect("plane was not built prioritized").lock();
        let total = prio.tree.total();
        let nf = len as f64;
        let mut draws = Vec::with_capacity(n);
        let mut max_w = f64::MIN_POSITIVE;
        for _ in 0..n {
            let idx = prio.tree.find(rng.gen_range(0.0..total));
            let p = prio.tree.get(idx) / total;
            let w = (nf * p).powf(-beta);
            max_w = max_w.max(w);
            draws.push((idx, w));
        }
        for (idx, w) in draws {
            picks.push(PlanePick { slot: idx, seq: prio.seq[idx] });
            sink.push_weight((w / max_w) as f32);
            self.read_slot(idx, sink);
        }
        drop(prio);
        self.sample_hist.record_duration(t0.elapsed());
    }

    /// Re-prioritizes `picks` with fresh |TD errors|, skipping picks whose
    /// slot has since been overwritten (the same stale-pick guard as
    /// [`xingtian_algos::PrioritizedReplay::update_priority`]).
    pub fn update_priorities(&self, picks: &[PlanePick], td: &[f32]) {
        let Some(prio) = &self.prio else { return };
        let mut prio = prio.lock();
        for (pick, &td) in picks.iter().zip(td) {
            if prio.seq[pick.slot] != pick.seq {
                continue;
            }
            let p = f64::from(td).abs().max(1e-6);
            prio.max_priority = prio.max_priority.max(p);
            let v = p.powf(prio.alpha);
            prio.tree.set(pick.slot, v);
        }
    }

    /// Occupancy and leak accounting across all shards.
    pub fn integrity(&self) -> ReplayIntegrity {
        let mut dangling = 0;
        for shard in &self.shards {
            dangling += shard.lock().dangling();
        }
        ReplayIntegrity {
            resident: self.len(),
            total_inserted: self.total_inserted(),
            dangling_slots: dangling,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xingtian_algos::payload::RolloutStep;
    use xingtian_algos::{InLearnerReplay, ReplayBackend};

    #[derive(Debug, Default, PartialEq)]
    struct Flat {
        obs: Vec<f32>,
        next: Vec<f32>,
        has_next: Vec<bool>,
        actions: Vec<u32>,
        rewards: Vec<f32>,
        dones: Vec<bool>,
        weights: Vec<f32>,
    }

    impl SampleSink for Flat {
        fn push_transition(&mut self, o: &[f32], n: Option<&[f32]>, a: u32, reward: f32, d: bool) {
            self.obs.extend_from_slice(o);
            match n {
                Some(n) => {
                    self.next.extend_from_slice(n);
                    self.has_next.push(true);
                }
                None => {
                    self.next.extend(std::iter::repeat_n(0.0, o.len()));
                    self.has_next.push(false);
                }
            }
            self.actions.push(a);
            self.rewards.push(reward);
            self.dones.push(d);
        }
        fn push_weight(&mut self, w: f32) {
            self.weights.push(w);
        }
    }

    fn batch(start: usize, n: usize, dim: usize) -> RolloutBatch {
        RolloutBatch {
            explorer: 0,
            param_version: 0,
            steps: (start..start + n)
                .map(|i| RolloutStep {
                    observation: vec![i as f32; dim],
                    action: (i % 4) as u32,
                    reward: i as f32 * 0.5,
                    done: i.is_multiple_of(7),
                    behavior_logits: vec![],
                    value: 0.0,
                    next_observation: (!i.is_multiple_of(5)).then(|| vec![i as f32 + 1.0; dim]),
                })
                .collect(),
            bootstrap_observation: vec![],
        }
    }

    #[test]
    fn auto_sharding_divides_capacity() {
        for (cap, expect) in [(16, 8), (12, 4), (10, 2), (7, 1)] {
            let plane =
                ReplayPlane::new(ReplayConfig { capacity: cap, obs_dim: 1, shards: 0, prioritized: None }, &Telemetry::disabled());
            assert_eq!(plane.shard_count(), expect, "capacity {cap}");
        }
    }

    #[test]
    fn uniform_sampling_is_identical_to_in_learner_ring() {
        // Same ingest sequence (with wraparound), same seed → the plane and
        // the legacy in-learner ring must produce identical sample streams.
        let dim = 3;
        let plane = ReplayPlane::new(ReplayConfig::uniform(24, dim), &Telemetry::disabled());
        let mut legacy = InLearnerReplay::uniform(24);
        for b in 0..4 {
            let batch = batch(b * 17, 17, dim);
            plane.ingest_batch(&batch);
            legacy.ingest(batch);
        }
        assert_eq!(plane.len(), legacy.len());
        assert_eq!(plane.total_inserted(), legacy.total_inserted());

        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let (mut a, mut b) = (Flat::default(), Flat::default());
        plane.sample_uniform(256, &mut rng_a, &mut a);
        legacy.sample_uniform(256, &mut rng_b, &mut b);
        assert_eq!(a, b, "uniform trajectories diverged");
    }

    #[test]
    fn prioritized_sampling_is_identical_to_in_learner_buffer() {
        // Interleave ingest / sample / priority-update on both placements and
        // require identical streams throughout — including after wraparound.
        let dim = 2;
        let plane = ReplayPlane::new(ReplayConfig::prioritized(16, dim, 0.6), &Telemetry::disabled());
        let mut legacy = InLearnerReplay::prioritized(16, 0.6);
        let mut picks = Vec::new();
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        for round in 0..6 {
            let b = batch(round * 9, 9, dim);
            plane.ingest_batch(&b);
            legacy.ingest(b);
            let (mut a, mut l) = (Flat::default(), Flat::default());
            picks.clear();
            plane.sample_prioritized(32, 0.4, &mut rng_a, &mut a, &mut picks);
            legacy.sample_prioritized(32, 0.4, &mut rng_b, &mut l);
            assert_eq!(a, l, "round {round}: prioritized streams diverged");
            let td: Vec<f32> = a.rewards.iter().map(|r| r * 0.1 + 0.01).collect();
            plane.update_priorities(&picks, &td);
            legacy.update_priorities(&td);
        }
    }

    #[test]
    fn integrity_reports_no_dangling_slots() {
        let plane = ReplayPlane::new(ReplayConfig::uniform(8, 1), &Telemetry::disabled());
        plane.ingest_batch(&batch(1, 20, 1));
        let report = plane.integrity();
        assert_eq!(report.dangling_slots, 0);
        assert_eq!(report.resident, 8);
        assert!(report.total_inserted >= 8);
    }

    #[test]
    #[should_panic(expected = "empty replay plane")]
    fn sampling_empty_plane_panics() {
        let plane = ReplayPlane::new(ReplayConfig::uniform(8, 1), &Telemetry::disabled());
        let mut sink = Flat::default();
        plane.sample_uniform(1, &mut StdRng::seed_from_u64(0), &mut sink);
    }
}
