//! Structure-of-arrays transition storage for one replay shard.
//!
//! A shard stores its transitions as flat parallel arrays (observations,
//! actions, rewards, ...) instead of a `Vec<RolloutStep>`: ingest writes each
//! field into pre-allocated storage with no per-transition allocation, and a
//! sample gather reads contiguous slices straight out of the arena.

/// Sentinel sequence number of a slot whose write has begun but not
/// completed. Slots stuck at this value after a run are *dangling* — the
/// chaos tests assert there are none.
pub const WRITING: u64 = u64::MAX;

/// Fixed-capacity SoA storage for one shard's transitions.
#[derive(Debug)]
pub struct TransitionArena {
    slots: usize,
    obs_dim: usize,
    observations: Vec<f32>,
    next_observations: Vec<f32>,
    has_next: Vec<bool>,
    actions: Vec<u32>,
    rewards: Vec<f32>,
    dones: Vec<bool>,
    /// Global insert sequence number of each slot's occupant ([`WRITING`]
    /// while a write is in flight).
    seq: Vec<u64>,
    /// Number of slots that have ever been written.
    filled: usize,
}

impl TransitionArena {
    /// An arena of `slots` transitions of `obs_dim` floats each.
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `obs_dim` is zero.
    pub fn new(slots: usize, obs_dim: usize) -> Self {
        assert!(slots > 0, "arena needs at least one slot");
        assert!(obs_dim > 0, "observation dimension must be positive");
        TransitionArena {
            slots,
            obs_dim,
            observations: vec![0.0; slots * obs_dim],
            next_observations: vec![0.0; slots * obs_dim],
            has_next: vec![false; slots],
            actions: vec![0; slots],
            rewards: vec![0.0; slots],
            dones: vec![false; slots],
            seq: vec![WRITING; slots],
            filled: 0,
        }
    }

    /// Slot capacity of this arena.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Slots that have ever been written.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Writes one transition into `slot`, stamping it with global sequence
    /// number `seq`. The slot is marked [`WRITING`] for the duration of the
    /// copy so an interrupted write is observable as a dangling slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or `observation` has the wrong
    /// dimension.
    #[allow(clippy::too_many_arguments)] // mirrors the transition tuple
    pub fn write(
        &mut self,
        slot: usize,
        observation: &[f32],
        next_observation: Option<&[f32]>,
        action: u32,
        reward: f32,
        done: bool,
        seq: u64,
    ) {
        assert!(slot < self.slots, "slot {slot} out of range");
        assert_eq!(observation.len(), self.obs_dim, "observation dimension mismatch");
        assert_ne!(seq, WRITING, "sequence number collides with the WRITING sentinel");
        self.seq[slot] = WRITING;
        let base = slot * self.obs_dim;
        self.observations[base..base + self.obs_dim].copy_from_slice(observation);
        match next_observation {
            Some(next) => {
                assert_eq!(next.len(), self.obs_dim, "next-observation dimension mismatch");
                self.next_observations[base..base + self.obs_dim].copy_from_slice(next);
                self.has_next[slot] = true;
            }
            None => {
                self.next_observations[base..base + self.obs_dim].fill(0.0);
                self.has_next[slot] = false;
            }
        }
        self.actions[slot] = action;
        self.rewards[slot] = reward;
        self.dones[slot] = done;
        self.filled = self.filled.max(slot + 1);
        self.seq[slot] = seq;
    }

    /// Reads `slot` and pushes it into `sink` (the single copy of the gather
    /// path).
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never written (or its write never completed).
    pub fn read_into(&self, slot: usize, sink: &mut dyn xingtian_algos::SampleSink) {
        assert!(slot < self.filled, "slot {slot} was never written");
        assert_ne!(self.seq[slot], WRITING, "slot {slot} has an incomplete write");
        let base = slot * self.obs_dim;
        let obs = &self.observations[base..base + self.obs_dim];
        let next = self.has_next[slot].then(|| &self.next_observations[base..base + self.obs_dim]);
        sink.push_transition(obs, next, self.actions[slot], self.rewards[slot], self.dones[slot]);
    }

    /// Written slots whose write never completed (stuck at [`WRITING`]).
    pub fn dangling(&self) -> usize {
        self.seq[..self.filled].iter().filter(|&&s| s == WRITING).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Cap {
        obs: Vec<Vec<f32>>,
        next: Vec<Option<Vec<f32>>>,
        rewards: Vec<f32>,
    }

    impl xingtian_algos::SampleSink for Cap {
        fn push_transition(&mut self, o: &[f32], n: Option<&[f32]>, _a: u32, reward: f32, _d: bool) {
            self.obs.push(o.to_vec());
            self.next.push(n.map(<[f32]>::to_vec));
            self.rewards.push(reward);
        }
        fn push_weight(&mut self, _w: f32) {}
    }

    #[test]
    fn write_read_roundtrip() {
        let mut a = TransitionArena::new(4, 3);
        a.write(0, &[1.0, 2.0, 3.0], Some(&[4.0, 5.0, 6.0]), 2, 0.5, false, 0);
        a.write(1, &[7.0, 8.0, 9.0], None, 1, -1.0, true, 1);
        let mut sink = Cap::default();
        a.read_into(0, &mut sink);
        a.read_into(1, &mut sink);
        assert_eq!(sink.obs[0], vec![1.0, 2.0, 3.0]);
        assert_eq!(sink.next[0].as_deref(), Some(&[4.0, 5.0, 6.0][..]));
        assert_eq!(sink.next[1], None, "terminal without successor reads back as None");
        assert_eq!(sink.rewards, vec![0.5, -1.0]);
        assert_eq!(a.filled(), 2);
        assert_eq!(a.dangling(), 0);
    }

    #[test]
    fn overwrite_replaces_slot() {
        let mut a = TransitionArena::new(2, 1);
        a.write(0, &[1.0], Some(&[2.0]), 0, 1.0, false, 0);
        a.write(0, &[9.0], None, 3, 9.0, true, 2);
        let mut sink = Cap::default();
        a.read_into(0, &mut sink);
        assert_eq!(sink.obs[0], vec![9.0]);
        assert_eq!(sink.next[0], None, "stale next-observation must not leak through");
        assert_eq!(a.filled(), 1);
    }

    #[test]
    #[should_panic(expected = "never written")]
    fn reading_unwritten_slot_panics() {
        let a = TransitionArena::new(2, 1);
        let mut sink = Cap::default();
        a.read_into(0, &mut sink);
    }
}
