//! Process endpoints: send/receive buffers plus the monitoring threads.
//!
//! An [`Endpoint`] is everything a workhorse thread (rollout worker or
//! trainer) sees of the communication channel: `send` stages a message in the
//! local send buffer and returns immediately; `recv` pops the local receive
//! buffer. Two monitoring threads per endpoint keep data flowing:
//!
//! * the **sender thread** pops the send buffer and submits each message to
//!   the broker (compression + object-store insertion + header enqueue), and
//! * the **receiver thread** pops the endpoint's ID queue, fetches the body
//!   from the object store (zero-copy), decompresses if needed, and pushes the
//!   complete message into the receive buffer.
//!
//! Both threads are event-driven (blocking pops), so transmission starts the
//! instant data are ready — the paper's aggressive-push behavior.

use crate::broker::Broker;
use crate::buffer::Buffer;
use crate::router::IdQueueMsg;
use crate::stats::TransmissionStats;
use crossbeam_channel::Receiver;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use xingtian_message::{decompress_body, Body, CompressionKind, Header, Message, MessageKind, ProcessId};
use xt_telemetry::{EventKind, Telemetry};

/// A process's handle on the asynchronous communication channel.
#[derive(Debug)]
pub struct Endpoint {
    pid: ProcessId,
    broker: Broker,
    send_buf: Arc<Buffer>,
    recv_buf: Arc<Buffer>,
    /// Latency from message creation (at the producer) to arrival in this
    /// endpoint's receive buffer.
    delivery_stats: Arc<TransmissionStats>,
    bytes_received: Arc<AtomicU64>,
    messages_received: Arc<AtomicU64>,
    telemetry: Telemetry,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Endpoint {
    pub(crate) fn spawn(pid: ProcessId, broker: Broker, id_rx: Receiver<IdQueueMsg>) -> Self {
        let send_buf = Arc::new(Buffer::new());
        // Workhorse endpoints get bounded receive buffers so that a stalled
        // consumer backpressures the whole channel (receiver thread blocks →
        // object store fills → senders block) instead of buffering without
        // bound. Control-plane endpoints stay unbounded: stats must never be
        // able to stall the data plane.
        let recv_buf = Arc::new(match pid.role {
            xingtian_message::ProcessRole::Explorer | xingtian_message::ProcessRole::Learner => {
                match broker.endpoint_recv_capacity() {
                    Some(cap) => Buffer::with_capacity(cap),
                    None => Buffer::new(),
                }
            }
            _ => Buffer::new(),
        });
        let delivery_stats = Arc::new(TransmissionStats::new());
        let bytes_received = Arc::new(AtomicU64::new(0));
        let messages_received = Arc::new(AtomicU64::new(0));
        let telemetry = broker.telemetry().clone();

        let mut threads = Vec::with_capacity(2);

        // Sender monitoring thread: send buffer -> broker. With heartbeats
        // enabled it doubles as the endpoint's liveness beacon: the thread is
        // joined when the endpoint closes (including the implicit close when
        // a panicking workhorse drops its endpoint during unwind), so the
        // beacon stops for exactly the process deaths a detector must see.
        {
            let send_buf = Arc::clone(&send_buf);
            let broker = broker.clone();
            let heartbeat = broker.heartbeat_config().filter(|_| pid.role != xingtian_message::ProcessRole::Broker);
            let handle = std::thread::Builder::new()
                .name(format!("xt-send-{pid}"))
                .spawn(move || match heartbeat {
                    None => {
                        while let Some(msg) = send_buf.pop() {
                            let _ = broker.submit(msg);
                        }
                    }
                    Some(hb) => {
                        // With a sharded monitor this endpoint always beacons
                        // to the same shard (stable pid hash), so that inbox's
                        // inter-arrival statistics describe this process.
                        let monitor = hb.monitor_for(pid);
                        let beat = |seq: u64| {
                            let header = Header::new(pid, vec![monitor], MessageKind::Heartbeat)
                                .with_seq(seq);
                            broker.submit(Message::new(header, Body::new()))
                        };
                        let interval = hb.interval();
                        let mut seq = 0u64;
                        // Announce liveness immediately so the detector can
                        // baseline this endpoint before the first interval.
                        let _ = beat(seq);
                        let mut last_beat = std::time::Instant::now();
                        loop {
                            match send_buf.pop_timeout(interval) {
                                Some(msg) => {
                                    let _ = broker.submit(msg);
                                }
                                // `pop_timeout` returns None on both timeout
                                // and closed-and-drained; only the latter
                                // ends the beacon.
                                None if send_buf.is_closed() && send_buf.is_empty() => break,
                                None => {}
                            }
                            if last_beat.elapsed() >= interval {
                                seq += 1;
                                let _ = beat(seq);
                                last_beat = std::time::Instant::now();
                            }
                        }
                    }
                })
                .expect("spawn sender thread");
            threads.push(handle);
        }

        // Receiver monitoring thread: ID queue -> object store -> receive buffer.
        {
            let recv_buf = Arc::clone(&recv_buf);
            let store = Arc::clone(&broker_store(&broker));
            let delivery_stats = Arc::clone(&delivery_stats);
            let bytes_received = Arc::clone(&bytes_received);
            let messages_received = Arc::clone(&messages_received);
            let telemetry = telemetry.clone();
            let delivery_hist = telemetry.histogram("comm.delivery_ns");
            let decompress_hist = telemetry.histogram("comm.decompress_ns");
            let handle = std::thread::Builder::new()
                .name(format!("xt-recv-{pid}"))
                .spawn(move || {
                    // On exit, burn the store credits of anything still queued
                    // for this endpoint so a departed consumer cannot leave
                    // the shared segment full (and senders blocked) forever.
                    let drain = |id_rx: &Receiver<IdQueueMsg>, store: &crate::store::ObjectStore| {
                        while let Ok(msg) = id_rx.try_recv() {
                            if let IdQueueMsg::Deliver(h) = msg {
                                if let Some(id) = h.object_id {
                                    let _ = store.drop_credit(id);
                                }
                            }
                        }
                    };
                    while let Ok(msg) = id_rx.recv() {
                        // The queue delivers shared headers (one Arc per
                        // destination, not one deep copy); this endpoint takes
                        // its own mutable copy only here, at the final hop.
                        let shared = match msg {
                            IdQueueMsg::Deliver(h) => h,
                            IdQueueMsg::Close => break,
                        };
                        let mut header = (*shared).clone();
                        drop(shared);
                        let Some(id) = header.object_id else { continue };
                        let Some(body) = store.fetch(id) else { continue };
                        // Move the body into this process's local buffer.
                        // The store hands out shared views of the segment, so
                        // this is zero-copy for uncompressed bodies — the
                        // paper's "zero-copy communication among processes".
                        // Transport-compressed bodies decompress into a fresh
                        // local buffer here; parameter-plane frames
                        // (`is_param_plane`) pass through intact, because only
                        // the consuming workhorse holds the base version and
                        // recycled buffers they decode against.
                        let body: Body = if header.compression.is_transport() {
                            let start = std::time::Instant::now();
                            // Chunked bodies fan their frames across the
                            // shared worker pool; legacy single-block bodies
                            // (and any future kinds) take the serial decoder.
                            let result = match header.compression {
                                CompressionKind::Lz4Chunked => {
                                    crate::pool::decompress_chunked_parallel(
                                        crate::pool::shared_pool(),
                                        &body,
                                    )
                                    .map(Body::from)
                                }
                                kind => decompress_body(&body, kind),
                            };
                            match result {
                                Ok(raw) => {
                                    decompress_hist.record_duration(start.elapsed());
                                    header.compression = CompressionKind::None;
                                    raw
                                }
                                Err(_) => continue, // corrupt body: drop
                            }
                        } else {
                            body
                        };
                        delivery_stats.record(header.created_at.elapsed());
                        delivery_hist.record_duration(header.created_at.elapsed());
                        telemetry.emit(EventKind::Fetched, header.id, body.len() as u64);
                        bytes_received.fetch_add(body.len() as u64, Ordering::Relaxed);
                        messages_received.fetch_add(1, Ordering::Relaxed);
                        if !recv_buf.push(Message { header, body }) {
                            break; // receive buffer closed: stop delivering
                        }
                    }
                    drain(&id_rx, &store);
                    // The receiver thread is the only producer into recv_buf:
                    // once it exits, nothing will ever arrive again, so close
                    // the buffer. A workhorse blocked in `recv`/`recv_timeout`
                    // observes the closure promptly (staged messages still
                    // drain first) instead of waiting out its full timeout —
                    // this is what lets broker-side endpoint teardown
                    // (`Broker::close_endpoint`) unblock a stuck consumer.
                    recv_buf.close();
                })
                .expect("spawn receiver thread");
            threads.push(handle);
        }

        Endpoint {
            pid,
            broker,
            send_buf,
            recv_buf,
            delivery_stats,
            bytes_received,
            messages_received,
            telemetry,
            threads: Mutex::new(threads),
        }
    }

    /// This endpoint's process id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Stages `msg` for asynchronous transmission and returns immediately.
    ///
    /// Returns `false` if the endpoint has been closed.
    pub fn send(&self, msg: Message) -> bool {
        let (id, len) = (msg.header.id, msg.body.len() as u64);
        // Stamp before the push: once the message is in the buffer the drain
        // thread can complete the whole lifecycle (advancing the virtual
        // clock across the NIC) before this thread runs again, which would
        // give SendEnqueued a later timestamp than StoreInserted..Fetched.
        // A closed endpoint leaves one stray SendEnqueued (incomplete span).
        self.telemetry.emit(EventKind::SendEnqueued, id, len);
        self.send_buf.push(msg)
    }

    /// Convenience: builds and sends a message from this endpoint.
    pub fn send_to(&self, dst: Vec<ProcessId>, kind: MessageKind, body: Body) -> bool {
        let header = Header::new(self.pid, dst, kind);
        self.send(Message::new(header, body))
    }

    /// Blocks until a message arrives or the endpoint is closed.
    pub fn recv(&self) -> Option<Message> {
        self.consumed(self.recv_buf.pop())
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.consumed(self.recv_buf.try_pop())
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        self.consumed(self.recv_buf.pop_timeout(timeout))
    }

    #[inline]
    fn consumed(&self, msg: Option<Message>) -> Option<Message> {
        if let Some(m) = &msg {
            self.telemetry.emit(EventKind::Consumed, m.header.id, 0);
        }
        msg
    }

    /// Messages already delivered and waiting in the receive buffer.
    pub fn pending(&self) -> usize {
        self.recv_buf.len()
    }

    /// Messages staged for sending but not yet handed to the broker. Producers
    /// can use this for flow control when the channel is congested.
    pub fn send_backlog(&self) -> usize {
        self.send_buf.len()
    }

    /// The telemetry handle shared with this endpoint's broker. Disabled
    /// (zero-cost) unless the broker was built with `Broker::with_telemetry`.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Producer-to-receive-buffer latency statistics for messages delivered to
    /// this endpoint.
    pub fn delivery_stats(&self) -> &TransmissionStats {
        &self.delivery_stats
    }

    /// Shared handle to the delivery statistics, usable after the endpoint
    /// has been moved into its process thread.
    pub fn delivery_stats_arc(&self) -> Arc<TransmissionStats> {
        Arc::clone(&self.delivery_stats)
    }

    /// Total body bytes delivered to this endpoint.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Total messages delivered to this endpoint.
    pub fn messages_received(&self) -> u64 {
        self.messages_received.load(Ordering::Relaxed)
    }

    /// Closes the endpoint: the send buffer stops accepting messages (the
    /// sender thread drains and exits), the ID queue is removed and the
    /// receive buffer closed (the receiver thread exits, even if it was
    /// blocked on a full bounded buffer), and the monitoring threads are
    /// joined. Idempotent.
    pub fn close(&self) {
        self.send_buf.close();
        self.broker.remove_endpoint(self.pid);
        // Close the receive buffer *before* joining: a receiver thread
        // blocked pushing into a full bounded buffer unblocks on closure.
        self.recv_buf.close();
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.close();
    }
}

fn broker_store(broker: &Broker) -> Arc<crate::store::ObjectStore> {
    // The receiver thread holds only the store, not the broker, so a broker
    // is never kept alive by one of its own tracked threads.
    broker.store_arc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CommConfig;
    use bytes::Bytes;
    use netsim::Cluster;

    #[test]
    fn send_returns_immediately_recv_blocks_until_delivery() {
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        let e = broker.endpoint(ProcessId::explorer(0));
        let l = broker.endpoint(ProcessId::learner(0));
        assert!(e.send_to(vec![ProcessId::learner(0)], MessageKind::Rollout, Bytes::from_static(b"r1")));
        let m = l.recv_timeout(Duration::from_secs(5)).expect("delivered");
        assert_eq!(&m.body[..], b"r1");
        assert_eq!(l.messages_received(), 1);
        assert_eq!(l.bytes_received(), 2);
        assert!(!l.delivery_stats().is_empty());
        broker.shutdown();
    }

    #[test]
    fn close_stops_accepting_sends() {
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        let e = broker.endpoint(ProcessId::explorer(0));
        let _l = broker.endpoint(ProcessId::learner(0));
        e.close();
        assert!(!e.send_to(vec![ProcessId::learner(0)], MessageKind::Rollout, Bytes::new()));
        broker.shutdown();
    }

    #[test]
    fn compressed_bodies_arrive_decompressed() {
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        let e = broker.endpoint(ProcessId::explorer(0));
        let l = broker.endpoint(ProcessId::learner(0));
        let payload = Bytes::from(vec![3u8; 4 * 1024 * 1024]); // > 1 MiB threshold
        e.send_to(vec![ProcessId::learner(0)], MessageKind::Rollout, payload.clone());
        let m = l.recv_timeout(Duration::from_secs(5)).expect("delivered");
        assert_eq!(m.header.compression, CompressionKind::None);
        assert_eq!(m.body, payload);
        broker.shutdown();
    }

    #[test]
    fn blocked_recv_timeout_observes_broker_side_close_promptly() {
        // Satellite regression test: a workhorse blocked in `recv_timeout`
        // must observe endpoint teardown within milliseconds, not wait out
        // its full timeout. The broker-side path (`close_endpoint`) only
        // sends the ID-queue close sentinel; the receiver thread must close
        // the receive buffer on its way out for the blocked popper to wake.
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        let l = Arc::new(broker.endpoint(ProcessId::learner(0)));
        let l2 = Arc::clone(&l);
        let waiter = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            let got = l2.recv_timeout(Duration::from_secs(30));
            (got.is_none(), t0.elapsed())
        });
        // Let the waiter actually block, then tear the endpoint down from
        // the broker side.
        std::thread::sleep(Duration::from_millis(50));
        broker.close_endpoint(ProcessId::learner(0));
        let (closed, waited) = waiter.join().unwrap();
        assert!(closed, "closure surfaces as None, not a message");
        assert!(
            waited < Duration::from_secs(5),
            "blocked receiver waited {waited:?} — did not observe close promptly"
        );
        broker.shutdown();
    }

    #[test]
    fn staged_messages_drain_before_close_is_observed() {
        // Closure must not eat messages that were already delivered.
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        let e = broker.endpoint(ProcessId::explorer(0));
        let l = broker.endpoint(ProcessId::learner(0));
        assert!(e.send_to(vec![ProcessId::learner(0)], MessageKind::Rollout, Bytes::from_static(b"kept")));
        let staged = l.recv_timeout(Duration::from_secs(5)).expect("delivered before close");
        assert_eq!(&staged.body[..], b"kept");
        broker.close_endpoint(ProcessId::learner(0));
        assert!(l.recv_timeout(Duration::from_secs(5)).is_none());
        broker.shutdown();
    }

    #[test]
    fn heartbeats_flow_to_the_monitor() {
        let monitor = ProcessId::broker(0);
        let config = CommConfig::default().with_heartbeat(5, monitor);
        let broker = Broker::new(0, Cluster::single(), config);
        // Monitor first so no beat is ever unroutable; its own (Broker-role)
        // endpoint does not beacon.
        let mon = broker.endpoint(monitor);
        let e = broker.endpoint(ProcessId::explorer(0));
        let beat = mon.recv_timeout(Duration::from_secs(5)).expect("initial heartbeat");
        assert_eq!(beat.header.kind, MessageKind::Heartbeat);
        assert_eq!(beat.header.src, ProcessId::explorer(0));
        let beat2 = mon.recv_timeout(Duration::from_secs(5)).expect("periodic heartbeat");
        assert!(beat2.header.seq > beat.header.seq, "beats carry increasing seq");
        // Closing the endpoint stops the beacon.
        e.close();
        while mon.recv_timeout(Duration::from_millis(100)).is_some() {}
        assert!(mon.recv_timeout(Duration::from_millis(100)).is_none(), "no beats after close");
        drop(mon);
        broker.shutdown();
        assert_eq!(broker.dropped(), 0, "every heartbeat was routable");
        assert!(broker.store().is_empty());
    }

    #[test]
    fn heartbeats_spread_across_monitor_shards() {
        // Sharded heartbeat sink: each beaconing endpoint feeds exactly one
        // monitor shard, chosen by a stable hash of its own pid, and the
        // union of shards sees every endpoint.
        let monitor = ProcessId { role: xingtian_message::ProcessRole::Broker, index: u32::MAX };
        let shards = 4u32;
        let config = CommConfig::default().with_heartbeat(5, monitor).with_monitor_shards(shards);
        let hb = config.heartbeat.unwrap();
        let broker = Broker::new(0, Cluster::single(), config);
        // All monitor shards first so no beat is ever unroutable.
        let mons: Vec<_> = hb.monitor_pids().into_iter().map(|p| broker.endpoint(p)).collect();
        let n = 16u32;
        let eps: Vec<_> = (0..n).map(|i| broker.endpoint(ProcessId::explorer(i))).collect();
        let mut seen: std::collections::HashSet<ProcessId> = std::collections::HashSet::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while seen.len() < n as usize && std::time::Instant::now() < deadline {
            for (s, mon) in mons.iter().enumerate() {
                while let Some(beat) = mon.try_recv() {
                    assert_eq!(beat.header.kind, MessageKind::Heartbeat);
                    assert_eq!(
                        hb.monitor_for(beat.header.src),
                        mon.pid(),
                        "explorer {} beaconed to shard {s}, not its hash-chosen shard",
                        beat.header.src,
                    );
                    seen.insert(beat.header.src);
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(seen.len(), n as usize, "every endpoint's beats reached its shard");
        drop(eps);
        drop(mons);
        broker.shutdown();
        assert_eq!(broker.dropped(), 0, "every heartbeat was routable");
    }

    #[test]
    fn many_messages_preserve_per_sender_order() {
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        let e = broker.endpoint(ProcessId::explorer(0));
        let l = broker.endpoint(ProcessId::learner(0));
        for i in 0..100u8 {
            e.send_to(vec![ProcessId::learner(0)], MessageKind::Rollout, Bytes::from(vec![i]));
        }
        for i in 0..100u8 {
            let m = l.recv_timeout(Duration::from_secs(5)).expect("delivered");
            assert_eq!(m.body[0], i, "FIFO per sender");
        }
        broker.shutdown();
    }
}
