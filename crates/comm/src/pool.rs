//! Shared worker pool for chunk-parallel LZ4 (de)compression.
//!
//! The chunk container (`xingtian_message::chunk`) makes every 256 KiB span of
//! a large body an independent LZ4 frame; this module supplies the threads
//! that crunch those frames concurrently. One process-wide [`WorkPool`]
//! (sized to the machine, capped at 8) is shared by all brokers — compression
//! jobs from the broker's offload thread and decompression jobs from every
//! endpoint receiver thread interleave on the same workers.
//!
//! Only *leaf* chunk jobs ever enter the pool; the orchestrating thread
//! (offload or receiver) never blocks inside a pool slot. Instead it
//! participates in the partition itself — every `(workers + 1)`-th chunk is
//! processed inline by the caller — so a pool saturated by another message
//! can delay a caller but never deadlock it, and on a single-core machine
//! the caller simply does all the work itself.

use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, Sender};
use std::sync::OnceLock;
use xingtian_message::chunk::{self, ChunkError, ChunkedBuilder};
use xingtian_message::lz4;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of detached worker threads consuming chunk jobs from an
/// unbounded queue. Workers exit when the pool (all senders) is dropped;
/// the process-wide [`shared_pool`] lives for the program's lifetime.
pub struct WorkPool {
    tx: Sender<Job>,
    workers: usize,
}

impl std::fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkPool").field("workers", &self.workers).finish_non_exhaustive()
    }
}

impl WorkPool {
    /// Starts `workers.max(1)` worker threads named `xt-lz4-{i}`.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = unbounded::<Job>();
        for w in 0..workers {
            let rx: Receiver<Job> = rx.clone();
            std::thread::Builder::new()
                .name(format!("xt-lz4-{w}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn lz4 worker thread");
        }
        WorkPool { tx, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn submit(&self, job: Job) {
        assert!(self.tx.send(job).is_ok(), "lz4 worker pool alive");
    }

    /// Runs a batch of borrowing jobs to completion across the pool, with
    /// the calling thread participating: every `(workers + 1)`-th job runs
    /// inline on the caller (same stride discipline as the chunk codecs), so
    /// a saturated pool degrades to caller-does-everything rather than
    /// deadlock.
    ///
    /// Unlike [`WorkPool::submit`]'s fire-and-forget jobs, these closures may
    /// borrow from the caller's stack (`'scope`): the method blocks until
    /// every job has finished before returning, so the borrows cannot be
    /// outlived. Job panics are caught (on workers and inline alike), all
    /// remaining completions are drained, and the first panic is then
    /// propagated on the calling thread — no job is left running with a
    /// dangling borrow and no pool worker is lost to an unwinding job.
    pub fn run_scoped<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
        let stride = self.workers + 1;
        let (done_tx, done_rx) = unbounded::<std::thread::Result<()>>();
        let mut offloaded = 0usize;
        let mut inline: Vec<Box<dyn FnOnce() + Send + 'scope>> = Vec::new();
        for (idx, job) in jobs.into_iter().enumerate() {
            if idx % stride == 0 {
                inline.push(job); // caller's share
                continue;
            }
            // SAFETY: only the lifetime bound changes. The job cannot outlive
            // its borrows because this function drains exactly `offloaded`
            // completion messages — each sent after its job has returned or
            // unwound — before returning or propagating a panic.
            let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
            let done_tx = done_tx.clone();
            offloaded += 1;
            self.submit(Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(job));
                let _ = done_tx.send(result);
            }));
        }
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for job in inline {
            if let Err(p) = catch_unwind(AssertUnwindSafe(job)) {
                first_panic.get_or_insert(p);
            }
        }
        for _ in 0..offloaded {
            let result = done_rx.recv().expect("scoped worker delivered completion");
            if let Err(p) = result {
                first_panic.get_or_insert(p);
            }
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
    }
}

/// The process-wide pool, created on first use and sized to
/// `available_parallelism` (capped at 8 — chunk jobs are memory-bandwidth
/// bound well before that).
pub fn shared_pool() -> &'static WorkPool {
    static POOL: OnceLock<WorkPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let n = std::thread::available_parallelism().map_or(1, |n| n.get());
        WorkPool::new(n.clamp(1, 8))
    })
}

/// Compresses `body` into a chunk container, fanning the per-chunk LZ4 work
/// across `pool` while the calling thread compresses its own share.
///
/// The output is byte-identical to [`chunk::compress_chunked`] of the same
/// input: chunking is deterministic and each frame depends only on its own
/// span. Like the serial path, the container is returned even when it is not
/// smaller than `body` (per-chunk raw fallback bounds the overhead); callers
/// decide whether to keep it.
pub fn compress_chunked_parallel(pool: &WorkPool, body: &Bytes) -> Vec<u8> {
    let spans: Vec<_> = chunk::chunk_spans(body.len()).collect();
    if spans.len() <= 1 {
        return chunk::compress_chunked(body);
    }
    let stride = pool.workers() + 1;
    let (res_tx, res_rx) = unbounded::<(usize, Vec<u8>)>();
    let mut offloaded = 0usize;
    for (idx, span) in spans.iter().enumerate() {
        if idx % stride == 0 {
            continue; // caller's share
        }
        // A `Bytes` clone shares the buffer (no copy); the worker indexes the
        // span itself. `lz4::compress` reuses the worker's thread-local
        // context, so steady-state jobs allocate only their output.
        let body = body.clone();
        let span = span.clone();
        let res_tx = res_tx.clone();
        offloaded += 1;
        pool.submit(Box::new(move || {
            let _ = res_tx.send((idx, lz4::compress(&body[span])));
        }));
    }
    let mut frames: Vec<Option<Vec<u8>>> = vec![None; spans.len()];
    let mut ctx = lz4::CompressContext::new();
    for (idx, span) in spans.iter().enumerate() {
        if idx % stride == 0 {
            frames[idx] = Some(ctx.compress(&body[span.clone()]));
        }
    }
    for _ in 0..offloaded {
        let (idx, frame) = res_rx.recv().expect("lz4 worker delivered its frame");
        frames[idx] = Some(frame);
    }
    let mut builder = ChunkedBuilder::new(body.len());
    for (idx, span) in spans.iter().enumerate() {
        builder.push_chunk(&body[span.clone()], frames[idx].as_deref());
    }
    builder.finish()
}

/// Decompresses a chunk container, fanning compressed frames across `pool`
/// while the calling thread decodes its own share. Raw-stored chunks are
/// copied during assembly (they need no decode work).
///
/// Workers decode into private buffers rather than disjoint slices of the
/// final body: the wild-copy decompressor may overshoot its logical end by up
/// to a word, which is harmless slop in a private buffer but would race with
/// a neighboring chunk's writer in a shared one.
///
/// # Errors
///
/// Any [`ChunkError`]; all in-flight chunk results are collected before an
/// error returns, so no worker is left writing into freed state.
pub fn decompress_chunked_parallel(pool: &WorkPool, body: &Bytes) -> Result<Vec<u8>, ChunkError> {
    let parsed = chunk::parse_chunked(body)?;
    let compressed_idx: Vec<usize> = (0..parsed.chunks.len())
        .filter(|&i| parsed.chunks[i].compressed)
        .collect();
    if compressed_idx.len() <= 1 {
        return chunk::decompress_chunked(body);
    }
    let stride = pool.workers() + 1;
    let (res_tx, res_rx) = unbounded::<(usize, Result<Vec<u8>, ChunkError>)>();
    let mut offloaded = 0usize;
    for (j, &idx) in compressed_idx.iter().enumerate() {
        if j % stride == 0 {
            continue; // caller's share
        }
        let body = body.clone();
        let payload = parsed.chunks[idx].payload.clone();
        let uncompressed_len = parsed.chunks[idx].uncompressed_len;
        let res_tx = res_tx.clone();
        offloaded += 1;
        pool.submit(Box::new(move || {
            let result =
                lz4::decompress_sized(&body[payload], uncompressed_len).map_err(ChunkError::from);
            let _ = res_tx.send((idx, result));
        }));
    }
    let mut decoded: Vec<Option<Vec<u8>>> = vec![None; parsed.chunks.len()];
    let mut first_err: Option<ChunkError> = None;
    for (j, &idx) in compressed_idx.iter().enumerate() {
        if j % stride == 0 {
            match lz4::decompress_sized(
                &body[parsed.chunks[idx].payload.clone()],
                parsed.chunks[idx].uncompressed_len,
            ) {
                Ok(buf) => decoded[idx] = Some(buf),
                Err(e) => first_err = first_err.or(Some(ChunkError::from(e))),
            }
        }
    }
    for _ in 0..offloaded {
        let (idx, result) = res_rx.recv().expect("lz4 worker delivered its result");
        match result {
            Ok(buf) => decoded[idx] = Some(buf),
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    // Assemble: every chunk covers a disjoint span and the spans sum to
    // total_len (validated by parse_chunked + decompress_sized), so each
    // output byte is written exactly once.
    let mut out: Vec<u8> = Vec::with_capacity(parsed.total_len);
    unsafe {
        let base = out.as_mut_ptr();
        for (idx, chunk) in parsed.chunks.iter().enumerate() {
            let src: &[u8] = match &decoded[idx] {
                Some(buf) => buf,
                None => &body[chunk.payload.clone()], // raw-stored chunk
            };
            debug_assert_eq!(src.len(), chunk.uncompressed_len);
            std::ptr::copy_nonoverlapping(src.as_ptr(), base.add(chunk.output_offset), src.len());
        }
        out.set_len(parsed.total_len);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xingtian_message::chunk::CHUNK_SIZE;

    fn mixed_payload(len: usize) -> Bytes {
        // Alternating compressible / incompressible chunks so both the
        // lz4-frame and raw-stored assembly paths run.
        let mut state = 0x1234_5678_9abc_def0u64;
        let data: Vec<u8> = (0..len)
            .map(|i| {
                if (i / CHUNK_SIZE).is_multiple_of(2) {
                    (i % 13) as u8
                } else {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state & 0xff) as u8
                }
            })
            .collect();
        Bytes::from(data)
    }

    #[test]
    fn parallel_compress_matches_serial_bytes() {
        let pool = WorkPool::new(3);
        for len in [100usize, CHUNK_SIZE, 4 * CHUNK_SIZE + 17, 9 * CHUNK_SIZE] {
            let body = mixed_payload(len);
            let parallel = compress_chunked_parallel(&pool, &body);
            let serial = chunk::compress_chunked(&body);
            assert_eq!(parallel, serial, "len {len}");
        }
    }

    #[test]
    fn parallel_decompress_round_trips() {
        let pool = WorkPool::new(3);
        for len in [0usize, 1, CHUNK_SIZE + 1, 7 * CHUNK_SIZE + 123] {
            let body = mixed_payload(len);
            let container = Bytes::from(compress_chunked_parallel(&pool, &body));
            let restored = decompress_chunked_parallel(&pool, &container).unwrap();
            assert_eq!(Bytes::from(restored), body, "len {len}");
        }
    }

    #[test]
    fn parallel_decompress_rejects_corrupt_container() {
        let pool = WorkPool::new(2);
        let body = Bytes::from(vec![5u8; 4 * CHUNK_SIZE]);
        let mut container = compress_chunked_parallel(&pool, &body);
        container.truncate(container.len() - 1); // lose the final frame byte
        let container = Bytes::from(container);
        assert!(decompress_chunked_parallel(&pool, &container).is_err());
    }

    #[test]
    fn run_scoped_runs_borrowing_jobs_to_completion() {
        let pool = WorkPool::new(3);
        let mut out = [0u32; 16];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = out
            .chunks_mut(2)
            .enumerate()
            .map(|(i, c)| {
                Box::new(move || {
                    for v in c.iter_mut() {
                        *v = i as u32 + 1;
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(jobs);
        for (i, pair) in out.chunks(2).enumerate() {
            assert_eq!(pair, &[i as u32 + 1, i as u32 + 1], "chunk {i}");
        }
    }

    #[test]
    fn run_scoped_propagates_panics_and_keeps_workers_alive() {
        let pool = WorkPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send>> =
                vec![Box::new(|| panic!("scoped job boom")), Box::new(|| {}), Box::new(|| {})];
            pool.run_scoped(jobs);
        }));
        assert!(caught.is_err(), "job panic surfaces on the caller");
        // The pool must still run jobs afterwards (workers not unwound).
        let mut ran = false;
        pool.run_scoped(vec![Box::new(|| ran = true)]);
        assert!(ran);
    }

    #[test]
    fn shared_pool_is_singleton() {
        let a = shared_pool() as *const WorkPool;
        let b = shared_pool() as *const WorkPool;
        assert_eq!(a, b);
        assert!(shared_pool().workers() >= 1);
    }
}
