//! Shared-memory object store with fan-out reference counts.
//!
//! The paper keeps message bodies "inside the object store implemented via
//! shared memory for zero-copy communication among processes" (§3.2.1). Here
//! the store maps an [`ObjectId`] to a reference-counted [`Bytes`] buffer:
//! fetching clones the `Arc` (O(1), no payload copy), and the entry is freed
//! once every destination of the message has fetched it, so broadcast
//! parameters occupy memory exactly once regardless of explorer count.
//!
//! # Concurrency layout
//!
//! The store is built for 256-explorer fan-in/fan-out, so nothing on the
//! fetch path crosses a store-wide lock:
//!
//! * entries live in [`SHARD_COUNT`] lock-striped shards keyed by object id
//!   (ids are sequential, so consecutive objects stripe across shards);
//! * each entry carries its remaining fetch credits in an `AtomicUsize` —
//!   a fetch holds its shard lock only long enough to clone the entry `Arc`,
//!   then spends the credit with one atomic decrement, so 256 destinations
//!   fetching the same broadcast body never serialize behind a mutex while
//!   the payload handle is cloned;
//! * the capacity gate is a dedicated mutex: a waiter re-checks *and
//!   reserves* while holding it, so concurrent inserts can no longer all pass
//!   the check before any of them reserves (the old overshoot race that let
//!   the segment transiently exceed its capacity by one body per waiter).

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Identifier of a body held in an [`ObjectStore`].
pub type ObjectId = u64;

/// Default shared-memory segment size (the real system sizes its Plasma-style
/// store explicitly; 128 MiB keeps in-flight traffic bounded without stalling
/// realistic workloads).
pub const DEFAULT_CAPACITY: usize = 128 * 1024 * 1024;

/// Number of lock stripes. 16 keeps the striping effective at 256 concurrent
/// fetchers (sequential ids spread adjacent objects across all stripes) while
/// the per-store footprint stays trivial.
pub const SHARD_COUNT: usize = 16;

#[derive(Debug)]
struct Entry {
    body: Bytes,
    /// How many fetches remain before the entry is dropped. Spent with an
    /// atomic decrement outside the shard lock.
    remaining: AtomicUsize,
    /// Whether the entry was admitted through the capacity gate (data plane)
    /// rather than the priority lane, so its release keeps the data-plane
    /// byte count balanced.
    gated: bool,
}

/// Capacity accounting, mutated only under the gate mutex so a check-then-
/// reserve is atomic.
#[derive(Debug)]
struct Gate {
    live: usize,
    /// The gate-admitted (data-plane) share of `live`. Priority-lane bodies
    /// bypass the capacity wait, so they are excluded here: this is the
    /// residency that actually back-pressures producers.
    data: usize,
}

/// A process-shared body store.
///
/// Insertions declare a *fan-out*: the number of destination processes that
/// will fetch the object. [`ObjectStore::fetch`] hands out zero-copy clones
/// and removes the entry on the last fetch, which keeps the store's live size
/// bounded by in-flight traffic ("no significant extra memory overheads",
/// paper §3.2.1).
///
/// Like the real shared-memory segment, the store has a fixed capacity:
/// [`ObjectStore::insert`] blocks until the object fits, back-pressuring
/// aggressive senders instead of growing without bound.
#[derive(Debug)]
pub struct ObjectStore {
    shards: Vec<Mutex<HashMap<ObjectId, Arc<Entry>>>>,
    gate: Mutex<Gate>,
    space: Condvar,
    capacity: usize,
    next_id: AtomicU64,
    /// Mirror of `Gate::live` (written only under the gate lock) so readers
    /// can poll residency without contending with inserters.
    live_bytes: AtomicUsize,
    /// Mirror of `Gate::data`: resident bytes that went through the capacity
    /// gate. The elastic supervisor polls this as its backpressure signal.
    data_bytes: AtomicUsize,
    peak_bytes: AtomicUsize,
    resident: AtomicUsize,
    inserted: AtomicU64,
}

impl Default for ObjectStore {
    fn default() -> Self {
        ObjectStore::with_capacity(DEFAULT_CAPACITY)
    }
}

impl ObjectStore {
    /// Creates an empty store with the default capacity.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Creates an empty store holding at most `capacity` bytes. Objects
    /// larger than the capacity are still admitted (alone) so oversized
    /// messages cannot deadlock the channel.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ObjectStore {
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(HashMap::new())).collect(),
            gate: Mutex::new(Gate { live: 0, data: 0 }),
            space: Condvar::new(),
            capacity,
            next_id: AtomicU64::new(0),
            live_bytes: AtomicUsize::new(0),
            data_bytes: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
            resident: AtomicUsize::new(0),
            inserted: AtomicU64::new(0),
        }
    }

    /// The store's capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn shard(&self, id: ObjectId) -> &Mutex<HashMap<ObjectId, Arc<Entry>>> {
        &self.shards[(id as usize) % SHARD_COUNT]
    }

    /// Inserts `body` to be fetched by `fanout` destinations and returns its id.
    ///
    /// The body is copied once on insertion — this models the producer
    /// writing the serialized message into the shared-memory segment, the one
    /// write the real system performs. Fetches then share that single
    /// resident buffer ([`ObjectStore::fetch`] is O(1)).
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero — an object nobody will fetch would leak.
    pub fn insert(&self, body: Bytes, fanout: usize) -> ObjectId {
        self.insert_inner(body, fanout, true)
    }

    /// Inserts without waiting for capacity (the store may transiently exceed
    /// its limit). Reserved for *control-plane* messages — lifecycle commands
    /// and statistics are tiny and must never be blocked behind data-plane
    /// backpressure, or a wedged consumer could make the deployment
    /// unstoppable.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero.
    pub fn insert_priority(&self, body: Bytes, fanout: usize) -> ObjectId {
        self.insert_inner(body, fanout, false)
    }

    fn insert_inner(&self, body: Bytes, fanout: usize, wait_for_capacity: bool) -> ObjectId {
        assert!(fanout > 0, "fanout must be at least 1");
        let len = body.len();
        // Check-and-reserve atomically under the gate so concurrent waiters
        // cannot all observe free space and collectively overshoot. An object
        // that can never fit is admitted once the store drains (live == 0), so
        // oversized messages cannot deadlock the channel.
        {
            let mut gate = self.gate.lock();
            while wait_for_capacity && gate.live > 0 && gate.live + len > self.capacity {
                self.space.wait(&mut gate);
            }
            gate.live += len;
            if wait_for_capacity {
                gate.data += len;
                self.data_bytes.store(gate.data, Ordering::Relaxed);
            }
            self.live_bytes.store(gate.live, Ordering::Relaxed);
            self.peak_bytes.fetch_max(gate.live, Ordering::Relaxed);
        }
        // Pay the segment write outside the gate.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let body = Bytes::copy_from_slice(&body);
        let entry = Arc::new(Entry {
            body,
            remaining: AtomicUsize::new(fanout),
            gated: wait_for_capacity,
        });
        self.shard(id).lock().insert(id, entry);
        self.resident.fetch_add(1, Ordering::Relaxed);
        self.inserted.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Releases `len` reserved bytes and wakes blocked inserters.
    fn release(&self, len: usize, gated: bool) {
        let mut gate = self.gate.lock();
        gate.live -= len;
        if gated {
            gate.data -= len;
            self.data_bytes.store(gate.data, Ordering::Relaxed);
        }
        self.live_bytes.store(gate.live, Ordering::Relaxed);
        self.space.notify_all();
    }

    /// Fetches a zero-copy clone of the object, releasing the entry when the
    /// last destination fetches it. Returns `None` for unknown (or already
    /// fully fetched) ids.
    pub fn fetch(&self, id: ObjectId) -> Option<Bytes> {
        let entry = self.shard(id).lock().get(&id).map(Arc::clone)?;
        // Spend one credit without the lock. `checked_sub` refuses to go
        // below zero, so an over-fetch racing the final removal cannot
        // double-free or resurrect the entry.
        let prev = entry
            .remaining
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |r| r.checked_sub(1))
            .ok()?;
        let body = entry.body.clone();
        if prev == 1 {
            // We spent the last credit: exactly one fetcher observes this,
            // so exactly one removal and one capacity release happen.
            self.shard(id).lock().remove(&id);
            self.resident.fetch_sub(1, Ordering::Relaxed);
            self.release(body.len(), entry.gated);
        }
        Some(body)
    }

    /// Spends one fetch credit without returning the body. Used by the router
    /// to reclaim the credit of a destination that can no longer take
    /// delivery (closed ID queue, unroutable destination), so the entry does
    /// not leak. Returns `false` for unknown ids.
    pub fn drop_credit(&self, id: ObjectId) -> bool {
        self.fetch(id).is_some()
    }

    /// Grants `extra` additional fetch credits to a live entry. Used by
    /// fault injection when a delivery is duplicated: every extra copy pushed
    /// into an ID queue will spend a credit at fetch time, so the credits
    /// must be minted *before* the copies are enqueued or the entry would be
    /// freed early (or underflow). Returns `false` — granting nothing — for
    /// unknown ids or entries whose last credit is already spent.
    pub fn add_credit(&self, id: ObjectId, extra: usize) -> bool {
        if extra == 0 {
            return true;
        }
        let Some(entry) = self.shard(id).lock().get(&id).map(Arc::clone) else { return false };
        // Refuse to resurrect an entry racing its final fetch: credits may
        // only grow while at least one is still outstanding.
        entry
            .remaining
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |r| {
                if r == 0 {
                    None
                } else {
                    Some(r + extra)
                }
            })
            .is_ok()
    }

    /// Reads the object without consuming a fetch credit. Used by routers that
    /// forward a body to a remote machine while local destinations still hold
    /// credits.
    pub fn peek(&self, id: ObjectId) -> Option<Bytes> {
        self.shard(id).lock().get(&id).map(|e| e.body.clone())
    }

    /// Number of objects currently resident.
    pub fn len(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// True when no objects are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently resident.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of resident bytes since creation.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    /// Fraction of capacity occupied by resident bodies. This is the
    /// channel's back-pressure signal: sustained occupancy near 1.0 means
    /// producers are stalling in `insert` waiting for consumers. Oversized
    /// lone objects (admitted despite exceeding capacity) can push it past
    /// 1.0 transiently.
    pub fn occupancy(&self) -> f64 {
        self.live_bytes() as f64 / self.capacity as f64
    }

    /// Fraction of capacity occupied by *gate-admitted* (data-plane) bodies.
    ///
    /// Priority-lane bodies — lifecycle commands, statistics, parameter
    /// broadcasts — bypass the capacity wait, so they never back-pressure a
    /// producer; excluding them makes this the clean congestion signal: it
    /// only rises when data-plane producers are genuinely outrunning
    /// consumers. The elastic supervisor polls this, not [`occupancy`]
    /// (whose transient control-plane spikes would mask the drain).
    ///
    /// [`occupancy`]: ObjectStore::occupancy
    pub fn data_occupancy(&self) -> f64 {
        self.data_bytes.load(Ordering::Relaxed) as f64 / self.capacity as f64
    }

    /// Total number of objects ever inserted.
    pub fn inserted(&self) -> u64 {
        self.inserted.load(Ordering::Relaxed)
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_tracks_live_bytes() {
        let s = ObjectStore::with_capacity(100);
        assert_eq!(s.occupancy(), 0.0);
        let id = s.insert(Bytes::from(vec![0u8; 50]), 1);
        assert!((s.occupancy() - 0.5).abs() < 1e-9);
        let _ = s.fetch(id);
        assert_eq!(s.occupancy(), 0.0, "fully fetched bodies free their share");
    }

    #[test]
    fn data_occupancy_excludes_priority_lane() {
        let s = ObjectStore::with_capacity(100);
        let p = s.insert_priority(Bytes::from(vec![0u8; 60]), 1);
        assert!((s.occupancy() - 0.6).abs() < 1e-9, "priority bytes are resident");
        assert_eq!(s.data_occupancy(), 0.0, "but they are not a congestion signal");
        let d = s.insert(Bytes::from(vec![0u8; 40]), 1);
        assert!((s.data_occupancy() - 0.4).abs() < 1e-9);
        let _ = s.fetch(p);
        assert!((s.data_occupancy() - 0.4).abs() < 1e-9, "priority release leaves data share");
        let _ = s.fetch(d);
        assert_eq!(s.data_occupancy(), 0.0);
        assert_eq!(s.occupancy(), 0.0);
    }

    #[test]
    fn insert_fetch_removes_at_zero() {
        let s = ObjectStore::new();
        let id = s.insert(Bytes::from_static(b"abc"), 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.fetch(id).unwrap(), Bytes::from_static(b"abc"));
        assert_eq!(s.len(), 1, "one credit remains");
        assert_eq!(s.fetch(id).unwrap(), Bytes::from_static(b"abc"));
        assert_eq!(s.len(), 0, "entry freed on last fetch");
        assert!(s.fetch(id).is_none());
    }

    #[test]
    fn insert_copies_once_fetches_share() {
        let s = ObjectStore::new();
        let body = Bytes::from(vec![9u8; 1024]);
        let ptr = body.as_ptr();
        let id = s.insert(body, 2);
        let a = s.fetch(id).unwrap();
        let b = s.fetch(id).unwrap();
        assert_ne!(a.as_ptr(), ptr, "insert writes into the (simulated) shared segment");
        assert_eq!(a.as_ptr(), b.as_ptr(), "fetches share the resident buffer");
    }

    #[test]
    fn live_bytes_track_residency() {
        let s = ObjectStore::new();
        let a = s.insert(Bytes::from(vec![0u8; 100]), 1);
        let b = s.insert(Bytes::from(vec![0u8; 50]), 1);
        assert_eq!(s.live_bytes(), 150);
        assert_eq!(s.peak_bytes(), 150);
        s.fetch(a);
        assert_eq!(s.live_bytes(), 50);
        s.fetch(b);
        assert_eq!(s.live_bytes(), 0);
        assert_eq!(s.peak_bytes(), 150, "peak is sticky");
        assert_eq!(s.inserted(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let s = ObjectStore::new();
        let id = s.insert(Bytes::from_static(b"x"), 1);
        assert!(s.peek(id).is_some());
        assert!(s.peek(id).is_some());
        assert!(s.fetch(id).is_some());
        assert!(s.peek(id).is_none());
    }

    #[test]
    fn drop_credit_frees_like_fetch() {
        let s = ObjectStore::new();
        let id = s.insert(Bytes::from(vec![0u8; 64]), 2);
        assert!(s.drop_credit(id));
        assert_eq!(s.len(), 1, "one credit remains");
        assert!(s.drop_credit(id));
        assert!(s.is_empty(), "last credit frees the entry");
        assert_eq!(s.live_bytes(), 0);
        assert!(!s.drop_credit(id), "no double-free");
    }

    #[test]
    fn add_credit_extends_live_entries_only() {
        let s = ObjectStore::new();
        let id = s.insert(Bytes::from(vec![0u8; 16]), 1);
        assert!(s.add_credit(id, 2), "live entry accepts extra credits");
        assert!(s.fetch(id).is_some());
        assert!(s.fetch(id).is_some());
        assert!(s.fetch(id).is_some(), "original + 2 minted credits");
        assert!(s.is_empty(), "last credit frees the entry");
        assert!(!s.add_credit(id, 1), "spent entry cannot be resurrected");
        assert!(s.fetch(id).is_none());
        assert!(!s.add_credit(9999, 1), "unknown id refused");
    }

    #[test]
    #[should_panic(expected = "fanout must be at least 1")]
    fn zero_fanout_rejected() {
        let s = ObjectStore::new();
        s.insert(Bytes::new(), 0);
    }

    #[test]
    fn broadcast_entry_is_freed_after_every_destination_fetches() {
        // Regression test for multi-destination broadcast: an entry inserted
        // with fanout n must hold the segment for exactly n fetches — the
        // n-th fetch frees it, leaving zero live entries and zero live bytes.
        let s = ObjectStore::new();
        let fanout = 5;
        let body = Bytes::from(vec![7u8; 1024]);
        let id = s.insert(body.clone(), fanout);
        for i in 0..fanout {
            assert_eq!(s.live_bytes(), 1024, "entry alive before fetch {i}");
            let got = s.fetch(id).expect("credit available");
            assert_eq!(got, body);
        }
        assert!(s.is_empty(), "all credits spent: entry must be freed");
        assert_eq!(s.len(), 0);
        assert_eq!(s.live_bytes(), 0, "broadcast leak: bytes still live");
        assert!(s.fetch(id).is_none(), "over-fetch must not resurrect");
    }

    #[test]
    fn ids_are_unique_under_concurrency() {
        let s = Arc::new(ObjectStore::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                (0..250).map(|_| s.insert(Bytes::new(), 1)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<ObjectId> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn concurrent_broadcast_fetches_spend_each_credit_once() {
        // All destinations race to fetch the same entry; exactly `fanout`
        // fetches succeed and the entry frees exactly once.
        let s = Arc::new(ObjectStore::new());
        let fanout = 64;
        let id = s.insert(Bytes::from(vec![3u8; 4096]), fanout);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                (0..16).filter(|_| s.fetch(id).is_some()).count()
            }));
        }
        let succeeded: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(succeeded, fanout, "every credit spent exactly once");
        assert!(s.is_empty());
        assert_eq!(s.live_bytes(), 0);
    }

    #[test]
    fn capacity_gate_never_overshoots_under_contention() {
        // Regression test for the check-then-reserve race: with the gate
        // check and the reservation made atomically, the segment can never
        // exceed capacity + one (oversized-alone) body, no matter how many
        // inserters pile onto the gate at once.
        let capacity = 10_000;
        let max_body = 1_900;
        let s = Arc::new(ObjectStore::with_capacity(capacity));
        let mut producers = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            producers.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for i in 0..50usize {
                    let len = 100 + ((t as usize * 131 + i * 977) % (max_body - 100));
                    ids.push((s.insert(Bytes::from(vec![1u8; len]), 1), len));
                }
                ids
            }));
        }
        // Consumer drains whatever appears so producers keep making progress.
        let consumer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut freed = 0usize;
                let mut next = 0u64;
                while freed < 8 * 50 {
                    if s.fetch(next).is_some() {
                        freed += 1;
                        next += 1;
                    } else if next < s.inserted() {
                        // Entry exists but we raced its insertion; retry.
                        std::thread::yield_now();
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        consumer.join().unwrap();
        assert!(s.is_empty());
        assert_eq!(s.live_bytes(), 0);
        assert!(
            s.peak_bytes() <= capacity + max_body,
            "capacity gate overshot: peak {} > {} + {}",
            s.peak_bytes(),
            capacity,
            max_body
        );
    }

    #[test]
    fn oversized_object_admitted_alone() {
        let s = ObjectStore::with_capacity(100);
        // Larger than the whole segment: must not deadlock, admitted alone.
        let id = s.insert(Bytes::from(vec![0u8; 400]), 1);
        assert_eq!(s.live_bytes(), 400);
        assert!(s.fetch(id).is_some());
        assert_eq!(s.live_bytes(), 0);
    }
}
