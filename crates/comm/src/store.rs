//! Shared-memory object store with fan-out reference counts.
//!
//! The paper keeps message bodies "inside the object store implemented via
//! shared memory for zero-copy communication among processes" (§3.2.1). Here
//! the store maps an [`ObjectId`] to a reference-counted [`Bytes`] buffer:
//! fetching clones the `Arc` (O(1), no payload copy), and the entry is freed
//! once every destination of the message has fetched it, so broadcast
//! parameters occupy memory exactly once regardless of explorer count.

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Identifier of a body held in an [`ObjectStore`].
pub type ObjectId = u64;

/// Default shared-memory segment size (the real system sizes its Plasma-style
/// store explicitly; 128 MiB keeps in-flight traffic bounded without stalling
/// realistic workloads).
pub const DEFAULT_CAPACITY: usize = 128 * 1024 * 1024;

#[derive(Debug)]
struct Entry {
    body: Bytes,
    /// How many fetches remain before the entry is dropped.
    remaining: usize,
}

/// A process-shared body store.
///
/// Insertions declare a *fan-out*: the number of destination processes that
/// will fetch the object. [`ObjectStore::fetch`] hands out zero-copy clones
/// and removes the entry on the last fetch, which keeps the store's live size
/// bounded by in-flight traffic ("no significant extra memory overheads",
/// paper §3.2.1).
///
/// Like the real shared-memory segment, the store has a fixed capacity:
/// [`ObjectStore::insert`] blocks until the object fits, back-pressuring
/// aggressive senders instead of growing without bound.
#[derive(Debug)]
pub struct ObjectStore {
    entries: Mutex<HashMap<ObjectId, Entry>>,
    space: Condvar,
    capacity: usize,
    next_id: AtomicU64,
    live_bytes: AtomicUsize,
    peak_bytes: AtomicUsize,
    inserted: AtomicU64,
}

impl Default for ObjectStore {
    fn default() -> Self {
        ObjectStore::with_capacity(DEFAULT_CAPACITY)
    }
}

impl ObjectStore {
    /// Creates an empty store with the default capacity.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Creates an empty store holding at most `capacity` bytes. Objects
    /// larger than the capacity are still admitted (alone) so oversized
    /// messages cannot deadlock the channel.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ObjectStore {
            entries: Mutex::new(HashMap::new()),
            space: Condvar::new(),
            capacity,
            next_id: AtomicU64::new(0),
            live_bytes: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
            inserted: AtomicU64::new(0),
        }
    }

    /// The store's capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `body` to be fetched by `fanout` destinations and returns its id.
    ///
    /// The body is copied once on insertion — this models the producer
    /// writing the serialized message into the shared-memory segment, the one
    /// write the real system performs. Fetches then share that single
    /// resident buffer ([`ObjectStore::fetch`] is O(1)).
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero — an object nobody will fetch would leak.
    pub fn insert(&self, body: Bytes, fanout: usize) -> ObjectId {
        self.insert_inner(body, fanout, true)
    }

    /// Inserts without waiting for capacity (the store may transiently exceed
    /// its limit). Reserved for *control-plane* messages — lifecycle commands
    /// and statistics are tiny and must never be blocked behind data-plane
    /// backpressure, or a wedged consumer could make the deployment
    /// unstoppable.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero.
    pub fn insert_priority(&self, body: Bytes, fanout: usize) -> ObjectId {
        self.insert_inner(body, fanout, false)
    }

    fn insert_inner(&self, body: Bytes, fanout: usize, wait_for_capacity: bool) -> ObjectId {
        assert!(fanout > 0, "fanout must be at least 1");
        let len = body.len();
        // Reserve space first (blocking on the segment's capacity), then pay
        // the write outside the lock.
        {
            let mut entries = self.entries.lock();
            while wait_for_capacity
                && self.live_bytes.load(Ordering::Relaxed) + len > self.capacity
                && !entries.is_empty()
            {
                self.space.wait(&mut entries);
            }
            let live = self.live_bytes.fetch_add(len, Ordering::Relaxed) + len;
            self.peak_bytes.fetch_max(live, Ordering::Relaxed);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let body = Bytes::copy_from_slice(&body);
        self.entries.lock().insert(id, Entry { body, remaining: fanout });
        self.inserted.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Fetches a zero-copy clone of the object, releasing the entry when the
    /// last destination fetches it. Returns `None` for unknown (or already
    /// fully fetched) ids.
    pub fn fetch(&self, id: ObjectId) -> Option<Bytes> {
        let mut entries = self.entries.lock();
        let entry = entries.get_mut(&id)?;
        entry.remaining -= 1;
        let body = entry.body.clone();
        if entry.remaining == 0 {
            entries.remove(&id);
            self.live_bytes.fetch_sub(body.len(), Ordering::Relaxed);
            self.space.notify_all();
        }
        Some(body)
    }

    /// Reads the object without consuming a fetch credit. Used by routers that
    /// forward a body to a remote machine while local destinations still hold
    /// credits.
    pub fn peek(&self, id: ObjectId) -> Option<Bytes> {
        self.entries.lock().get(&id).map(|e| e.body.clone())
    }

    /// Number of objects currently resident.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when no objects are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Bytes currently resident.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of resident bytes since creation.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    /// Total number of objects ever inserted.
    pub fn inserted(&self) -> u64 {
        self.inserted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_fetch_removes_at_zero() {
        let s = ObjectStore::new();
        let id = s.insert(Bytes::from_static(b"abc"), 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.fetch(id).unwrap(), Bytes::from_static(b"abc"));
        assert_eq!(s.len(), 1, "one credit remains");
        assert_eq!(s.fetch(id).unwrap(), Bytes::from_static(b"abc"));
        assert_eq!(s.len(), 0, "entry freed on last fetch");
        assert!(s.fetch(id).is_none());
    }

    #[test]
    fn insert_copies_once_fetches_share() {
        let s = ObjectStore::new();
        let body = Bytes::from(vec![9u8; 1024]);
        let ptr = body.as_ptr();
        let id = s.insert(body, 2);
        let a = s.fetch(id).unwrap();
        let b = s.fetch(id).unwrap();
        assert_ne!(a.as_ptr(), ptr, "insert writes into the (simulated) shared segment");
        assert_eq!(a.as_ptr(), b.as_ptr(), "fetches share the resident buffer");
    }

    #[test]
    fn live_bytes_track_residency() {
        let s = ObjectStore::new();
        let a = s.insert(Bytes::from(vec![0u8; 100]), 1);
        let b = s.insert(Bytes::from(vec![0u8; 50]), 1);
        assert_eq!(s.live_bytes(), 150);
        assert_eq!(s.peak_bytes(), 150);
        s.fetch(a);
        assert_eq!(s.live_bytes(), 50);
        s.fetch(b);
        assert_eq!(s.live_bytes(), 0);
        assert_eq!(s.peak_bytes(), 150, "peak is sticky");
        assert_eq!(s.inserted(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let s = ObjectStore::new();
        let id = s.insert(Bytes::from_static(b"x"), 1);
        assert!(s.peek(id).is_some());
        assert!(s.peek(id).is_some());
        assert!(s.fetch(id).is_some());
        assert!(s.peek(id).is_none());
    }

    #[test]
    #[should_panic(expected = "fanout must be at least 1")]
    fn zero_fanout_rejected() {
        let s = ObjectStore::new();
        s.insert(Bytes::new(), 0);
    }

    #[test]
    fn broadcast_entry_is_freed_after_every_destination_fetches() {
        // Regression test for multi-destination broadcast: an entry inserted
        // with fanout n must hold the segment for exactly n fetches — the
        // n-th fetch frees it, leaving zero live entries and zero live bytes.
        let s = ObjectStore::new();
        let fanout = 5;
        let body = Bytes::from(vec![7u8; 1024]);
        let id = s.insert(body.clone(), fanout);
        for i in 0..fanout {
            assert_eq!(s.live_bytes(), 1024, "entry alive before fetch {i}");
            let got = s.fetch(id).expect("credit available");
            assert_eq!(got, body);
        }
        assert!(s.is_empty(), "all credits spent: entry must be freed");
        assert_eq!(s.len(), 0);
        assert_eq!(s.live_bytes(), 0, "broadcast leak: bytes still live");
        assert!(s.fetch(id).is_none(), "over-fetch must not resurrect");
    }

    #[test]
    fn ids_are_unique_under_concurrency() {
        let s = std::sync::Arc::new(ObjectStore::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                (0..250).map(|_| s.insert(Bytes::new(), 1)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<ObjectId> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000);
    }
}
