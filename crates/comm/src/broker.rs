//! The broker process: object store, communicator queue, router thread, and
//! the inter-machine fabric.
//!
//! One [`Broker`] runs per machine. Explorer and learner processes obtain an
//! [`Endpoint`] from their machine's broker; endpoints on
//! different machines communicate once their brokers are connected with
//! [`connect_brokers`] (the "fabric among brokers in different machines" of
//! paper §3.2.2).
//!
//! # Control-plane fast path
//!
//! [`Broker::submit`] is lock-free: it resolves the destination split from a
//! routing snapshot, inserts the body into the sharded store, and enqueues a
//! [`RouterCmd`] on a channel sender it holds directly — no per-message mutex
//! anywhere on the submit path. Shutdown is signalled with an explicit
//! [`RouterCmd::Shutdown`] sentinel instead of tearing the sender out from
//! under concurrent submitters.

use crate::endpoint::Endpoint;
use crate::inject::{run_delay_line, InjectionStats, RouteInjector};
use crate::router::{
    deliver_local, run_router, shard_for, Delivery, RemoteEnvelope, RouterCmd, RoutingTable,
    SplitPlan,
};
use crate::store::ObjectStore;
use crate::{CommConfig, Compression, HeartbeatConfig};
use crossbeam_channel::{unbounded, Sender};
use netsim::{Cluster, MachineId};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use xingtian_message::{Body, CompressionKind, Header, Message, ProcessId};
use xt_telemetry::{EventKind, Telemetry};

/// A large body handed to the broker's compression offload thread: the
/// sender thread returns the moment this is enqueued, so one 40 MB parameter
/// blob no longer head-of-line blocks every message queued behind it. The
/// split plan was computed at submission, so offloaded messages spend the
/// same credits they were admitted with.
#[derive(Debug)]
struct OffloadJob {
    header: Header,
    body: Body,
    plan: SplitPlan,
}

#[derive(Debug)]
pub(crate) struct BrokerShared {
    pub(crate) machine: MachineId,
    pub(crate) cluster: Cluster,
    pub(crate) config: CommConfig,
    pub(crate) store: Arc<ObjectStore>,
    pub(crate) table: Arc<RoutingTable>,
    pub(crate) telemetry: Telemetry,
    /// One command sender per router shard, held directly (not behind a
    /// mutex): `submit` hashes the destination to a shard and sends
    /// lock-free; shutdown sends every shard the `RouterCmd::Shutdown`
    /// sentinel instead of tearing senders out from under submitters.
    router_txs: Vec<Sender<RouterCmd>>,
    /// Broker-wide routing backlog: deliveries submitted but not yet taken
    /// off a shard queue. Observable back-pressure before it becomes drops.
    queue_depth: xt_telemetry::GaugeHandle,
    /// Set first thing in `shutdown`; `submit` refuses new messages once set.
    closed: AtomicBool,
    offload_tx: Mutex<Option<Sender<OffloadJob>>>,
    uplinks: Arc<Mutex<HashMap<MachineId, Sender<Vec<RemoteEnvelope>>>>>,
    /// Routing tables of connected peer brokers, so routes registered after
    /// the fabric exists still propagate (holding tables, not peer `Broker`s,
    /// avoids reference cycles between mutually-connected brokers).
    peers: Mutex<HashMap<MachineId, Arc<RoutingTable>>>,
    /// Bytes entering the store per [`CompressionKind`], indexed by
    /// discriminant. Pre-created handles so `submit` never touches the
    /// metrics registry lock.
    wire_bytes: [xt_telemetry::CounterHandle; CompressionKind::ALL.len()],
    /// Stored size of every `Parameters` broadcast body — the direct
    /// observable for the parameter plane's savings.
    broadcast_bytes: xt_telemetry::HistogramHandle,
    router_threads: Mutex<Vec<JoinHandle<()>>>,
    offload_thread: Mutex<Option<JoinHandle<()>>>,
    /// Delay-line thread, spawned lazily by the first [`Broker::set_injector`].
    delay_thread: Mutex<Option<JoinHandle<()>>>,
    /// Uplink forwarder threads (populated by [`connect_brokers`]).
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// Pieces of a peer broker an uplink thread needs to deliver remotely-received
/// messages. Holding these (rather than the peer `Broker` itself) avoids
/// reference cycles between mutually-connected brokers.
#[derive(Debug, Clone)]
struct RemoteDelivery {
    store: Arc<ObjectStore>,
    table: Arc<RoutingTable>,
}

/// A per-machine communication hub.
///
/// Cloning a `Broker` is cheap and shares the underlying state.
#[derive(Debug, Clone)]
pub struct Broker {
    shared: Arc<BrokerShared>,
}

impl Broker {
    /// Creates a broker for `machine` of `cluster` and starts its router thread.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range for `cluster`.
    pub fn new(machine: MachineId, cluster: Cluster, config: CommConfig) -> Self {
        Broker::with_telemetry(machine, cluster, config, Telemetry::disabled())
    }

    /// Creates a broker whose channel stages report lifecycle events and
    /// metrics into `telemetry`. Pass the *same* (cloned) handle to every
    /// broker of a deployment so cross-machine spans assemble into one trace;
    /// for clusters, stamp the handle from the cluster clock
    /// (`Telemetry::with_time_source(cap, cluster.time_source())`) so event
    /// timestamps and NIC transfer receipts share a timeline.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range for `cluster`.
    pub fn with_telemetry(
        machine: MachineId,
        cluster: Cluster,
        config: CommConfig,
        telemetry: Telemetry,
    ) -> Self {
        assert!(machine < cluster.len(), "machine {machine} out of range");
        let shards = config.router_shards.max(1);
        let store = Arc::new(ObjectStore::with_capacity(
            config.store_capacity.unwrap_or(crate::store::DEFAULT_CAPACITY),
        ));
        let table = Arc::new(RoutingTable::default());
        let uplinks: Arc<Mutex<HashMap<MachineId, Sender<Vec<RemoteEnvelope>>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let queue_depth = telemetry.gauge("comm.router_queue_depth");
        // One router thread per shard, each draining its own command queue in
        // bursts. All shards share the routing table, store, and uplink map
        // (each still groups remote envelopes per machine per burst), so the
        // only thing sharding changes is which thread a delivery drains on.
        let mut router_txs = Vec::with_capacity(shards);
        let mut router_threads = Vec::with_capacity(shards);
        for s in 0..shards {
            let (comm_tx, comm_rx) = unbounded();
            router_txs.push(comm_tx);
            let store = Arc::clone(&store);
            let table = Arc::clone(&table);
            let uplinks = Arc::clone(&uplinks);
            let telemetry = telemetry.clone();
            let queue_depth = queue_depth.clone();
            let handle = std::thread::Builder::new()
                .name(format!("xt-router-m{machine}-s{s}"))
                .spawn(move || run_router(s, comm_rx, store, table, uplinks, telemetry, queue_depth))
                .expect("spawn router thread");
            router_threads.push(handle);
        }
        // Compression offload thread: large bodies are chunk-compressed here
        // (fanning across the shared worker pool) instead of inside the
        // sender thread that submitted them. It holds its own `comm_tx`
        // clone; shutdown closes the offload queue and joins this thread
        // before sending the router its shutdown sentinel, so every offloaded
        // message still reaches the router.
        let (offload_tx, offload_rx) = unbounded::<OffloadJob>();
        let wire_bytes = CompressionKind::ALL
            .map(|k| telemetry.counter(&format!("comm.bytes_on_wire.{}", k.name())));
        let broadcast_bytes = telemetry.histogram("comm.broadcast_bytes");
        let offload = {
            let store = Arc::clone(&store);
            let router_txs = router_txs.clone();
            let queue_depth = queue_depth.clone();
            let telemetry = telemetry.clone();
            let wire_bytes = wire_bytes.clone();
            let broadcast_bytes = broadcast_bytes.clone();
            std::thread::Builder::new()
                .name(format!("xt-compress-m{machine}"))
                .spawn(move || {
                    let compress_ns = telemetry.histogram("comm.compress_ns");
                    let compress_ratio = telemetry.histogram("comm.compress_ratio");
                    let pool = crate::pool::shared_pool();
                    while let Ok(OffloadJob { mut header, body, plan }) = offload_rx.recv() {
                        let raw_len = body.len();
                        let start = std::time::Instant::now();
                        let container = crate::pool::compress_chunked_parallel(pool, &body);
                        compress_ns.record_duration(start.elapsed());
                        let body = if container.len() < raw_len {
                            header.compression = CompressionKind::Lz4Chunked;
                            Body::from(container)
                        } else {
                            body
                        };
                        // Stored-vs-raw size in percent (100 = incompressible).
                        compress_ratio.record((body.len() * 100 / raw_len.max(1)) as u64);
                        let stored_len = body.len() as u64;
                        wire_bytes[header.compression.discriminant() as usize].add(stored_len);
                        if header.kind == xingtian_message::MessageKind::Parameters {
                            broadcast_bytes.record(stored_len);
                        }
                        header.object_id = Some(store.insert(body, plan.fanout()));
                        telemetry.emit(EventKind::StoreInserted, header.id, stored_len);
                        // Same shard choice as `submit`: hash of the original
                        // destination list, so an offloaded message stays
                        // FIFO with same-path messages for its destination.
                        let shard = shard_for(&header.dst, router_txs.len());
                        let delivery = Delivery {
                            header: Arc::new(header),
                            local: plan.local,
                            remote: plan.remote,
                        };
                        queue_depth.add(1);
                        if router_txs[shard].send(RouterCmd::Deliver(delivery)).is_err() {
                            queue_depth.add(-1);
                            break; // router gone: broker is shutting down
                        }
                    }
                })
                .expect("spawn compression offload thread")
        };
        Broker {
            shared: Arc::new(BrokerShared {
                machine,
                cluster,
                config,
                store,
                table,
                telemetry,
                router_txs,
                queue_depth,
                closed: AtomicBool::new(false),
                wire_bytes,
                broadcast_bytes,
                offload_tx: Mutex::new(Some(offload_tx)),
                uplinks,
                peers: Mutex::new(HashMap::new()),
                router_threads: Mutex::new(router_threads),
                offload_thread: Mutex::new(Some(offload)),
                delay_thread: Mutex::new(None),
                threads: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The telemetry handle this broker reports into (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// The machine this broker runs on.
    pub fn machine(&self) -> MachineId {
        self.shared.machine
    }

    /// The simulated cluster this broker belongs to.
    pub fn cluster(&self) -> &Cluster {
        &self.shared.cluster
    }

    /// The broker's shared-memory object store (exposed for inspection in
    /// tests and memory-overhead experiments).
    pub fn store(&self) -> &ObjectStore {
        &self.shared.store
    }

    /// Messages dropped by the router (unknown destination or closed queue).
    pub fn dropped(&self) -> u64 {
        self.shared.table.dropped()
    }

    /// Messages discarded because their destination had already deregistered
    /// (graceful exit or elastic retirement): credits settled, nothing
    /// leaked, not a routing failure.
    pub fn departed_discards(&self) -> u64 {
        self.shared.table.departed_discards()
    }


    /// Installs (or replaces) the fault-injection policy consulted on every
    /// final-hop delivery of this broker — local destinations of local
    /// senders plus remote messages arriving for this machine. Lazily starts
    /// the broker's delay-line thread, which executes
    /// [`crate::inject::InjectDecision::Delay`] verdicts off the router
    /// thread.
    pub fn set_injector(&self, injector: Arc<dyn RouteInjector>) {
        {
            let mut delay_thread = self.shared.delay_thread.lock();
            if delay_thread.is_none() {
                let (tx, rx) = unbounded();
                *self.shared.table.delay_tx.lock() = Some(tx);
                let store = Arc::clone(&self.shared.store);
                let table = Arc::clone(&self.shared.table);
                let machine = self.shared.machine;
                let handle = std::thread::Builder::new()
                    .name(format!("xt-delay-m{machine}"))
                    .spawn(move || run_delay_line(rx, store, table))
                    .expect("spawn delay-line thread");
                *delay_thread = Some(handle);
            }
        }
        self.shared.table.injector.update(|_| (Some(Arc::clone(&injector)), ()));
    }

    /// Tallies of injected faults executed by this broker.
    pub fn injection_stats(&self) -> InjectionStats {
        self.shared.table.injection_stats()
    }

    /// Registers that `pid` lives on `machine`, propagating the route to
    /// every connected peer broker so endpoints registered *after*
    /// [`connect_brokers`] are immediately reachable from other machines.
    /// Called automatically by [`Broker::endpoint`] for local processes and
    /// by [`connect_brokers`] when fabrics are established.
    pub fn register_route(&self, pid: ProcessId, machine: MachineId) {
        self.shared.table.add_route(pid, machine);
        for peer in self.shared.peers.lock().values() {
            peer.add_route(pid, machine);
        }
    }

    /// Creates the communication endpoint for local process `pid`: its ID
    /// queue, buffers, and sender/receiver monitoring threads.
    ///
    /// # Panics
    ///
    /// Panics if `pid` already has an endpoint on this broker.
    pub fn endpoint(&self, pid: ProcessId) -> Endpoint {
        let (id_tx, id_rx) = unbounded();
        assert!(
            self.shared.table.add_id_queue(pid, id_tx),
            "endpoint for {pid} already exists"
        );
        self.register_route(pid, self.shared.machine);
        Endpoint::spawn(pid, self.clone(), id_rx)
    }

    /// Removes the ID queue of `pid`; its receiver thread is woken with a
    /// close sentinel and exits.
    pub(crate) fn remove_endpoint(&self, pid: ProcessId) {
        self.shared.table.remove_id_queue(pid);
    }

    /// Force-closes the endpoint of local process `pid` from the broker side:
    /// its ID queue is removed, the receiver thread drains (settling store
    /// credits of undelivered messages) and closes the receive buffer on its
    /// way out, so a workhorse blocked in `recv`/`recv_timeout` observes the
    /// closure promptly. Used by supervision to tear down the channel half of
    /// a process that is gone or wedged. Safe to call for pids with no
    /// endpoint (no-op).
    pub fn close_endpoint(&self, pid: ProcessId) {
        self.shared.table.remove_id_queue(pid);
    }

    /// Accepts a message from a local sender thread: splits its destinations
    /// against the routing snapshot (once — the router reuses the plan),
    /// compresses the body per config, stores it with the correct fan-out,
    /// and enqueues the delivery for the router. Returns `false` if the
    /// broker is shut down or the message has no routable destination.
    ///
    /// Bodies above the compression threshold are handed to the broker's
    /// offload thread and compressed there (chunk-parallel), so this returns
    /// as soon as the job is enqueued — the calling sender thread is never
    /// blocked behind a multi-MB compression. Messages that take the offload
    /// path may be stored after smaller messages submitted later; per-sender
    /// FIFO is preserved among same-path messages.
    pub fn submit(&self, msg: Message) -> bool {
        if self.shared.closed.load(Ordering::Acquire) {
            return false;
        }
        let Message { mut header, body } = msg;
        let plan = self.shared.table.split(self.shared.machine, &header.dst);
        self.shared.table.add_dropped(plan.unknown as u64);
        if plan.fanout() == 0 {
            return false;
        }
        // Pre-encoded bodies (parameter-plane frames) carry their kind in the
        // header already: re-compressing a delta/quantized frame would only
        // burn CPU on near-incompressible bytes, so only kind-`None` bodies
        // are eligible for the transport-compression offload.
        if header.compression == CompressionKind::None {
            if let Compression::Threshold(t) = self.shared.config.compression {
                if body.len() > t {
                    let guard = self.shared.offload_tx.lock();
                    return match guard.as_ref() {
                        Some(tx) => tx.send(OffloadJob { header, body, plan }).is_ok(),
                        None => false,
                    };
                }
            }
        }
        // Control-plane traffic (lifecycle commands, statistics) bypasses the
        // segment's capacity gate: it must flow even when the data plane is
        // fully back-pressured, or a stalled learner could never be shut down.
        // ParamAcks ride the priority lane too: delta-base bookkeeping going
        // stale behind a backed-up data plane would force full-f32 fallbacks
        // exactly when the wire is busiest. So do Parameters themselves: the
        // learner is the data plane's drain, and a learner blocked admitting
        // its own broadcast into a rollout-saturated store can never fetch
        // again — a self-deadlock where capacity waits on the only process
        // that frees capacity. Their in-flight volume is bounded by the
        // learner's own training pace, not by explorer fan-in, so the bypass
        // cannot run away. Inference traffic (InferRequest/InferReply) is
        // latency-SLO bound: a millisecond-budget query must never queue
        // behind a back-pressured rollout stream, and serving replicas bound
        // their own admission with explicit sheds, so the lane stays finite.
        let stored_len = body.len() as u64;
        self.shared.wire_bytes[header.compression.discriminant() as usize].add(stored_len);
        if header.kind == xingtian_message::MessageKind::Parameters {
            self.shared.broadcast_bytes.record(stored_len);
        }
        let object_id = match header.kind {
            xingtian_message::MessageKind::Control
            | xingtian_message::MessageKind::Stats
            | xingtian_message::MessageKind::Heartbeat
            | xingtian_message::MessageKind::SampleRequest
            | xingtian_message::MessageKind::ReplayNotice
            | xingtian_message::MessageKind::ParamAck
            | xingtian_message::MessageKind::Parameters
            | xingtian_message::MessageKind::InferRequest
            | xingtian_message::MessageKind::InferReply => {
                self.shared.store.insert_priority(body, plan.fanout())
            }
            _ => self.shared.store.insert(body, plan.fanout()),
        };
        header.object_id = Some(object_id);
        self.shared.telemetry.emit(EventKind::StoreInserted, header.id, stored_len);
        let shard = shard_for(&header.dst, self.shared.router_txs.len());
        let delivery =
            Delivery { header: Arc::new(header), local: plan.local, remote: plan.remote };
        self.shared.queue_depth.add(1);
        let sent = self.shared.router_txs[shard].send(RouterCmd::Deliver(delivery)).is_ok();
        if !sent {
            self.shared.queue_depth.add(-1);
        }
        sent
    }

    /// Number of router shards this broker runs.
    pub fn router_shards(&self) -> usize {
        self.shared.router_txs.len()
    }

    /// Deliveries submitted but not yet drained by a router shard (0 when
    /// telemetry is disabled). The `comm.router_queue_depth` gauge.
    pub fn router_queue_depth(&self) -> i64 {
        self.shared.queue_depth.get()
    }

    pub(crate) fn store_arc(&self) -> Arc<ObjectStore> {
        Arc::clone(&self.shared.store)
    }

    pub(crate) fn endpoint_recv_capacity(&self) -> Option<usize> {
        self.shared.config.endpoint_recv_capacity
    }

    pub(crate) fn heartbeat_config(&self) -> Option<HeartbeatConfig> {
        self.shared.config.heartbeat
    }

    pub(crate) fn track_thread(&self, handle: JoinHandle<()>) {
        self.shared.threads.lock().push(handle);
    }

    /// Shuts the broker down: closes the offload queue and joins the offload
    /// thread, sends *every* router shard its drain-then-exit sentinel and
    /// joins them all, then closes all uplinks and joins the uplink threads.
    /// In-flight messages already routed to ID queues remain fetchable by
    /// receivers. Idempotent.
    pub fn shutdown(&self) {
        self.shared.closed.store(true, Ordering::Release);
        // Offload first: it feeds the routers, and joining it guarantees every
        // offloaded delivery precedes the shutdown sentinels in the queues.
        self.shared.offload_tx.lock().take();
        if let Some(h) = self.shared.offload_thread.lock().take() {
            let _ = h.join();
        }
        // Symmetric drain: each shard gets its own sentinel and drains its own
        // queue before exiting. Sentinels go out to all shards before any
        // join so the shards drain concurrently, and a message submitted to a
        // non-zero shard can never be stranded behind a shard-0-only close.
        for tx in &self.shared.router_txs {
            let _ = tx.send(RouterCmd::Shutdown);
        }
        let routers: Vec<_> = self.shared.router_threads.lock().drain(..).collect();
        for h in routers {
            let _ = h.join();
        }
        // Delay line after the router: the router is the only local producer
        // of delayed deliveries. Taking the sender disconnects the thread,
        // which flushes everything still parked before exiting (no stranded
        // store credits). Uplink threads that outlive it fall back to
        // immediate delivery.
        self.shared.table.delay_tx.lock().take();
        if let Some(h) = self.shared.delay_thread.lock().take() {
            let _ = h.join();
        }
        // Dropping the uplink senders disconnects the forwarder threads.
        self.shared.uplinks.lock().clear();
        let threads: Vec<_> = self.shared.threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

/// Caps on one coalesced uplink wire batch. The byte cap bounds the worst-
/// case link occupancy of a single transfer (a degraded link multiplies its
/// duration, and the whole batch rides one receipt); the envelope cap bounds
/// far-side delivery burstiness when bodies are tiny.
const UPLINK_COALESCE_BYTES: usize = 32 * 1024;
const UPLINK_COALESCE_ENVELOPES: usize = 256;

/// Connects a set of brokers (one per machine) into a fully-connected fabric
/// and synchronizes their routing tables. Brokers remember their peers, so
/// endpoints registered *after* this call propagate their routes to every
/// connected machine automatically (no reconnection required).
///
/// For every ordered pair `(a, b)` an uplink thread is started on `a` that
/// forwards bursts of [`RemoteEnvelope`]s over the simulated NIC link and
/// delivers them into `b`'s object store and ID queues.
///
/// # Panics
///
/// Panics if two brokers claim the same machine.
pub fn connect_brokers(brokers: &[Broker]) {
    // Merge routing tables: every broker learns every process location.
    let mut merged: HashMap<ProcessId, MachineId> = HashMap::new();
    for b in brokers {
        for (&pid, &m) in b.shared.table.routes.load().iter() {
            merged.insert(pid, m);
        }
    }
    for b in brokers {
        b.shared.table.add_routes(&merged);
    }
    // Remember peers so later route registrations propagate.
    for a in brokers {
        let mut peers = a.shared.peers.lock();
        for b in brokers {
            if a.shared.machine != b.shared.machine {
                peers.insert(b.shared.machine, Arc::clone(&b.shared.table));
            }
        }
    }
    // Build uplinks for every ordered pair.
    for a in brokers {
        for b in brokers {
            if a.shared.machine == b.shared.machine {
                assert!(
                    Arc::ptr_eq(&a.shared, &b.shared),
                    "two brokers claim machine {}",
                    a.shared.machine
                );
                continue;
            }
            if a.shared.uplinks.lock().contains_key(&b.shared.machine) {
                continue;
            }
            let (tx, rx) = unbounded::<Vec<RemoteEnvelope>>();
            a.shared.uplinks.lock().insert(b.shared.machine, tx);
            let cluster = a.shared.cluster.clone();
            let from = a.shared.machine;
            let to = b.shared.machine;
            let delivery = RemoteDelivery {
                store: Arc::clone(&b.shared.store),
                table: Arc::clone(&b.shared.table),
            };
            let telemetry = a.shared.telemetry.clone();
            let uplink_bytes = telemetry.counter("comm.uplink_bytes");
            let link_drops = telemetry.counter("comm.link_drops");
            let src_table = Arc::clone(&a.shared.table);
            let handle = std::thread::Builder::new()
                .name(format!("xt-uplink-m{from}-m{to}"))
                .spawn(move || {
                    // Coalesce queued envelopes into bounded wire batches so
                    // the per-transfer link latency is amortized across the
                    // backlog instead of paid once per envelope — a
                    // latency-bound uplink otherwise drains a congestion
                    // backlog slower than the fleet refills it.
                    let mut pending: VecDeque<RemoteEnvelope> = VecDeque::new();
                    loop {
                        if pending.is_empty() {
                            match rx.recv() {
                                Ok(burst) => pending.extend(burst),
                                Err(_) => break,
                            }
                        }
                        while let Ok(burst) = rx.try_recv() {
                            pending.extend(burst);
                            if pending.len() >= UPLINK_COALESCE_ENVELOPES {
                                break;
                            }
                        }
                        // Take one wire batch off the front: always at least
                        // one envelope, then more while under both caps.
                        let mut batch: Vec<RemoteEnvelope> = Vec::new();
                        let mut bytes = 0usize;
                        while let Some(e) = pending.front() {
                            if !batch.is_empty()
                                && (bytes + e.body.len() > UPLINK_COALESCE_BYTES
                                    || batch.len() >= UPLINK_COALESCE_ENVELOPES)
                            {
                                break;
                            }
                            bytes += e.body.len();
                            batch.push(pending.pop_front().expect("front checked"));
                        }
                        // Pay the NIC cost once for the whole batch; each body
                        // then re-enters the normal local delivery path on the
                        // far side. A partitioned link loses the batch on the
                        // wire: the machine's store credits were already spent
                        // by the router's fetches, so nothing leaks — every
                        // destination behind the severed link counts as
                        // dropped.
                        let receipt = match cluster.transfer_checked(from, to, bytes) {
                            Ok(r) => r,
                            Err(_down) => {
                                let n_dst: u64 =
                                    batch.iter().map(|e| e.dst.len() as u64).sum();
                                src_table.add_dropped(n_dst);
                                link_drops.add(batch.len() as u64);
                                continue;
                            }
                        };
                        uplink_bytes.add(bytes as u64);
                        for envelope in batch {
                            // The receipt's endpoints are cluster-clock nanos;
                            // with_telemetry documents that telemetry for a
                            // cluster deployment is stamped from that same
                            // clock. Coalesced envelopes share the batch's
                            // wire window.
                            let id = envelope.header.id;
                            telemetry.emit_at(
                                EventKind::NicTxStart,
                                id,
                                envelope.body.len() as u64,
                                receipt.start_nanos,
                            );
                            telemetry.emit_at(EventKind::NicTxEnd, id, to as u64, receipt.end_nanos);
                            deliver_local(
                                &delivery.store,
                                &delivery.table,
                                envelope.header,
                                envelope.body,
                                &envelope.dst,
                            );
                        }
                    }
                })
                .expect("spawn uplink thread");
            a.track_thread(handle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use xingtian_message::MessageKind;

    fn rollout_msg(body: &'static [u8]) -> Message {
        let h = Header::new(ProcessId::explorer(0), vec![ProcessId::learner(0)], MessageKind::Rollout);
        Message::new(h, Bytes::from_static(body))
    }

    #[test]
    fn submit_without_destination_is_rejected() {
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        assert!(!broker.submit(rollout_msg(b"data")), "no learner endpoint registered");
        assert_eq!(broker.dropped(), 1, "unroutable destination is accounted");
        assert!(broker.store().is_empty(), "nothing stored for an unroutable message");
        broker.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        let _learner = broker.endpoint(ProcessId::learner(0));
        broker.shutdown();
        assert!(!broker.submit(rollout_msg(b"late")), "closed broker refuses messages");
    }

    #[test]
    fn local_delivery_end_to_end() {
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        let explorer = broker.endpoint(ProcessId::explorer(0));
        let learner = broker.endpoint(ProcessId::learner(0));
        explorer.send(rollout_msg(b"hello"));
        let got = learner.recv().expect("message delivered");
        assert_eq!(&got.body[..], b"hello");
        assert_eq!(got.header.src, ProcessId::explorer(0));
        drop(explorer);
        drop(learner);
        broker.shutdown();
        assert_eq!(broker.dropped(), 0);
    }

    #[test]
    fn broadcast_reaches_every_destination_once() {
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        let learner = broker.endpoint(ProcessId::learner(0));
        let explorers: Vec<_> = (0..4).map(|i| broker.endpoint(ProcessId::explorer(i))).collect();
        let h = Header::new(
            ProcessId::learner(0),
            (0..4).map(ProcessId::explorer).collect::<Vec<_>>(),
            MessageKind::Parameters,
        );
        learner.send(Message::new(h, Bytes::from_static(b"weights")));
        for e in &explorers {
            let m = e.recv().expect("broadcast delivered");
            assert_eq!(&m.body[..], b"weights");
            assert!(e.try_recv().is_none(), "exactly one copy per destination");
        }
        // All fan-out credits consumed: the store must be empty again.
        assert!(broker.store().is_empty());
        broker.shutdown();
    }

    #[test]
    fn duplicate_endpoint_panics() {
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        let _a = broker.endpoint(ProcessId::explorer(0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            broker.endpoint(ProcessId::explorer(0))
        }));
        assert!(result.is_err());
        broker.shutdown();
    }

    #[test]
    fn cross_machine_delivery() {
        let cluster = Cluster::new(
            netsim::ClusterSpec::default().machines(2).nic_bandwidth(1e9).latency_secs(0.0),
        );
        let b0 = Broker::new(0, cluster.clone(), CommConfig::default());
        let b1 = Broker::new(1, cluster, CommConfig::default());
        let explorer = b0.endpoint(ProcessId::explorer(0));
        let learner = b1.endpoint(ProcessId::learner(0));
        connect_brokers(&[b0.clone(), b1.clone()]);
        explorer.send(rollout_msg(b"across the wire"));
        let got = learner.recv().expect("remote delivery");
        assert_eq!(&got.body[..], b"across the wire");
        // The body crossed the simulated NIC exactly once.
        assert_eq!(b0.cluster().machine(0).tx().stats().transfers(), 1);
        drop(explorer);
        drop(learner);
        b0.shutdown();
        b1.shutdown();
    }

    #[test]
    fn endpoint_registered_after_connect_is_reachable() {
        // Regression test for silent route loss: an endpoint created *after*
        // connect_brokers must have its route propagated to peer brokers
        // without re-running connect_brokers.
        let cluster = Cluster::new(
            netsim::ClusterSpec::default().machines(2).nic_bandwidth(1e9).latency_secs(0.0),
        );
        let b0 = Broker::new(0, cluster.clone(), CommConfig::default());
        let b1 = Broker::new(1, cluster, CommConfig::default());
        connect_brokers(&[b0.clone(), b1.clone()]);
        // Both endpoints join after the fabric exists.
        let explorer = b0.endpoint(ProcessId::explorer(0));
        let learner = b1.endpoint(ProcessId::learner(0));
        explorer.send(rollout_msg(b"late joiner"));
        let got = learner.recv_timeout(std::time::Duration::from_secs(10)).expect(
            "post-connect endpoint must be routable from peer machines",
        );
        assert_eq!(&got.body[..], b"late joiner");
        assert_eq!(b0.dropped(), 0);
        assert_eq!(b1.dropped(), 0);
        drop(explorer);
        drop(learner);
        b0.shutdown();
        b1.shutdown();
    }

    #[test]
    fn cross_machine_delivery_records_full_telemetry_lifecycle() {
        let cluster = Cluster::new(
            netsim::ClusterSpec::default().machines(2).nic_bandwidth(1e9).latency_secs(0.0),
        );
        // One handle for the whole deployment, stamped from the cluster
        // clock so NicTx receipts share the event timeline.
        let telemetry = Telemetry::with_time_source(1 << 10, cluster.time_source());
        let b0 = Broker::with_telemetry(0, cluster.clone(), CommConfig::default(), telemetry.clone());
        let b1 = Broker::with_telemetry(1, cluster, CommConfig::default(), telemetry.clone());
        let explorer = b0.endpoint(ProcessId::explorer(0));
        let learner = b1.endpoint(ProcessId::learner(0));
        connect_brokers(&[b0.clone(), b1.clone()]);
        explorer.send(rollout_msg(b"traced"));
        let got = learner.recv().expect("remote delivery");
        let spans = telemetry.spans();
        let span = spans.iter().find(|s| s.msg_id == got.header.id).expect("span for message");
        assert!(span.is_complete(), "all stages recorded: {span:?}");
        assert!(span.nic_nanos.is_some(), "NIC hop recorded: {span:?}");
        let kinds: Vec<EventKind> = span.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::SendEnqueued,
                EventKind::StoreInserted,
                EventKind::Routed,
                EventKind::NicTxStart,
                EventKind::NicTxEnd,
                EventKind::Fetched,
                EventKind::Consumed,
            ],
        );
        assert_eq!(telemetry.counter("comm.routed_messages").get(), 1);
        assert_eq!(telemetry.counter("comm.uplink_bytes").get(), 6);
        drop(explorer);
        drop(learner);
        b0.shutdown();
        b1.shutdown();
    }

    #[test]
    fn sharded_router_delivers_end_to_end() {
        let broker =
            Broker::new(0, Cluster::single(), CommConfig::default().with_router_shards(4));
        assert_eq!(broker.router_shards(), 4);
        let eps: Vec<_> = (0..16).map(|i| broker.endpoint(ProcessId::explorer(i))).collect();
        let sender = broker.endpoint(ProcessId::learner(0));
        for i in 0..16u32 {
            let h = Header::new(
                ProcessId::learner(0),
                vec![ProcessId::explorer(i)],
                MessageKind::Dummy,
            );
            sender.send(Message::new(h, Bytes::from(vec![i as u8])));
        }
        for (i, e) in eps.iter().enumerate() {
            let m = e.recv().expect("delivered through some shard");
            assert_eq!(&m.body[..], &[i as u8]);
        }
        drop(eps);
        drop(sender);
        broker.shutdown();
        assert_eq!(broker.dropped(), 0);
        assert!(broker.store().is_empty());
    }

    #[test]
    fn shutdown_drains_every_router_shard_symmetrically() {
        // Regression: a message submitted to a *non-zero* shard immediately
        // before shutdown must still be delivered (and its store credit
        // settled) — the drain has to close all shard queues, not just one.
        let broker =
            Broker::new(0, Cluster::single(), CommConfig::default().with_router_shards(4));
        let n = 64u32;
        let eps: Vec<_> = (0..n).map(|i| broker.endpoint(ProcessId::explorer(i))).collect();
        let mut shard_hit = [false; 4];
        for i in 0..n {
            let dst = vec![ProcessId::explorer(i)];
            shard_hit[shard_for(&dst, 4)] = true;
            let h = Header::new(ProcessId::learner(0), dst, MessageKind::Dummy);
            // Submit directly (no sender thread) so the deliveries are
            // guaranteed to be in shard queues when shutdown lands.
            assert!(broker.submit(Message::new(h, Bytes::from(vec![i as u8]))));
        }
        assert!(shard_hit.iter().all(|&h| h), "test must exercise every shard");
        broker.shutdown();
        for (i, e) in eps.iter().enumerate() {
            let m = e
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("message drained from its shard at shutdown");
            assert_eq!(&m.body[..], &[i as u8]);
        }
        assert_eq!(broker.dropped(), 0, "no message stranded in any shard");
        assert!(broker.store().is_empty(), "every store credit settled");
    }

    #[test]
    fn router_queue_depth_gauge_returns_to_zero() {
        let telemetry = xt_telemetry::Telemetry::with_capacity(1 << 12);
        let broker = Broker::with_telemetry(
            0,
            Cluster::single(),
            CommConfig::default().with_router_shards(2),
            telemetry.clone(),
        );
        let learner = broker.endpoint(ProcessId::learner(0));
        let explorer = broker.endpoint(ProcessId::explorer(0));
        for _ in 0..32 {
            explorer.send(rollout_msg(b"depth"));
        }
        for _ in 0..32 {
            let _ = learner.recv().expect("delivered");
        }
        drop(explorer);
        drop(learner);
        broker.shutdown();
        assert_eq!(broker.router_queue_depth(), 0, "all submissions drained");
        let bursts: u64 = (0..2)
            .map(|s| telemetry.counter(&format!("comm.router.{s}.bursts")).get())
            .sum();
        assert!(bursts > 0, "shards recorded their drain bursts");
    }

    #[test]
    fn cross_machine_broadcast_sends_body_once_per_machine() {
        let cluster = Cluster::new(
            netsim::ClusterSpec::default().machines(2).nic_bandwidth(1e9).latency_secs(0.0),
        );
        let b0 = Broker::new(0, cluster.clone(), CommConfig::default());
        let b1 = Broker::new(1, cluster, CommConfig::default());
        let learner = b0.endpoint(ProcessId::learner(0));
        let local_e = b0.endpoint(ProcessId::explorer(0));
        let remote_es: Vec<_> = (1..4).map(|i| b1.endpoint(ProcessId::explorer(i))).collect();
        connect_brokers(&[b0.clone(), b1.clone()]);
        let h = Header::new(
            ProcessId::learner(0),
            (0..4).map(ProcessId::explorer).collect::<Vec<_>>(),
            MessageKind::Parameters,
        );
        learner.send(Message::new(h, Bytes::from_static(b"w")));
        assert_eq!(&local_e.recv().unwrap().body[..], b"w");
        for e in &remote_es {
            assert_eq!(&e.recv().unwrap().body[..], b"w");
        }
        // Three remote explorers, but only one transfer on the wire.
        assert_eq!(b0.cluster().machine(0).tx().stats().transfers(), 1);
        b0.shutdown();
        b1.shutdown();
    }
}
