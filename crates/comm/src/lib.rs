//! The asynchronous communication channel of XingTian (paper §3.2.1).
//!
//! XingTian replaces receiver-initiated ("pull") communication with a
//! sender-initiated, aggressive push pipeline:
//!
//! ```text
//! workhorse thread ──▶ send buffer ──▶ sender thread ──▶ shared-memory
//!                                                        communicator
//!                                                        (object store +
//!                                                         header queue)
//!                                                              │
//!                                                   algorithm-agnostic router
//!                                                     │               │
//!                                              local ID queues   remote broker
//!                                                     │           (via netsim)
//!                                             receiver thread ──▶ receive buffer
//!                                                                ──▶ workhorse
//! ```
//!
//! Every hop is event-driven: each monitoring thread blocks on a queue `pop`
//! and reacts the moment a message header appears, so data transmission starts
//! as soon as the data exist and overlaps with the computation of both
//! endpoints. Bodies live in the [`store::ObjectStore`] and move by reference
//! (O(1) `Bytes` clones); only headers flow through queues.
//!
//! The control plane is built for fan-out: the object store is lock-striped
//! with per-entry atomic fetch credits, the routing tables are read-mostly
//! [`snapshot::SnapshotCell`] snapshots loaded without locks on every message,
//! broadcasts enqueue one shared `Arc<Header>` per destination, and the router
//! drains its queue in batches, grouping remote traffic per machine per burst.
//!
//! The public surface:
//!
//! * [`Buffer`] — intra-process send/receive staging.
//! * [`ObjectStore`] — zero-copy shared body store with fan-out refcounts.
//! * [`Broker`] — per-machine communication hub: communicator, router thread,
//!   and fabric links to peer brokers over a [`netsim::Cluster`].
//! * [`Endpoint`] — what an explorer/learner process holds: its buffers plus
//!   the sender/receiver monitoring threads.
//! * [`SnapshotCell`] — the lock-free-read snapshot primitive behind the
//!   routing tables.
//!
//! # Examples
//!
//! ```
//! use xingtian_comm::{Broker, CommConfig};
//! use xingtian_message::{Header, Message, MessageKind, ProcessId};
//! use netsim::Cluster;
//! use bytes::Bytes;
//!
//! let cluster = Cluster::single();
//! let broker = Broker::new(0, cluster, CommConfig::default());
//! let explorer = broker.endpoint(ProcessId::explorer(0));
//! let learner = broker.endpoint(ProcessId::learner(0));
//!
//! let header = Header::new(ProcessId::explorer(0), vec![ProcessId::learner(0)],
//!                          MessageKind::Rollout);
//! explorer.send(Message::new(header, Bytes::from_static(b"rollout bytes")));
//! let got = learner.recv().expect("delivered");
//! assert_eq!(&got.body[..], b"rollout bytes");
//! ```

pub mod broker;
pub mod buffer;
pub mod endpoint;
pub mod inject;
pub mod pool;
pub mod router;
pub mod snapshot;
pub mod stats;
pub mod store;

pub use broker::{connect_brokers, Broker};
pub use buffer::Buffer;
pub use endpoint::Endpoint;
pub use inject::{InjectDecision, InjectionStats, RouteInjector};
pub use pool::WorkPool;
pub use router::SplitPlan;
pub use snapshot::SnapshotCell;
pub use stats::TransmissionStats;
pub use store::{ObjectId, ObjectStore};

use serde::{Deserialize, Serialize};
use xingtian_message::ProcessId;

/// Compression policy for message bodies entering the object store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Compression {
    /// Never compress.
    Off,
    /// LZ4-compress bodies larger than the given threshold in bytes
    /// (the paper's default threshold is 1 MiB).
    Threshold(usize),
}

impl Default for Compression {
    fn default() -> Self {
        Compression::Threshold(xingtian_message::COMPRESSION_THRESHOLD)
    }
}

/// Parameter-plane encoding for learner→explorer broadcasts (see
/// `xingtian_message::param`). Transport compression (the [`Compression`]
/// threshold) handles arbitrary bodies; this picks the *stateful* codec the
/// learner uses for `MessageKind::Parameters` specifically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ParamCompression {
    /// Full f32 blobs every broadcast (the pre-parameter-plane behavior).
    #[default]
    FullF32,
    /// Bit-lossless XOR deltas against the receiver's last-known version,
    /// with full-f32 fallback when no common base exists.
    DeltaF32,
    /// Int8 quantized absolute values with learner-side error feedback.
    QuantizedI8,
    /// Int8 quantized deltas with error feedback — smallest on the wire.
    DeltaQuantizedI8,
}

/// Liveness-beacon configuration for the endpoints of a broker.
///
/// When set, every endpoint's sender thread emits a [`xingtian_message::MessageKind::Heartbeat`]
/// message to `monitor` at least every `interval_ms` milliseconds, starting
/// with one immediate beat at spawn. Heartbeats ride the ordinary channel
/// (store → router → uplink), so they stop flowing for exactly the failures a
/// detector should see: a dead process (its endpoint is gone), a closed
/// endpoint, or a severed link between the process and the monitor's machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatConfig {
    /// Beacon period in milliseconds.
    pub interval_ms: u64,
    /// The process that aggregates liveness (the failure detector's inbox).
    /// With `monitor_shards > 1` this is shard 0; shard `s` is the process
    /// with index `monitor.index - s` and the same role.
    pub monitor: ProcessId,
    /// Number of monitor sink endpoints liveness fan-in is spread over.
    /// One inbox melts under 1K+ beaconing endpoints; each beaconer picks
    /// its shard by a stable hash of its own pid (see
    /// [`HeartbeatConfig::monitor_for`]).
    #[serde(default = "default_monitor_shards")]
    pub monitor_shards: u32,
}

#[allow(dead_code)]
fn default_monitor_shards() -> u32 {
    1
}

impl HeartbeatConfig {
    /// The beacon period as a [`std::time::Duration`].
    pub fn interval(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.interval_ms)
    }

    /// The monitor shard pid a process beacons to: a stable hash of `pid`
    /// over the shard count, so one beaconer always feeds the same inbox
    /// (its inter-arrival statistics stay meaningful to the detector).
    pub fn monitor_for(&self, pid: ProcessId) -> ProcessId {
        let shards = self.monitor_shards.max(1);
        if shards == 1 {
            return self.monitor;
        }
        let shard = (pid_hash(pid) % u64::from(shards)) as u32;
        ProcessId { role: self.monitor.role, index: self.monitor.index - shard }
    }

    /// Every monitor shard pid, in shard order (`monitor.index - s`).
    pub fn monitor_pids(&self) -> Vec<ProcessId> {
        (0..self.monitor_shards.max(1))
            .map(|s| ProcessId { role: self.monitor.role, index: self.monitor.index - s })
            .collect()
    }
}

/// Stable 64-bit mix of a process id (splitmix64 finalizer over role+index).
/// Shared by router sharding and monitor-shard selection so both spread
/// deterministically and independently of `HashMap` seeding.
pub fn pid_hash(pid: ProcessId) -> u64 {
    let mut x = ((pid.role as u64) << 32) ^ u64::from(pid.index) ^ 0x9E37_79B9_7F4A_7C15;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Configuration of the communication channel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommConfig {
    /// Body compression policy (paper §4.1).
    pub compression: Compression,
    /// Receive-buffer capacity (in messages) for workhorse endpoints
    /// (explorers and the learner). Bounded buffers let a stalled consumer
    /// backpressure the channel end to end; `None` restores unbounded
    /// buffers. Control-plane endpoints are always unbounded.
    pub endpoint_recv_capacity: Option<usize>,
    /// Endpoint liveness beacons (off by default: heartbeats to an
    /// unregistered monitor would tally as routing drops).
    pub heartbeat: Option<HeartbeatConfig>,
    /// Parameter-broadcast encoding (defaults to full f32 blobs). Consumed by
    /// the learner/explorer workhorses, not the channel itself: the channel
    /// just carries the pre-encoded bodies through untouched.
    #[serde(default)]
    pub param_compression: ParamCompression,
    /// Router shards per broker. One router thread saturates around the
    /// fanout the paper measures; sharding by destination hash lets routing
    /// throughput scale with cores while preserving per-destination FIFO
    /// (every message for a given first destination takes the same shard).
    #[serde(default = "default_router_shards")]
    pub router_shards: usize,
    /// Object-store segment capacity in bytes (`None` = the default
    /// 128 MiB). Small capacities back-pressure aggressive senders sooner —
    /// the elastic supervisor's occupancy signal, and a test's lever for
    /// inducing it.
    #[serde(default)]
    pub store_capacity: Option<usize>,
}

#[allow(dead_code)]
fn default_router_shards() -> usize {
    1
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            compression: Compression::default(),
            endpoint_recv_capacity: Some(8),
            heartbeat: None,
            param_compression: ParamCompression::default(),
            router_shards: 1,
            store_capacity: None,
        }
    }
}

impl CommConfig {
    /// A configuration with compression disabled (used by the dummy-algorithm
    /// transmission benchmarks, whose payloads are incompressible by design).
    pub fn uncompressed() -> Self {
        CommConfig { compression: Compression::Off, ..CommConfig::default() }
    }

    /// Enables liveness beacons to `monitor` every `interval_ms` milliseconds
    /// (builder style).
    pub fn with_heartbeat(mut self, interval_ms: u64, monitor: ProcessId) -> Self {
        self.heartbeat = Some(HeartbeatConfig { interval_ms, monitor, monitor_shards: 1 });
        self
    }

    /// Spreads heartbeat fan-in over `shards` monitor endpoints (builder
    /// style; no-op unless a heartbeat is configured).
    pub fn with_monitor_shards(mut self, shards: u32) -> Self {
        if let Some(hb) = &mut self.heartbeat {
            hb.monitor_shards = shards.max(1);
        }
        self
    }

    /// Sets the number of router shards per broker (builder style; clamped
    /// to at least one).
    pub fn with_router_shards(mut self, shards: usize) -> Self {
        self.router_shards = shards.max(1);
        self
    }

    /// Sets the object-store segment capacity in bytes (builder style).
    pub fn with_store_capacity(mut self, bytes: usize) -> Self {
        self.store_capacity = Some(bytes);
        self
    }

    /// Sets the transport compression threshold in bytes (builder style) —
    /// bodies larger than this are LZ4-chunked when entering the store.
    pub fn with_compress_threshold(mut self, threshold: usize) -> Self {
        self.compression = Compression::Threshold(threshold);
        self
    }

    /// Selects the parameter-broadcast encoding (builder style).
    pub fn with_param_compression(mut self, kind: ParamCompression) -> Self {
        self.param_compression = kind;
        self
    }
}
