//! The algorithm-agnostic router.
//!
//! The router is the thread inside every broker that watches the shared
//! communicator's header queue and dispatches each message to its
//! destinations: local destinations get the header (with its object id)
//! pushed into their ID queues; destinations on other machines get the body
//! forwarded once per machine over the inter-broker fabric. The router never
//! inspects or interprets bodies — it is *algorithm agnostic* (paper §3.2.1).
//!
//! # Control-plane fast path
//!
//! Three properties keep the per-message cost flat as fan-out grows:
//!
//! * **Snapshot routing.** `routes` and `id_queues` are [`SnapshotCell`]
//!   snapshots: [`RoutingTable::split`] and [`push_headers`] take zero locks
//!   per message; the rare writers (endpoint registration, fabric merges) pay
//!   the copy instead.
//! * **Split once.** The sender thread computes the local/remote split and
//!   ships the resulting [`Delivery`] plan to the router, so the destination
//!   list is resolved exactly once per message and store fetch credits always
//!   match the plan (no re-split drift between submission and routing).
//! * **O(n) broadcast.** ID queues carry `Arc<Header>`: an n-way broadcast
//!   enqueues n pointer clones of one header instead of n deep copies of an
//!   n-entry destination list.
//!
//! The router also drains the command queue in bursts, grouping remote
//! envelopes per target machine per burst so each uplink is located once per
//! burst rather than once per message.

use crate::inject::{DelayedDelivery, InjectDecision, InjectionStats, RouteInjector};
use crate::snapshot::SnapshotCell;
use crate::store::ObjectStore;
use crossbeam_channel::{Receiver, Sender, TryRecvError};
use netsim::MachineId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use xingtian_message::{Header, ProcessId};

/// What flows through a per-process ID queue.
#[derive(Debug)]
pub(crate) enum IdQueueMsg {
    /// A delivered header whose object id refers to the local store.
    Deliver(Arc<Header>),
    /// Endpoint teardown: the receiver thread must exit now. (ID-queue
    /// senders live inside retained routing snapshots, so a receiver cannot
    /// rely on sender-drop for its shutdown signal.)
    Close,
}

/// A command for the router thread.
#[derive(Debug)]
pub(crate) enum RouterCmd {
    /// Route one message according to its pre-computed plan.
    Deliver(Delivery),
    /// Drain whatever is already queued, then exit.
    Shutdown,
}

/// A message plus its split plan, computed once by the submitting thread.
#[derive(Debug)]
pub(crate) struct Delivery {
    pub(crate) header: Arc<Header>,
    pub(crate) local: Vec<ProcessId>,
    pub(crate) remote: Vec<(MachineId, Vec<ProcessId>)>,
}

/// The local/remote partition of a destination list.
#[derive(Debug, Default)]
pub struct SplitPlan {
    /// Destinations hosted on this machine.
    pub local: Vec<ProcessId>,
    /// Destinations grouped by hosting remote machine.
    pub remote: Vec<(MachineId, Vec<ProcessId>)>,
    /// Destinations with no registered route.
    pub unknown: usize,
}

impl SplitPlan {
    /// Store fetch credits this plan consumes: one per local destination plus
    /// one per remote machine (the body crosses the wire once per machine).
    pub fn fanout(&self) -> usize {
        self.local.len() + self.remote.len()
    }
}

/// Routing state shared between a broker, its router thread, and (after
/// [`crate::connect_brokers`]) peer brokers that propagate route updates.
#[derive(Debug, Default)]
pub struct RoutingTable {
    /// Process → hosting machine. Read lock-free on every submit.
    pub(crate) routes: SnapshotCell<HashMap<ProcessId, MachineId>>,
    /// Local ID queues, one per local process. Read lock-free on every
    /// delivery.
    pub(crate) id_queues: SnapshotCell<HashMap<ProcessId, Sender<IdQueueMsg>>>,
    /// Dropped-message counter (destination unknown or queue closed).
    pub(crate) dropped: AtomicU64,
    /// Processes that deregistered their ID queue (graceful exit or retire).
    /// Late messages to them are discarded with their credits settled but are
    /// *not* routing drops — elastic retirement and coordinated shutdown both
    /// race trailing traffic against queue teardown by design. Consulted only
    /// on the failed-delivery path, so the hot path never touches the lock.
    pub(crate) departed: Mutex<std::collections::HashSet<ProcessId>>,
    /// Messages discarded because their destination had departed.
    pub(crate) departed_discards: AtomicU64,
    /// Fault-injection policy consulted per (message, destination) on the
    /// final hop. `None` (the default) costs one snapshot load per delivery
    /// batch and nothing else.
    pub(crate) injector: SnapshotCell<Option<Arc<dyn RouteInjector>>>,
    /// Feed into the broker's delay-line thread. Lives here (not in a
    /// snapshot) so shutdown can take it out and actually disconnect the
    /// thread — snapshot history would retain the sender forever.
    pub(crate) delay_tx: Mutex<Option<Sender<DelayedDelivery>>>,
    /// Injected-fault tallies (drops / extra duplicates / delays executed).
    pub(crate) injected_dropped: AtomicU64,
    pub(crate) injected_duplicated: AtomicU64,
    pub(crate) injected_delayed: AtomicU64,
}

impl RoutingTable {
    /// Splits a destination list into local destinations and per-remote-
    /// machine groups from the point of view of machine `here`, borrowing one
    /// routing snapshot (no locks, no refcount traffic). Unroutable
    /// destinations are tallied in the plan; the caller decides whether that
    /// counts as a drop.
    pub fn split(&self, here: MachineId, dst: &[ProcessId]) -> SplitPlan {
        self.routes.with(|routes| {
            let mut plan = SplitPlan::default();
            for &d in dst {
                match routes.get(&d) {
                    Some(&m) if m == here => plan.local.push(d),
                    Some(&m) => match plan.remote.iter_mut().find(|(rm, _)| *rm == m) {
                        Some((_, group)) => group.push(d),
                        None => plan.remote.push((m, vec![d])),
                    },
                    None => plan.unknown += 1,
                }
            }
            plan
        })
    }

    /// Registers `pid` as living on `machine` (publishes a new routes
    /// snapshot).
    pub(crate) fn add_route(&self, pid: ProcessId, machine: MachineId) {
        self.routes.update(|routes| {
            let mut next = routes.clone();
            next.insert(pid, machine);
            (next, ())
        });
    }

    /// Bulk route merge (publishes one snapshot for the whole batch).
    pub(crate) fn add_routes(&self, entries: &HashMap<ProcessId, MachineId>) {
        self.routes.update(|routes| {
            let mut next = routes.clone();
            next.extend(entries.iter().map(|(&p, &m)| (p, m)));
            (next, ())
        });
    }

    /// Registers the ID queue of local process `pid`. Returns `false` (and
    /// registers nothing) if `pid` already has a queue.
    pub(crate) fn add_id_queue(&self, pid: ProcessId, tx: Sender<IdQueueMsg>) -> bool {
        let added = self.id_queues.update(|queues| {
            if queues.contains_key(&pid) {
                (queues.clone(), false)
            } else {
                let mut next = queues.clone();
                next.insert(pid, tx);
                (next, true)
            }
        });
        if added {
            // A respawned process is live again: its failures count once more.
            self.departed.lock().remove(&pid);
        }
        added
    }

    /// Unregisters `pid`'s ID queue, waking its receiver thread with a close
    /// sentinel.
    pub(crate) fn remove_id_queue(&self, pid: ProcessId) {
        self.departed.lock().insert(pid);
        self.id_queues.update(|queues| {
            if let Some(tx) = queues.get(&pid) {
                let _ = tx.send(IdQueueMsg::Close);
                let mut next = queues.clone();
                next.remove(&pid);
                (next, ())
            } else {
                (queues.clone(), ())
            }
        });
    }

    pub(crate) fn add_dropped(&self, n: u64) {
        if n > 0 {
            self.dropped.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Number of messages dropped for lack of a route, a severed link, or a
    /// queue that closed without deregistering. Late messages to *departed*
    /// processes (graceful exit / elastic retirement) are tallied separately
    /// in [`Self::departed_discards`].
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Messages discarded because their destination had already deregistered
    /// (credits settled, nothing leaked — but not a routing failure).
    pub fn departed_discards(&self) -> u64 {
        self.departed_discards.load(Ordering::Relaxed)
    }

    /// Injected-fault tallies executed by this table's routers.
    pub fn injection_stats(&self) -> InjectionStats {
        InjectionStats {
            dropped: self.injected_dropped.load(Ordering::Relaxed),
            duplicated: self.injected_duplicated.load(Ordering::Relaxed),
            delayed: self.injected_delayed.load(Ordering::Relaxed),
        }
    }
}

/// A body and its header bound for a set of destinations on one remote machine.
#[derive(Debug)]
pub struct RemoteEnvelope {
    /// Header as produced by the source (object id refers to the *source*
    /// store and is re-assigned on delivery).
    pub header: Header,
    /// The (possibly compressed) body bytes.
    pub body: bytes::Bytes,
    /// Destinations, all local to the target machine.
    pub dst: Vec<ProcessId>,
}

/// Delivers headers into local ID queues, re-homing the body into the local
/// store when it arrives from a remote machine.
pub(crate) fn deliver_local(
    store: &ObjectStore,
    table: &RoutingTable,
    mut header: Header,
    body: bytes::Bytes,
    dst: &[ProcessId],
) {
    if dst.is_empty() {
        return;
    }
    let object_id = store.insert(body, dst.len());
    header.object_id = Some(object_id);
    let queues = table.id_queues.load();
    push_headers(store, table, &queues, &Arc::new(header), dst);
}

/// Pushes `header` (whose object id already refers to `store`) into the ID
/// queue of every process in `dst`, using a pre-loaded queue snapshot.
/// Reclaims store credits for unroutable destinations and closed queues.
/// This is the final hop of every delivery, local or remote — the one place
/// an installed [`RouteInjector`] is consulted (exactly once per
/// (message, destination) pair).
pub(crate) fn push_headers(
    store: &ObjectStore,
    table: &RoutingTable,
    queues: &HashMap<ProcessId, Sender<IdQueueMsg>>,
    header: &Arc<Header>,
    dst: &[ProcessId],
) {
    let injector = table.injector.load();
    for &d in dst {
        match injector.as_deref().map_or(InjectDecision::Deliver, |i| i.decide(header, d)) {
            InjectDecision::Deliver => push_one(store, table, queues, header, d),
            InjectDecision::Drop => {
                table.injected_dropped.fetch_add(1, Ordering::Relaxed);
                // Same settlement as an organic drop: burn the destination's
                // fetch credit so the entry cannot leak.
                if let Some(id) = header.object_id {
                    store.drop_credit(id);
                }
            }
            InjectDecision::Duplicate(n) => {
                // Mint the extra credits *before* enqueuing any copy: each
                // copy spends one credit at fetch time. If the credits cannot
                // be minted (entry already spent), fall back to one delivery.
                let extra = header
                    .object_id
                    .map_or(0, |id| if store.add_credit(id, n as usize) { n } else { 0 });
                table.injected_duplicated.fetch_add(extra as u64, Ordering::Relaxed);
                for _ in 0..=extra {
                    push_one(store, table, queues, header, d);
                }
            }
            InjectDecision::Delay(delay) => {
                let parked = {
                    let guard = table.delay_tx.lock();
                    guard.as_ref().is_some_and(|tx| {
                        tx.send(DelayedDelivery {
                            header: Arc::clone(header),
                            dst: d,
                            deliver_at: Instant::now() + delay,
                        })
                        .is_ok()
                    })
                };
                if parked {
                    table.injected_delayed.fetch_add(1, Ordering::Relaxed);
                } else {
                    // No delay line (or it's gone): deliver immediately
                    // rather than lose the message.
                    push_one(store, table, queues, header, d);
                }
            }
        }
    }
}

/// Delivers one header to one destination queue, settling the store credit if
/// the destination is unreachable.
fn push_one(
    store: &ObjectStore,
    table: &RoutingTable,
    queues: &HashMap<ProcessId, Sender<IdQueueMsg>>,
    header: &Arc<Header>,
    d: ProcessId,
) {
    let delivered = queues
        .get(&d)
        .map(|q| q.send(IdQueueMsg::Deliver(Arc::clone(header))).is_ok())
        .unwrap_or(false);
    if !delivered {
        // A destination that deregistered its queue (retired explorer,
        // process that finished during coordinated shutdown) discards the
        // message without counting it as a drop; only a destination that was
        // never here — a genuine routing error — counts.
        if table.departed.lock().contains(&d) {
            table.departed_discards.fetch_add(1, Ordering::Relaxed);
        } else {
            table.add_dropped(1);
        }
        // Burn the fetch credit this destination would have used so the
        // store entry does not leak.
        if let Some(id) = header.object_id {
            store.drop_credit(id);
        }
    }
}

/// How many queued commands the router folds into one drain burst. Within a
/// burst remote envelopes are grouped per machine and each ID-queue snapshot
/// is loaded once.
const DRAIN_BATCH: usize = 64;

/// Picks the router shard for a destination list: a stable hash of the
/// *first* destination over the shard count. Every message with the same
/// leading destination lands on the same shard, so per-sender-per-destination
/// FIFO (the ordering the channel guarantees) survives sharding; broadcasts
/// with identical destination lists likewise stay ordered among themselves.
pub(crate) fn shard_for(dst: &[ProcessId], shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let Some(&first) = dst.first() else { return 0 };
    (crate::pid_hash(first) % shards as u64) as usize
}

/// Runs one router-shard loop until it receives [`RouterCmd::Shutdown`] or
/// every command sender disconnects. `shard` names the per-shard burst
/// counter (`comm.router.{shard}.bursts`); `queue_depth` is the broker-wide
/// backlog gauge, decremented here for every command taken off a shard queue.
pub(crate) fn run_router(
    shard: usize,
    comm_rx: Receiver<RouterCmd>,
    store: Arc<ObjectStore>,
    table: Arc<RoutingTable>,
    uplinks: Arc<Mutex<HashMap<MachineId, Sender<Vec<RemoteEnvelope>>>>>,
    telemetry: xt_telemetry::Telemetry,
    queue_depth: xt_telemetry::GaugeHandle,
) {
    let routed_messages = telemetry.counter("comm.routed_messages");
    let bursts = telemetry.counter(&format!("comm.router.{shard}.bursts"));
    // Busy time (burst processing, blocking recv excluded) — the scale gate
    // reads this to compute what wall clock would be with one core per shard.
    let busy_ns = telemetry.counter(&format!("comm.router.{shard}.busy_ns"));
    let mut batch: Vec<RouterCmd> = Vec::with_capacity(DRAIN_BATCH);
    let mut per_machine: HashMap<MachineId, Vec<RemoteEnvelope>> = HashMap::new();
    loop {
        // Block for the first command, then opportunistically drain a burst.
        match comm_rx.recv() {
            Ok(cmd) => batch.push(cmd),
            Err(_) => return,
        }
        loop {
            if batch.len() >= DRAIN_BATCH {
                break;
            }
            match comm_rx.try_recv() {
                Ok(cmd) => batch.push(cmd),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        bursts.inc();
        let burst_start = std::time::Instant::now();
        // The gauge counts deliveries only (the shutdown sentinel was never
        // counted in), so the broker-wide depth returns to zero at drain.
        let delivers =
            batch.iter().filter(|c| matches!(c, RouterCmd::Deliver(_))).count() as i64;
        queue_depth.add(-delivers);
        // One ID-queue snapshot per burst.
        let queues = table.id_queues.load();
        let mut shutdown = false;
        for cmd in batch.drain(..) {
            let delivery = match cmd {
                RouterCmd::Deliver(d) => d,
                RouterCmd::Shutdown => {
                    // Keep draining: FIFO guarantees every message submitted
                    // before shutdown precedes the sentinel, and racing
                    // stragglers behind it still have store credits to settle.
                    shutdown = true;
                    continue;
                }
            };
            let Delivery { header, local, remote } = delivery;
            telemetry.emit(
                xt_telemetry::EventKind::Routed,
                header.id,
                (local.len() + remote.len()) as u64,
            );
            routed_messages.inc();
            // Local destinations: hand the object id straight to their ID
            // queues (one Arc clone each).
            push_headers(&store, &table, &queues, &header, &local);
            // Remote machines: spend one credit per machine and group the
            // envelope under its uplink; the whole burst flushes below.
            for (machine, dst) in remote {
                let Some(id) = header.object_id else {
                    table.add_dropped(dst.len() as u64);
                    continue;
                };
                let Some(body) = store.fetch(id) else {
                    table.add_dropped(dst.len() as u64);
                    continue;
                };
                let envelope = RemoteEnvelope { header: (*header).clone(), body, dst };
                per_machine.entry(machine).or_default().push(envelope);
            }
        }
        // Flush remote groups: one uplink lookup per machine per burst. The
        // uplink thread pays the NIC cost so routing of subsequent local
        // traffic is never blocked behind a slow link.
        if !per_machine.is_empty() {
            let uplinks = uplinks.lock();
            for (machine, envelopes) in per_machine.drain() {
                let n_dst: u64 = envelopes.iter().map(|e| e.dst.len() as u64).sum();
                let sent = uplinks.get(&machine).map(|tx| tx.send(envelopes).is_ok()).unwrap_or(false);
                if !sent {
                    // The per-machine credits were already spent by the
                    // fetches above, so nothing leaks in the store; every
                    // destination on the dead uplink counts as dropped.
                    table.add_dropped(n_dst);
                }
            }
        }
        busy_ns.add(burst_start.elapsed().as_nanos() as u64);
        if shutdown {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;

    #[test]
    fn split_partitions_by_machine() {
        let table = RoutingTable::default();
        table.add_route(ProcessId::explorer(0), 0);
        table.add_route(ProcessId::explorer(1), 1);
        table.add_route(ProcessId::learner(0), 0);
        let plan = table.split(
            0,
            &[ProcessId::explorer(0), ProcessId::explorer(1), ProcessId::learner(0)],
        );
        assert_eq!(plan.local, vec![ProcessId::explorer(0), ProcessId::learner(0)]);
        assert_eq!(plan.remote, vec![(1, vec![ProcessId::explorer(1)])]);
        assert_eq!(plan.unknown, 0);
        assert_eq!(plan.fanout(), 3);
    }

    #[test]
    fn split_counts_unknown_without_tallying_drops() {
        let table = RoutingTable::default();
        let plan = table.split(0, &[ProcessId::explorer(9)]);
        assert!(plan.local.is_empty());
        assert!(plan.remote.is_empty());
        assert_eq!(plan.unknown, 1);
        assert_eq!(plan.fanout(), 0);
        assert_eq!(table.dropped(), 0, "split itself does not account drops");
    }

    #[test]
    fn push_headers_reclaims_credits_for_closed_queues() {
        let store = ObjectStore::new();
        let table = RoutingTable::default();
        let (tx, rx) = unbounded();
        drop(rx); // queue closed
        assert!(table.add_id_queue(ProcessId::learner(0), tx));
        let id = store.insert(bytes::Bytes::from_static(b"x"), 1);
        let mut header = Header::new(
            ProcessId::explorer(0),
            vec![ProcessId::learner(0)],
            xingtian_message::MessageKind::Rollout,
        );
        header.object_id = Some(id);
        let queues = table.id_queues.load();
        push_headers(&store, &table, &queues, &Arc::new(header), &[ProcessId::learner(0)]);
        assert_eq!(table.dropped(), 1);
        assert!(store.is_empty(), "credit reclaimed; no leak");
    }

    #[test]
    fn push_headers_reclaims_credits_for_unregistered_destinations() {
        let store = ObjectStore::new();
        let table = RoutingTable::default();
        let id = store.insert(bytes::Bytes::from_static(b"y"), 1);
        let mut header = Header::new(
            ProcessId::explorer(0),
            vec![ProcessId::learner(3)],
            xingtian_message::MessageKind::Rollout,
        );
        header.object_id = Some(id);
        let queues = table.id_queues.load();
        push_headers(&store, &table, &queues, &Arc::new(header), &[ProcessId::learner(3)]);
        assert_eq!(table.dropped(), 1);
        assert!(store.is_empty(), "credit reclaimed; no leak");
    }

    #[test]
    fn dead_uplink_reclaims_credits_and_counts_drops() {
        // A remote group whose uplink is gone (disconnected or never built)
        // must spend the machine's store credit and count every destination
        // behind it as dropped — no store leak either way.
        let store = Arc::new(ObjectStore::new());
        let table = Arc::new(RoutingTable::default());
        let (dead_tx, dead_rx) = unbounded::<Vec<RemoteEnvelope>>();
        drop(dead_rx); // uplink thread gone
        let uplinks = Arc::new(Mutex::new(HashMap::from([(1, dead_tx)])));
        let (tx, rx) = unbounded();
        // Machine 1: closed uplink. Machine 2: no uplink registered at all.
        let mut header = Header::new(
            ProcessId::learner(0),
            vec![ProcessId::explorer(0), ProcessId::explorer(1)],
            xingtian_message::MessageKind::Parameters,
        );
        header.object_id = Some(store.insert(bytes::Bytes::from_static(b"w"), 2));
        tx.send(RouterCmd::Deliver(Delivery {
            header: Arc::new(header),
            local: Vec::new(),
            remote: vec![(1, vec![ProcessId::explorer(0)]), (2, vec![ProcessId::explorer(1)])],
        }))
        .unwrap();
        tx.send(RouterCmd::Shutdown).unwrap();
        run_router(
            0,
            rx,
            Arc::clone(&store),
            Arc::clone(&table),
            uplinks,
            xt_telemetry::Telemetry::disabled(),
            xt_telemetry::GaugeHandle::default(),
        );
        assert_eq!(table.dropped(), 2, "one drop per unreachable destination");
        assert!(store.is_empty(), "both machine credits settled; no leak");
    }

    #[test]
    fn shard_for_is_stable_and_spreads() {
        // Same destination list → same shard, always (FIFO preservation).
        let dst = vec![ProcessId::learner(0), ProcessId::explorer(3)];
        let s = shard_for(&dst, 4);
        for _ in 0..8 {
            assert_eq!(shard_for(&dst, 4), s);
        }
        assert_eq!(shard_for(&[], 4), 0, "empty destination list is shard 0");
        assert_eq!(shard_for(&dst, 1), 0);
        // 256 distinct destinations must not all collapse onto one shard.
        let mut hit = [false; 4];
        for i in 0..256 {
            hit[shard_for(&[ProcessId::explorer(i)], 4)] = true;
        }
        assert!(hit.iter().all(|&h| h), "every shard owns some destinations");
    }

    #[test]
    fn broadcast_enqueues_shared_header() {
        // The O(n) broadcast property: every ID queue receives a clone of the
        // *same* header allocation.
        let store = ObjectStore::new();
        let table = RoutingTable::default();
        let mut rxs = Vec::new();
        for i in 0..4 {
            let (tx, rx) = unbounded();
            assert!(table.add_id_queue(ProcessId::explorer(i), tx));
            rxs.push(rx);
        }
        let dst: Vec<ProcessId> = (0..4).map(ProcessId::explorer).collect();
        let mut header =
            Header::new(ProcessId::learner(0), dst.clone(), xingtian_message::MessageKind::Parameters);
        header.object_id = Some(store.insert(bytes::Bytes::from_static(b"w"), 4));
        let header = Arc::new(header);
        let queues = table.id_queues.load();
        push_headers(&store, &table, &queues, &header, &dst);
        for rx in &rxs {
            match rx.try_recv().expect("delivered") {
                IdQueueMsg::Deliver(h) => {
                    assert!(Arc::ptr_eq(&h, &header), "queues share one header allocation")
                }
                IdQueueMsg::Close => panic!("unexpected close"),
            }
        }
        assert_eq!(table.dropped(), 0);
    }
}
