//! The algorithm-agnostic router.
//!
//! The router is the thread inside every broker that watches the shared
//! communicator's header queue and dispatches each message to its
//! destinations: local destinations get the header (with its object id)
//! pushed into their ID queues; destinations on other machines get the body
//! forwarded once per machine over the inter-broker fabric. The router never
//! inspects or interprets bodies — it is *algorithm agnostic* (paper §3.2.1).

use crate::store::ObjectStore;
use crossbeam_channel::{Receiver, Sender};
use netsim::MachineId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xingtian_message::{Header, ProcessId};

/// Routing state shared between a broker and its router thread.
#[derive(Debug, Default)]
pub struct RoutingTable {
    /// Process → hosting machine.
    pub(crate) routes: Mutex<HashMap<ProcessId, MachineId>>,
    /// Local ID queues, one per local process.
    pub(crate) id_queues: Mutex<HashMap<ProcessId, Sender<Header>>>,
    /// Dropped-message counter (destination unknown or queue closed).
    pub(crate) dropped: AtomicU64,
}

impl RoutingTable {
    /// Splits a destination list into (local destinations, remote machine →
    /// destinations) from the point of view of machine `here`.
    ///
    /// Destinations with no registered route are counted as dropped.
    pub fn split(
        &self,
        here: MachineId,
        dst: &[ProcessId],
    ) -> (Vec<ProcessId>, HashMap<MachineId, Vec<ProcessId>>) {
        let routes = self.routes.lock();
        let mut local = Vec::new();
        let mut remote: HashMap<MachineId, Vec<ProcessId>> = HashMap::new();
        for &d in dst {
            match routes.get(&d) {
                Some(&m) if m == here => local.push(d),
                Some(&m) => remote.entry(m).or_default().push(d),
                None => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        (local, remote)
    }

    /// Number of messages dropped for lack of a route or a closed queue.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// A body and its header bound for a set of destinations on one remote machine.
#[derive(Debug)]
pub struct RemoteEnvelope {
    /// Header as produced by the source (object id refers to the *source*
    /// store and is re-assigned on delivery).
    pub header: Header,
    /// The (possibly compressed) body bytes.
    pub body: bytes::Bytes,
    /// Destinations, all local to the target machine.
    pub dst: Vec<ProcessId>,
}

/// Delivers headers into local ID queues, re-homing the body into the local
/// store when it arrives from a remote machine.
pub(crate) fn deliver_local(
    store: &ObjectStore,
    table: &RoutingTable,
    mut header: Header,
    body: bytes::Bytes,
    dst: &[ProcessId],
) {
    if dst.is_empty() {
        return;
    }
    let object_id = store.insert(body, dst.len());
    header.object_id = Some(object_id);
    push_headers(store, table, &header, dst);
}

/// Pushes `header` (whose object id already refers to `store`) into the ID
/// queue of every process in `dst`. Reclaims store credits for closed queues.
pub(crate) fn push_headers(
    store: &ObjectStore,
    table: &RoutingTable,
    header: &Header,
    dst: &[ProcessId],
) {
    let queues = table.id_queues.lock();
    for &d in dst {
        let delivered = queues.get(&d).map(|q| q.send(header.clone()).is_ok()).unwrap_or(false);
        if !delivered {
            table.dropped.fetch_add(1, Ordering::Relaxed);
            // Burn the fetch credit this destination would have used so the
            // store entry does not leak.
            if let Some(id) = header.object_id {
                let _ = store.fetch(id);
            }
        }
    }
}

/// Runs the router loop until the communicator's header queue disconnects.
pub(crate) fn run_router(
    here: MachineId,
    comm_rx: Receiver<Header>,
    store: Arc<ObjectStore>,
    table: Arc<RoutingTable>,
    uplinks: Arc<Mutex<HashMap<MachineId, Sender<RemoteEnvelope>>>>,
    telemetry: xt_telemetry::Telemetry,
) {
    let routed_messages = telemetry.counter("comm.routed_messages");
    while let Ok(header) = comm_rx.recv() {
        let (local, remote) = table.split(here, &header.dst);
        telemetry.emit(
            xt_telemetry::EventKind::Routed,
            header.id,
            (local.len() + remote.len()) as u64,
        );
        routed_messages.inc();
        // Local destinations: hand the object id straight to their ID queues.
        push_headers(&store, &table, &header, &local);
        // Remote machines: fetch one credit per machine and forward the body
        // over the fabric. The uplink thread pays the NIC cost so routing of
        // subsequent local traffic is never blocked behind a slow link.
        for (machine, dst) in remote {
            let Some(id) = header.object_id else {
                table.dropped.fetch_add(dst.len() as u64, Ordering::Relaxed);
                continue;
            };
            let Some(body) = store.fetch(id) else {
                table.dropped.fetch_add(dst.len() as u64, Ordering::Relaxed);
                continue;
            };
            let envelope = RemoteEnvelope { header: header.clone(), body, dst };
            let sent = uplinks
                .lock()
                .get(&machine)
                .map(|tx| tx.send(envelope).is_ok())
                .unwrap_or(false);
            if !sent {
                table.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;

    #[test]
    fn split_partitions_by_machine() {
        let table = RoutingTable::default();
        {
            let mut routes = table.routes.lock();
            routes.insert(ProcessId::explorer(0), 0);
            routes.insert(ProcessId::explorer(1), 1);
            routes.insert(ProcessId::learner(0), 0);
        }
        let (local, remote) = table.split(
            0,
            &[ProcessId::explorer(0), ProcessId::explorer(1), ProcessId::learner(0)],
        );
        assert_eq!(local, vec![ProcessId::explorer(0), ProcessId::learner(0)]);
        assert_eq!(remote[&1], vec![ProcessId::explorer(1)]);
    }

    #[test]
    fn unknown_destination_counts_as_dropped() {
        let table = RoutingTable::default();
        let (local, remote) = table.split(0, &[ProcessId::explorer(9)]);
        assert!(local.is_empty());
        assert!(remote.is_empty());
        assert_eq!(table.dropped(), 1);
    }

    #[test]
    fn push_headers_reclaims_credits_for_closed_queues() {
        let store = ObjectStore::new();
        let table = RoutingTable::default();
        let (tx, rx) = unbounded();
        drop(rx); // queue closed
        table.id_queues.lock().insert(ProcessId::learner(0), tx);
        let id = store.insert(bytes::Bytes::from_static(b"x"), 1);
        let mut header = Header::new(
            ProcessId::explorer(0),
            vec![ProcessId::learner(0)],
            xingtian_message::MessageKind::Rollout,
        );
        header.object_id = Some(id);
        push_headers(&store, &table, &header, &[ProcessId::learner(0)]);
        assert_eq!(table.dropped(), 1);
        assert!(store.is_empty(), "credit reclaimed; no leak");
    }
}
