//! Read-mostly snapshot cells for the control plane.
//!
//! The routing state of a broker (process → machine routes, ID-queue
//! registry) is written a handful of times — endpoint registration,
//! [`crate::connect_brokers`] — and read on *every* message. A
//! [`SnapshotCell`] keeps that state as an immutable [`Arc`] snapshot that
//! readers load with two atomic operations (pointer load + strong-count
//! increment): no mutex, no reader-reader serialization, no writer starvation.
//! Writers clone the current snapshot, apply their change, and publish the
//! replacement — they pay the copy so the per-message hot path doesn't.
//!
//! # Reclamation
//!
//! The classic hazard of pointer-swap designs is a reader that has loaded the
//! raw pointer but not yet incremented the reference count when the writer
//! frees the old snapshot. This cell sidesteps the hazard by *retaining*
//! every published snapshot in a writer-side history list until the cell
//! itself is dropped, which makes the raw pointer unconditionally valid for
//! the cell's lifetime. Control-plane writes number in the hundreds per
//! deployment (one per endpoint registration plus one per fabric merge), so
//! retention costs O(writes × snapshot size) — kilobytes, paid once, off the
//! hot path. Values stored in a cell must therefore be plain data (or
//! otherwise tolerate living until the cell drops); resources that require
//! prompt release on removal (e.g. channel senders whose disconnect is a
//! shutdown signal) need an explicit close protocol on top, as the ID queues
//! implement with their close sentinel.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// A single-value cell holding an `Arc<T>` snapshot with lock-free loads and
/// mutex-serialized (rare) writes.
#[derive(Debug)]
pub struct SnapshotCell<T> {
    /// Pointer to the currently published snapshot. Always points into an
    /// `Arc` kept alive by `history`, so readers may bump its strong count
    /// without a validity race.
    current: AtomicPtr<T>,
    /// Writer lock and retention list; the last element is the published
    /// snapshot, earlier elements are retained for reader safety (see module
    /// docs).
    history: Mutex<Vec<Arc<T>>>,
}

impl<T> SnapshotCell<T> {
    /// Creates a cell publishing `initial`.
    pub fn new(initial: T) -> Self {
        let arc = Arc::new(initial);
        let ptr = Arc::as_ptr(&arc) as *mut T;
        SnapshotCell { current: AtomicPtr::new(ptr), history: Mutex::new(vec![arc]) }
    }

    /// Loads the current snapshot. Lock-free: one pointer load plus one
    /// reference-count increment. The returned `Arc` stays coherent even if a
    /// writer publishes a replacement immediately after.
    pub fn load(&self) -> Arc<T> {
        let ptr = self.current.load(Ordering::Acquire);
        // SAFETY: `ptr` was produced by `Arc::as_ptr` on an `Arc` that
        // `history` keeps alive until `self` is dropped, so the allocation is
        // live and its strong count is at least one.
        unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Applies `f` to a borrow of the current snapshot without touching the
    /// reference count — the cheapest read for hot paths that don't need to
    /// keep the snapshot alive past the call (e.g. one routing split per
    /// submit). A writer publishing mid-call is harmless: the borrowed
    /// snapshot is retained in `history` for the cell's whole lifetime.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let ptr = self.current.load(Ordering::Acquire);
        // SAFETY: `ptr` was produced by `Arc::as_ptr` on an `Arc` retained in
        // `history` until `self` drops, so the borrow is valid for the call.
        f(unsafe { &*ptr })
    }

    /// Publishes the snapshot produced by applying `f` to the current one.
    /// Writers serialize on the history lock; readers are never blocked.
    pub fn update<R>(&self, f: impl FnOnce(&T) -> (T, R)) -> R {
        let mut history = self.history.lock();
        let current = history.last().expect("cell always holds its published snapshot");
        let (next, out) = f(current);
        let arc = Arc::new(next);
        self.current.store(Arc::as_ptr(&arc) as *mut T, Ordering::Release);
        history.push(arc);
        out
    }

    /// Number of snapshots retained (including the published one). Exposed so
    /// tests can assert that writes — not reads — are what grow retention.
    pub fn retained(&self) -> usize {
        self.history.lock().len()
    }
}

impl<T: Default> Default for SnapshotCell<T> {
    fn default() -> Self {
        SnapshotCell::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn load_sees_latest_publish() {
        let cell = SnapshotCell::new(1u64);
        assert_eq!(*cell.load(), 1);
        cell.update(|v| (v + 10, ()));
        assert_eq!(*cell.load(), 11);
    }

    #[test]
    fn old_snapshots_stay_coherent() {
        let cell = SnapshotCell::new(vec![1, 2, 3]);
        let old = cell.load();
        cell.update(|_| (vec![9], ()));
        assert_eq!(*old, vec![1, 2, 3], "reader's view is immutable");
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn reads_do_not_grow_retention() {
        let cell = SnapshotCell::new(0u32);
        for _ in 0..1000 {
            let _ = cell.load();
        }
        assert_eq!(cell.retained(), 1);
        cell.update(|v| (v + 1, ()));
        assert_eq!(cell.retained(), 2);
    }

    #[test]
    fn with_borrows_without_retention_or_refcount() {
        let cell = SnapshotCell::new(vec![7u32]);
        let strong_before = Arc::strong_count(&cell.history.lock()[0]);
        let sum: u32 = cell.with(|v| v.iter().sum());
        assert_eq!(sum, 7);
        assert_eq!(Arc::strong_count(&cell.history.lock()[0]), strong_before);
        assert_eq!(cell.retained(), 1);
        cell.update(|_| (vec![1, 2], ()));
        assert_eq!(cell.with(|v| v.len()), 2, "with sees the latest publish");
    }

    #[test]
    fn update_returns_closure_output() {
        let cell: SnapshotCell<HashMap<u32, u32>> = SnapshotCell::default();
        let prev = cell.update(|m| {
            let mut next = m.clone();
            let prev = next.insert(1, 10);
            (next, prev)
        });
        assert_eq!(prev, None);
        let prev = cell.update(|m| {
            let mut next = m.clone();
            let prev = next.insert(1, 20);
            (next, prev)
        });
        assert_eq!(prev, Some(10));
        assert_eq!(cell.load().get(&1), Some(&20));
    }

    #[test]
    fn concurrent_loads_and_updates_stay_valid() {
        let cell = Arc::new(SnapshotCell::new(0usize));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20_000 {
                    let snap = cell.load();
                    // Values only ever grow; a torn or dangling read would
                    // violate this (or crash under a sanitizer).
                    assert!(*snap <= 1_000_000);
                }
            }));
        }
        for i in 0..200 {
            cell.update(|v| (v + 1, ()));
            if i % 50 == 0 {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*cell.load(), 200);
    }
}
