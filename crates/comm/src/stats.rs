//! Transmission-latency instrumentation.
//!
//! Figures 8–10 of the paper report, per algorithm, (a) how long a message of
//! rollout size takes to transmit, (b) how long the learner *actually* waits
//! for rollouts before training, and (c) a CDF of those waits. This module
//! records per-message latencies cheaply so those figures can be regenerated.

use parking_lot::Mutex;
use std::time::Duration;

/// A concurrent recorder of durations with summary statistics and quantiles.
#[derive(Debug, Default)]
pub struct TransmissionStats {
    samples_nanos: Mutex<Vec<u64>>,
}

impl TransmissionStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        TransmissionStats::default()
    }

    /// Records one duration sample.
    pub fn record(&self, d: Duration) {
        self.samples_nanos.lock().push(d.as_nanos() as u64);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_nanos.lock().len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_nanos.lock().is_empty()
    }

    /// Mean of the recorded samples, or zero if empty.
    pub fn mean(&self) -> Duration {
        let samples = self.samples_nanos.lock();
        if samples.is_empty() {
            return Duration::ZERO;
        }
        let sum: u128 = samples.iter().map(|&n| u128::from(n)).sum();
        Duration::from_nanos((sum / samples.len() as u128) as u64)
    }

    /// The `q`-quantile (0.0 ≤ q ≤ 1.0) of the recorded samples, or zero if
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be within [0, 1]");
        let mut samples = self.samples_nanos.lock().clone();
        if samples.is_empty() {
            return Duration::ZERO;
        }
        samples.sort_unstable();
        let idx = ((samples.len() - 1) as f64 * q).round() as usize;
        Duration::from_nanos(samples[idx])
    }

    /// Fraction of samples at or below `threshold` (the CDF evaluated at
    /// `threshold`), or 0.0 if empty.
    pub fn cdf_at(&self, threshold: Duration) -> f64 {
        let samples = self.samples_nanos.lock();
        if samples.is_empty() {
            return 0.0;
        }
        let t = threshold.as_nanos() as u64;
        samples.iter().filter(|&&s| s <= t).count() as f64 / samples.len() as f64
    }

    /// Snapshot of all samples (sorted ascending), for plotting full CDFs.
    pub fn sorted_samples(&self) -> Vec<Duration> {
        let mut samples = self.samples_nanos.lock().clone();
        samples.sort_unstable();
        samples.into_iter().map(Duration::from_nanos).collect()
    }

    /// Clears all recorded samples.
    pub fn reset(&self) {
        self.samples_nanos.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn mean_and_quantiles() {
        let s = TransmissionStats::new();
        for n in [10u64, 20, 30, 40, 50] {
            s.record(ms(n));
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.mean(), ms(30));
        assert_eq!(s.quantile(0.0), ms(10));
        assert_eq!(s.quantile(0.5), ms(30));
        assert_eq!(s.quantile(1.0), ms(50));
    }

    #[test]
    fn cdf_counts_fraction() {
        let s = TransmissionStats::new();
        for n in [5u64, 10, 15, 20] {
            s.record(ms(n));
        }
        assert_eq!(s.cdf_at(ms(10)), 0.5);
        assert_eq!(s.cdf_at(ms(4)), 0.0);
        assert_eq!(s.cdf_at(ms(100)), 1.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TransmissionStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.quantile(0.5), Duration::ZERO);
        assert_eq!(s.cdf_at(ms(1)), 0.0);
    }

    #[test]
    fn reset_clears() {
        let s = TransmissionStats::new();
        s.record(ms(1));
        s.reset();
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "quantile must be within")]
    fn quantile_out_of_range_panics() {
        TransmissionStats::new().quantile(1.5);
    }
}
