//! Transmission-latency instrumentation.
//!
//! Figures 8–10 of the paper report, per algorithm, (a) how long a message of
//! rollout size takes to transmit, (b) how long the learner *actually* waits
//! for rollouts before training, and (c) a CDF of those waits.
//!
//! [`TransmissionStats`] is a thin duration-typed wrapper over
//! [`xt_telemetry::Histogram`]: recording is a handful of relaxed atomic adds
//! (no lock, no allocation, bounded memory regardless of sample count),
//! unlike the earlier `Mutex<Vec<u64>>` version whose storage grew with every
//! message and whose quantiles cloned and sorted the whole vector. Means are
//! still exact; quantiles and the CDF are interpolated within log-scale
//! buckets (relative error bounded by one power of two — see
//! `xt_telemetry::hist`).

use std::time::Duration;
use xt_telemetry::Histogram;

/// A concurrent recorder of durations with summary statistics and quantiles.
#[derive(Debug, Default)]
pub struct TransmissionStats {
    hist: Histogram,
}

impl TransmissionStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        TransmissionStats::default()
    }

    /// Records one duration sample. Wait-free.
    pub fn record(&self, d: Duration) {
        self.hist.record_duration(d);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.hist.count() as usize
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.hist.is_empty()
    }

    /// Exact mean of the recorded samples, or zero if empty.
    pub fn mean(&self) -> Duration {
        Duration::from_nanos(self.hist.mean())
    }

    /// The `q`-quantile (0.0 ≤ q ≤ 1.0) of the recorded samples, or zero if
    /// empty. Bucket-interpolated: the estimate lies in the same log-scale
    /// bucket as the exact order statistic.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.hist.quantile(q))
    }

    /// One-call p50/p90/p99 digest of the recorded samples (nanoseconds),
    /// straight from [`xt_telemetry::Summary`].
    pub fn summary(&self) -> xt_telemetry::Summary {
        self.hist.summary()
    }

    /// Fraction of samples at or below `threshold` (the CDF evaluated at
    /// `threshold`), or 0.0 if empty.
    pub fn cdf_at(&self, threshold: Duration) -> f64 {
        self.hist.cdf_at(threshold.as_nanos().min(u128::from(u64::MAX)) as u64)
    }

    /// The underlying histogram, for telemetry exporters.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Clears all recorded samples.
    pub fn reset(&self) {
        self.hist.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn mean_is_exact_quantiles_are_bucket_bounded() {
        let s = TransmissionStats::new();
        for n in [10u64, 20, 30, 40, 50] {
            s.record(ms(n));
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.mean(), ms(30), "mean is tracked exactly");
        // Quantile estimates land in the log-bucket of the exact order
        // statistic: bucket of v is [2^b, 2^(b+1)) with 2^b <= v.
        let in_bucket_of = |estimate: Duration, exact: Duration| {
            let e = estimate.as_nanos() as f64;
            let x = exact.as_nanos() as f64;
            e >= x / 2.0 && e <= x * 2.0
        };
        assert!(in_bucket_of(s.quantile(0.0), ms(10)), "{:?}", s.quantile(0.0));
        assert!(in_bucket_of(s.quantile(0.5), ms(30)), "{:?}", s.quantile(0.5));
        assert!(in_bucket_of(s.quantile(1.0), ms(50)), "{:?}", s.quantile(1.0));
    }

    #[test]
    fn cdf_is_monotone_and_saturates() {
        let s = TransmissionStats::new();
        for n in [5u64, 10, 15, 20] {
            s.record(ms(n));
        }
        let points: Vec<f64> =
            [1u64, 5, 10, 15, 20, 100].iter().map(|&t| s.cdf_at(ms(t))).collect();
        assert!(points.windows(2).all(|w| w[0] <= w[1]), "monotone: {points:?}");
        assert_eq!(s.cdf_at(ms(1)), 0.0, "below every sample");
        assert_eq!(s.cdf_at(ms(100)), 1.0, "above every sample");
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TransmissionStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.quantile(0.5), Duration::ZERO);
        assert_eq!(s.cdf_at(ms(1)), 0.0);
    }

    #[test]
    fn reset_clears() {
        let s = TransmissionStats::new();
        s.record(ms(1));
        s.reset();
        assert!(s.is_empty());
    }

    #[test]
    fn recording_is_concurrent() {
        let s = std::sync::Arc::new(TransmissionStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record(ms(7));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 4000);
        assert_eq!(s.mean(), ms(7));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_out_of_range_panics() {
        TransmissionStats::new().quantile(1.5);
    }
}
