//! Intra-process send/receive buffers.
//!
//! A [`Buffer`] is the paper's send-buffer / receive-buffer structure: a
//! *header queue* plus a *data list* holding the matching bodies. Workhorse
//! threads only ever touch these local buffers; the monitoring threads of the
//! channel move data between buffers and the shared-memory communicator.
//!
//! `pop` blocks until a message arrives (the event-driven `Queue.get` pattern
//! of paper §4.1) or the buffer is closed.

use crossbeam_channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;
use xingtian_message::{Body, Header, Message};

/// A header queue paired with a body list, safe to share across threads.
#[derive(Debug)]
pub struct Buffer {
    header_tx: Mutex<Option<Sender<Header>>>,
    header_rx: Receiver<Header>,
    bodies: Mutex<HashMap<u64, Body>>,
}

impl Buffer {
    /// Creates an empty, open, unbounded buffer.
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        Buffer { header_tx: Mutex::new(Some(tx)), header_rx: rx, bodies: Mutex::new(HashMap::new()) }
    }

    /// Creates a buffer holding at most `capacity` staged messages:
    /// [`Buffer::push`] blocks while full, propagating backpressure to the
    /// producing thread (and, through the receiver thread, back to the
    /// shared-memory store and ultimately the senders).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let (tx, rx) = bounded(capacity);
        Buffer { header_tx: Mutex::new(Some(tx)), header_rx: rx, bodies: Mutex::new(HashMap::new()) }
    }

    /// Stages a message: body into the data list, header into the header
    /// queue. On a bounded buffer this blocks while the buffer is full (and
    /// keeps checking for closure so shutdown always unblocks it).
    ///
    /// Returns `false` (dropping the message) if the buffer has been closed.
    pub fn push(&self, msg: Message) -> bool {
        let Message { header, body } = msg;
        // Clone the sender out of the lock so a blocking send cannot hold it.
        let Some(tx) = self.header_tx.lock().clone() else { return false };
        let id = header.id;
        self.bodies.lock().insert(id, body);
        let mut header = Some(header);
        loop {
            match tx.send_timeout(header.take().expect("header present until sent"), Duration::from_millis(50)) {
                Ok(()) => return true,
                Err(crossbeam_channel::SendTimeoutError::Timeout(h)) => {
                    if self.is_closed() {
                        self.bodies.lock().remove(&id);
                        return false;
                    }
                    header = Some(h);
                }
                Err(crossbeam_channel::SendTimeoutError::Disconnected(_)) => {
                    self.bodies.lock().remove(&id);
                    return false;
                }
            }
        }
    }

    fn claim_body(&self, header: &Header) -> Message {
        let body = self
            .bodies
            .lock()
            .remove(&header.id)
            .expect("buffer invariant: every queued header has a staged body");
        Message { header: header.clone(), body }
    }

    /// Blocks until a message is available or the buffer is closed.
    ///
    /// Returns `None` only after [`Buffer::close`] and once the queue has
    /// drained.
    pub fn pop(&self) -> Option<Message> {
        let header = self.header_rx.recv().ok()?;
        Some(self.claim_body(&header))
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<Message> {
        match self.header_rx.try_recv() {
            Ok(header) => Some(self.claim_body(&header)),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<Message> {
        match self.header_rx.recv_timeout(timeout) {
            Ok(header) => Some(self.claim_body(&header)),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Number of staged messages.
    pub fn len(&self) -> usize {
        self.header_rx.len()
    }

    /// True when no messages are staged.
    pub fn is_empty(&self) -> bool {
        self.header_rx.is_empty()
    }

    /// Closes the buffer: subsequent `push` calls drop their message, and
    /// `pop` returns `None` once the remaining messages drain. Idempotent.
    pub fn close(&self) {
        self.header_tx.lock().take();
    }

    /// True once [`Buffer::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.header_tx.lock().is_none()
    }
}

impl Default for Buffer {
    fn default() -> Self {
        Buffer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::sync::Arc;
    use xingtian_message::{MessageKind, ProcessId};

    fn msg(tag: u8) -> Message {
        let h = Header::new(ProcessId::explorer(0), vec![ProcessId::learner(0)], MessageKind::Rollout);
        Message::new(h, Bytes::from(vec![tag; 8]))
    }

    #[test]
    fn push_pop_round_trips_in_order() {
        let b = Buffer::new();
        assert!(b.push(msg(1)));
        assert!(b.push(msg(2)));
        assert_eq!(b.len(), 2);
        assert_eq!(b.pop().unwrap().body[0], 1);
        assert_eq!(b.pop().unwrap().body[0], 2);
        assert!(b.is_empty());
    }

    #[test]
    fn try_pop_on_empty_returns_none() {
        let b = Buffer::new();
        assert!(b.try_pop().is_none());
    }

    #[test]
    fn pop_timeout_expires() {
        let b = Buffer::new();
        assert!(b.pop_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn pop_blocks_until_push() {
        let b = Arc::new(Buffer::new());
        let b2 = Arc::clone(&b);
        let t = std::thread::spawn(move || b2.pop().unwrap().body[0]);
        std::thread::sleep(Duration::from_millis(20));
        b.push(msg(7));
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn close_drains_then_ends() {
        let b = Buffer::new();
        b.push(msg(1));
        b.close();
        assert!(!b.push(msg(2)), "push after close is dropped");
        assert_eq!(b.pop().unwrap().body[0], 1);
        assert!(b.pop().is_none());
        assert!(b.is_closed());
    }

    #[test]
    fn concurrent_producers_deliver_everything() {
        let b = Arc::new(Buffer::new());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    assert!(b.push(msg(t)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut counts = [0usize; 4];
        for _ in 0..400 {
            let m = b.pop().unwrap();
            counts[m.body[0] as usize] += 1;
        }
        assert_eq!(counts, [100, 100, 100, 100]);
    }
}
