//! Intra-process send/receive buffers.
//!
//! A [`Buffer`] is the paper's send-buffer / receive-buffer structure: the
//! staging area between a workhorse thread (rollout worker or trainer) and the
//! monitoring threads of the channel. Workhorse threads only ever touch these
//! local buffers; the monitoring threads move data between buffers and the
//! shared-memory communicator.
//!
//! The buffer stages whole [`Message`]s on a single channel. An earlier
//! design mirrored the paper's header-queue + data-list split literally — a
//! header channel plus a `Mutex<HashMap>` of bodies — which cost every `push`
//! two lock acquisitions and every `pop` a map lookup, and could strand a body
//! if its header was dropped between the two structures. Within one process
//! the split buys nothing (both halves live in the same address space), so the
//! hot path now touches exactly one synchronization point: the channel. The
//! paper-faithful header/body split still happens where it matters — at the
//! broker, between the ID queues and the shared object store.
//!
//! `pop` blocks until a message arrives (the event-driven `Queue.get` pattern
//! of paper §4.1) or the buffer is closed.

use crossbeam_channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use std::time::Duration;
use xingtian_message::Message;

/// A staging queue for complete messages, safe to share across threads.
#[derive(Debug)]
pub struct Buffer {
    /// `None` once closed; dropping the sender disconnects blocked poppers.
    tx: Mutex<Option<Sender<Message>>>,
    rx: Receiver<Message>,
}

impl Buffer {
    /// Creates an empty, open, unbounded buffer.
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        Buffer { tx: Mutex::new(Some(tx)), rx }
    }

    /// Creates a buffer holding at most `capacity` staged messages:
    /// [`Buffer::push`] blocks while full, propagating backpressure to the
    /// producing thread (and, through the receiver thread, back to the
    /// shared-memory store and ultimately the senders).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let (tx, rx) = bounded(capacity);
        Buffer { tx: Mutex::new(Some(tx)), rx }
    }

    /// Stages a message. On a bounded buffer this blocks while the buffer is
    /// full (re-checking for closure so shutdown always unblocks it).
    ///
    /// Returns `false` (dropping the message) if the buffer has been closed.
    pub fn push(&self, msg: Message) -> bool {
        // Clone the sender out of the lock so a blocking send cannot hold it;
        // this is the only lock the fast path takes.
        let Some(tx) = self.tx.lock().clone() else { return false };
        let mut msg = Some(msg);
        loop {
            match tx.send_timeout(msg.take().expect("message present until sent"), Duration::from_millis(50)) {
                Ok(()) => return true,
                Err(crossbeam_channel::SendTimeoutError::Timeout(m)) => {
                    if self.is_closed() {
                        return false;
                    }
                    msg = Some(m);
                }
                Err(crossbeam_channel::SendTimeoutError::Disconnected(_)) => return false,
            }
        }
    }

    /// Blocks until a message is available or the buffer is closed.
    ///
    /// Returns `None` only after [`Buffer::close`] and once the queue has
    /// drained.
    pub fn pop(&self) -> Option<Message> {
        self.rx.recv().ok()
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<Message> {
        match self.rx.try_recv() {
            Ok(msg) => Some(msg),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<Message> {
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => Some(msg),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Number of staged messages.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// True when no messages are staged.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }

    /// Closes the buffer: subsequent `push` calls drop their message, and
    /// `pop` returns `None` once the remaining messages drain. Idempotent.
    pub fn close(&self) {
        self.tx.lock().take();
    }

    /// True once [`Buffer::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.tx.lock().is_none()
    }
}

impl Default for Buffer {
    fn default() -> Self {
        Buffer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::sync::Arc;
    use xingtian_message::{Header, MessageKind, ProcessId};

    fn msg(tag: u8) -> Message {
        let h = Header::new(ProcessId::explorer(0), vec![ProcessId::learner(0)], MessageKind::Rollout);
        Message::new(h, Bytes::from(vec![tag; 8]))
    }

    #[test]
    fn push_pop_round_trips_in_order() {
        let b = Buffer::new();
        assert!(b.push(msg(1)));
        assert!(b.push(msg(2)));
        assert_eq!(b.len(), 2);
        assert_eq!(b.pop().unwrap().body[0], 1);
        assert_eq!(b.pop().unwrap().body[0], 2);
        assert!(b.is_empty());
    }

    #[test]
    fn try_pop_on_empty_returns_none() {
        let b = Buffer::new();
        assert!(b.try_pop().is_none());
    }

    #[test]
    fn pop_timeout_expires() {
        let b = Buffer::new();
        assert!(b.pop_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn pop_blocks_until_push() {
        let b = Arc::new(Buffer::new());
        let b2 = Arc::clone(&b);
        let t = std::thread::spawn(move || b2.pop().unwrap().body[0]);
        std::thread::sleep(Duration::from_millis(20));
        b.push(msg(7));
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn close_drains_then_ends() {
        let b = Buffer::new();
        b.push(msg(1));
        b.close();
        assert!(!b.push(msg(2)), "push after close is dropped");
        assert_eq!(b.pop().unwrap().body[0], 1);
        assert!(b.pop().is_none());
        assert!(b.is_closed());
    }

    #[test]
    fn concurrent_producers_deliver_everything() {
        let b = Arc::new(Buffer::new());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    assert!(b.push(msg(t)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut counts = [0usize; 4];
        for _ in 0..400 {
            let m = b.pop().unwrap();
            counts[m.body[0] as usize] += 1;
        }
        assert_eq!(counts, [100, 100, 100, 100]);
    }

    #[test]
    fn close_unblocks_pushers_without_leaking_bodies() {
        // Producers block on a full bounded buffer; close() must wake every
        // one of them (returning false), and afterwards exactly the staged
        // messages — no more, no fewer — are poppable. With the single-channel
        // design a rejected push cannot strand its body anywhere.
        let b = Arc::new(Buffer::with_capacity(2));
        assert!(b.push(msg(0)));
        assert!(b.push(msg(1)));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || b.push(msg(t))));
        }
        // Give the pushers time to block on the full buffer, then close.
        std::thread::sleep(Duration::from_millis(100));
        b.close();
        for h in handles {
            assert!(!h.join().unwrap(), "blocked push observes closure and drops its message");
        }
        let mut drained = 0;
        while b.pop().is_some() {
            drained += 1;
        }
        assert_eq!(drained, 2, "exactly the pre-close messages drain");
        assert!(b.is_empty(), "no stranded bodies after close");
    }
}
