//! Router-level fault injection hooks.
//!
//! The router consults an installed [`RouteInjector`] exactly once per
//! *(message, destination)* pair, at the message's final-hop broker: local
//! destinations at the source broker, remote destinations at the broker of
//! the machine that hosts them (the uplink's `deliver_local`). The injector
//! returns an [`InjectDecision`] and the router executes it with the same
//! credit discipline as organic failures — a dropped delivery burns the
//! destination's store fetch credit, a duplicated delivery mints the extra
//! credits before the copies are enqueued, and a delayed delivery parks the
//! header on the broker's delay line without holding up the router thread.
//!
//! The hooks are deliberately mechanism-only: *policy* (which routes, which
//! probabilities, which seed) lives in `xt-fault`, which implements
//! [`RouteInjector`] on top of a deterministic plan. With no injector
//! installed the hot path pays one lock-free snapshot load and nothing else.

use crate::router::{IdQueueMsg, RoutingTable};
use crate::store::ObjectStore;
use crossbeam_channel::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xingtian_message::{Header, ProcessId};

/// What the router should do with one delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectDecision {
    /// Deliver normally.
    Deliver,
    /// Silently drop the delivery (the destination's store credit is burned,
    /// so nothing leaks; the drop is tallied in
    /// [`InjectionStats::dropped`]).
    Drop,
    /// Deliver the original plus `n` duplicate copies.
    Duplicate(u32),
    /// Deliver after the given delay, off the router thread.
    Delay(Duration),
}

/// A fault-injection policy consulted per (message, destination).
///
/// Implementations must be cheap and thread-safe: the router calls `decide`
/// inline on its delivery path (and uplink threads call it on the final hop).
pub trait RouteInjector: Send + Sync + std::fmt::Debug {
    /// Decides the fate of delivering `header` to `dst`.
    fn decide(&self, header: &Header, dst: ProcessId) -> InjectDecision;
}

/// Counts of injected faults actually executed by a broker's router.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// Deliveries dropped by injection.
    pub dropped: u64,
    /// Extra duplicate copies delivered.
    pub duplicated: u64,
    /// Deliveries routed through the delay line.
    pub delayed: u64,
}

/// A delivery parked on the delay line.
#[derive(Debug)]
pub(crate) struct DelayedDelivery {
    pub(crate) header: Arc<Header>,
    pub(crate) dst: ProcessId,
    pub(crate) deliver_at: Instant,
}

/// Runs a broker's delay line: parks delayed deliveries until they come due,
/// then pushes them into the destination ID queue *without* re-consulting the
/// injector (a delayed message is not re-dropped or re-delayed). When the
/// broker shuts the line down (sender dropped), everything still pending is
/// flushed immediately so no store credit is ever stranded.
pub(crate) fn run_delay_line(
    rx: Receiver<DelayedDelivery>,
    store: Arc<ObjectStore>,
    table: Arc<RoutingTable>,
) {
    let mut pending: Vec<DelayedDelivery> = Vec::new();
    loop {
        let next_due = pending.iter().map(|d| d.deliver_at).min();
        let incoming = match next_due {
            Some(due) => {
                match rx.recv_timeout(due.saturating_duration_since(Instant::now())) {
                    Ok(d) => Some(d),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            None => match rx.recv() {
                Ok(d) => Some(d),
                Err(_) => break,
            },
        };
        pending.extend(incoming);
        let now = Instant::now();
        let mut i = 0;
        while i < pending.len() {
            if pending[i].deliver_at <= now {
                let d = pending.swap_remove(i);
                deliver_now(&store, &table, d);
            } else {
                i += 1;
            }
        }
    }
    // Shutdown flush: release everything still parked.
    while let Ok(d) = rx.try_recv() {
        pending.push(d);
    }
    for d in pending {
        deliver_now(&store, &table, d);
    }
}

fn deliver_now(store: &ObjectStore, table: &RoutingTable, d: DelayedDelivery) {
    let queues = table.id_queues.load();
    let delivered = queues
        .get(&d.dst)
        .map(|q| q.send(IdQueueMsg::Deliver(Arc::clone(&d.header))).is_ok())
        .unwrap_or(false);
    if !delivered {
        // Same accounting as the router's failed-delivery path: a delivery
        // flushed at a destination that already deregistered (graceful exit
        // or elastic retirement) is a discard, not a drop.
        if table.departed.lock().contains(&d.dst) {
            table.departed_discards.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        } else {
            table.add_dropped(1);
        }
        if let Some(id) = d.header.object_id {
            store.drop_credit(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Broker;
    use crate::CommConfig;
    use bytes::Bytes;
    use netsim::Cluster;
    use std::sync::atomic::{AtomicU64, Ordering};
    use xingtian_message::{Message, MessageKind};

    /// Drops the first `drop_first` rollouts per destination, then delivers.
    #[derive(Debug)]
    struct DropFirst {
        drop_first: u64,
        seen: AtomicU64,
    }

    impl RouteInjector for DropFirst {
        fn decide(&self, header: &Header, _dst: ProcessId) -> InjectDecision {
            if header.kind != MessageKind::Rollout {
                return InjectDecision::Deliver;
            }
            if self.seen.fetch_add(1, Ordering::Relaxed) < self.drop_first {
                InjectDecision::Drop
            } else {
                InjectDecision::Deliver
            }
        }
    }

    #[derive(Debug)]
    struct Always(InjectDecision);

    impl RouteInjector for Always {
        fn decide(&self, header: &Header, _dst: ProcessId) -> InjectDecision {
            if header.kind == MessageKind::Rollout {
                self.0
            } else {
                InjectDecision::Deliver
            }
        }
    }

    fn rollout(body: &'static [u8]) -> Message {
        let h = Header::new(ProcessId::explorer(0), vec![ProcessId::learner(0)], MessageKind::Rollout);
        Message::new(h, Bytes::from_static(body))
    }

    #[test]
    fn injected_drops_burn_credits_without_leaking() {
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        broker.set_injector(Arc::new(DropFirst { drop_first: 2, seen: AtomicU64::new(0) }));
        let e = broker.endpoint(ProcessId::explorer(0));
        let l = broker.endpoint(ProcessId::learner(0));
        for body in [b"a1" as &'static [u8], b"a2", b"a3"] {
            e.send(rollout(body));
        }
        let got = l.recv_timeout(Duration::from_secs(5)).expect("third rollout survives");
        assert_eq!(&got.body[..], b"a3");
        assert!(l.try_recv().is_none());
        assert_eq!(broker.injection_stats().dropped, 2);
        drop(e);
        drop(l);
        broker.shutdown();
        assert!(broker.store().is_empty(), "dropped deliveries burned their credits");
    }

    #[test]
    fn injected_duplicates_mint_matching_credits() {
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        broker.set_injector(Arc::new(Always(InjectDecision::Duplicate(2))));
        let e = broker.endpoint(ProcessId::explorer(0));
        let l = broker.endpoint(ProcessId::learner(0));
        e.send(rollout(b"dup"));
        for _ in 0..3 {
            let m = l.recv_timeout(Duration::from_secs(5)).expect("original + 2 duplicates");
            assert_eq!(&m.body[..], b"dup");
        }
        assert!(l.try_recv().is_none(), "exactly 3 copies");
        assert_eq!(broker.injection_stats().duplicated, 2);
        drop(e);
        drop(l);
        broker.shutdown();
        assert!(broker.store().is_empty(), "every minted credit was spent");
    }

    #[test]
    fn injected_delay_defers_delivery_without_losing_it() {
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        broker.set_injector(Arc::new(Always(InjectDecision::Delay(Duration::from_millis(50)))));
        let e = broker.endpoint(ProcessId::explorer(0));
        let l = broker.endpoint(ProcessId::learner(0));
        let t0 = Instant::now();
        e.send(rollout(b"late"));
        let got = l.recv_timeout(Duration::from_secs(5)).expect("delayed, not lost");
        assert_eq!(&got.body[..], b"late");
        assert!(t0.elapsed() >= Duration::from_millis(50), "delivery was actually deferred");
        assert_eq!(broker.injection_stats().delayed, 1);
        drop(e);
        drop(l);
        broker.shutdown();
        assert!(broker.store().is_empty());
    }

    #[test]
    fn shutdown_flushes_parked_deliveries() {
        // A delivery parked far in the future must not strand its store
        // credit when the broker shuts down before it comes due.
        let broker = Broker::new(0, Cluster::single(), CommConfig::default());
        broker.set_injector(Arc::new(Always(InjectDecision::Delay(Duration::from_secs(300)))));
        let e = broker.endpoint(ProcessId::explorer(0));
        let l = broker.endpoint(ProcessId::learner(0));
        e.send(rollout(b"parked"));
        // Wait until the delivery reaches the delay line.
        let t0 = Instant::now();
        while broker.injection_stats().delayed == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(broker.injection_stats().delayed, 1);
        drop(e);
        drop(l);
        broker.shutdown();
        assert!(broker.store().is_empty(), "flush on shutdown settles the credit");
    }
}
