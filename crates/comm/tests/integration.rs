//! Channel integration tests: compression over the simulated NIC, fabric
//! reconfiguration, and memory accounting under broadcast fan-out.

use bytes::Bytes;
use netsim::{Cluster, ClusterSpec};
use std::time::Duration;
use xingtian_comm::{connect_brokers, Broker, CommConfig, Compression};
use xingtian_message::{MessageKind, ProcessId};

fn compressible_payload(len: usize) -> Bytes {
    // Small dynamic range of f32-like words: LZ4 compresses this heavily.
    let mut v = Vec::with_capacity(len);
    for i in 0..len / 4 {
        v.extend_from_slice(&((i % 7) as f32).to_le_bytes());
    }
    v.resize(len, 0);
    Bytes::from(v)
}

#[test]
fn compression_reduces_nic_traffic() {
    let spec = ClusterSpec::default().machines(2).nic_bandwidth(1e9).latency_secs(0.0);
    let payload = compressible_payload(4 * 1024 * 1024);

    let mut wire_bytes = Vec::new();
    for compression in [Compression::Off, Compression::Threshold(1 << 20)] {
        let cluster = Cluster::new(spec.clone());
        let b0 = Broker::new(0, cluster.clone(), CommConfig { compression, ..CommConfig::default() });
        let b1 = Broker::new(1, cluster, CommConfig { compression, ..CommConfig::default() });
        let learner = b0.endpoint(ProcessId::learner(0));
        let explorer = b1.endpoint(ProcessId::explorer(0));
        connect_brokers(&[b0.clone(), b1.clone()]);

        explorer.send_to(vec![ProcessId::learner(0)], MessageKind::Rollout, payload.clone());
        let got = learner.recv_timeout(Duration::from_secs(10)).expect("delivered");
        assert_eq!(got.body, payload, "payload survives compression round trip");
        wire_bytes.push(b1.cluster().machine(1).tx().stats().bytes());
        drop(explorer);
        drop(learner);
        b0.shutdown();
        b1.shutdown();
    }
    assert_eq!(wire_bytes[0], payload.len() as u64, "uncompressed sends raw bytes");
    assert!(
        wire_bytes[1] < wire_bytes[0] / 4,
        "LZ4 should shrink the wire traffic 4x+: {} vs {}",
        wire_bytes[1],
        wire_bytes[0]
    );
}

#[test]
fn endpoints_added_after_connection_become_routable() {
    let cluster = Cluster::new(ClusterSpec::default().machines(2).nic_bandwidth(1e9).latency_secs(0.0));
    let b0 = Broker::new(0, cluster.clone(), CommConfig::default());
    let b1 = Broker::new(1, cluster, CommConfig::default());
    connect_brokers(&[b0.clone(), b1.clone()]);

    // New processes join after the fabric exists; re-running connect_brokers
    // merges the fresh routes without duplicating uplinks.
    let learner = b0.endpoint(ProcessId::learner(0));
    let explorer = b1.endpoint(ProcessId::explorer(0));
    connect_brokers(&[b0.clone(), b1.clone()]);

    explorer.send_to(vec![ProcessId::learner(0)], MessageKind::Rollout, Bytes::from_static(b"late"));
    let got = learner.recv_timeout(Duration::from_secs(10)).expect("late route works");
    assert_eq!(&got.body[..], b"late");
    drop(explorer);
    drop(learner);
    b0.shutdown();
    b1.shutdown();
}

#[test]
fn broadcast_keeps_one_resident_copy() {
    // Fan-out to many explorers must not multiply resident memory: one body
    // in the store regardless of destination count, freed after the last
    // fetch (the paper's "no significant extra memory overheads").
    let broker = Broker::new(0, Cluster::single(), CommConfig::uncompressed());
    let learner = broker.endpoint(ProcessId::learner(0));
    let explorers: Vec<_> = (0..8).map(|i| broker.endpoint(ProcessId::explorer(i))).collect();
    let body = Bytes::from(vec![1u8; 1024 * 1024]);
    learner.send_to((0..8).map(ProcessId::explorer).collect(), MessageKind::Parameters, body.clone());

    // While in flight, the store never holds more than one copy.
    let mut peak = 0;
    for e in &explorers {
        let m = e.recv_timeout(Duration::from_secs(10)).expect("broadcast arrives");
        assert_eq!(m.body.len(), body.len());
        peak = peak.max(broker.store().peak_bytes());
    }
    assert!(
        peak <= 2 * body.len(),
        "store held {} bytes for an 8-way broadcast of {}",
        peak,
        body.len()
    );
    drop(explorers);
    drop(learner);
    broker.shutdown();
}

#[test]
fn large_blob_compression_does_not_stall_small_messages() {
    // A >1 MiB body used to be LZ4-compressed inline by the sender thread,
    // head-of-line blocking every message queued behind it. With the
    // compression offload thread, the large body detours through the broker's
    // offload queue while small messages flow straight to the store — so the
    // 100 small messages sent *after* the blob must overtake it.
    let broker = Broker::new(0, Cluster::single(), CommConfig::default());
    let explorer = broker.endpoint(ProcessId::explorer(0));
    let learner = broker.endpoint(ProcessId::learner(0));

    let blob = compressible_payload(32 * 1024 * 1024);
    explorer.send_to(vec![ProcessId::learner(0)], MessageKind::Parameters, blob.clone());
    for i in 0..100u8 {
        explorer.send_to(vec![ProcessId::learner(0)], MessageKind::Rollout, Bytes::from(vec![i]));
    }

    let mut blob_rank = None;
    let mut smalls = 0usize;
    for rank in 0..101usize {
        let m = learner.recv_timeout(Duration::from_secs(60)).expect("all messages delivered");
        match m.header.kind {
            MessageKind::Parameters => {
                assert_eq!(m.body, blob, "blob survives the offload round trip");
                blob_rank = Some(rank);
            }
            _ => smalls += 1,
        }
    }
    assert_eq!(smalls, 100);
    let blob_rank = blob_rank.expect("blob delivered");
    // The blob takes tens of milliseconds to compress; the smalls take
    // microseconds each to submit. At least half of them must be delivered
    // ahead of it (pre-offload, the blob was always delivered at rank 0).
    assert!(
        blob_rank >= 50,
        "large blob delivered at rank {blob_rank}; small messages were stalled behind its compression"
    );
    drop(explorer);
    drop(learner);
    broker.shutdown();
}

#[test]
fn chunk_parallel_channel_matches_serial_decode() {
    // Differential check at the channel level: a body large enough for many
    // chunks arrives byte-identical whether decompressed by the receiver's
    // pool-parallel path (in the channel) or decoded serially here from the
    // same container.
    let payload = compressible_payload(8 * 1024 * 1024);
    let container = xingtian_comm::pool::compress_chunked_parallel(
        xingtian_comm::pool::shared_pool(),
        &payload,
    );
    let serial = xingtian_message::chunk::decompress_chunked(&container).expect("serial decode");
    assert_eq!(Bytes::from(serial), payload);

    let broker = Broker::new(0, Cluster::single(), CommConfig::default());
    let explorer = broker.endpoint(ProcessId::explorer(0));
    let learner = broker.endpoint(ProcessId::learner(0));
    explorer.send_to(vec![ProcessId::learner(0)], MessageKind::Rollout, payload.clone());
    let got = learner.recv_timeout(Duration::from_secs(30)).expect("delivered");
    assert_eq!(got.body, payload, "channel (parallel) decode matches original");
    drop(explorer);
    drop(learner);
    broker.shutdown();
}

#[test]
fn bidirectional_traffic_flows_concurrently() {
    // Rollouts up, parameters down, both directions live at once.
    let broker = Broker::new(0, Cluster::single(), CommConfig::default());
    let learner = broker.endpoint(ProcessId::learner(0));
    let explorer = broker.endpoint(ProcessId::explorer(0));
    for i in 0..20u8 {
        explorer.send_to(vec![ProcessId::learner(0)], MessageKind::Rollout, Bytes::from(vec![i]));
        learner.send_to(vec![ProcessId::explorer(0)], MessageKind::Parameters, Bytes::from(vec![100 + i]));
    }
    for i in 0..20u8 {
        assert_eq!(learner.recv_timeout(Duration::from_secs(5)).unwrap().body[0], i);
        assert_eq!(explorer.recv_timeout(Duration::from_secs(5)).unwrap().body[0], 100 + i);
    }
    drop(explorer);
    drop(learner);
    broker.shutdown();
}

#[test]
fn broadcast_to_256_explorers_across_two_machines_drops_nothing() {
    // The control-plane stress case the fast path is built for: a learner on
    // machine 0 broadcasts parameters to 256 explorers split across two
    // machines, several rounds. Every explorer sees every round exactly once
    // and in order, nothing is dropped, and both object stores are empty once
    // all credits are consumed (128 local fetches + one uplink fetch on the
    // source; 128 fetches per envelope on the peer).
    const EXPLORERS: u32 = 256;
    const ROUNDS: u8 = 4;
    let cluster = Cluster::new(
        ClusterSpec::default().machines(2).nic_bandwidth(1e12).latency_secs(0.0),
    );
    let b0 = Broker::new(0, cluster.clone(), CommConfig::uncompressed());
    let b1 = Broker::new(1, cluster, CommConfig::uncompressed());
    let learner = b0.endpoint(ProcessId::learner(0));
    let explorers: Vec<_> = (0..EXPLORERS)
        .map(|i| {
            let broker = if i % 2 == 0 { &b0 } else { &b1 };
            broker.endpoint(ProcessId::explorer(i))
        })
        .collect();
    connect_brokers(&[b0.clone(), b1.clone()]);

    let dst: Vec<ProcessId> = (0..EXPLORERS).map(ProcessId::explorer).collect();
    for round in 0..ROUNDS {
        assert!(learner.send_to(
            dst.clone(),
            MessageKind::Parameters,
            Bytes::from(vec![round; 1024]),
        ));
    }
    for e in &explorers {
        for round in 0..ROUNDS {
            let m = e
                .recv_timeout(Duration::from_secs(60))
                .unwrap_or_else(|| panic!("{} missed round {round}", e.pid()));
            assert_eq!(m.body[0], round, "rounds arrive in order at {}", e.pid());
            assert_eq!(m.body.len(), 1024);
        }
        assert!(e.try_recv().is_none(), "exactly one copy per round at {}", e.pid());
    }
    assert_eq!(b0.dropped(), 0, "source broker dropped nothing");
    assert_eq!(b1.dropped(), 0, "peer broker dropped nothing");
    assert!(b0.store().is_empty(), "every source-store credit was consumed");
    assert!(b1.store().is_empty(), "every peer-store credit was consumed");

    drop(learner);
    drop(explorers);
    b0.shutdown();
    b1.shutdown();
}
