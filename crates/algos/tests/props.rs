//! Property-based tests of the RL math kernels and data structures.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xingtian_algos::gae::{gae, normalize, GaeInput};
use xingtian_algos::payload::RolloutStep;
use xingtian_algos::sumtree::SumTree;
use xingtian_algos::vtrace::{vtrace, VtraceInput};
use xingtian_algos::{PrioritizedReplay, ReplayBuffer};

fn step(tag: f32) -> RolloutStep {
    RolloutStep {
        observation: vec![tag],
        action: 0,
        reward: tag,
        done: false,
        behavior_logits: vec![],
        value: 0.0,
        next_observation: None,
    }
}

fn segment() -> impl Strategy<Value = (Vec<f32>, Vec<f32>, Vec<bool>, f32)> {
    (1usize..64).prop_flat_map(|n| {
        (
            proptest::collection::vec(-5.0f32..5.0, n),
            proptest::collection::vec(-5.0f32..5.0, n),
            proptest::collection::vec(any::<bool>(), n),
            -5.0f32..5.0,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn vtrace_on_policy_equals_gae_lambda_one(
        (rewards, values, dones, boot) in segment(),
        gamma in 0.0f32..1.0,
    ) {
        // With π == µ and ρ̄ = c̄ = ∞, V-trace targets are the n-step returns,
        // which equal GAE(λ=1) advantages + values.
        let n = rewards.len();
        let logp = vec![-0.5f32; n];
        let vt = vtrace(&VtraceInput {
            behavior_log_probs: &logp,
            target_log_probs: &logp,
            rewards: &rewards,
            values: &values,
            dones: &dones,
            bootstrap_value: boot,
            gamma,
            rho_bar: f32::INFINITY,
            c_bar: f32::INFINITY,
        });
        let g = gae(&GaeInput {
            rewards: &rewards,
            values: &values,
            dones: &dones,
            bootstrap_value: boot,
            gamma,
            lambda: 1.0,
        });
        for (i, (adv, v)) in g.advantages.iter().zip(&values).enumerate() {
            let expect = adv + v;
            prop_assert!((vt.vs[i] - expect).abs() < 1e-3,
                "i={i}: vtrace {} vs gae {}", vt.vs[i], expect);
        }
    }

    #[test]
    fn vtrace_outputs_are_finite(
        (rewards, values, dones, boot) in segment(),
        gamma in 0.0f32..1.0,
        offpolicy in -2.0f32..2.0,
    ) {
        let n = rewards.len();
        let behavior = vec![-0.7f32; n];
        let target: Vec<f32> = behavior.iter().map(|b| b + offpolicy).collect();
        let vt = vtrace(&VtraceInput {
            behavior_log_probs: &behavior,
            target_log_probs: &target,
            rewards: &rewards,
            values: &values,
            dones: &dones,
            bootstrap_value: boot,
            gamma,
            rho_bar: 1.0,
            c_bar: 1.0,
        });
        prop_assert!(vt.vs.iter().all(|v| v.is_finite()));
        prop_assert!(vt.pg_advantages.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn gae_is_zero_for_perfect_value_function(
        n in 1usize..32,
        gamma in 0.1f32..0.99,
        lambda in 0.0f32..1.0,
    ) {
        // If V exactly satisfies the Bellman identity for constant reward r,
        // every TD error is zero, so every advantage is zero.
        let r = 1.0f32;
        let v = r / (1.0 - gamma); // fixed point of V = r + γV
        let rewards = vec![r; n];
        let values = vec![v; n];
        let dones = vec![false; n];
        let out = gae(&GaeInput {
            rewards: &rewards,
            values: &values,
            dones: &dones,
            bootstrap_value: v,
            gamma,
            lambda,
        });
        for a in &out.advantages {
            prop_assert!(a.abs() < 1e-3, "advantage {a} should vanish");
        }
    }

    #[test]
    fn normalize_bounds_mean_and_std(mut v in proptest::collection::vec(-1e3f32..1e3, 2..128)) {
        normalize(&mut v);
        let n = v.len() as f32;
        let mean = v.iter().sum::<f32>() / n;
        prop_assert!(mean.abs() < 1e-2, "mean {mean}");
        prop_assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn replay_never_exceeds_capacity(capacity in 1usize..64, pushes in 0usize..256) {
        let mut b = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            b.push(step(i as f32));
        }
        prop_assert!(b.len() <= capacity);
        prop_assert_eq!(b.len(), pushes.min(capacity));
        prop_assert_eq!(b.total_inserted(), pushes as u64);
    }

    #[test]
    fn prioritized_sampling_is_always_in_range(
        capacity in 1usize..64,
        pushes in 1usize..128,
        batch in 1usize..32,
    ) {
        let mut b = PrioritizedReplay::new(capacity, 0.6);
        for i in 0..pushes {
            b.push(step(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(0);
        for pick in b.sample(batch, 0.4, &mut rng) {
            prop_assert!(pick.slot < b.len());
            prop_assert!((0.0..=1.0 + 1e-6).contains(&pick.weight));
            prop_assert!(pick.seq < pushes as u64);
        }
    }

    #[test]
    fn sum_tree_total_matches_leaf_sum(
        updates in proptest::collection::vec((0usize..32, 0.0f64..100.0), 1..64),
    ) {
        let mut t = SumTree::new(32);
        let mut leaves = vec![0.0f64; t.capacity()];
        for (i, p) in updates {
            t.set(i, p);
            leaves[i] = p;
        }
        let sum: f64 = leaves.iter().sum();
        prop_assert!((t.total() - sum).abs() < 1e-6);
        // Every sampled mass maps to a leaf with positive priority.
        if sum > 0.0 {
            for k in 0..16 {
                let mass = sum * (k as f64 + 0.5) / 16.0;
                let leaf = t.find(mass);
                prop_assert!(leaves[leaf] > 0.0, "found empty leaf {leaf}");
            }
        }
    }
}
