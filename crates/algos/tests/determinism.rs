//! Pool-parallel minibatch gradients must be *bitwise* deterministic: the
//! same rollouts drive the learner to identical parameters whether shards run
//! serially on the caller, on a single worker, or spread over many workers.
//! The fixed-shard-order reduction in `ParGrad` is what makes this hold — a
//! first-come-first-served sum would reassociate floating-point adds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xingtian_algos::api::Algorithm;
use xingtian_algos::payload::{RolloutBatch, RolloutStep};
use xingtian_algos::{
    A2cAlgorithm, A2cConfig, ImpalaAlgorithm, ImpalaConfig, PpoAlgorithm, PpoConfig,
};
use xingtian_comm::pool::WorkPool;

const DIM: usize = 6;
const NA: usize = 3;

fn make_steps(rng: &mut StdRng, n: usize) -> Vec<RolloutStep> {
    (0..n)
        .map(|i| RolloutStep {
            observation: (0..DIM).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            action: rng.gen_range(0..NA as u32),
            reward: rng.gen_range(-1.0..1.0),
            done: i % 23 == 22,
            behavior_logits: (0..NA).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            value: rng.gen_range(-1.0..1.0),
            next_observation: None,
        })
        .collect()
}

fn bootstrap(rng: &mut StdRng) -> Vec<f32> {
    (0..DIM).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn leaked_pool(workers: usize) -> &'static WorkPool {
    Box::leak(Box::new(WorkPool::new(workers)))
}

fn bits(params: &[f32]) -> Vec<u32> {
    params.iter().map(|p| p.to_bits()).collect()
}

/// Two training iterations of PPO (320-step batch → 5 gradient shards).
fn ppo_params(pool: Option<&'static WorkPool>) -> Vec<u32> {
    let mut c = PpoConfig::new(DIM, NA);
    c.hidden = vec![32];
    c.num_explorers = 2;
    c.rollout_len = 160;
    c.minibatch = 96;
    c.epochs = 2;
    let mut alg = PpoAlgorithm::with_pool(c.clone(), pool);
    for iter in 0..2u64 {
        let v = alg.version();
        let mut rng = StdRng::seed_from_u64(100 + iter);
        for e in 0..c.num_explorers {
            alg.on_rollout(RolloutBatch {
                explorer: e,
                param_version: v,
                steps: make_steps(&mut rng, c.rollout_len),
                bootstrap_observation: bootstrap(&mut rng),
            });
        }
        alg.try_train().expect("iteration batch complete");
    }
    bits(&alg.param_blob().params)
}

fn a2c_params(pool: Option<&'static WorkPool>) -> Vec<u32> {
    let mut c = A2cConfig::new(DIM, NA);
    c.hidden = vec![32];
    c.num_explorers = 2;
    c.rollout_len = 160;
    let mut alg = A2cAlgorithm::with_pool(c.clone(), pool);
    for iter in 0..2u64 {
        let v = alg.version();
        let mut rng = StdRng::seed_from_u64(300 + iter);
        for e in 0..c.num_explorers {
            alg.on_rollout(RolloutBatch {
                explorer: e,
                param_version: v,
                steps: make_steps(&mut rng, c.rollout_len),
                bootstrap_observation: bootstrap(&mut rng),
            });
        }
        alg.try_train().expect("iteration batch complete");
    }
    bits(&alg.param_blob().params)
}

fn impala_params(pool: Option<&'static WorkPool>) -> Vec<u32> {
    let mut c = ImpalaConfig::new(DIM, NA);
    c.hidden = vec![32];
    let mut alg = ImpalaAlgorithm::with_pool(c, pool);
    for iter in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(500 + iter);
        alg.on_rollout(RolloutBatch {
            explorer: 0,
            param_version: 0,
            steps: make_steps(&mut rng, 320),
            bootstrap_observation: bootstrap(&mut rng),
        });
        alg.try_train().expect("one batch is enough");
    }
    bits(&alg.param_blob().params)
}

#[test]
fn ppo_training_is_bitwise_deterministic_across_worker_counts() {
    let reference = ppo_params(None);
    for workers in [1, 2, 5] {
        assert_eq!(ppo_params(Some(leaked_pool(workers))), reference, "workers = {workers}");
    }
}

#[test]
fn a2c_training_is_bitwise_deterministic_across_worker_counts() {
    let reference = a2c_params(None);
    for workers in [1, 2, 5] {
        assert_eq!(a2c_params(Some(leaked_pool(workers))), reference, "workers = {workers}");
    }
}

#[test]
fn impala_training_is_bitwise_deterministic_across_worker_counts() {
    let reference = impala_params(None);
    for workers in [1, 2, 5] {
        assert_eq!(impala_params(Some(leaked_pool(workers))), reference, "workers = {workers}");
    }
}

#[test]
fn repeated_runs_are_bitwise_identical() {
    // Same pool width twice: guards against hidden run-to-run state
    // (scheduling order, buffer reuse) leaking into the math.
    let a = ppo_params(Some(leaked_pool(3)));
    let b = ppo_params(Some(leaked_pool(3)));
    assert_eq!(a, b);
}
