//! The warmed-up training step must not touch the heap. A counting global
//! allocator wraps `System`; after a few warm-up sessions grow every
//! persistent buffer to its steady-state size, one more uniform-replay DQN
//! session — and one raw forward/backward/Adam step — must record zero
//! allocations.
//!
//! This file holds a single `#[test]` on purpose: the allocator counter is
//! process-global, and a second test running on another thread would bleed
//! its allocations into the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use tinynn::optim::Adam;
use tinynn::{Activation, Mlp, Workspace};
use xingtian_algos::api::Algorithm;
use xingtian_algos::payload::{RolloutBatch, RolloutStep};
use xingtian_algos::{DqnAlgorithm, DqnConfig};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ENABLED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
    f();
    ENABLED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

const DIM: usize = 4;
const NA: usize = 2;

fn dqn_rollout(n: usize) -> RolloutBatch {
    let steps = (0..n)
        .map(|i| RolloutStep {
            observation: (0..DIM).map(|d| ((i * 7 + d) % 13) as f32 * 0.1 - 0.6).collect(),
            action: (i % NA) as u32,
            reward: if i % 5 == 0 { 1.0 } else { 0.0 },
            done: i % 31 == 30,
            behavior_logits: Vec::new(),
            value: 0.0,
            next_observation: Some(
                (0..DIM).map(|d| ((i * 11 + d) % 13) as f32 * 0.1 - 0.6).collect(),
            ),
        })
        .collect();
    RolloutBatch {
        explorer: 0,
        param_version: 0,
        steps,
        bootstrap_observation: vec![0.0; DIM],
    }
}

#[test]
fn warmed_train_step_makes_zero_heap_allocations() {
    // --- Phase A: full DQN uniform-replay training session -----------------
    let mut config = DqnConfig::new(DIM, NA);
    config.hidden = vec![16];
    config.warmup_steps = 64;
    config.train_every_inserts = 4;
    config.batch_size = 32;
    config.double = true;
    // Keep the session pure compute: no broadcast Vec, no target sync inside
    // the measured window.
    config.broadcast_every = 1_000_000;
    config.target_sync_every = 1_000_000;
    let mut alg = DqnAlgorithm::new(config);

    // 400 inserts → 100 training credits at train_every_inserts = 4.
    alg.on_rollout(dqn_rollout(400));

    // Warm-up: grow the staging arena, workspaces, and index buffer to
    // steady state.
    for _ in 0..8 {
        alg.try_train().expect("training credits available");
    }

    let allocs = count_allocs(|| {
        alg.try_train().expect("training credits available");
    });
    assert_eq!(allocs, 0, "warmed DQN train session allocated {allocs} times");

    // --- Phase B: raw workspace forward/backward/optimizer step ------------
    let batch = 64;
    let mut net = Mlp::new(&[DIM, 32, NA], Activation::Tanh, 9);
    let mut opt = Adam::new(net.num_params(), 1e-3);
    let mut ws = Workspace::new();
    let mut grads = vec![0.0f32; net.num_params()];
    let x: Vec<f32> = (0..batch * DIM).map(|i| (i % 17) as f32 * 0.05 - 0.4).collect();
    let mut dout = vec![0.0f32; batch * NA];

    // Warm the workspace, then measure one full step.
    for _ in 0..3 {
        let out = net.forward_ws(&x, batch, &mut ws);
        for (i, d) in dout.iter_mut().enumerate() {
            *d = out[i] * (1.0 / batch as f32);
        }
        net.backward_ws(&x, batch, &dout, &mut ws, &mut grads);
        opt.step(net.params_mut(), &grads);
    }

    let allocs = count_allocs(|| {
        let out = net.forward_ws(&x, batch, &mut ws);
        for (i, d) in dout.iter_mut().enumerate() {
            *d = out[i] * (1.0 / batch as f32);
        }
        net.backward_ws(&x, batch, &dout, &mut ws, &mut grads);
        opt.step(net.params_mut(), &grads);
    });
    assert_eq!(allocs, 0, "raw workspace train step allocated {allocs} times");
}
