//! Advantage Actor-Critic (A2C; the synchronous variant of Mnih et al.
//! 2016's A3C) — actor-critic, on-policy.
//!
//! Part of the algorithm-zoo breadth the paper describes in §4.2. A2C shares
//! PPO's synchronous execution model (the learner waits for one rollout from
//! every explorer, trains, broadcasts) but performs a *single* vanilla
//! policy-gradient step on GAE advantages instead of PPO's clipped multi-
//! epoch surrogate — a useful ablation of how much the communication layer
//! contributes independent of the optimizer sophistication.

use crate::api::{ActionSelection, Agent, Algorithm, SyncMode, TrainReport};
use crate::batch::taken_log_probs;
use crate::gae::{gae, normalize, GaeInput};
use crate::payload::{ParamBlob, RolloutBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tinynn::ops::{log_softmax, mse, sample_categorical, softmax};
use tinynn::optim::{clip_global_norm, Adam};
use tinynn::{Activation, Matrix, Mlp};

/// A2C hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct A2cConfig {
    /// Observation dimensionality.
    pub obs_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Hidden widths of policy and value networks.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ.
    pub lambda: f32,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Gradient global-norm clip.
    pub max_grad_norm: f32,
    /// Number of explorers the learner waits for each iteration.
    pub num_explorers: u32,
    /// Steps per explorer rollout.
    pub rollout_len: usize,
    /// RNG / initialization seed.
    pub seed: u64,
}

impl A2cConfig {
    /// Sensible defaults for the given environment dimensions.
    pub fn new(obs_dim: usize, num_actions: usize) -> Self {
        A2cConfig {
            obs_dim,
            num_actions,
            hidden: vec![64, 64],
            lr: 7e-4,
            gamma: 0.99,
            lambda: 0.95,
            entropy_coef: 0.01,
            value_coef: 0.5,
            max_grad_norm: 0.5,
            num_explorers: 4,
            rollout_len: 100,
            seed: 0,
        }
    }

    fn policy_sizes(&self) -> Vec<usize> {
        let mut s = vec![self.obs_dim];
        s.extend_from_slice(&self.hidden);
        s.push(self.num_actions);
        s
    }

    fn value_sizes(&self) -> Vec<usize> {
        let mut s = vec![self.obs_dim];
        s.extend_from_slice(&self.hidden);
        s.push(1);
        s
    }
}

/// Learner-side A2C.
#[derive(Debug)]
pub struct A2cAlgorithm {
    config: A2cConfig,
    policy: Mlp,
    value: Mlp,
    opt_policy: Adam,
    opt_value: Adam,
    staged: Vec<RolloutBatch>,
    staged_steps: usize,
    version: u64,
}

impl A2cAlgorithm {
    /// Creates the learner state for `config`.
    pub fn new(config: A2cConfig) -> Self {
        let policy = Mlp::new(&config.policy_sizes(), Activation::Tanh, config.seed);
        let value = Mlp::new(&config.value_sizes(), Activation::Tanh, config.seed ^ 0xF00D);
        let opt_policy = Adam::new(policy.num_params(), config.lr);
        let opt_value = Adam::new(value.num_params(), config.lr);
        A2cAlgorithm { config, policy, value, opt_policy, opt_value, staged: Vec::new(), staged_steps: 0, version: 0 }
    }

    fn iteration_batch(&self) -> usize {
        self.config.num_explorers as usize * self.config.rollout_len
    }
}

impl Algorithm for A2cAlgorithm {
    fn on_rollout(&mut self, batch: RolloutBatch) {
        if batch.param_version != self.version {
            return; // on-policy: stale rollouts are unusable
        }
        self.staged_steps += batch.len();
        self.staged.push(batch);
    }

    fn try_train(&mut self) -> Option<TrainReport> {
        if self.staged_steps < self.iteration_batch() {
            return None;
        }
        let staged = std::mem::take(&mut self.staged);
        let steps_consumed = self.staged_steps;
        self.staged_steps = 0;

        // Assemble the iteration batch with per-segment GAE.
        let mut obs_data: Vec<f32> = Vec::new();
        let mut actions: Vec<u32> = Vec::new();
        let mut advantages: Vec<f32> = Vec::new();
        let mut returns: Vec<f32> = Vec::new();
        for b in &staged {
            let rewards: Vec<f32> = b.steps.iter().map(|s| s.reward).collect();
            let values: Vec<f32> = b.steps.iter().map(|s| s.value).collect();
            let dones: Vec<bool> = b.steps.iter().map(|s| s.done).collect();
            let bootstrap_value = if b.bootstrap_observation.is_empty() {
                0.0
            } else {
                let x = Matrix::from_vec(1, b.bootstrap_observation.len(), b.bootstrap_observation.clone());
                self.value.forward(&x).get(0, 0)
            };
            let out = gae(&GaeInput {
                rewards: &rewards,
                values: &values,
                dones: &dones,
                bootstrap_value,
                gamma: self.config.gamma,
                lambda: self.config.lambda,
            });
            for s in &b.steps {
                obs_data.extend_from_slice(&s.observation);
                actions.push(s.action);
            }
            advantages.extend(out.advantages);
            returns.extend(out.returns);
        }
        normalize(&mut advantages);
        let n = actions.len();
        let obs = Matrix::from_vec(n, self.config.obs_dim, obs_data);

        // Single vanilla policy-gradient step: -Â log π(a|s) − c_e H.
        let (logits, pcache) = self.policy.forward_cached(&obs);
        let probs = softmax(&logits);
        let logs = log_softmax(&logits);
        let target_lp = taken_log_probs(&logits, &actions);
        let mut dlogits = Matrix::zeros(n, self.config.num_actions);
        let mut policy_loss = 0.0f32;
        for i in 0..n {
            let a = actions[i] as usize;
            let adv = advantages[i];
            policy_loss -= adv * target_lp[i] / n as f32;
            let mut h = 0.0f32;
            for j in 0..self.config.num_actions {
                let p = probs.get(i, j);
                if p > 0.0 {
                    h -= p * logs.get(i, j);
                }
            }
            for j in 0..self.config.num_actions {
                let p = probs.get(i, j);
                let indicator = if j == a { 1.0 } else { 0.0 };
                let mut g = -adv * (indicator - p);
                g += self.config.entropy_coef * p * (logs.get(i, j) + h);
                dlogits.set(i, j, g / n as f32);
            }
            policy_loss -= self.config.entropy_coef * h / n as f32;
        }
        let mut pgrads = self.policy.backward_cached(&obs, &pcache, &dlogits);
        clip_global_norm(&mut pgrads, self.config.max_grad_norm);
        self.opt_policy.step(self.policy.params_mut(), &pgrads);

        // Critic regression to the GAE returns.
        let (v, vcache) = self.value.forward_cached(&obs);
        let targets = Matrix::from_vec(n, 1, returns);
        let (vloss, mut dv) = mse(&v, &targets);
        dv.scale(self.config.value_coef);
        let mut vgrads = self.value.backward_cached(&obs, &vcache, &dv);
        clip_global_norm(&mut vgrads, self.config.max_grad_norm);
        self.opt_value.step(self.value.params_mut(), &vgrads);

        self.version += 1;
        Some(TrainReport {
            steps_consumed,
            loss: policy_loss + self.config.value_coef * vloss,
            version: self.version,
            notify: (0..self.config.num_explorers).collect(),
        })
    }

    fn param_blob(&self) -> ParamBlob {
        let mut params = self.policy.params().to_vec();
        params.extend_from_slice(self.value.params());
        ParamBlob { version: self.version, params }
    }

    fn load_params(&mut self, params: &[f32]) {
        let np = self.policy.num_params();
        assert_eq!(params.len(), np + self.value.num_params(), "parameter count mismatch");
        self.policy.set_params(&params[..np]);
        self.value.set_params(&params[np..]);
    }

    fn version(&self) -> u64 {
        self.version
    }

    fn sync_mode(&self) -> SyncMode {
        SyncMode::OnPolicy
    }

    fn name(&self) -> &str {
        "A2C"
    }
}

/// Explorer-side A2C agent: samples the softmax policy, records logits and
/// value estimates for the learner's GAE.
#[derive(Debug)]
pub struct A2cAgent {
    policy: Mlp,
    value: Mlp,
    version: u64,
    rng: StdRng,
}

impl A2cAgent {
    /// Creates the explorer state for `config`.
    pub fn new(config: A2cConfig, explorer_seed: u64) -> Self {
        let policy = Mlp::new(&config.policy_sizes(), Activation::Tanh, config.seed);
        let value = Mlp::new(&config.value_sizes(), Activation::Tanh, config.seed ^ 0xF00D);
        let rng = StdRng::seed_from_u64(explorer_seed.wrapping_mul(0xA2C).wrapping_add(3));
        A2cAgent { policy, value, version: 0, rng }
    }
}

impl Agent for A2cAgent {
    fn act(&mut self, observation: &[f32]) -> ActionSelection {
        let x = Matrix::from_vec(1, observation.len(), observation.to_vec());
        let logits = self.policy.forward(&x);
        let probs = softmax(&logits);
        let action = sample_categorical(probs.row(0), self.rng.gen::<f32>());
        let value = self.value.forward(&x).get(0, 0);
        ActionSelection { action, logits: logits.row(0).to_vec(), value }
    }

    fn apply_params(&mut self, blob: &ParamBlob) {
        if blob.version <= self.version {
            return;
        }
        let np = self.policy.num_params();
        assert_eq!(blob.params.len(), np + self.value.num_params(), "parameter blob size mismatch");
        self.policy.set_params(&blob.params[..np]);
        self.value.set_params(&blob.params[np..]);
        self.version = blob.version;
    }

    fn param_version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::RolloutStep;

    fn tiny_config() -> A2cConfig {
        let mut c = A2cConfig::new(3, 2);
        c.hidden = vec![16];
        c.num_explorers = 2;
        c.rollout_len = 8;
        c.lr = 1e-2;
        c
    }

    fn rollout(explorer: u32, version: u64, good_action: u32, len: usize) -> RolloutBatch {
        let steps = (0..len)
            .map(|i| {
                let action = (i % 2) as u32;
                RolloutStep {
                    observation: vec![0.1, -0.3, 0.5],
                    action,
                    reward: if action == good_action { 1.0 } else { 0.0 },
                    done: false,
                    behavior_logits: vec![0.0, 0.0],
                    value: 0.0,
                    next_observation: None,
                }
            })
            .collect();
        RolloutBatch { explorer, param_version: version, steps, bootstrap_observation: vec![0.1, -0.3, 0.5] }
    }

    #[test]
    fn waits_for_the_full_iteration_batch() {
        let c = tiny_config();
        let mut alg = A2cAlgorithm::new(c.clone());
        alg.on_rollout(rollout(0, 0, 1, 8));
        assert!(alg.try_train().is_none());
        alg.on_rollout(rollout(1, 0, 1, 8));
        let report = alg.try_train().expect("iteration complete");
        assert_eq!(report.steps_consumed, 16);
        assert_eq!(report.notify, vec![0, 1]);
    }

    #[test]
    fn rejects_stale_rollouts() {
        let mut alg = A2cAlgorithm::new(tiny_config());
        alg.on_rollout(rollout(0, 42, 1, 8));
        assert_eq!(alg.staged_steps, 0);
    }

    #[test]
    fn training_shifts_policy_toward_rewarded_action() {
        let mut c = tiny_config();
        c.gamma = 0.0;
        c.lambda = 0.0;
        let mut alg = A2cAlgorithm::new(c);
        let obs = Matrix::from_vec(1, 3, vec![0.1, -0.3, 0.5]);
        let before = softmax(&alg.policy.forward(&obs)).get(0, 1);
        for _ in 0..40 {
            let v = alg.version();
            alg.on_rollout(rollout(0, v, 1, 8));
            alg.on_rollout(rollout(1, v, 1, 8));
            alg.try_train().unwrap();
        }
        let after = softmax(&alg.policy.forward(&obs)).get(0, 1);
        assert!(after > before + 0.1, "P(a=1) should rise: {before} -> {after}");
    }

    #[test]
    fn agent_and_learner_share_parameter_layout() {
        let c = tiny_config();
        let alg = A2cAlgorithm::new(c.clone());
        let mut agent = A2cAgent::new(c, 1);
        let mut blob = alg.param_blob();
        blob.version = 1;
        agent.apply_params(&blob);
        assert_eq!(agent.param_version(), 1);
        assert_eq!(agent.policy.params(), alg.policy.params());
    }

    #[test]
    fn load_params_round_trips() {
        let c = tiny_config();
        let mut a = A2cAlgorithm::new(c.clone());
        let b = A2cAlgorithm::new(A2cConfig { seed: 9, ..c });
        a.load_params(&b.param_blob().params);
        assert_eq!(a.param_blob().params, b.param_blob().params);
    }
}
