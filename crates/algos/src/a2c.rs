//! Advantage Actor-Critic (A2C; the synchronous variant of Mnih et al.
//! 2016's A3C) — actor-critic, on-policy.
//!
//! Part of the algorithm-zoo breadth the paper describes in §4.2. A2C shares
//! PPO's synchronous execution model (the learner waits for one rollout from
//! every explorer, trains, broadcasts) but performs a *single* vanilla
//! policy-gradient step on GAE advantages instead of PPO's clipped multi-
//! epoch surrogate — a useful ablation of how much the communication layer
//! contributes independent of the optimizer sophistication.

use crate::api::{ActionSelection, Agent, Algorithm, SyncMode, TrainReport};
use crate::gae::{gae_into, normalize, GaeInput};
use crate::par::{ParGrad, Shard};
use crate::payload::{ParamBlob, RolloutBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tinynn::ops::{row_stats, sample_categorical, softmax_row_into};
use tinynn::optim::{clip_global_norm, Adam};
use tinynn::{Activation, Mlp, Workspace};
use xingtian_comm::pool::{shared_pool, WorkPool};

/// A2C hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct A2cConfig {
    /// Observation dimensionality.
    pub obs_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Hidden widths of policy and value networks.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ.
    pub lambda: f32,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Gradient global-norm clip.
    pub max_grad_norm: f32,
    /// Number of explorers the learner waits for each iteration.
    pub num_explorers: u32,
    /// Steps per explorer rollout.
    pub rollout_len: usize,
    /// RNG / initialization seed.
    pub seed: u64,
}

impl A2cConfig {
    /// Sensible defaults for the given environment dimensions.
    pub fn new(obs_dim: usize, num_actions: usize) -> Self {
        A2cConfig {
            obs_dim,
            num_actions,
            hidden: vec![64, 64],
            lr: 7e-4,
            gamma: 0.99,
            lambda: 0.95,
            entropy_coef: 0.01,
            value_coef: 0.5,
            max_grad_norm: 0.5,
            num_explorers: 4,
            rollout_len: 100,
            seed: 0,
        }
    }

    fn policy_sizes(&self) -> Vec<usize> {
        let mut s = vec![self.obs_dim];
        s.extend_from_slice(&self.hidden);
        s.push(self.num_actions);
        s
    }

    fn value_sizes(&self) -> Vec<usize> {
        let mut s = vec![self.obs_dim];
        s.extend_from_slice(&self.hidden);
        s.push(1);
        s
    }
}

/// Learner-side A2C.
#[derive(Debug)]
pub struct A2cAlgorithm {
    config: A2cConfig,
    policy: Mlp,
    value: Mlp,
    opt_policy: Adam,
    opt_value: Adam,
    staged: Vec<RolloutBatch>,
    staged_steps: usize,
    spent: Vec<RolloutBatch>,
    version: u64,
    pool: Option<&'static WorkPool>,
    par: ParGrad,
    ws: Workspace,
    pgrads: Vec<f32>,
    vgrads: Vec<f32>,
}

impl A2cAlgorithm {
    /// Creates the learner state for `config`, sharding the policy-gradient
    /// step over the process-wide worker pool.
    pub fn new(config: A2cConfig) -> Self {
        Self::with_pool(config, Some(shared_pool()))
    }

    /// Like [`A2cAlgorithm::new`] but with an explicit worker pool; `None`
    /// computes every shard on the calling thread (bitwise-identical result).
    pub fn with_pool(config: A2cConfig, pool: Option<&'static WorkPool>) -> Self {
        let policy = Mlp::new(&config.policy_sizes(), Activation::Tanh, config.seed);
        let value = Mlp::new(&config.value_sizes(), Activation::Tanh, config.seed ^ 0xF00D);
        let opt_policy = Adam::new(policy.num_params(), config.lr);
        let opt_value = Adam::new(value.num_params(), config.lr);
        A2cAlgorithm {
            config,
            policy,
            value,
            opt_policy,
            opt_value,
            staged: Vec::new(),
            staged_steps: 0,
            spent: Vec::new(),
            version: 0,
            pool,
            par: ParGrad::new(),
            ws: Workspace::new(),
            pgrads: Vec::new(),
            vgrads: Vec::new(),
        }
    }

    fn iteration_batch(&self) -> usize {
        self.config.num_explorers as usize * self.config.rollout_len
    }
}

impl Algorithm for A2cAlgorithm {
    fn on_rollout(&mut self, batch: RolloutBatch) {
        if batch.param_version != self.version {
            // On-policy: stale rollouts are unusable, but their storage is
            // recyclable.
            self.spent.push(batch);
            return;
        }
        self.staged_steps += batch.len();
        self.staged.push(batch);
    }

    fn try_train(&mut self) -> Option<TrainReport> {
        if self.staged_steps < self.iteration_batch() {
            return None;
        }
        let staged = std::mem::take(&mut self.staged);
        let steps_consumed = self.staged_steps;
        self.staged_steps = 0;

        // Assemble the iteration batch with per-segment GAE (written straight
        // into the iteration tail, no per-segment vectors).
        let mut obs_data: Vec<f32> = Vec::new();
        let mut actions: Vec<u32> = Vec::new();
        let mut advantages: Vec<f32> = Vec::new();
        let mut returns: Vec<f32> = Vec::new();
        let mut seg: (Vec<f32>, Vec<f32>, Vec<bool>) = (Vec::new(), Vec::new(), Vec::new());
        for b in &staged {
            seg.0.clear();
            seg.1.clear();
            seg.2.clear();
            for s in &b.steps {
                seg.0.push(s.reward);
                seg.1.push(s.value);
                seg.2.push(s.done);
            }
            let bootstrap_value = if b.bootstrap_observation.is_empty() {
                0.0
            } else {
                self.value.forward_ws(&b.bootstrap_observation, 1, &mut self.ws)[0]
            };
            let off = advantages.len();
            advantages.resize(off + b.steps.len(), 0.0);
            returns.resize(off + b.steps.len(), 0.0);
            gae_into(
                &GaeInput {
                    rewards: &seg.0,
                    values: &seg.1,
                    dones: &seg.2,
                    bootstrap_value,
                    gamma: self.config.gamma,
                    lambda: self.config.lambda,
                },
                &mut advantages[off..],
                &mut returns[off..],
            );
            for s in &b.steps {
                obs_data.extend_from_slice(&s.observation);
                actions.push(s.action);
            }
        }
        normalize(&mut advantages);
        // Everything needed has been copied out; the batches' step storage
        // goes back to the framework for decode recycling.
        self.spent.extend(staged);
        let n = actions.len();

        // Single vanilla policy-gradient step, sharded over the pool:
        // -Â log π(a|s) − c_e H, with deterministic gradient reduction.
        let Self { config, policy, value, opt_policy, opt_value, par, pool, pgrads, vgrads, .. } =
            self;
        let dim = config.obs_dim;
        let na = config.num_actions;
        let ec = config.entropy_coef;
        let inv_n = 1.0 / n as f32;
        let obs: &[f32] = &obs_data;
        let actions: &[u32] = &actions;
        let advantages: &[f32] = &advantages;
        let returns: &[f32] = &returns;

        pgrads.resize(policy.num_params(), 0.0);
        let pnet: &Mlp = policy;
        let policy_loss = par.run(*pool, n, &mut [], 0, Some(pgrads), |rows, _out, shard, grads| {
            let x = &obs[rows.start * dim..rows.end * dim];
            let rn = rows.len();
            let Shard { ws_a, scratch, .. } = shard;
            if scratch.len() < rn * na {
                scratch.resize(rn * na, 0.0);
            }
            let dlogits = &mut scratch[..rn * na];
            let mut loss = 0.0f32;
            {
                let logits = pnet.forward_ws(x, rn, ws_a);
                for (row, i) in rows.enumerate() {
                    let zrow = &logits[row * na..(row + 1) * na];
                    let stats = row_stats(zrow);
                    let log_z = stats.log_z();
                    let h = stats.entropy();
                    let inv_sum = 1.0 / stats.sum;
                    let a = actions[i] as usize;
                    let adv = advantages[i];
                    loss -= adv * (zrow[a] - log_z) * inv_n;
                    loss -= ec * h * inv_n;
                    let drow = &mut dlogits[row * na..(row + 1) * na];
                    for (j, (d, &z)) in drow.iter_mut().zip(zrow).enumerate() {
                        let p = (z - stats.max).exp() * inv_sum;
                        let indicator = if j == a { 1.0 } else { 0.0 };
                        let g = -adv * (indicator - p) + ec * p * ((z - log_z) + h);
                        *d = g * inv_n;
                    }
                }
            }
            pnet.backward_ws(x, rn, dlogits, ws_a, grads);
            loss
        });
        clip_global_norm(pgrads, config.max_grad_norm);
        opt_policy.step(policy.params_mut(), pgrads);

        // Critic regression to the GAE returns.
        vgrads.resize(value.num_params(), 0.0);
        let vnet: &Mlp = value;
        let vc = config.value_coef;
        let vloss = par.run(*pool, n, &mut [], 0, Some(vgrads), |rows, _out, shard, grads| {
            let x = &obs[rows.start * dim..rows.end * dim];
            let rn = rows.len();
            let Shard { ws_a, scratch, .. } = shard;
            if scratch.len() < rn {
                scratch.resize(rn, 0.0);
            }
            let dv = &mut scratch[..rn];
            let mut loss = 0.0f32;
            {
                let v = vnet.forward_ws(x, rn, ws_a);
                for (row, i) in rows.enumerate() {
                    let d = v[row] - returns[i];
                    loss += d * d * inv_n;
                    dv[row] = vc * 2.0 * d * inv_n;
                }
            }
            vnet.backward_ws(x, rn, dv, ws_a, grads);
            loss
        });
        clip_global_norm(vgrads, config.max_grad_norm);
        opt_value.step(value.params_mut(), vgrads);

        self.version += 1;
        Some(TrainReport {
            steps_consumed,
            loss: policy_loss + vc * vloss,
            version: self.version,
            notify: (0..self.config.num_explorers).collect(),
        })
    }

    fn take_spent(&mut self) -> Option<RolloutBatch> {
        self.spent.pop()
    }

    fn param_blob(&self) -> ParamBlob {
        let mut params = self.policy.params().to_vec();
        params.extend_from_slice(self.value.params());
        ParamBlob { version: self.version, params }
    }

    fn load_params(&mut self, params: &[f32]) {
        let np = self.policy.num_params();
        assert_eq!(params.len(), np + self.value.num_params(), "parameter count mismatch");
        self.policy.set_params(&params[..np]);
        self.value.set_params(&params[np..]);
    }

    fn version(&self) -> u64 {
        self.version
    }

    fn adopt_params(&mut self, params: &[f32], version: u64) {
        self.load_params(params);
        self.version = version;
    }

    fn sync_mode(&self) -> SyncMode {
        SyncMode::OnPolicy
    }

    fn name(&self) -> &str {
        "A2C"
    }
}

/// Explorer-side A2C agent: samples the softmax policy, records logits and
/// value estimates for the learner's GAE.
#[derive(Debug)]
pub struct A2cAgent {
    policy: Mlp,
    value: Mlp,
    version: u64,
    rng: StdRng,
    ws: Workspace,
    probs: Vec<f32>,
}

impl A2cAgent {
    /// Creates the explorer state for `config`.
    pub fn new(config: A2cConfig, explorer_seed: u64) -> Self {
        let policy = Mlp::new(&config.policy_sizes(), Activation::Tanh, config.seed);
        let value = Mlp::new(&config.value_sizes(), Activation::Tanh, config.seed ^ 0xF00D);
        let rng = StdRng::seed_from_u64(explorer_seed.wrapping_mul(0xA2C).wrapping_add(3));
        A2cAgent { policy, value, version: 0, rng, ws: Workspace::new(), probs: Vec::new() }
    }
}

impl Agent for A2cAgent {
    fn act(&mut self, observation: &[f32]) -> ActionSelection {
        let logits: Vec<f32> = self.policy.forward_ws(observation, 1, &mut self.ws).to_vec();
        if self.probs.len() < logits.len() {
            self.probs.resize(logits.len(), 0.0);
        }
        let probs = &mut self.probs[..logits.len()];
        softmax_row_into(&logits, probs);
        let action = sample_categorical(probs, self.rng.gen::<f32>());
        let value = self.value.forward_ws(observation, 1, &mut self.ws)[0];
        ActionSelection { action, logits, value }
    }

    fn apply_params(&mut self, blob: &ParamBlob) {
        if blob.version <= self.version {
            return;
        }
        let np = self.policy.num_params();
        assert_eq!(blob.params.len(), np + self.value.num_params(), "parameter blob size mismatch");
        self.policy.set_params(&blob.params[..np]);
        self.value.set_params(&blob.params[np..]);
        self.version = blob.version;
    }

    fn param_version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::RolloutStep;
    use tinynn::ops::softmax;
    use tinynn::Matrix;

    fn tiny_config() -> A2cConfig {
        let mut c = A2cConfig::new(3, 2);
        c.hidden = vec![16];
        c.num_explorers = 2;
        c.rollout_len = 8;
        c.lr = 1e-2;
        c
    }

    fn rollout(explorer: u32, version: u64, good_action: u32, len: usize) -> RolloutBatch {
        let steps = (0..len)
            .map(|i| {
                let action = (i % 2) as u32;
                RolloutStep {
                    observation: vec![0.1, -0.3, 0.5],
                    action,
                    reward: if action == good_action { 1.0 } else { 0.0 },
                    done: false,
                    behavior_logits: vec![0.0, 0.0],
                    value: 0.0,
                    next_observation: None,
                }
            })
            .collect();
        RolloutBatch { explorer, param_version: version, steps, bootstrap_observation: vec![0.1, -0.3, 0.5] }
    }

    #[test]
    fn waits_for_the_full_iteration_batch() {
        let c = tiny_config();
        let mut alg = A2cAlgorithm::new(c.clone());
        alg.on_rollout(rollout(0, 0, 1, 8));
        assert!(alg.try_train().is_none());
        alg.on_rollout(rollout(1, 0, 1, 8));
        let report = alg.try_train().expect("iteration complete");
        assert_eq!(report.steps_consumed, 16);
        assert_eq!(report.notify, vec![0, 1]);
    }

    #[test]
    fn rejects_stale_rollouts() {
        let mut alg = A2cAlgorithm::new(tiny_config());
        alg.on_rollout(rollout(0, 42, 1, 8));
        assert_eq!(alg.staged_steps, 0);
    }

    #[test]
    fn training_shifts_policy_toward_rewarded_action() {
        let mut c = tiny_config();
        c.gamma = 0.0;
        c.lambda = 0.0;
        let mut alg = A2cAlgorithm::new(c);
        let obs = Matrix::from_vec(1, 3, vec![0.1, -0.3, 0.5]);
        let before = softmax(&alg.policy.forward(&obs)).get(0, 1);
        for _ in 0..40 {
            let v = alg.version();
            alg.on_rollout(rollout(0, v, 1, 8));
            alg.on_rollout(rollout(1, v, 1, 8));
            alg.try_train().unwrap();
        }
        let after = softmax(&alg.policy.forward(&obs)).get(0, 1);
        assert!(after > before + 0.1, "P(a=1) should rise: {before} -> {after}");
    }

    #[test]
    fn agent_and_learner_share_parameter_layout() {
        let c = tiny_config();
        let alg = A2cAlgorithm::new(c.clone());
        let mut agent = A2cAgent::new(c, 1);
        let mut blob = alg.param_blob();
        blob.version = 1;
        agent.apply_params(&blob);
        assert_eq!(agent.param_version(), 1);
        assert_eq!(agent.policy.params(), alg.policy.params());
    }

    #[test]
    fn load_params_round_trips() {
        let c = tiny_config();
        let mut a = A2cAlgorithm::new(c.clone());
        let b = A2cAlgorithm::new(A2cConfig { seed: 9, ..c });
        a.load_params(&b.param_blob().params);
        assert_eq!(a.param_blob().params, b.param_blob().params);
    }
}
