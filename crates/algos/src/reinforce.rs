//! REINFORCE with a moving-average baseline (Williams 1992) — policy-based,
//! on-policy.
//!
//! The simplest member of the zoo (§4.2 classifies policy-based methods as
//! the first model-free family): no critic network at all. The learner
//! reassembles complete *episodes* from incoming rollout batches (episodes
//! may span several batches from the same explorer), computes Monte-Carlo
//! returns-to-go, subtracts a scalar moving-average baseline, and takes one
//! policy-gradient step per collected batch of episodes.

use crate::api::{ActionSelection, Agent, Algorithm, SyncMode, TrainReport};
use crate::batch::taken_log_probs;
use crate::payload::{ParamBlob, RolloutBatch, RolloutStep};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tinynn::ops::{log_softmax, sample_categorical, softmax};
use tinynn::optim::{clip_global_norm, Adam};
use tinynn::{Activation, Matrix, Mlp};

/// REINFORCE hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReinforceConfig {
    /// Observation dimensionality.
    pub obs_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Hidden widths of the policy network.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Discount factor γ for returns-to-go.
    pub gamma: f32,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f32,
    /// Gradient global-norm clip.
    pub max_grad_norm: f32,
    /// Complete episodes per training session.
    pub episodes_per_train: usize,
    /// Exponential decay of the scalar return baseline.
    pub baseline_decay: f32,
    /// Explorers to notify after each session.
    pub num_explorers: u32,
    /// RNG / initialization seed.
    pub seed: u64,
}

impl ReinforceConfig {
    /// Sensible defaults for the given environment dimensions.
    pub fn new(obs_dim: usize, num_actions: usize) -> Self {
        ReinforceConfig {
            obs_dim,
            num_actions,
            hidden: vec![64],
            lr: 1e-3,
            gamma: 0.99,
            entropy_coef: 0.01,
            max_grad_norm: 1.0,
            episodes_per_train: 8,
            baseline_decay: 0.95,
            num_explorers: 1,
            seed: 0,
        }
    }

    fn policy_sizes(&self) -> Vec<usize> {
        let mut s = vec![self.obs_dim];
        s.extend_from_slice(&self.hidden);
        s.push(self.num_actions);
        s
    }
}

/// One completed episode assembled from rollout steps.
#[derive(Debug, Clone)]
struct Episode {
    steps: Vec<RolloutStep>,
}

/// Learner-side REINFORCE.
#[derive(Debug)]
pub struct ReinforceAlgorithm {
    config: ReinforceConfig,
    policy: Mlp,
    opt: Adam,
    /// Partial episodes keyed by explorer index (episodes can span batches).
    partial: HashMap<u32, Vec<RolloutStep>>,
    complete: Vec<Episode>,
    baseline: f32,
    baseline_initialized: bool,
    version: u64,
}

impl ReinforceAlgorithm {
    /// Creates the learner state for `config`.
    pub fn new(config: ReinforceConfig) -> Self {
        let policy = Mlp::new(&config.policy_sizes(), Activation::Tanh, config.seed);
        let opt = Adam::new(policy.num_params(), config.lr);
        ReinforceAlgorithm {
            config,
            policy,
            opt,
            partial: HashMap::new(),
            complete: Vec::new(),
            baseline: 0.0,
            baseline_initialized: false,
            version: 0,
        }
    }

    /// Completed episodes waiting for a training session.
    pub fn pending_episodes(&self) -> usize {
        self.complete.len()
    }

    /// Current scalar return baseline.
    pub fn baseline(&self) -> f32 {
        self.baseline
    }
}

impl Algorithm for ReinforceAlgorithm {
    fn on_rollout(&mut self, batch: RolloutBatch) {
        let partial = self.partial.entry(batch.explorer).or_default();
        for step in batch.steps {
            let done = step.done;
            partial.push(step);
            if done {
                self.complete.push(Episode { steps: std::mem::take(partial) });
            }
        }
    }

    fn try_train(&mut self) -> Option<TrainReport> {
        if self.complete.len() < self.config.episodes_per_train {
            return None;
        }
        let episodes: Vec<Episode> =
            self.complete.drain(..self.config.episodes_per_train).collect();

        // Monte-Carlo returns-to-go per episode, with a scalar moving-average
        // baseline over episode returns.
        let mut obs_data: Vec<f32> = Vec::new();
        let mut actions: Vec<u32> = Vec::new();
        let mut advantages: Vec<f32> = Vec::new();
        let mut steps_consumed = 0usize;
        for ep in &episodes {
            steps_consumed += ep.steps.len();
            let mut g = 0.0f32;
            let mut rtg = vec![0.0f32; ep.steps.len()];
            for (i, s) in ep.steps.iter().enumerate().rev() {
                g = s.reward + self.config.gamma * g;
                rtg[i] = g;
            }
            let episode_return = rtg.first().copied().unwrap_or(0.0);
            if self.baseline_initialized {
                self.baseline = self.config.baseline_decay * self.baseline
                    + (1.0 - self.config.baseline_decay) * episode_return;
            } else {
                self.baseline = episode_return;
                self.baseline_initialized = true;
            }
            for (s, r) in ep.steps.iter().zip(&rtg) {
                obs_data.extend_from_slice(&s.observation);
                actions.push(s.action);
                advantages.push(r - self.baseline);
            }
        }
        // Whiten the advantages across the batch: the scalar baseline centers
        // episode-level return differences, but within an episode the
        // return-to-go declines toward the end, which would systematically
        // penalize late-episode actions without this normalization.
        crate::gae::normalize(&mut advantages);
        let n = actions.len();
        let obs = Matrix::from_vec(n, self.config.obs_dim, obs_data);

        let (logits, cache) = self.policy.forward_cached(&obs);
        let probs = softmax(&logits);
        let logs = log_softmax(&logits);
        let target_lp = taken_log_probs(&logits, &actions);
        let mut dlogits = Matrix::zeros(n, self.config.num_actions);
        let mut loss = 0.0f32;
        for i in 0..n {
            let a = actions[i] as usize;
            let adv = advantages[i];
            loss -= adv * target_lp[i] / n as f32;
            let mut h = 0.0f32;
            for j in 0..self.config.num_actions {
                let p = probs.get(i, j);
                if p > 0.0 {
                    h -= p * logs.get(i, j);
                }
            }
            for j in 0..self.config.num_actions {
                let p = probs.get(i, j);
                let indicator = if j == a { 1.0 } else { 0.0 };
                let mut g = -adv * (indicator - p);
                g += self.config.entropy_coef * p * (logs.get(i, j) + h);
                dlogits.set(i, j, g / n as f32);
            }
            loss -= self.config.entropy_coef * h / n as f32;
        }
        let mut grads = self.policy.backward_cached(&obs, &cache, &dlogits);
        clip_global_norm(&mut grads, self.config.max_grad_norm);
        self.opt.step(self.policy.params_mut(), &grads);

        self.version += 1;
        Some(TrainReport {
            steps_consumed,
            loss,
            version: self.version,
            notify: (0..self.config.num_explorers).collect(),
        })
    }

    fn param_blob(&self) -> ParamBlob {
        ParamBlob { version: self.version, params: self.policy.params().to_vec() }
    }

    fn load_params(&mut self, params: &[f32]) {
        self.policy.set_params(params);
    }

    fn version(&self) -> u64 {
        self.version
    }

    fn adopt_params(&mut self, params: &[f32], version: u64) {
        self.load_params(params);
        self.version = version;
    }

    fn sync_mode(&self) -> SyncMode {
        // Explorers keep rolling: REINFORCE tolerates mild lag in practice
        // because parameters are broadcast after every session; blocking
        // explorers on episode boundaries would deadlock mid-episode.
        SyncMode::OffPolicy
    }

    fn name(&self) -> &str {
        "REINFORCE"
    }
}

/// Explorer-side REINFORCE agent: samples the softmax policy.
#[derive(Debug)]
pub struct ReinforceAgent {
    policy: Mlp,
    version: u64,
    rng: StdRng,
}

impl ReinforceAgent {
    /// Creates the explorer state for `config`.
    pub fn new(config: ReinforceConfig, explorer_seed: u64) -> Self {
        let policy = Mlp::new(&config.policy_sizes(), Activation::Tanh, config.seed);
        let rng = StdRng::seed_from_u64(explorer_seed.wrapping_mul(0x4E1F).wrapping_add(11));
        ReinforceAgent { policy, version: 0, rng }
    }
}

impl Agent for ReinforceAgent {
    fn act(&mut self, observation: &[f32]) -> ActionSelection {
        let x = Matrix::from_vec(1, observation.len(), observation.to_vec());
        let logits = self.policy.forward(&x);
        let probs = softmax(&logits);
        let action = sample_categorical(probs.row(0), self.rng.gen::<f32>());
        ActionSelection { action, logits: logits.row(0).to_vec(), value: 0.0 }
    }

    fn apply_params(&mut self, blob: &ParamBlob) {
        if blob.version > self.version {
            self.policy.set_params(&blob.params);
            self.version = blob.version;
        }
    }

    fn param_version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ReinforceConfig {
        let mut c = ReinforceConfig::new(2, 2);
        c.hidden = vec![8];
        c.episodes_per_train = 2;
        c.lr = 5e-2;
        c.gamma = 0.0;
        c
    }

    fn episode_batch(explorer: u32, good_action: u32, len: usize, finish: bool) -> RolloutBatch {
        let steps = (0..len)
            .map(|i| {
                let action = (i % 2) as u32;
                RolloutStep {
                    observation: vec![0.4, -0.2],
                    action,
                    reward: if action == good_action { 1.0 } else { -1.0 },
                    done: finish && i == len - 1,
                    behavior_logits: vec![0.0, 0.0],
                    value: 0.0,
                    next_observation: None,
                }
            })
            .collect();
        RolloutBatch { explorer, param_version: 0, steps, bootstrap_observation: vec![] }
    }

    #[test]
    fn episodes_assemble_across_batches() {
        let mut alg = ReinforceAlgorithm::new(tiny_config());
        alg.on_rollout(episode_batch(0, 1, 4, false)); // first half
        assert_eq!(alg.pending_episodes(), 0);
        alg.on_rollout(episode_batch(0, 1, 4, true)); // completes one episode
        assert_eq!(alg.pending_episodes(), 1);
        assert!(alg.try_train().is_none(), "needs 2 episodes");
        alg.on_rollout(episode_batch(1, 1, 8, true));
        let report = alg.try_train().expect("two complete episodes");
        assert_eq!(report.steps_consumed, 16);
        assert_eq!(report.version, 1);
    }

    #[test]
    fn interleaved_explorers_keep_separate_episodes() {
        let mut alg = ReinforceAlgorithm::new(tiny_config());
        alg.on_rollout(episode_batch(0, 1, 3, false));
        alg.on_rollout(episode_batch(1, 1, 3, false));
        alg.on_rollout(episode_batch(0, 1, 3, true));
        alg.on_rollout(episode_batch(1, 1, 3, true));
        assert_eq!(alg.pending_episodes(), 2);
        let report = alg.try_train().unwrap();
        assert_eq!(report.steps_consumed, 12, "both episodes are 6 steps long");
    }

    #[test]
    fn baseline_tracks_episode_returns() {
        let mut alg = ReinforceAlgorithm::new(tiny_config());
        alg.on_rollout(episode_batch(0, 1, 4, true));
        alg.on_rollout(episode_batch(0, 1, 4, true));
        alg.try_train().unwrap();
        // γ=0 ⇒ episode return-to-go at t=0 equals the first reward (-1 for
        // action 0). The baseline must have moved off zero.
        assert!(alg.baseline() != 0.0);
    }

    #[test]
    fn training_shifts_policy_toward_rewarded_action() {
        let mut alg = ReinforceAlgorithm::new(tiny_config());
        let obs = Matrix::from_vec(1, 2, vec![0.4, -0.2]);
        let before = softmax(&alg.policy.forward(&obs)).get(0, 1);
        for _ in 0..60 {
            alg.on_rollout(episode_batch(0, 1, 8, true));
            alg.on_rollout(episode_batch(1, 1, 8, true));
            alg.try_train().unwrap();
        }
        let after = softmax(&alg.policy.forward(&obs)).get(0, 1);
        assert!(after > before + 0.1, "P(a=1) should rise: {before} -> {after}");
    }

    #[test]
    fn agent_applies_only_newer_params() {
        let c = tiny_config();
        let alg = ReinforceAlgorithm::new(c.clone());
        let mut agent = ReinforceAgent::new(c, 0);
        let mut blob = alg.param_blob();
        blob.version = 3;
        agent.apply_params(&blob);
        assert_eq!(agent.param_version(), 3);
        blob.version = 2;
        agent.apply_params(&blob);
        assert_eq!(agent.param_version(), 3);
    }
}
