//! IMPALA (Espeholt et al. 2018) — actor-critic, off-policy via V-trace.
//!
//! Execution model (paper Fig. 1(c) and §5.2): the learner trains as soon as
//! a batch from *any single* explorer arrives (batch = one rollout of 200/500
//! steps) and sends updated parameters back to exactly that explorer. Because
//! V-trace corrects for policy lag, explorers keep generating with stale
//! parameters — the asynchrony XingTian's aggressive push exploits for its
//! +70.71% throughput headline (paper Fig. 8).

use crate::api::{ActionSelection, Agent, Algorithm, SyncMode, TrainReport};
use crate::batch::{behavior_log_probs, observation_matrix, taken_log_probs};
use crate::payload::{ParamBlob, RolloutBatch};
use crate::vtrace::{vtrace, VtraceInput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use tinynn::ops::{log_softmax, mse, sample_categorical, softmax};
use tinynn::optim::{clip_global_norm, Adam};
use tinynn::{Activation, Matrix, Mlp};

/// IMPALA hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImpalaConfig {
    /// Observation dimensionality.
    pub obs_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Hidden widths of policy and value networks.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// V-trace ρ̄ truncation.
    pub rho_bar: f32,
    /// V-trace c̄ truncation.
    pub c_bar: f32,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Gradient global-norm clip.
    pub max_grad_norm: f32,
    /// Maximum rollout batches queued at the learner. When production
    /// outruns training, the *oldest* (most stale) batch is dropped first —
    /// V-trace tolerates staleness, but unbounded queues would grow memory
    /// and policy lag without bound.
    pub max_queue: usize,
    /// RNG / initialization seed.
    pub seed: u64,
}

impl ImpalaConfig {
    /// Paper-shaped defaults for the given environment dimensions.
    pub fn new(obs_dim: usize, num_actions: usize) -> Self {
        ImpalaConfig {
            obs_dim,
            num_actions,
            hidden: vec![64, 64],
            lr: 6e-4,
            gamma: 0.99,
            rho_bar: 1.0,
            c_bar: 1.0,
            entropy_coef: 0.01,
            value_coef: 0.5,
            max_grad_norm: 40.0,
            max_queue: 64,
            seed: 0,
        }
    }

    fn policy_sizes(&self) -> Vec<usize> {
        let mut s = vec![self.obs_dim];
        s.extend_from_slice(&self.hidden);
        s.push(self.num_actions);
        s
    }

    fn value_sizes(&self) -> Vec<usize> {
        let mut s = vec![self.obs_dim];
        s.extend_from_slice(&self.hidden);
        s.push(1);
        s
    }
}

/// Learner-side IMPALA.
#[derive(Debug)]
pub struct ImpalaAlgorithm {
    config: ImpalaConfig,
    policy: Mlp,
    value: Mlp,
    opt_policy: Adam,
    opt_value: Adam,
    queue: VecDeque<RolloutBatch>,
    dropped_batches: u64,
    version: u64,
}

impl ImpalaAlgorithm {
    /// Creates the learner state for `config`.
    pub fn new(config: ImpalaConfig) -> Self {
        let policy = Mlp::new(&config.policy_sizes(), Activation::Tanh, config.seed);
        let value = Mlp::new(&config.value_sizes(), Activation::Tanh, config.seed ^ 0xF00D);
        let opt_policy = Adam::new(policy.num_params(), config.lr);
        let opt_value = Adam::new(value.num_params(), config.lr);
        ImpalaAlgorithm {
            config,
            policy,
            value,
            opt_policy,
            opt_value,
            queue: VecDeque::new(),
            dropped_batches: 0,
            version: 0,
        }
    }

    /// Rollout batches waiting to be consumed.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Batches discarded because the queue overflowed (staleness shedding).
    pub fn dropped_batches(&self) -> u64 {
        self.dropped_batches
    }
}

impl Algorithm for ImpalaAlgorithm {
    fn on_rollout(&mut self, batch: RolloutBatch) {
        if batch.is_empty() {
            return;
        }
        self.queue.push_back(batch);
        while self.queue.len() > self.config.max_queue {
            self.queue.pop_front();
            self.dropped_batches += 1;
        }
    }

    fn try_train(&mut self) -> Option<TrainReport> {
        let batch = self.queue.pop_front()?;
        let refs: Vec<&_> = batch.steps.iter().collect();
        let obs = observation_matrix(&refs);
        let actions: Vec<u32> = batch.steps.iter().map(|s| s.action).collect();
        let rewards: Vec<f32> = batch.steps.iter().map(|s| s.reward).collect();
        let dones: Vec<bool> = batch.steps.iter().map(|s| s.done).collect();
        let behavior_lp = behavior_log_probs(&refs);

        // Values under the *current* value net (V-trace requirement).
        let (values_m, vcache) = self.value.forward_cached(&obs);
        let values: Vec<f32> = (0..values_m.rows()).map(|i| values_m.get(i, 0)).collect();
        let bootstrap_value = if batch.bootstrap_observation.is_empty() {
            0.0
        } else {
            let x = Matrix::from_vec(1, batch.bootstrap_observation.len(), batch.bootstrap_observation.clone());
            self.value.forward(&x).get(0, 0)
        };

        let (logits, pcache) = self.policy.forward_cached(&obs);
        let target_lp = taken_log_probs(&logits, &actions);
        let vt = vtrace(&VtraceInput {
            behavior_log_probs: &behavior_lp,
            target_log_probs: &target_lp,
            rewards: &rewards,
            values: &values,
            dones: &dones,
            bootstrap_value,
            gamma: self.config.gamma,
            rho_bar: self.config.rho_bar,
            c_bar: self.config.c_bar,
        });

        let n = batch.len();
        let probs = softmax(&logits);
        let logs = log_softmax(&logits);
        let mut dlogits = Matrix::zeros(n, self.config.num_actions);
        let mut policy_loss = 0.0f32;
        for i in 0..n {
            let a = actions[i] as usize;
            let adv = vt.pg_advantages[i];
            policy_loss -= adv * target_lp[i] / n as f32;
            let mut h = 0.0f32;
            for j in 0..self.config.num_actions {
                let p = probs.get(i, j);
                if p > 0.0 {
                    h -= p * logs.get(i, j);
                }
            }
            for j in 0..self.config.num_actions {
                let p = probs.get(i, j);
                let indicator = if j == a { 1.0 } else { 0.0 };
                // d/dlogits of -(adv · log π(a|s)): -adv (δ_aj − p_j).
                let mut g = -adv * (indicator - p);
                // Entropy bonus gradient, as in PPO.
                g += self.config.entropy_coef * p * (logs.get(i, j) + h);
                dlogits.set(i, j, g / n as f32);
            }
            policy_loss -= self.config.entropy_coef * h / n as f32;
        }
        let mut pgrads = self.policy.backward_cached(&obs, &pcache, &dlogits);
        clip_global_norm(&mut pgrads, self.config.max_grad_norm);
        self.opt_policy.step(self.policy.params_mut(), &pgrads);

        // Critic regression to the V-trace targets.
        let targets = Matrix::from_vec(n, 1, vt.vs.clone());
        let (vloss, mut dv) = mse(&values_m, &targets);
        dv.scale(self.config.value_coef);
        let mut vgrads = self.value.backward_cached(&obs, &vcache, &dv);
        clip_global_norm(&mut vgrads, self.config.max_grad_norm);
        self.opt_value.step(self.value.params_mut(), &vgrads);

        self.version += 1;
        Some(TrainReport {
            steps_consumed: n,
            loss: policy_loss + self.config.value_coef * vloss,
            version: self.version,
            // Paper: "sends updated DNN parameters exactly to the explorers it
            // gets rollouts from".
            notify: vec![batch.explorer],
        })
    }

    fn param_blob(&self) -> ParamBlob {
        let mut params = self.policy.params().to_vec();
        params.extend_from_slice(self.value.params());
        ParamBlob { version: self.version, params }
    }

    fn load_params(&mut self, params: &[f32]) {
        let np = self.policy.num_params();
        assert_eq!(params.len(), np + self.value.num_params(), "parameter count mismatch");
        self.policy.set_params(&params[..np]);
        self.value.set_params(&params[np..]);
    }

    fn version(&self) -> u64 {
        self.version
    }

    fn sync_mode(&self) -> SyncMode {
        SyncMode::OffPolicy
    }

    fn name(&self) -> &str {
        "IMPALA"
    }
}

/// Explorer-side IMPALA agent: samples the softmax policy, records behavior
/// logits for V-trace.
#[derive(Debug)]
pub struct ImpalaAgent {
    policy: Mlp,
    value: Mlp,
    version: u64,
    rng: StdRng,
}

impl ImpalaAgent {
    /// Creates the explorer state for `config`.
    pub fn new(config: ImpalaConfig, explorer_seed: u64) -> Self {
        let policy = Mlp::new(&config.policy_sizes(), Activation::Tanh, config.seed);
        let value = Mlp::new(&config.value_sizes(), Activation::Tanh, config.seed ^ 0xF00D);
        let rng = StdRng::seed_from_u64(explorer_seed.wrapping_mul(0xC0FFEE).wrapping_add(13));
        ImpalaAgent { policy, value, version: 0, rng }
    }
}

impl Agent for ImpalaAgent {
    fn act(&mut self, observation: &[f32]) -> ActionSelection {
        let x = Matrix::from_vec(1, observation.len(), observation.to_vec());
        let logits = self.policy.forward(&x);
        let probs = softmax(&logits);
        let action = sample_categorical(probs.row(0), self.rng.gen::<f32>());
        let value = self.value.forward(&x).get(0, 0);
        ActionSelection { action, logits: logits.row(0).to_vec(), value }
    }

    fn apply_params(&mut self, blob: &ParamBlob) {
        if blob.version <= self.version {
            return;
        }
        let np = self.policy.num_params();
        assert_eq!(blob.params.len(), np + self.value.num_params(), "parameter blob size mismatch");
        self.policy.set_params(&blob.params[..np]);
        self.value.set_params(&blob.params[np..]);
        self.version = blob.version;
    }

    fn param_version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::RolloutStep;

    fn tiny_config() -> ImpalaConfig {
        let mut c = ImpalaConfig::new(3, 2);
        c.hidden = vec![16];
        c.lr = 1e-2;
        c
    }

    fn rollout(explorer: u32, good_action: u32, len: usize) -> RolloutBatch {
        let steps = (0..len)
            .map(|i| {
                let action = (i % 2) as u32;
                RolloutStep {
                    observation: vec![0.3, 0.1, -0.2],
                    action,
                    reward: if action == good_action { 1.0 } else { 0.0 },
                    done: false,
                    behavior_logits: vec![0.0, 0.0],
                    value: 0.0,
                    next_observation: None,
                }
            })
            .collect();
        RolloutBatch { explorer, param_version: 0, steps, bootstrap_observation: vec![0.3, 0.1, -0.2] }
    }

    #[test]
    fn trains_per_single_batch_and_notifies_source() {
        let mut alg = ImpalaAlgorithm::new(tiny_config());
        assert!(alg.try_train().is_none(), "no data yet");
        alg.on_rollout(rollout(5, 1, 16));
        let report = alg.try_train().expect("one batch is enough");
        assert_eq!(report.steps_consumed, 16);
        assert_eq!(report.notify, vec![5], "params go back to the source explorer");
        assert!(alg.try_train().is_none(), "queue drained");
    }

    #[test]
    fn queue_preserves_fifo_order() {
        let mut alg = ImpalaAlgorithm::new(tiny_config());
        alg.on_rollout(rollout(1, 0, 4));
        alg.on_rollout(rollout(2, 0, 4));
        assert_eq!(alg.queue_depth(), 2);
        assert_eq!(alg.try_train().unwrap().notify, vec![1]);
        assert_eq!(alg.try_train().unwrap().notify, vec![2]);
    }

    #[test]
    fn stale_rollouts_are_still_consumed() {
        // Off-policy: a batch with an old param_version must still train.
        let mut alg = ImpalaAlgorithm::new(tiny_config());
        let mut b = rollout(0, 1, 8);
        b.param_version = 0;
        alg.on_rollout(b);
        alg.on_rollout(rollout(0, 1, 8)); // version still 0, learner now at 1
        assert!(alg.try_train().is_some());
        assert!(alg.try_train().is_some());
    }

    #[test]
    fn training_shifts_policy_toward_rewarded_action() {
        // γ = 0 isolates the per-action reward signal (contextual bandit), so
        // the policy-gradient direction is unambiguous.
        let mut c = tiny_config();
        c.gamma = 0.0;
        let mut alg = ImpalaAlgorithm::new(c);
        let obs = Matrix::from_vec(1, 3, vec![0.3, 0.1, -0.2]);
        let before = softmax(&alg.policy.forward(&obs)).get(0, 1);
        for _ in 0..60 {
            alg.on_rollout(rollout(0, 1, 32));
            alg.try_train().unwrap();
        }
        let after = softmax(&alg.policy.forward(&obs)).get(0, 1);
        assert!(after > before + 0.1, "P(a=1) should rise: {before} -> {after}");
    }

    #[test]
    fn agent_param_round_trip() {
        let alg = ImpalaAlgorithm::new(tiny_config());
        let mut agent = ImpalaAgent::new(tiny_config(), 2);
        let mut blob = alg.param_blob();
        blob.version = 1;
        agent.apply_params(&blob);
        assert_eq!(agent.param_version(), 1);
        assert_eq!(agent.policy.params(), alg.policy.params());
    }

    #[test]
    fn queue_overflow_sheds_oldest() {
        let mut c = tiny_config();
        c.max_queue = 2;
        let mut alg = ImpalaAlgorithm::new(c);
        for e in 0..5 {
            alg.on_rollout(rollout(e, 0, 4));
        }
        assert_eq!(alg.queue_depth(), 2);
        assert_eq!(alg.dropped_batches(), 3);
        // The two newest batches (explorers 3 and 4) survive.
        assert_eq!(alg.try_train().unwrap().notify, vec![3]);
        assert_eq!(alg.try_train().unwrap().notify, vec![4]);
    }

    #[test]
    fn empty_batches_are_ignored() {
        let mut alg = ImpalaAlgorithm::new(tiny_config());
        alg.on_rollout(RolloutBatch {
            explorer: 0,
            param_version: 0,
            steps: vec![],
            bootstrap_observation: vec![],
        });
        assert_eq!(alg.queue_depth(), 0);
    }
}
