//! IMPALA (Espeholt et al. 2018) — actor-critic, off-policy via V-trace.
//!
//! Execution model (paper Fig. 1(c) and §5.2): the learner trains as soon as
//! a batch from *any single* explorer arrives (batch = one rollout of 200/500
//! steps) and sends updated parameters back to exactly that explorer. Because
//! V-trace corrects for policy lag, explorers keep generating with stale
//! parameters — the asynchrony XingTian's aggressive push exploits for its
//! +70.71% throughput headline (paper Fig. 8).

use crate::api::{ActionSelection, Agent, Algorithm, SyncMode, TrainReport};
use crate::batch::behavior_log_probs_into;
use crate::par::{ParGrad, Shard};
use crate::payload::{ParamBlob, RolloutBatch};
use crate::vtrace::{vtrace_into, VtraceInput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use tinynn::ops::{row_stats, sample_categorical, softmax_row_into};
use tinynn::optim::{clip_global_norm, Adam};
use tinynn::{Activation, Mlp, Workspace};
use xingtian_comm::pool::{shared_pool, WorkPool};

/// IMPALA hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImpalaConfig {
    /// Observation dimensionality.
    pub obs_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Hidden widths of policy and value networks.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// V-trace ρ̄ truncation.
    pub rho_bar: f32,
    /// V-trace c̄ truncation.
    pub c_bar: f32,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Gradient global-norm clip.
    pub max_grad_norm: f32,
    /// Maximum rollout batches queued at the learner. When production
    /// outruns training, the *oldest* (most stale) batch is dropped first —
    /// V-trace tolerates staleness, but unbounded queues would grow memory
    /// and policy lag without bound.
    pub max_queue: usize,
    /// RNG / initialization seed.
    pub seed: u64,
}

impl ImpalaConfig {
    /// Paper-shaped defaults for the given environment dimensions.
    pub fn new(obs_dim: usize, num_actions: usize) -> Self {
        ImpalaConfig {
            obs_dim,
            num_actions,
            hidden: vec![64, 64],
            lr: 6e-4,
            gamma: 0.99,
            rho_bar: 1.0,
            c_bar: 1.0,
            entropy_coef: 0.01,
            value_coef: 0.5,
            max_grad_norm: 40.0,
            max_queue: 64,
            seed: 0,
        }
    }

    fn policy_sizes(&self) -> Vec<usize> {
        let mut s = vec![self.obs_dim];
        s.extend_from_slice(&self.hidden);
        s.push(self.num_actions);
        s
    }

    fn value_sizes(&self) -> Vec<usize> {
        let mut s = vec![self.obs_dim];
        s.extend_from_slice(&self.hidden);
        s.push(1);
        s
    }
}

/// Learner-side IMPALA.
#[derive(Debug)]
pub struct ImpalaAlgorithm {
    config: ImpalaConfig,
    policy: Mlp,
    value: Mlp,
    opt_policy: Adam,
    opt_value: Adam,
    queue: VecDeque<RolloutBatch>,
    dropped_batches: u64,
    spent: Vec<RolloutBatch>,
    version: u64,
    pool: Option<&'static WorkPool>,
    par: ParGrad,
    ws: Workspace,
    pgrads: Vec<f32>,
    vgrads: Vec<f32>,
    // Persistent staging buffers (SoA view of the current batch plus the
    // V-trace intermediates) — allocation-free after warmup.
    obs_buf: Vec<f32>,
    actions: Vec<u32>,
    rewards: Vec<f32>,
    dones: Vec<bool>,
    behavior_lp: Vec<f32>,
    values: Vec<f32>,
    target_lp: Vec<f32>,
    vs: Vec<f32>,
    pg_adv: Vec<f32>,
    fwd_out: Vec<f32>,
}

impl ImpalaAlgorithm {
    /// Creates the learner state for `config`, sharding the training step
    /// over the process-wide worker pool.
    pub fn new(config: ImpalaConfig) -> Self {
        Self::with_pool(config, Some(shared_pool()))
    }

    /// Like [`ImpalaAlgorithm::new`] but with an explicit worker pool; `None`
    /// computes every shard on the calling thread (bitwise-identical result).
    pub fn with_pool(config: ImpalaConfig, pool: Option<&'static WorkPool>) -> Self {
        let policy = Mlp::new(&config.policy_sizes(), Activation::Tanh, config.seed);
        let value = Mlp::new(&config.value_sizes(), Activation::Tanh, config.seed ^ 0xF00D);
        let opt_policy = Adam::new(policy.num_params(), config.lr);
        let opt_value = Adam::new(value.num_params(), config.lr);
        ImpalaAlgorithm {
            config,
            policy,
            value,
            opt_policy,
            opt_value,
            queue: VecDeque::new(),
            dropped_batches: 0,
            spent: Vec::new(),
            version: 0,
            pool,
            par: ParGrad::new(),
            ws: Workspace::new(),
            pgrads: Vec::new(),
            vgrads: Vec::new(),
            obs_buf: Vec::new(),
            actions: Vec::new(),
            rewards: Vec::new(),
            dones: Vec::new(),
            behavior_lp: Vec::new(),
            values: Vec::new(),
            target_lp: Vec::new(),
            vs: Vec::new(),
            pg_adv: Vec::new(),
            fwd_out: Vec::new(),
        }
    }

    /// Rollout batches waiting to be consumed.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Batches discarded because the queue overflowed (staleness shedding).
    pub fn dropped_batches(&self) -> u64 {
        self.dropped_batches
    }
}

impl Algorithm for ImpalaAlgorithm {
    fn on_rollout(&mut self, batch: RolloutBatch) {
        if batch.is_empty() {
            self.spent.push(batch);
            return;
        }
        self.queue.push_back(batch);
        while self.queue.len() > self.config.max_queue {
            if let Some(dropped) = self.queue.pop_front() {
                self.spent.push(dropped);
            }
            self.dropped_batches += 1;
        }
    }

    fn try_train(&mut self) -> Option<TrainReport> {
        let batch = self.queue.pop_front()?;
        let n = batch.len();
        let Self {
            config,
            policy,
            value,
            opt_policy,
            opt_value,
            par,
            pool,
            ws,
            pgrads,
            vgrads,
            obs_buf,
            actions,
            rewards,
            dones,
            behavior_lp,
            values,
            target_lp,
            vs,
            pg_adv,
            fwd_out,
            ..
        } = self;
        let dim = config.obs_dim;
        let na = config.num_actions;
        let ec = config.entropy_coef;
        let vc = config.value_coef;
        let inv_n = 1.0 / n as f32;

        // Stage the batch as SoA buffers (reused across training steps).
        obs_buf.clear();
        actions.clear();
        rewards.clear();
        dones.clear();
        behavior_lp.clear();
        for s in &batch.steps {
            assert_eq!(s.observation.len(), dim, "ragged observations");
            obs_buf.extend_from_slice(&s.observation);
            actions.push(s.action);
            rewards.push(s.reward);
            dones.push(s.done);
        }
        behavior_log_probs_into(&batch.steps, behavior_lp);
        let obs: &[f32] = obs_buf;
        let actions: &[u32] = actions;
        let pnet: &Mlp = policy;
        let vnet: &Mlp = value;

        // Phase 1 (parallel): forward both nets per shard, caching the
        // activations in the shard workspaces for the backward phases. Each
        // row emits [V(s_t), log π(a_t|s_t)] — the inputs V-trace needs.
        // Values come from the *current* value net (V-trace requirement).
        if fwd_out.len() < n * 2 {
            fwd_out.resize(n * 2, 0.0);
        }
        par.run(*pool, n, &mut fwd_out[..n * 2], 2, None, |rows, out_rows, shard, _grads| {
            let x = &obs[rows.start * dim..rows.end * dim];
            let rn = rows.len();
            let Shard { ws_a, ws_b, .. } = shard;
            let v = vnet.forward_ws(x, rn, ws_b);
            let logits = pnet.forward_ws(x, rn, ws_a);
            for (row, i) in rows.enumerate() {
                let zrow = &logits[row * na..(row + 1) * na];
                out_rows[row * 2] = v[row];
                out_rows[row * 2 + 1] = zrow[actions[i] as usize] - row_stats(zrow).log_z();
            }
            0.0
        });
        values.resize(n, 0.0);
        target_lp.resize(n, 0.0);
        for i in 0..n {
            values[i] = fwd_out[i * 2];
            target_lp[i] = fwd_out[i * 2 + 1];
        }
        let bootstrap_value = if batch.bootstrap_observation.is_empty() {
            0.0
        } else {
            // The learner-level workspace: shard workspaces must keep their
            // phase-1 activations alive for the backward phases.
            vnet.forward_ws(&batch.bootstrap_observation, 1, ws)[0]
        };

        // Phase 2 (sequential): the V-trace recursion is a global backward
        // scan over the batch — inherently serial, one allocation-free pass.
        vs.resize(n, 0.0);
        pg_adv.resize(n, 0.0);
        vtrace_into(
            &VtraceInput {
                behavior_log_probs: behavior_lp,
                target_log_probs: target_lp,
                rewards,
                values,
                dones,
                bootstrap_value,
                gamma: config.gamma,
                rho_bar: config.rho_bar,
                c_bar: config.c_bar,
            },
            vs,
            pg_adv,
        );
        let target_lp: &[f32] = target_lp;
        let pg_adv: &[f32] = pg_adv;
        let vs: &[f32] = vs;

        // Phase 3 (parallel): policy backward over the phase-1 activations.
        pgrads.resize(policy.num_params(), 0.0);
        let policy_loss = par.run(*pool, n, &mut [], 0, Some(pgrads), |rows, _out, shard, grads| {
            let x = &obs[rows.start * dim..rows.end * dim];
            let rn = rows.len();
            let Shard { ws_a, scratch, .. } = shard;
            if scratch.len() < rn * na {
                scratch.resize(rn * na, 0.0);
            }
            let dlogits = &mut scratch[..rn * na];
            let mut loss = 0.0f32;
            {
                let logits = pnet.cached_output(ws_a, rn);
                for (row, i) in rows.enumerate() {
                    let zrow = &logits[row * na..(row + 1) * na];
                    let stats = row_stats(zrow);
                    let log_z = stats.log_z();
                    let h = stats.entropy();
                    let inv_sum = 1.0 / stats.sum;
                    let a = actions[i] as usize;
                    let adv = pg_adv[i];
                    loss -= adv * target_lp[i] * inv_n;
                    loss -= ec * h * inv_n;
                    let drow = &mut dlogits[row * na..(row + 1) * na];
                    for (j, (d, &z)) in drow.iter_mut().zip(zrow).enumerate() {
                        let p = (z - stats.max).exp() * inv_sum;
                        let indicator = if j == a { 1.0 } else { 0.0 };
                        // d/dlogits of -(adv · log π(a|s)): -adv (δ_aj − p_j),
                        // plus the entropy-bonus gradient as in PPO.
                        let g = -adv * (indicator - p) + ec * p * ((z - log_z) + h);
                        *d = g * inv_n;
                    }
                }
            }
            pnet.backward_ws(x, rn, dlogits, ws_a, grads);
            loss
        });
        clip_global_norm(pgrads, config.max_grad_norm);
        opt_policy.step(policy.params_mut(), pgrads);

        // Phase 4 (parallel): critic regression to the V-trace targets, also
        // over the phase-1 activations.
        vgrads.resize(value.num_params(), 0.0);
        let vloss = par.run(*pool, n, &mut [], 0, Some(vgrads), |rows, _out, shard, grads| {
            let x = &obs[rows.start * dim..rows.end * dim];
            let rn = rows.len();
            let Shard { ws_b, scratch, .. } = shard;
            if scratch.len() < rn {
                scratch.resize(rn, 0.0);
            }
            let dv = &mut scratch[..rn];
            let mut loss = 0.0f32;
            {
                let v = vnet.cached_output(ws_b, rn);
                for (row, i) in rows.enumerate() {
                    let d = v[row] - vs[i];
                    loss += d * d * inv_n;
                    dv[row] = vc * 2.0 * d * inv_n;
                }
            }
            vnet.backward_ws(x, rn, dv, ws_b, grads);
            loss
        });
        clip_global_norm(vgrads, config.max_grad_norm);
        opt_value.step(value.params_mut(), vgrads);

        self.version += 1;
        // Paper: "sends updated DNN parameters exactly to the explorers it
        // gets rollouts from".
        let notify = vec![batch.explorer];
        self.spent.push(batch);
        Some(TrainReport { steps_consumed: n, loss: policy_loss + vc * vloss, version: self.version, notify })
    }

    fn take_spent(&mut self) -> Option<RolloutBatch> {
        self.spent.pop()
    }

    fn param_blob(&self) -> ParamBlob {
        let mut params = self.policy.params().to_vec();
        params.extend_from_slice(self.value.params());
        ParamBlob { version: self.version, params }
    }

    fn load_params(&mut self, params: &[f32]) {
        let np = self.policy.num_params();
        assert_eq!(params.len(), np + self.value.num_params(), "parameter count mismatch");
        self.policy.set_params(&params[..np]);
        self.value.set_params(&params[np..]);
    }

    fn version(&self) -> u64 {
        self.version
    }

    fn adopt_params(&mut self, params: &[f32], version: u64) {
        self.load_params(params);
        self.version = version;
    }

    fn sync_mode(&self) -> SyncMode {
        SyncMode::OffPolicy
    }

    fn name(&self) -> &str {
        "IMPALA"
    }
}

/// Explorer-side IMPALA agent: samples the softmax policy, records behavior
/// logits for V-trace.
#[derive(Debug)]
pub struct ImpalaAgent {
    policy: Mlp,
    value: Mlp,
    version: u64,
    rng: StdRng,
    ws: Workspace,
    probs: Vec<f32>,
}

impl ImpalaAgent {
    /// Creates the explorer state for `config`.
    pub fn new(config: ImpalaConfig, explorer_seed: u64) -> Self {
        let policy = Mlp::new(&config.policy_sizes(), Activation::Tanh, config.seed);
        let value = Mlp::new(&config.value_sizes(), Activation::Tanh, config.seed ^ 0xF00D);
        let rng = StdRng::seed_from_u64(explorer_seed.wrapping_mul(0xC0FFEE).wrapping_add(13));
        ImpalaAgent { policy, value, version: 0, rng, ws: Workspace::new(), probs: Vec::new() }
    }
}

impl Agent for ImpalaAgent {
    fn act(&mut self, observation: &[f32]) -> ActionSelection {
        let logits: Vec<f32> = self.policy.forward_ws(observation, 1, &mut self.ws).to_vec();
        if self.probs.len() < logits.len() {
            self.probs.resize(logits.len(), 0.0);
        }
        let probs = &mut self.probs[..logits.len()];
        softmax_row_into(&logits, probs);
        let action = sample_categorical(probs, self.rng.gen::<f32>());
        let value = self.value.forward_ws(observation, 1, &mut self.ws)[0];
        ActionSelection { action, logits, value }
    }

    fn apply_params(&mut self, blob: &ParamBlob) {
        if blob.version <= self.version {
            return;
        }
        let np = self.policy.num_params();
        assert_eq!(blob.params.len(), np + self.value.num_params(), "parameter blob size mismatch");
        self.policy.set_params(&blob.params[..np]);
        self.value.set_params(&blob.params[np..]);
        self.version = blob.version;
    }

    fn param_version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::RolloutStep;
    use tinynn::ops::softmax;
    use tinynn::Matrix;

    fn tiny_config() -> ImpalaConfig {
        let mut c = ImpalaConfig::new(3, 2);
        c.hidden = vec![16];
        c.lr = 1e-2;
        c
    }

    fn rollout(explorer: u32, good_action: u32, len: usize) -> RolloutBatch {
        let steps = (0..len)
            .map(|i| {
                let action = (i % 2) as u32;
                RolloutStep {
                    observation: vec![0.3, 0.1, -0.2],
                    action,
                    reward: if action == good_action { 1.0 } else { 0.0 },
                    done: false,
                    behavior_logits: vec![0.0, 0.0],
                    value: 0.0,
                    next_observation: None,
                }
            })
            .collect();
        RolloutBatch { explorer, param_version: 0, steps, bootstrap_observation: vec![0.3, 0.1, -0.2] }
    }

    #[test]
    fn trains_per_single_batch_and_notifies_source() {
        let mut alg = ImpalaAlgorithm::new(tiny_config());
        assert!(alg.try_train().is_none(), "no data yet");
        alg.on_rollout(rollout(5, 1, 16));
        let report = alg.try_train().expect("one batch is enough");
        assert_eq!(report.steps_consumed, 16);
        assert_eq!(report.notify, vec![5], "params go back to the source explorer");
        assert!(alg.try_train().is_none(), "queue drained");
    }

    #[test]
    fn queue_preserves_fifo_order() {
        let mut alg = ImpalaAlgorithm::new(tiny_config());
        alg.on_rollout(rollout(1, 0, 4));
        alg.on_rollout(rollout(2, 0, 4));
        assert_eq!(alg.queue_depth(), 2);
        assert_eq!(alg.try_train().unwrap().notify, vec![1]);
        assert_eq!(alg.try_train().unwrap().notify, vec![2]);
    }

    #[test]
    fn stale_rollouts_are_still_consumed() {
        // Off-policy: a batch with an old param_version must still train.
        let mut alg = ImpalaAlgorithm::new(tiny_config());
        let mut b = rollout(0, 1, 8);
        b.param_version = 0;
        alg.on_rollout(b);
        alg.on_rollout(rollout(0, 1, 8)); // version still 0, learner now at 1
        assert!(alg.try_train().is_some());
        assert!(alg.try_train().is_some());
    }

    #[test]
    fn training_shifts_policy_toward_rewarded_action() {
        // γ = 0 isolates the per-action reward signal (contextual bandit), so
        // the policy-gradient direction is unambiguous.
        let mut c = tiny_config();
        c.gamma = 0.0;
        let mut alg = ImpalaAlgorithm::new(c);
        let obs = Matrix::from_vec(1, 3, vec![0.3, 0.1, -0.2]);
        let before = softmax(&alg.policy.forward(&obs)).get(0, 1);
        for _ in 0..60 {
            alg.on_rollout(rollout(0, 1, 32));
            alg.try_train().unwrap();
        }
        let after = softmax(&alg.policy.forward(&obs)).get(0, 1);
        assert!(after > before + 0.1, "P(a=1) should rise: {before} -> {after}");
    }

    #[test]
    fn agent_param_round_trip() {
        let alg = ImpalaAlgorithm::new(tiny_config());
        let mut agent = ImpalaAgent::new(tiny_config(), 2);
        let mut blob = alg.param_blob();
        blob.version = 1;
        agent.apply_params(&blob);
        assert_eq!(agent.param_version(), 1);
        assert_eq!(agent.policy.params(), alg.policy.params());
    }

    #[test]
    fn queue_overflow_sheds_oldest() {
        let mut c = tiny_config();
        c.max_queue = 2;
        let mut alg = ImpalaAlgorithm::new(c);
        for e in 0..5 {
            alg.on_rollout(rollout(e, 0, 4));
        }
        assert_eq!(alg.queue_depth(), 2);
        assert_eq!(alg.dropped_batches(), 3);
        // The two newest batches (explorers 3 and 4) survive.
        assert_eq!(alg.try_train().unwrap().notify, vec![3]);
        assert_eq!(alg.try_train().unwrap().notify, vec![4]);
    }

    #[test]
    fn empty_batches_are_ignored() {
        let mut alg = ImpalaAlgorithm::new(tiny_config());
        alg.on_rollout(RolloutBatch {
            explorer: 0,
            param_version: 0,
            steps: vec![],
            bootstrap_observation: vec![],
        });
        assert_eq!(alg.queue_depth(), 0);
    }
}
