//! Deterministic data-parallel minibatch gradients over the shared worker
//! pool.
//!
//! A training step's per-row work (forward, loss gradient, backward) is
//! embarrassingly parallel across the batch dimension. [`ParGrad`] splits the
//! batch into contiguous row shards, runs a caller-supplied shard closure on
//! the `xingtian_comm` worker pool (caller participating, same stride
//! discipline as the chunk codecs), and reduces the per-shard gradients **in
//! fixed shard order** on the calling thread.
//!
//! Determinism: the shard count is a function of the batch size alone (never
//! of the worker count), every shard's math runs sequentially within the
//! shard, and the reduction order is fixed — so gradients are bitwise
//! identical across runs, across worker-pool sizes, and against the serial
//! path (`pool = None`, which runs the same shards in order on the caller).
//!
//! Allocation: shard workspaces and gradient buffers live in the `ParGrad`
//! and are reused across calls. The single-shard path (small batches, e.g.
//! DQN's 32) boxes no jobs and performs zero heap allocations after warmup;
//! the multi-shard pool path allocates only the job boxes and completion
//! channel.

use std::ops::Range;
use tinynn::Workspace;
use xingtian_comm::pool::WorkPool;

/// Rows per shard before another shard is worth spawning. Below this the
/// per-job overhead (boxing, channel hop, cache warmup) outweighs the
/// parallelism.
const ROWS_PER_SHARD: usize = 64;

/// Maximum shards per step — matches the worker-pool cap.
const MAX_SHARDS: usize = 8;

/// Per-shard scratch state handed to the shard closure.
///
/// The two [`Workspace`]s let multi-phase algorithms (IMPALA) keep two
/// networks' cached activations alive across separate [`ParGrad::run`] calls
/// on the same batch: forward the policy in `ws_a` and the value net in
/// `ws_b` during one run, then back-propagate both in later runs without
/// re-running the forwards.
#[derive(Debug, Default)]
pub struct Shard {
    /// Primary workspace (policy net, or the only net).
    pub ws_a: Workspace,
    /// Secondary workspace (value net in two-network algorithms).
    pub ws_b: Workspace,
    /// Free-form f32 scratch (e.g. the shard's dlogits rows); grown by the
    /// closure via [`Shard::scratch_for`], never shrunk.
    pub scratch: Vec<f32>,
}

impl Shard {
    /// Returns `&mut scratch[..len]`, growing the buffer if needed (no-op
    /// after warmup).
    pub fn scratch_for(&mut self, len: usize) -> &mut [f32] {
        if self.scratch.len() < len {
            self.scratch.resize(len, 0.0);
        }
        &mut self.scratch[..len]
    }
}

/// Reusable engine for pool-parallel, deterministically-reduced minibatch
/// gradient computation.
#[derive(Debug, Default)]
pub struct ParGrad {
    shards: Vec<Shard>,
    grad_bufs: Vec<Vec<f32>>,
    losses: Vec<f32>,
    ranges: Vec<Range<usize>>,
}

impl ParGrad {
    /// A fresh engine; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shards for a batch of `batch` rows: one per [`ROWS_PER_SHARD`] rows,
    /// clamped to `1..=`[`MAX_SHARDS`]. A function of the batch size ONLY —
    /// this is what makes sharded gradients reproducible on any machine.
    pub fn shard_count(batch: usize) -> usize {
        (batch / ROWS_PER_SHARD).clamp(1, MAX_SHARDS)
    }

    /// Runs `f` once per shard and reduces the results deterministically.
    ///
    /// * `batch` — total rows; shards get contiguous balanced row ranges.
    /// * `out` / `out_width` — a caller-owned row-major output buffer
    ///   (`batch × out_width`) split into disjoint per-shard row slices; pass
    ///   `(&mut [], 0)` when the step produces no per-row output.
    /// * `grads` — when `Some`, each shard fully overwrites a private buffer
    ///   of the same length, and the buffers are summed into `grads` in shard
    ///   order (fixed-order f32 reduction). When `None`, shards receive an
    ///   empty gradient slice (pure-forward phases).
    /// * `f(rows, out_rows, shard, shard_grads)` returns the shard's loss
    ///   contribution (scale by the *global* batch, not the shard length);
    ///   contributions are summed in shard order.
    ///
    /// With `pool = None` every shard runs on the calling thread in shard
    /// order — the bitwise reference for the pool path. A single-shard batch
    /// short-circuits to a direct call writing straight into `grads`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < batch * out_width` or `batch == 0`.
    pub fn run<F>(
        &mut self,
        pool: Option<&WorkPool>,
        batch: usize,
        out: &mut [f32],
        out_width: usize,
        grads: Option<&mut [f32]>,
        f: F,
    ) -> f32
    where
        F: Fn(Range<usize>, &mut [f32], &mut Shard, &mut [f32]) -> f32 + Sync,
    {
        assert!(batch > 0, "cannot shard an empty batch");
        assert!(out.len() >= batch * out_width, "out buffer too small");
        let k = Self::shard_count(batch);
        if self.shards.len() < k {
            self.shards.resize_with(k, Shard::default);
        }

        if k == 1 {
            let grads = grads.map_or(&mut [] as &mut [f32], |g| g);
            return f(0..batch, &mut out[..batch * out_width], &mut self.shards[0], grads);
        }

        let nparams = grads.as_ref().map_or(0, |g| g.len());
        if self.grad_bufs.len() < k {
            self.grad_bufs.resize_with(k, Vec::new);
        }
        for buf in &mut self.grad_bufs[..k] {
            // Exact logical length per call (different nets have different
            // sizes); capacity only grows, so this is alloc-free after warmup.
            if buf.len() < nparams {
                buf.resize(nparams, 0.0);
            }
        }
        self.losses.resize(k, 0.0);
        self.ranges.clear();
        let (base, rem) = (batch / k, batch % k);
        let mut start = 0usize;
        for i in 0..k {
            let len = base + usize::from(i < rem);
            self.ranges.push(start..start + len);
            start += len;
        }

        match pool {
            None => {
                // Serial reference: same shards, same order, same math.
                let mut rest = &mut out[..batch * out_width];
                for i in 0..k {
                    let rows = self.ranges[i].clone();
                    let (mine, tail) = rest.split_at_mut(rows.len() * out_width);
                    rest = tail;
                    self.losses[i] =
                        f(rows, mine, &mut self.shards[i], &mut self.grad_bufs[i][..nparams]);
                }
            }
            Some(pool) => {
                let fref = &f;
                let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(k);
                let mut rest = &mut out[..batch * out_width];
                for (((rows, shard), buf), loss) in self.ranges.iter().cloned()
                    .zip(self.shards.iter_mut())
                    .zip(self.grad_bufs.iter_mut())
                    .zip(self.losses.iter_mut())
                {
                    let (mine, tail) = rest.split_at_mut(rows.len() * out_width);
                    rest = tail;
                    let grads = &mut buf[..nparams];
                    jobs.push(Box::new(move || {
                        *loss = fref(rows, mine, shard, grads);
                    }));
                }
                pool.run_scoped(jobs);
            }
        }

        if let Some(grads) = grads {
            grads.copy_from_slice(&self.grad_bufs[0][..nparams]);
            for buf in &self.grad_bufs[1..k] {
                for (g, &b) in grads.iter_mut().zip(&buf[..nparams]) {
                    *g += b;
                }
            }
        }
        self.losses[..k].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_depends_only_on_batch() {
        assert_eq!(ParGrad::shard_count(1), 1);
        assert_eq!(ParGrad::shard_count(63), 1);
        assert_eq!(ParGrad::shard_count(64), 1);
        assert_eq!(ParGrad::shard_count(128), 2);
        assert_eq!(ParGrad::shard_count(500), 7);
        assert_eq!(ParGrad::shard_count(100_000), 8);
    }

    #[test]
    fn serial_and_pool_paths_are_bitwise_equal() {
        // Shard closure: out row i gets i as f32, grads accumulate row sums.
        let run = |pool: Option<&WorkPool>| -> (Vec<f32>, Vec<f32>, f32) {
            let mut par = ParGrad::new();
            let batch = 300usize;
            let mut out = vec![0.0f32; batch * 2];
            let mut grads = vec![0.0f32; 4];
            let loss = par.run(pool, batch, &mut out, 2, Some(&mut grads), |rows, out_rows, _s, g| {
                g.fill(0.0);
                for (r, row) in rows.clone().zip(out_rows.chunks_mut(2)) {
                    row[0] = r as f32;
                    row[1] = (r as f32) * 0.5;
                    g[r % 4] += (r as f32).sin();
                }
                rows.len() as f32 / batch as f32
            });
            (out, grads, loss)
        };
        let serial = run(None);
        for workers in [1usize, 2, 5] {
            let pool = WorkPool::new(workers);
            let parallel = run(Some(&pool));
            assert_eq!(serial.0, parallel.0, "out, {workers} workers");
            assert_eq!(serial.1, parallel.1, "grads, {workers} workers");
            assert_eq!(serial.2, parallel.2, "loss, {workers} workers");
        }
    }

    #[test]
    fn single_shard_writes_grads_directly() {
        let mut par = ParGrad::new();
        let mut grads = vec![9.0f32; 3];
        let loss = par.run(None, 10, &mut [], 0, Some(&mut grads), |rows, _o, _s, g| {
            g.fill(rows.len() as f32);
            1.25
        });
        assert_eq!(grads, vec![10.0; 3]);
        assert_eq!(loss, 1.25);
    }

    #[test]
    fn shard_ranges_cover_batch_contiguously() {
        let mut par = ParGrad::new();
        let batch = 301usize; // not divisible by the shard count
        let mut out = vec![0.0f32; batch];
        par.run(None, batch, &mut out, 1, None, |rows, out_rows, _s, _g| {
            assert_eq!(rows.len(), out_rows.len());
            out_rows.fill(1.0);
            0.0
        });
        assert!(out.iter().all(|&v| v == 1.0), "every row visited exactly once");
    }
}
