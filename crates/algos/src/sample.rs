//! Replay backends: where DQN's experience lives and who owns sampling.
//!
//! XingTian keeps the replay buffer inside the learner's trainer thread
//! (paper §3.2.1). The store-resident replay plane (xt-replay) moves both the
//! storage *and* the sampling into the communication layer, beside the object
//! store, so the learner receives already-sampled minibatches instead of
//! whole rollout batches. [`ReplayBackend`] abstracts over the two placements
//! so `DqnAlgorithm` runs byte-identical update math against either; the
//! in-learner implementation ([`InLearnerReplay`]) lives here, the
//! store-resident one lives in the `xt-replay` crate.
//!
//! Both backends deliver sampled transitions through a [`SampleSink`] — a
//! push-style gather interface the learner points at its staging arena, so a
//! sample is a single copy from resident storage straight into the training
//! buffers (no intermediate batch materialization).

use crate::payload::{RolloutBatch, RolloutStep};
use crate::replay::{PrioritizedReplay, ReplayBuffer, SamplePick};
use rand::rngs::StdRng;
use rand::Rng;

/// Receives sampled transitions one at a time (a single-copy gather target).
pub trait SampleSink {
    /// Appends one transition. `next_observation` is `None` for terminal
    /// transitions recorded without a successor state (the sink substitutes
    /// zeros; the Bellman target is masked by `done` anyway).
    fn push_transition(
        &mut self,
        observation: &[f32],
        next_observation: Option<&[f32]>,
        action: u32,
        reward: f32,
        done: bool,
    );

    /// Appends one importance weight (prioritized sampling only; called once
    /// per transition, in the same order as `push_transition`).
    fn push_weight(&mut self, weight: f32);
}

/// Storage + sampling for an off-policy value-based learner.
///
/// The contract is deliberately shaped so that, given the same RNG and the
/// same ingest sequence, the in-learner and store-resident implementations
/// draw *identical* sample trajectories: `sample_uniform` must consume
/// exactly one `gen_range(0..len)` per transition, and prioritized sampling
/// must mirror [`PrioritizedReplay::sample`]'s draw-and-weight arithmetic.
/// The `ci.sh` replay differential stage holds both to it.
pub trait ReplayBackend: Send {
    /// Ingests a rollout batch. Transitions without a usable successor state
    /// (`next_observation.is_none() && !done`) are discarded. Returns the
    /// batch back when the backend copied the data out (so the caller can
    /// recycle the allocation), or `None` when the backend took ownership of
    /// the step storage.
    fn ingest(&mut self, batch: RolloutBatch) -> Option<RolloutBatch>;

    /// Resident transitions available for sampling.
    fn len(&self) -> usize;

    /// True when no transitions are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Transitions ingested over the backend's lifetime (drives the
    /// warmup/credit gates).
    fn total_inserted(&self) -> u64;

    /// True when the backend samples proportional to priority.
    fn prioritized(&self) -> bool;

    /// Gathers `n` uniformly sampled transitions into `sink`.
    ///
    /// # Panics
    ///
    /// Panics if the backend is empty.
    fn sample_uniform(&mut self, n: usize, rng: &mut StdRng, sink: &mut dyn SampleSink);

    /// Gathers `n` priority-sampled transitions (and their importance
    /// weights) into `sink`, remembering the picks for a following
    /// [`ReplayBackend::update_priorities`].
    ///
    /// # Panics
    ///
    /// Panics if the backend is empty or not prioritized.
    fn sample_prioritized(&mut self, n: usize, beta: f64, rng: &mut StdRng, sink: &mut dyn SampleSink);

    /// Re-prioritizes the transitions of the last `sample_prioritized` call
    /// with their fresh |TD errors| (wraparound-stale picks are skipped).
    fn update_priorities(&mut self, td: &[f32]);

    /// Short placement label for reports ("in-learner" / "store-resident").
    fn placement(&self) -> &'static str;
}

/// The classic XingTian placement: the buffer lives inside the learner's
/// trainer thread and sampling is a local operation.
#[derive(Debug)]
pub enum InLearnerReplay {
    /// Uniform ring buffer.
    Uniform(ReplayBuffer),
    /// Proportional prioritized replay with importance weighting; the second
    /// field remembers the last sample's picks for re-prioritization.
    Prioritized(PrioritizedReplay, Vec<SamplePick>),
}

impl InLearnerReplay {
    /// Uniform backend with the given capacity.
    pub fn uniform(capacity: usize) -> Self {
        InLearnerReplay::Uniform(ReplayBuffer::new(capacity))
    }

    /// Prioritized backend with priority exponent `alpha`.
    pub fn prioritized(capacity: usize, alpha: f64) -> Self {
        InLearnerReplay::Prioritized(PrioritizedReplay::new(capacity, alpha), Vec::new())
    }

    fn sink_step(sink: &mut dyn SampleSink, s: &RolloutStep) {
        sink.push_transition(&s.observation, s.next_observation.as_deref(), s.action, s.reward, s.done);
    }
}

impl ReplayBackend for InLearnerReplay {
    fn ingest(&mut self, batch: RolloutBatch) -> Option<RolloutBatch> {
        for step in batch.steps {
            // DQN needs full transitions; steps lacking next observations
            // (e.g. produced by a mis-configured agent) are unusable.
            if step.next_observation.is_some() || step.done {
                match self {
                    InLearnerReplay::Uniform(b) => b.push(step),
                    InLearnerReplay::Prioritized(b, _) => b.push(step),
                }
            }
        }
        None
    }

    fn len(&self) -> usize {
        match self {
            InLearnerReplay::Uniform(b) => b.len(),
            InLearnerReplay::Prioritized(b, _) => b.len(),
        }
    }

    fn total_inserted(&self) -> u64 {
        match self {
            InLearnerReplay::Uniform(b) => b.total_inserted(),
            InLearnerReplay::Prioritized(b, _) => b.total_inserted(),
        }
    }

    fn prioritized(&self) -> bool {
        matches!(self, InLearnerReplay::Prioritized(..))
    }

    fn sample_uniform(&mut self, n: usize, rng: &mut StdRng, sink: &mut dyn SampleSink) {
        let InLearnerReplay::Uniform(b) = self else {
            panic!("sample_uniform on a prioritized backend");
        };
        assert!(!b.is_empty(), "cannot sample from an empty replay buffer");
        for _ in 0..n {
            let idx = rng.gen_range(0..b.len());
            Self::sink_step(sink, b.get(idx));
        }
    }

    fn sample_prioritized(&mut self, n: usize, beta: f64, rng: &mut StdRng, sink: &mut dyn SampleSink) {
        let InLearnerReplay::Prioritized(b, picks) = self else {
            panic!("sample_prioritized on a uniform backend");
        };
        *picks = b.sample(n, beta, rng);
        for p in picks.iter() {
            sink.push_weight(p.weight);
            Self::sink_step(sink, b.get(p.slot));
        }
    }

    fn update_priorities(&mut self, td: &[f32]) {
        let InLearnerReplay::Prioritized(b, picks) = self else {
            return;
        };
        for (pick, &td) in picks.iter().zip(td) {
            b.update_priority(pick, f64::from(td));
        }
    }

    fn placement(&self) -> &'static str {
        "in-learner"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A sink that materializes transitions for inspection.
    #[derive(Debug, Default)]
    pub(crate) struct VecSink {
        pub rewards: Vec<f32>,
        pub weights: Vec<f32>,
    }

    impl SampleSink for VecSink {
        fn push_transition(&mut self, _o: &[f32], _n: Option<&[f32]>, _a: u32, reward: f32, _d: bool) {
            self.rewards.push(reward);
        }

        fn push_weight(&mut self, weight: f32) {
            self.weights.push(weight);
        }
    }

    fn batch(n: usize) -> RolloutBatch {
        RolloutBatch {
            explorer: 0,
            param_version: 0,
            steps: (0..n)
                .map(|i| RolloutStep {
                    observation: vec![i as f32],
                    action: 0,
                    reward: i as f32,
                    done: false,
                    behavior_logits: vec![],
                    value: 0.0,
                    next_observation: Some(vec![i as f32 + 1.0]),
                })
                .collect(),
            bootstrap_observation: vec![],
        }
    }

    #[test]
    fn in_learner_uniform_ingests_and_samples() {
        let mut b = InLearnerReplay::uniform(100);
        assert!(b.ingest(batch(10)).is_none(), "in-learner backend keeps the steps");
        assert_eq!(b.len(), 10);
        assert_eq!(b.total_inserted(), 10);
        let mut sink = VecSink::default();
        let mut rng = StdRng::seed_from_u64(0);
        b.sample_uniform(64, &mut rng, &mut sink);
        assert_eq!(sink.rewards.len(), 64);
        assert!(sink.weights.is_empty());
    }

    #[test]
    fn in_learner_prioritized_roundtrip() {
        let mut b = InLearnerReplay::prioritized(100, 0.6);
        b.ingest(batch(10));
        assert!(b.prioritized());
        let mut sink = VecSink::default();
        let mut rng = StdRng::seed_from_u64(0);
        b.sample_prioritized(16, 0.4, &mut rng, &mut sink);
        assert_eq!(sink.rewards.len(), 16);
        assert_eq!(sink.weights.len(), 16);
        b.update_priorities(&[0.5; 16]);
    }

    #[test]
    fn ineligible_steps_are_discarded() {
        let mut b = InLearnerReplay::uniform(100);
        let mut batch = batch(4);
        batch.steps[1].next_observation = None; // not done either: unusable
        batch.steps[2].next_observation = None;
        batch.steps[2].done = true; // terminal without successor: usable
        b.ingest(batch);
        assert_eq!(b.len(), 3);
    }
}
