//! Lazily Aggregated Policy Gradients (LAPG, arXiv:1812.03239): skip the
//! gradient uploads that would not change the learner's update.
//!
//! In distributed policy-gradient training most worker uploads are redundant:
//! between two server rounds a worker's gradient rarely moves more than the
//! parameters themselves did. LAPG has each worker upload only when its
//! *compensated* gradient (new gradient plus the residual the server never
//! saw) has drifted far enough from the last uploaded one:
//!
//! ```text
//! upload  iff  ‖g_comp − g_sent‖² > (scale / window) · Σ_{w recent} ‖Δθ_w‖²
//! ```
//!
//! where the right side tracks how fast the parameters have actually been
//! moving over the last `window` rounds. When the worker skips, the server
//! keeps aggregating the stale `g_sent` (lazy aggregation) and the worker
//! carries the difference forward as a residual — so skipped mass is
//! deferred, never lost, and the scheme provably matches the convergence
//! rate of full uploads while cutting upload rounds dramatically.
//!
//! [`LazyGradGate`] is the worker-side gate. It is transport-agnostic: the
//! XingTian channel ships accepted uploads as [`GradBlob`] bodies under
//! `MessageKind::Gradient`. It is *opt-in* plumbing beside [`crate::ParGrad`]
//! — the stock training loop ships rollouts, not gradients; this seeds the
//! multi-learner allreduce direction (ROADMAP item 2), and the skip/upload
//! telemetry (`comm.grad_skips` / `comm.grad_uploads`) makes the savings
//! observable today.

use std::collections::VecDeque;
use xingtian_message::codec::{Decode, DecodeError, Encode, Reader};
use xt_telemetry::{CounterHandle, Telemetry};

/// Tuning of the lazy-aggregation gate.
#[derive(Debug, Clone, Copy)]
pub struct LazyGradConfig {
    /// Rounds of parameter movement averaged into the adaptive threshold.
    pub window: usize,
    /// Threshold multiplier: larger skips more aggressively (LAPG's ξ).
    pub scale: f32,
    /// Consecutive skips after which an upload is forced, bounding the
    /// staleness of what the server aggregates for this worker.
    pub max_skip: u32,
}

impl Default for LazyGradConfig {
    fn default() -> Self {
        LazyGradConfig { window: 10, scale: 0.5, max_skip: 4 }
    }
}

/// A gradient upload on the wire (`MessageKind::Gradient`).
#[derive(Debug, Clone, PartialEq)]
pub struct GradBlob {
    /// Uploading worker's index.
    pub worker: u32,
    /// Parameter version the gradient was computed against.
    pub version: u64,
    /// The flat compensated gradient.
    pub grad: Vec<f32>,
}

impl Encode for GradBlob {
    fn encode(&self, out: &mut Vec<u8>) {
        self.worker.encode(out);
        self.version.encode(out);
        self.grad.encode(out);
    }
    fn encoded_size(&self) -> usize {
        self.worker.encoded_size() + self.version.encoded_size() + self.grad.encoded_size()
    }
}

impl Decode for GradBlob {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(GradBlob {
            worker: u32::decode(r)?,
            version: u64::decode(r)?,
            grad: Vec::<f32>::decode(r)?,
        })
    }
}

/// Worker-side LAPG gate: decides per round whether the compensated gradient
/// is worth uploading, and carries the residual of skipped rounds.
#[derive(Debug)]
pub struct LazyGradGate {
    cfg: LazyGradConfig,
    /// The gradient the server currently aggregates for this worker.
    last_sent: Vec<f32>,
    /// Skipped gradient mass, re-injected into the next offer.
    residual: Vec<f32>,
    /// Parameters at the previous `observe_params`, for ‖Δθ‖².
    prev_params: Vec<f32>,
    /// Recent ‖Δθ‖² values, newest last.
    param_moves: VecDeque<f32>,
    skip_streak: u32,
    skips: u64,
    uploads: u64,
    skips_ctr: CounterHandle,
    uploads_ctr: CounterHandle,
}

impl LazyGradGate {
    /// A gate with no telemetry.
    pub fn new(cfg: LazyGradConfig) -> Self {
        Self::with_telemetry(cfg, &Telemetry::disabled())
    }

    /// A gate reporting `comm.grad_skips` / `comm.grad_uploads` into
    /// `telemetry`.
    pub fn with_telemetry(cfg: LazyGradConfig, telemetry: &Telemetry) -> Self {
        LazyGradGate {
            cfg,
            last_sent: Vec::new(),
            residual: Vec::new(),
            prev_params: Vec::new(),
            param_moves: VecDeque::with_capacity(cfg.window + 1),
            skip_streak: 0,
            skips: 0,
            uploads: 0,
            skips_ctr: telemetry.counter("comm.grad_skips"),
            uploads_ctr: telemetry.counter("comm.grad_uploads"),
        }
    }

    /// Records the parameters the next gradient will be computed against; the
    /// movement since the previous call feeds the adaptive threshold.
    pub fn observe_params(&mut self, params: &[f32]) {
        if self.prev_params.len() == params.len() {
            let move_sq: f32 = self
                .prev_params
                .iter()
                .zip(params)
                .map(|(a, b)| {
                    let d = a - b;
                    d * d
                })
                .sum();
            self.param_moves.push_back(move_sq);
            while self.param_moves.len() > self.cfg.window {
                self.param_moves.pop_front();
            }
        } else {
            // Resized network: old movement history is meaningless.
            self.param_moves.clear();
        }
        self.prev_params.clear();
        self.prev_params.extend_from_slice(params);
    }

    /// Offers this round's gradient. Returns the compensated gradient to
    /// upload, or `None` when the round should be skipped (the server keeps
    /// aggregating the last upload; the difference is carried as residual).
    pub fn offer(&mut self, grad: &[f32]) -> Option<Vec<f32>> {
        if self.residual.len() != grad.len() {
            self.residual.clear();
            self.residual.resize(grad.len(), 0.0);
        }
        let compensated: Vec<f32> =
            grad.iter().zip(&self.residual).map(|(g, r)| g + r).collect();
        if self.should_skip(&compensated) {
            self.skip_streak += 1;
            self.skips += 1;
            self.skips_ctr.inc();
            // Residual = everything the server's stale copy gets wrong.
            for (r, (c, s)) in self
                .residual
                .iter_mut()
                .zip(compensated.iter().zip(&self.last_sent))
            {
                *r = c - s;
            }
            return None;
        }
        self.skip_streak = 0;
        self.uploads += 1;
        self.uploads_ctr.inc();
        for r in &mut self.residual {
            *r = 0.0;
        }
        self.last_sent.clear();
        self.last_sent.extend_from_slice(&compensated);
        Some(compensated)
    }

    /// Uploads so far vs. rounds offered: `(uploads, skips)`.
    pub fn counts(&self) -> (u64, u64) {
        (self.uploads, self.skips)
    }

    fn should_skip(&self, compensated: &[f32]) -> bool {
        // First round, post-resize, or no movement history: upload.
        if self.last_sent.len() != compensated.len() || self.param_moves.is_empty() {
            return false;
        }
        if self.skip_streak >= self.cfg.max_skip {
            return false;
        }
        let drift_sq: f32 = compensated
            .iter()
            .zip(&self.last_sent)
            .map(|(c, s)| {
                let d = c - s;
                d * d
            })
            .sum();
        let recent: f32 = self.param_moves.iter().sum();
        let threshold = self.cfg.scale / self.cfg.window as f32 * recent;
        drift_sq <= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_blob_round_trips() {
        let b = GradBlob { worker: 3, version: 17, grad: vec![0.25, -1.5, 3.0] };
        assert_eq!(GradBlob::from_bytes(&b.to_bytes()).unwrap(), b);
    }

    #[test]
    fn first_offer_always_uploads() {
        let mut gate = LazyGradGate::new(LazyGradConfig::default());
        assert_eq!(gate.offer(&[1.0, 2.0]), Some(vec![1.0, 2.0]));
    }

    #[test]
    fn max_skip_streak_forces_an_upload() {
        let cfg = LazyGradConfig { window: 4, scale: 1e9, max_skip: 3 };
        let mut gate = LazyGradGate::new(cfg);
        gate.observe_params(&[0.0; 8]);
        gate.observe_params(&[1.0; 8]); // huge movement => huge threshold
        assert!(gate.offer(&[1.0; 8]).is_some(), "first upload");
        let mut uploads = 0;
        for _ in 0..8 {
            gate.observe_params(&[1.0; 8]);
            if gate.offer(&[1.0; 8]).is_some() {
                uploads += 1;
            }
        }
        // With an absurd threshold everything would skip forever; the streak
        // cap forces an upload every max_skip+1 rounds.
        assert!(uploads >= 2, "streak cap forced uploads, got {uploads}");
    }

    #[test]
    fn lazy_sgd_on_a_quadratic_converges_like_full_uploads_with_fewer_rounds() {
        // Minimize f(θ) = ½‖θ‖² with plain SGD; the server aggregates the
        // worker's last upload when a round is skipped. LAPG must reach the
        // optimum at the dense schedule's rate while skipping a meaningful
        // fraction of uploads.
        let lr = 0.1f32;
        let n = 32;
        let init: Vec<f32> = (0..n).map(|i| (i as f32 / n as f32) - 0.5).collect();

        // Dense baseline.
        let mut dense = init.clone();
        for _ in 0..200 {
            let grad: Vec<f32> = dense.clone();
            for (p, g) in dense.iter_mut().zip(&grad) {
                *p -= lr * g;
            }
        }

        // Lazy: the server applies `server_grad` (the worker's last upload)
        // every round, refreshed only when the gate uploads.
        let mut lazy = init.clone();
        let mut gate = LazyGradGate::new(LazyGradConfig::default());
        let mut server_grad = vec![0.0f32; n];
        for _ in 0..200 {
            gate.observe_params(&lazy);
            let grad: Vec<f32> = lazy.clone();
            if let Some(up) = gate.offer(&grad) {
                server_grad = up;
            }
            for (p, g) in lazy.iter_mut().zip(&server_grad) {
                *p -= lr * g;
            }
        }

        let dense_norm: f32 = dense.iter().map(|x| x * x).sum::<f32>().sqrt();
        let lazy_norm: f32 = lazy.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(dense_norm < 1e-6, "dense SGD converged: {dense_norm}");
        assert!(lazy_norm < 1e-3, "lazy SGD converged: {lazy_norm}");
        let (uploads, skips) = gate.counts();
        assert!(skips > 0, "some rounds were skipped");
        assert!(
            skips as f32 >= 0.2 * (uploads + skips) as f32,
            "meaningful skip fraction: {skips} of {}",
            uploads + skips
        );
    }
}
