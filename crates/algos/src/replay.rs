//! Experience replay buffers.
//!
//! XingTian keeps the replay buffer *inside the trainer thread* of the learner
//! process (paper §3.2.1), so sampling never crosses a process boundary. The
//! baseline frameworks place the same buffer behind an RPC boundary instead;
//! both reuse these implementations.

use crate::payload::RolloutStep;
use crate::sumtree::SumTree;
use rand::Rng;

/// A uniform ring-buffer of rollout steps (full transitions).
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    steps: Vec<RolloutStep>,
    next: usize,
    total_inserted: u64,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ReplayBuffer { capacity, steps: Vec::with_capacity(capacity.min(1 << 20)), next: 0, total_inserted: 0 }
    }

    /// Maximum number of resident transitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident transitions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the buffer holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Transitions inserted over the buffer's lifetime.
    pub fn total_inserted(&self) -> u64 {
        self.total_inserted
    }

    /// Inserts a transition, evicting the oldest once full.
    pub fn push(&mut self, step: RolloutStep) {
        if self.steps.len() < self.capacity {
            self.steps.push(step);
        } else {
            self.steps[self.next] = step;
        }
        self.next = (self.next + 1) % self.capacity;
        self.total_inserted += 1;
    }

    /// Samples `batch` transitions uniformly with replacement.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn sample<R: Rng>(&self, batch: usize, rng: &mut R) -> Vec<&RolloutStep> {
        assert!(!self.is_empty(), "cannot sample from an empty replay buffer");
        (0..batch).map(|_| &self.steps[rng.gen_range(0..self.steps.len())]).collect()
    }

    /// Appends `batch` uniformly sampled indices to `out` — the
    /// allocation-free sampling path (the caller reuses `out` across training
    /// sessions and gathers transitions via [`ReplayBuffer::get`]).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn sample_indices_into<R: Rng>(&self, batch: usize, rng: &mut R, out: &mut Vec<usize>) {
        assert!(!self.is_empty(), "cannot sample from an empty replay buffer");
        out.reserve(batch);
        for _ in 0..batch {
            out.push(rng.gen_range(0..self.steps.len()));
        }
    }

    /// Accesses the transition at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn get(&self, idx: usize) -> &RolloutStep {
        &self.steps[idx]
    }
}

/// One sampled slot of a [`PrioritizedReplay`], carrying the slot's insert
/// sequence number so a later priority update can detect that the ring
/// wrapped and the slot now holds a *different* transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePick {
    /// Ring slot the transition occupied when sampled.
    pub slot: usize,
    /// Insert sequence number of the transition that occupied the slot
    /// (its `total_inserted` value at push time).
    pub seq: u64,
    /// Importance weight, normalized so the batch maximum is 1.
    pub weight: f32,
}

/// Prioritized experience replay (proportional variant, Schaul et al. 2016).
#[derive(Debug, Clone)]
pub struct PrioritizedReplay {
    capacity: usize,
    steps: Vec<RolloutStep>,
    tree: SumTree,
    /// Insert sequence number of the transition currently in each slot.
    seq: Vec<u64>,
    next: usize,
    max_priority: f64,
    alpha: f64,
    total_inserted: u64,
}

impl PrioritizedReplay {
    /// Creates a prioritized buffer with priority exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `alpha` is negative.
    pub fn new(capacity: usize, alpha: f64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        PrioritizedReplay {
            capacity,
            steps: Vec::new(),
            tree: SumTree::new(capacity),
            seq: Vec::new(),
            next: 0,
            max_priority: 1.0,
            alpha,
            total_inserted: 0,
        }
    }

    /// Current number of resident transitions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the buffer holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Transitions inserted over the buffer's lifetime.
    pub fn total_inserted(&self) -> u64 {
        self.total_inserted
    }

    /// Inserts a transition with the current maximum priority (new experience
    /// is always sampled at least once soon).
    pub fn push(&mut self, step: RolloutStep) {
        let idx = if self.steps.len() < self.capacity {
            self.steps.push(step);
            self.seq.push(self.total_inserted);
            self.steps.len() - 1
        } else {
            self.steps[self.next] = step;
            self.seq[self.next] = self.total_inserted;
            self.next
        };
        self.tree.set(idx, self.max_priority.powf(self.alpha));
        self.next = (self.next + 1) % self.capacity;
        self.total_inserted += 1;
    }

    /// Samples `batch` slots proportional to priority, returning
    /// [`SamplePick`]s with importance weights normalized to max 1. The picks
    /// carry each slot's insert sequence number so
    /// [`PrioritizedReplay::update_priority`] stays valid across ring
    /// wraparound.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn sample<R: Rng>(&self, batch: usize, beta: f64, rng: &mut R) -> Vec<SamplePick> {
        assert!(!self.is_empty(), "cannot sample from an empty replay buffer");
        let total = self.tree.total();
        let n = self.steps.len() as f64;
        let mut out = Vec::with_capacity(batch);
        let mut max_w = f64::MIN_POSITIVE;
        for _ in 0..batch {
            let idx = self.tree.find(rng.gen_range(0.0..total));
            let p = self.tree.get(idx) / total;
            let w = (n * p).powf(-beta);
            max_w = max_w.max(w);
            out.push((idx, w));
        }
        out.into_iter()
            .map(|(i, w)| SamplePick { slot: i, seq: self.seq[i], weight: (w / max_w) as f32 })
            .collect()
    }

    /// Accesses the transition at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn get(&self, idx: usize) -> &RolloutStep {
        &self.steps[idx]
    }

    /// Updates the priority of the transition `pick` sampled (typically to
    /// its fresh |TD error|). If the ring wrapped since the pick was taken —
    /// the slot now holds a *newer* transition with a different sequence
    /// number — the update is dropped: the TD error belongs to data that is
    /// gone, and clobbering the new occupant's priority would starve fresh
    /// experience of its guaranteed first visit.
    pub fn update_priority(&mut self, pick: &SamplePick, priority: f64) {
        if self.seq[pick.slot] != pick.seq {
            return;
        }
        self.set_slot_priority(pick.slot, priority);
    }

    /// Unchecked slot-priority write (no wraparound guard): callers must know
    /// slot `idx` still holds the transition they scored. The checked path is
    /// [`PrioritizedReplay::update_priority`].
    pub fn set_slot_priority(&mut self, idx: usize, priority: f64) {
        let p = priority.abs().max(1e-6);
        self.max_priority = self.max_priority.max(p);
        self.tree.set(idx, p.powf(self.alpha));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn step(tag: f32) -> RolloutStep {
        RolloutStep {
            observation: vec![tag],
            action: 0,
            reward: tag,
            done: false,
            behavior_logits: vec![],
            value: 0.0,
            next_observation: Some(vec![tag + 1.0]),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(step(i as f32));
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.total_inserted(), 5);
        let rewards: Vec<f32> = b.steps.iter().map(|s| s.reward).collect();
        let mut sorted = rewards.clone();
        sorted.sort_by(f32::total_cmp);
        assert_eq!(sorted, vec![2.0, 3.0, 4.0], "oldest two evicted");
    }

    #[test]
    fn uniform_sample_covers_buffer() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..10 {
            b.push(step(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(0);
        let samples = b.sample(1000, &mut rng);
        let mut seen = [false; 10];
        for s in samples {
            seen[s.reward as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "all slots sampled at least once");
    }

    #[test]
    fn sample_indices_into_matches_sample_distribution() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..10 {
            b.push(step(i as f32));
        }
        let mut idx = vec![99usize]; // pre-existing content is preserved
        let mut rng = StdRng::seed_from_u64(3);
        b.sample_indices_into(500, &mut rng, &mut idx);
        assert_eq!(idx[0], 99);
        assert_eq!(idx.len(), 501);
        let mut seen = [false; 10];
        for &i in &idx[1..] {
            seen[b.get(i).reward as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "all slots sampled at least once");
    }

    #[test]
    #[should_panic(expected = "empty replay buffer")]
    fn sample_empty_panics() {
        let b = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = b.sample(1, &mut rng);
    }

    #[test]
    fn prioritized_prefers_high_priority() {
        let mut b = PrioritizedReplay::new(4, 1.0);
        for i in 0..4 {
            b.push(step(i as f32));
        }
        b.set_slot_priority(0, 0.001);
        b.set_slot_priority(1, 0.001);
        b.set_slot_priority(2, 0.001);
        b.set_slot_priority(3, 10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let samples = b.sample(1000, 0.4, &mut rng);
        let high = samples.iter().filter(|p| p.slot == 3).count();
        assert!(high > 900, "index 3 should dominate, got {high}");
    }

    #[test]
    fn importance_weights_are_normalized() {
        let mut b = PrioritizedReplay::new(8, 0.6);
        for i in 0..8 {
            b.push(step(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let samples = b.sample(64, 0.4, &mut rng);
        assert!(samples.iter().all(|p| p.weight > 0.0 && p.weight <= 1.0 + 1e-6));
        assert!(samples.iter().any(|p| (p.weight - 1.0).abs() < 1e-6), "max weight is 1");
    }

    #[test]
    fn new_experience_gets_max_priority() {
        let mut b = PrioritizedReplay::new(4, 1.0);
        b.push(step(0.0));
        b.set_slot_priority(0, 5.0);
        b.push(step(1.0));
        // The fresh element must share the running max priority.
        assert_eq!(b.tree.get(1), 5.0);
    }

    #[test]
    fn stale_pick_update_cannot_touch_overwritten_slot() {
        // Regression: a priority update for a pick taken *before* the ring
        // wrapped must not touch the priority of the transition that has
        // since overwritten the slot.
        let mut b = PrioritizedReplay::new(2, 1.0);
        b.push(step(0.0)); // slot 0, seq 0
        b.push(step(1.0)); // slot 1, seq 1
        let mut rng = StdRng::seed_from_u64(5);
        let picks = b.sample(64, 0.4, &mut rng);
        let pick0 = *picks.iter().find(|p| p.slot == 0).expect("slot 0 sampled");
        assert_eq!(pick0.seq, 0);

        // Wrap: slot 0 is overwritten by a fresh transition (seq 2), which
        // gets the running max priority.
        b.push(step(2.0));
        let fresh_priority = b.tree.get(0);
        let max_before = b.max_priority;

        // Updating through the stale pick must be a no-op — on the slot's
        // priority *and* on the running max.
        b.update_priority(&pick0, 1_000.0);
        assert_eq!(b.tree.get(0), fresh_priority, "overwritten slot untouched");
        assert_eq!(b.max_priority, max_before, "stale TD must not raise the max");

        // A pick of the *current* occupant still updates normally.
        let picks = b.sample(64, 0.4, &mut rng);
        let fresh0 = picks.iter().find(|p| p.slot == 0).expect("slot 0 sampled");
        assert_eq!(fresh0.seq, 2);
        b.update_priority(fresh0, 7.0);
        assert_eq!(b.tree.get(0), 7.0);
    }
}
