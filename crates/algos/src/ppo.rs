//! Proximal Policy Optimization (Schulman et al. 2017) — actor-critic,
//! on-policy.
//!
//! Execution model (paper Fig. 1(a) and §5.2): the learner waits for rollouts
//! from *all* explorers (batch = `num_explorers × rollout_len` steps), runs a
//! training iteration (GAE advantages + clipped surrogate over several
//! minibatch epochs), then broadcasts fresh parameters to every explorer, who
//! were waiting for them. XingTian still accelerates this on-policy loop
//! because fast explorers' transmissions overlap slow explorers' environment
//! interaction (paper §3.2.1).

use crate::api::{ActionSelection, Agent, Algorithm, SyncMode, TrainReport};
use crate::batch::behavior_log_probs_into;
use crate::gae::{gae_into, normalize, GaeInput};
use crate::par::{ParGrad, Shard};
use crate::payload::{ParamBlob, RolloutBatch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tinynn::ops::{row_stats, sample_categorical, softmax_row_into};
use tinynn::optim::{clip_global_norm, Adam};
use tinynn::{Activation, Matrix, Mlp, Workspace};
use xingtian_comm::pool::{shared_pool, WorkPool};

/// PPO hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Observation dimensionality.
    pub obs_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Hidden widths of policy and value networks.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ.
    pub lambda: f32,
    /// Clipping radius ε of the surrogate objective.
    pub clip: f32,
    /// Optimization epochs per training iteration.
    pub epochs: usize,
    /// Minibatch size within an epoch.
    pub minibatch: usize,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Gradient global-norm clip.
    pub max_grad_norm: f32,
    /// Number of explorers (the learner waits for one batch from each;
    /// paper: 10).
    pub num_explorers: u32,
    /// Steps per explorer batch (paper: 200 for CartPole, 500 for Atari).
    pub rollout_len: usize,
    /// RNG / initialization seed.
    pub seed: u64,
}

impl PpoConfig {
    /// Paper-shaped defaults for the given environment dimensions.
    pub fn new(obs_dim: usize, num_actions: usize) -> Self {
        PpoConfig {
            obs_dim,
            num_actions,
            hidden: vec![64, 64],
            lr: 3e-4,
            gamma: 0.99,
            lambda: 0.95,
            clip: 0.2,
            epochs: 4,
            minibatch: 256,
            entropy_coef: 0.01,
            value_coef: 0.5,
            max_grad_norm: 0.5,
            num_explorers: 10,
            rollout_len: 200,
            seed: 0,
        }
    }

    fn policy_sizes(&self) -> Vec<usize> {
        let mut s = vec![self.obs_dim];
        s.extend_from_slice(&self.hidden);
        s.push(self.num_actions);
        s
    }

    fn value_sizes(&self) -> Vec<usize> {
        let mut s = vec![self.obs_dim];
        s.extend_from_slice(&self.hidden);
        s.push(1);
        s
    }
}

/// Learner-side PPO.
#[derive(Debug)]
pub struct PpoAlgorithm {
    config: PpoConfig,
    policy: Mlp,
    value: Mlp,
    opt_policy: Adam,
    opt_value: Adam,
    staged: Vec<RolloutBatch>,
    staged_steps: usize,
    spent: Vec<RolloutBatch>,
    version: u64,
    rng: StdRng,
    pool: Option<&'static WorkPool>,
    par: ParGrad,
    ws: Workspace,
    mb_obs: Vec<f32>,
    pgrads: Vec<f32>,
    vgrads: Vec<f32>,
    seg_rewards: Vec<f32>,
    seg_values: Vec<f32>,
    seg_dones: Vec<bool>,
}

impl PpoAlgorithm {
    /// Creates the learner state for `config`, sharding minibatch gradients
    /// over the process-wide worker pool.
    pub fn new(config: PpoConfig) -> Self {
        Self::with_pool(config, Some(shared_pool()))
    }

    /// Like [`PpoAlgorithm::new`] but with an explicit worker pool; `None`
    /// computes every shard on the calling thread (bitwise-identical result).
    pub fn with_pool(config: PpoConfig, pool: Option<&'static WorkPool>) -> Self {
        let policy = Mlp::new(&config.policy_sizes(), Activation::Tanh, config.seed);
        let value = Mlp::new(&config.value_sizes(), Activation::Tanh, config.seed ^ 0xF00D);
        let opt_policy = Adam::new(policy.num_params(), config.lr);
        let opt_value = Adam::new(value.num_params(), config.lr);
        let rng = StdRng::seed_from_u64(config.seed ^ 0x99);
        PpoAlgorithm {
            config,
            policy,
            value,
            opt_policy,
            opt_value,
            staged: Vec::new(),
            staged_steps: 0,
            spent: Vec::new(),
            version: 0,
            rng,
            pool,
            par: ParGrad::new(),
            ws: Workspace::new(),
            mb_obs: Vec::new(),
            pgrads: Vec::new(),
            vgrads: Vec::new(),
            seg_rewards: Vec::new(),
            seg_values: Vec::new(),
            seg_dones: Vec::new(),
        }
    }

    /// Steps currently staged, waiting for the iteration batch to fill.
    pub fn staged_steps(&self) -> usize {
        self.staged_steps
    }

    fn iteration_batch(&self) -> usize {
        self.config.num_explorers as usize * self.config.rollout_len
    }
}

/// Flattened training arrays for one PPO iteration.
struct IterationData {
    obs: Matrix,
    actions: Vec<u32>,
    behavior_lp: Vec<f32>,
    advantages: Vec<f32>,
    returns: Vec<f32>,
}

impl Algorithm for PpoAlgorithm {
    fn on_rollout(&mut self, batch: RolloutBatch) {
        // On-policy: rollouts generated by stale parameters cannot be used —
        // but their storage can (straight to the spent pool).
        if batch.param_version != self.version {
            self.spent.push(batch);
            return;
        }
        self.staged_steps += batch.len();
        self.staged.push(batch);
    }

    fn try_train(&mut self) -> Option<TrainReport> {
        if self.staged_steps < self.iteration_batch() {
            return None;
        }
        let staged = std::mem::take(&mut self.staged);
        let steps_consumed = self.staged_steps;
        self.staged_steps = 0;

        // Per-segment GAE with the behavior values recorded in the rollout;
        // the bootstrap value comes from the current value net. Segment
        // scratch buffers and the advantage computation are allocation-free
        // after warmup (`gae_into` writes straight into the iteration tail).
        let mut all_obs: Vec<f32> = Vec::new();
        let mut actions: Vec<u32> = Vec::new();
        let mut behavior_lp: Vec<f32> = Vec::new();
        let mut advantages: Vec<f32> = Vec::new();
        let mut returns: Vec<f32> = Vec::new();
        for b in &staged {
            self.seg_rewards.clear();
            self.seg_values.clear();
            self.seg_dones.clear();
            for s in &b.steps {
                self.seg_rewards.push(s.reward);
                self.seg_values.push(s.value);
                self.seg_dones.push(s.done);
            }
            let bootstrap_value = if b.bootstrap_observation.is_empty() {
                0.0
            } else {
                self.value.forward_ws(&b.bootstrap_observation, 1, &mut self.ws)[0]
            };
            let off = advantages.len();
            let len = b.steps.len();
            advantages.resize(off + len, 0.0);
            returns.resize(off + len, 0.0);
            gae_into(
                &GaeInput {
                    rewards: &self.seg_rewards,
                    values: &self.seg_values,
                    dones: &self.seg_dones,
                    bootstrap_value,
                    gamma: self.config.gamma,
                    lambda: self.config.lambda,
                },
                &mut advantages[off..],
                &mut returns[off..],
            );
            behavior_log_probs_into(&b.steps, &mut behavior_lp);
            for s in &b.steps {
                all_obs.extend_from_slice(&s.observation);
                actions.push(s.action);
            }
        }
        normalize(&mut advantages);
        // Everything needed has been copied out; the batches' step storage
        // goes back to the framework for decode recycling.
        self.spent.extend(staged);
        let n = actions.len();
        let data = IterationData {
            obs: Matrix::from_vec(n, self.config.obs_dim, all_obs),
            actions,
            behavior_lp,
            advantages,
            returns,
        };

        let mut last_loss = 0.0f32;
        let mut indices: Vec<usize> = (0..n).collect();
        for _ in 0..self.config.epochs {
            indices.shuffle(&mut self.rng);
            for chunk in indices.chunks(self.config.minibatch) {
                last_loss = self.minibatch_update(&data, chunk);
            }
        }

        self.version += 1;
        Some(TrainReport {
            steps_consumed,
            loss: last_loss,
            version: self.version,
            notify: (0..self.config.num_explorers).collect(),
        })
    }

    fn take_spent(&mut self) -> Option<RolloutBatch> {
        self.spent.pop()
    }

    fn param_blob(&self) -> ParamBlob {
        let mut params = self.policy.params().to_vec();
        params.extend_from_slice(self.value.params());
        ParamBlob { version: self.version, params }
    }

    fn load_params(&mut self, params: &[f32]) {
        let np = self.policy.num_params();
        assert_eq!(params.len(), np + self.value.num_params(), "parameter count mismatch");
        self.policy.set_params(&params[..np]);
        self.value.set_params(&params[np..]);
    }

    fn version(&self) -> u64 {
        self.version
    }

    fn adopt_params(&mut self, params: &[f32], version: u64) {
        self.load_params(params);
        self.version = version;
    }

    fn sync_mode(&self) -> SyncMode {
        SyncMode::OnPolicy
    }

    fn name(&self) -> &str {
        "PPO"
    }
}

impl PpoAlgorithm {
    /// One minibatch step on the compute fast path: gather the minibatch
    /// observations once, then run fused forward → loss-gradient → backward
    /// shard closures over the worker pool ([`ParGrad`]), reducing gradients
    /// deterministically. No per-step heap allocation after warmup on the
    /// serial path; the pool path allocates only its job boxes.
    fn minibatch_update(&mut self, data: &IterationData, idx: &[usize]) -> f32 {
        let m = idx.len();
        let Self { config, policy, value, opt_policy, opt_value, par, pool, mb_obs, pgrads, vgrads, .. } =
            self;
        let dim = config.obs_dim;
        let na = config.num_actions;
        let (clip, ec, vc) = (config.clip, config.entropy_coef, config.value_coef);
        let inv_m = 1.0 / m as f32;

        mb_obs.clear();
        for &i in idx {
            mb_obs.extend_from_slice(data.obs.row(i));
        }
        let mb_obs: &[f32] = mb_obs;

        // ---- Policy update (clipped surrogate + entropy bonus) ----
        pgrads.resize(policy.num_params(), 0.0);
        let pnet: &Mlp = policy;
        let policy_loss = par.run(*pool, m, &mut [], 0, Some(pgrads), |rows, _out, shard, grads| {
            let x = &mb_obs[rows.start * dim..rows.end * dim];
            let rn = rows.len();
            let Shard { ws_a, scratch, .. } = shard;
            if scratch.len() < rn * na {
                scratch.resize(rn * na, 0.0);
            }
            let dlogits = &mut scratch[..rn * na];
            let mut loss = 0.0f32;
            {
                let logits = pnet.forward_ws(x, rn, ws_a);
                for (row, &i) in idx[rows].iter().enumerate() {
                    let zrow = &logits[row * na..(row + 1) * na];
                    let stats = row_stats(zrow);
                    let log_z = stats.log_z();
                    let h = stats.entropy();
                    let inv_sum = 1.0 / stats.sum;
                    let a = data.actions[i] as usize;
                    let adv = data.advantages[i];
                    let ratio = ((zrow[a] - log_z) - data.behavior_lp[i]).exp();
                    let clipped = ratio.clamp(1.0 - clip, 1.0 + clip);
                    loss -= (ratio * adv).min(clipped * adv) * inv_m;
                    loss -= ec * h * inv_m;
                    // Gradient flows through the unclipped ratio only when the
                    // clipping is not actively binding against the objective.
                    let active = !((ratio > 1.0 + clip && adv > 0.0)
                        || (ratio < 1.0 - clip && adv < 0.0));
                    let drow = &mut dlogits[row * na..(row + 1) * na];
                    for (j, (d, &z)) in drow.iter_mut().zip(zrow).enumerate() {
                        let p = (z - stats.max).exp() * inv_sum;
                        let indicator = if j == a { 1.0 } else { 0.0 };
                        let mut g = 0.0f32;
                        if active {
                            // d/dlogits of -(ratio · adv): -adv · ratio · (δ_aj − p_j).
                            g -= adv * ratio * (indicator - p);
                        }
                        // d/dlogits of -(c_e · H): +c_e · p_j (log p_j + H).
                        g += ec * p * ((z - log_z) + h);
                        *d = g * inv_m;
                    }
                }
            }
            pnet.backward_ws(x, rn, dlogits, ws_a, grads);
            loss
        });
        clip_global_norm(pgrads, config.max_grad_norm);
        opt_policy.step(policy.params_mut(), pgrads);

        // ---- Value update (MSE to GAE returns) ----
        vgrads.resize(value.num_params(), 0.0);
        let vnet: &Mlp = value;
        let vloss = par.run(*pool, m, &mut [], 0, Some(vgrads), |rows, _out, shard, grads| {
            let x = &mb_obs[rows.start * dim..rows.end * dim];
            let rn = rows.len();
            let Shard { ws_a, scratch, .. } = shard;
            if scratch.len() < rn {
                scratch.resize(rn, 0.0);
            }
            let dv = &mut scratch[..rn];
            let mut loss = 0.0f32;
            {
                let v = vnet.forward_ws(x, rn, ws_a);
                for (row, &i) in idx[rows].iter().enumerate() {
                    let d = v[row] - data.returns[i];
                    loss += d * d * inv_m;
                    dv[row] = vc * 2.0 * d * inv_m;
                }
            }
            vnet.backward_ws(x, rn, dv, ws_a, grads);
            loss
        });
        clip_global_norm(vgrads, config.max_grad_norm);
        opt_value.step(value.params_mut(), vgrads);

        policy_loss + vc * vloss
    }
}

/// Explorer-side PPO: samples from the softmax policy, records logits and the
/// critic's value estimate for GAE at the learner.
#[derive(Debug)]
pub struct PpoAgent {
    policy: Mlp,
    value: Mlp,
    version: u64,
    rng: StdRng,
    ws: Workspace,
    probs: Vec<f32>,
}

impl PpoAgent {
    /// Creates the explorer state for `config`.
    pub fn new(config: PpoConfig, explorer_seed: u64) -> Self {
        let policy = Mlp::new(&config.policy_sizes(), Activation::Tanh, config.seed);
        let value = Mlp::new(&config.value_sizes(), Activation::Tanh, config.seed ^ 0xF00D);
        let rng = StdRng::seed_from_u64(explorer_seed.wrapping_mul(31).wrapping_add(7));
        PpoAgent { policy, value, version: 0, rng, ws: Workspace::new(), probs: Vec::new() }
    }
}

impl Agent for PpoAgent {
    fn act(&mut self, observation: &[f32]) -> ActionSelection {
        // Workspace forward on the raw observation slice: the only heap
        // allocation is the logits vector the selection must own.
        let logits: Vec<f32> = self.policy.forward_ws(observation, 1, &mut self.ws).to_vec();
        if self.probs.len() < logits.len() {
            self.probs.resize(logits.len(), 0.0);
        }
        let probs = &mut self.probs[..logits.len()];
        softmax_row_into(&logits, probs);
        let action = sample_categorical(probs, self.rng.gen::<f32>());
        let value = self.value.forward_ws(observation, 1, &mut self.ws)[0];
        ActionSelection { action, logits, value }
    }

    fn apply_params(&mut self, blob: &ParamBlob) {
        if blob.version <= self.version {
            return;
        }
        let np = self.policy.num_params();
        assert_eq!(blob.params.len(), np + self.value.num_params(), "parameter blob size mismatch");
        self.policy.set_params(&blob.params[..np]);
        self.value.set_params(&blob.params[np..]);
        self.version = blob.version;
    }

    fn param_version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::RolloutStep;
    use tinynn::ops::softmax;

    fn tiny_config() -> PpoConfig {
        let mut c = PpoConfig::new(3, 2);
        c.hidden = vec![16];
        c.num_explorers = 2;
        c.rollout_len = 8;
        c.minibatch = 8;
        c.epochs = 2;
        c
    }

    fn rollout(config: &PpoConfig, explorer: u32, version: u64, good_action: u32) -> RolloutBatch {
        // Reward 1 for `good_action`, 0 otherwise, alternating actions so both
        // appear in the behavior data.
        let steps = (0..config.rollout_len)
            .map(|i| {
                let action = (i % 2) as u32;
                RolloutStep {
                    observation: vec![0.2, -0.1, 0.4],
                    action,
                    reward: if action == good_action { 1.0 } else { 0.0 },
                    done: false,
                    behavior_logits: vec![0.0, 0.0],
                    value: 0.0,
                    next_observation: None,
                }
            })
            .collect();
        RolloutBatch { explorer, param_version: version, steps, bootstrap_observation: vec![0.2, -0.1, 0.4] }
    }

    #[test]
    fn waits_for_all_explorers() {
        let c = tiny_config();
        let mut alg = PpoAlgorithm::new(c.clone());
        alg.on_rollout(rollout(&c, 0, 0, 1));
        assert!(alg.try_train().is_none(), "only half the iteration batch");
        alg.on_rollout(rollout(&c, 1, 0, 1));
        let report = alg.try_train().expect("batch complete");
        assert_eq!(report.steps_consumed, 16);
        assert_eq!(report.notify, vec![0, 1], "on-policy broadcast to all");
        assert_eq!(report.version, 1);
    }

    #[test]
    fn stale_rollouts_are_rejected() {
        let c = tiny_config();
        let mut alg = PpoAlgorithm::new(c.clone());
        alg.on_rollout(rollout(&c, 0, 99, 1));
        assert_eq!(alg.staged_steps(), 0, "wrong-version rollouts dropped");
    }

    #[test]
    fn training_shifts_policy_toward_rewarded_action() {
        // γ = λ = 0 isolates the per-action reward signal (contextual bandit),
        // so the surrogate direction is unambiguous.
        let mut c = tiny_config();
        c.gamma = 0.0;
        c.lambda = 0.0;
        c.lr = 1e-3;
        let mut alg = PpoAlgorithm::new(c.clone());
        let obs = Matrix::from_vec(1, 3, vec![0.2, -0.1, 0.4]);
        let before = softmax(&alg.policy.forward(&obs)).get(0, 1);
        for _ in 0..20 {
            let v = alg.version();
            alg.on_rollout(rollout(&c, 0, v, 1));
            alg.on_rollout(rollout(&c, 1, v, 1));
            alg.try_train().unwrap();
        }
        let after = softmax(&alg.policy.forward(&obs)).get(0, 1);
        assert!(after > before + 0.1, "P(a=1) should rise: {before} -> {after}");
    }

    #[test]
    fn agent_round_trips_params() {
        let c = tiny_config();
        let alg = PpoAlgorithm::new(c.clone());
        let mut agent = PpoAgent::new(c, 3);
        let mut blob = alg.param_blob();
        blob.version = 5;
        agent.apply_params(&blob);
        assert_eq!(agent.param_version(), 5);
        assert_eq!(agent.policy.params(), alg.policy.params());
        assert_eq!(agent.value.params(), alg.value.params());
    }

    #[test]
    fn agent_records_logits_and_value() {
        let mut agent = PpoAgent::new(tiny_config(), 1);
        let sel = agent.act(&[0.1, 0.2, 0.3]);
        assert_eq!(sel.logits.len(), 2);
        assert!(sel.action < 2);
    }
}
