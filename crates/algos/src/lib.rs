//! DRL algorithm zoo for the XingTian reproduction.
//!
//! The paper's framework exposes four researcher-facing classes (§4.2):
//! `Environment`, `Model`, `Algorithm`, and `Agent`. The environment lives in
//! [`gymlite`]; this crate provides the other three for the three evaluated
//! algorithms:
//!
//! * **DQN** (value-based, off-policy) — [`dqn`], with uniform and prioritized
//!   [`replay`] buffers;
//! * **PPO** (actor-critic, on-policy) — [`ppo`], with [`gae`]
//!   generalized-advantage estimation and the clipped surrogate objective;
//! * **IMPALA** (actor-critic, off-policy) — [`impala`], with [`vtrace`]
//!   off-policy corrections;
//! * **A2C** (actor-critic, on-policy) — [`a2c`], synchronous vanilla policy
//!   gradient on GAE advantages;
//! * **REINFORCE** (policy-based, on-policy) — [`reinforce`], episodic
//!   Monte-Carlo policy gradient with a moving-average baseline.
//!
//! DQN additionally supports Double-DQN targets and prioritized replay
//! (`DqnConfig::double` / `DqnConfig::prioritized`), rounding out the zoo the
//! paper describes.
//!
//! The framework-facing contract is in [`api`]: a learner-side
//! [`api::Algorithm`] (the paper's `prepare_data` + `train`) and an
//! explorer-side [`api::Agent`] (the paper's `infer_action` +
//! `handle_env_feedback`). [`payload`] defines the wire format of rollout
//! batches and parameter blobs so that any communication substrate — the
//! XingTian channel or a baseline framework — can move them.

pub mod a2c;
pub mod api;
pub mod batch;
pub mod dqn;
pub mod gae;
pub mod impala;
pub mod lazy;
pub mod par;
pub mod payload;
pub mod ppo;
pub mod reinforce;
pub mod replay;
pub mod sample;
pub mod sumtree;
pub mod vtrace;

pub use a2c::{A2cAgent, A2cAlgorithm, A2cConfig};
pub use api::{ActionSelection, Agent, Algorithm, ShardedSync, SyncMode, TrainReport};
pub use dqn::{DqnAgent, DqnAlgorithm, DqnConfig};
pub use impala::{ImpalaAgent, ImpalaAlgorithm, ImpalaConfig};
pub use lazy::{GradBlob, LazyGradConfig, LazyGradGate};
pub use par::{ParGrad, Shard};
pub use payload::{BatchDecoder, ParamBlob, RolloutBatch, RolloutStep};
pub use ppo::{PpoAgent, PpoAlgorithm, PpoConfig};
pub use reinforce::{ReinforceAgent, ReinforceAlgorithm, ReinforceConfig};
pub use replay::{PrioritizedReplay, ReplayBuffer, SamplePick};
pub use sample::{InLearnerReplay, ReplayBackend, SampleSink};
