//! Wire formats for rollouts and DNN parameters.
//!
//! These are the two message bodies that dominate DRL traffic: explorers push
//! [`RolloutBatch`]es to the learner; the learner broadcasts [`ParamBlob`]s
//! back. Both implement the binary [`Encode`]/[`Decode`] codec so any
//! framework in this repository (XingTian or the baselines) can serialize them
//! identically — the frameworks differ only in *when and how* bytes move.

use xingtian_message::codec::{decode_f32s_into, Decode, DecodeError, Encode, Reader};

/// One environment transition recorded by an explorer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RolloutStep {
    /// Observation the action was taken from.
    pub observation: Vec<f32>,
    /// Action taken.
    pub action: u32,
    /// Immediate reward.
    pub reward: f32,
    /// Whether the episode ended at this step.
    pub done: bool,
    /// Behavior-policy logits at `observation` (used by PPO ratios and
    /// IMPALA's V-trace; empty for value-based algorithms).
    pub behavior_logits: Vec<f32>,
    /// Behavior value estimate at `observation` (0.0 when unused).
    pub value: f32,
    /// Next observation; recorded only by algorithms that need full
    /// transitions (DQN experience replay).
    pub next_observation: Option<Vec<f32>>,
}

impl Encode for RolloutStep {
    fn encode(&self, out: &mut Vec<u8>) {
        self.observation.encode(out);
        self.action.encode(out);
        self.reward.encode(out);
        self.done.encode(out);
        self.behavior_logits.encode(out);
        self.value.encode(out);
        self.next_observation.encode(out);
    }
    fn encoded_size(&self) -> usize {
        self.observation.encoded_size()
            + self.action.encoded_size()
            + self.reward.encoded_size()
            + self.done.encoded_size()
            + self.behavior_logits.encoded_size()
            + self.value.encoded_size()
            + self.next_observation.encoded_size()
    }
}

impl RolloutStep {
    /// Decodes one step *in place*, reusing `self`'s tensor buffers: the
    /// allocation-free mirror of [`Decode::decode`] used by
    /// [`BatchDecoder`].
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] if the input is truncated or malformed.
    pub fn decode_into(&mut self, r: &mut Reader<'_>) -> Result<(), DecodeError> {
        decode_f32s_into(r, &mut self.observation)?;
        self.action = u32::decode(r)?;
        self.reward = f32::decode(r)?;
        self.done = bool::decode(r)?;
        decode_f32s_into(r, &mut self.behavior_logits)?;
        self.value = f32::decode(r)?;
        match r.u8()? {
            0 => self.next_observation = None,
            1 => decode_f32s_into(r, self.next_observation.get_or_insert_with(Vec::new))?,
            t => return Err(DecodeError::InvalidTag(t)),
        }
        Ok(())
    }
}

impl Decode for RolloutStep {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RolloutStep {
            observation: Vec::<f32>::decode(r)?,
            action: u32::decode(r)?,
            reward: f32::decode(r)?,
            done: bool::decode(r)?,
            behavior_logits: Vec::<f32>::decode(r)?,
            value: f32::decode(r)?,
            next_observation: Option::<Vec<f32>>::decode(r)?,
        })
    }
}

/// A contiguous batch of rollout steps from one explorer.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutBatch {
    /// Index of the producing explorer.
    pub explorer: u32,
    /// Version of the DNN parameters the behavior policy used.
    pub param_version: u64,
    /// The steps, in environment order.
    pub steps: Vec<RolloutStep>,
    /// Observation following the final step, for value bootstrapping. Empty
    /// when the final step ended the episode.
    pub bootstrap_observation: Vec<f32>,
}

impl RolloutBatch {
    /// Number of steps in the batch.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the batch holds no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl Encode for RolloutBatch {
    fn encode(&self, out: &mut Vec<u8>) {
        self.explorer.encode(out);
        self.param_version.encode(out);
        self.steps.len().encode(out);
        for s in &self.steps {
            s.encode(out);
        }
        self.bootstrap_observation.encode(out);
    }
    fn encoded_size(&self) -> usize {
        self.explorer.encoded_size()
            + self.param_version.encoded_size()
            + self.steps.len().encoded_size()
            + self.steps.iter().map(Encode::encoded_size).sum::<usize>()
            + self.bootstrap_observation.encoded_size()
    }
}

impl Decode for RolloutBatch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let explorer = u32::decode(r)?;
        let param_version = u64::decode(r)?;
        let n = usize::decode(r)?;
        if n > r.remaining() {
            return Err(DecodeError::LengthOverflow { declared: n, remaining: r.remaining() });
        }
        let mut steps = Vec::with_capacity(n);
        for _ in 0..n {
            steps.push(RolloutStep::decode(r)?);
        }
        Ok(RolloutBatch { explorer, param_version, steps, bootstrap_observation: Vec::<f32>::decode(r)? })
    }
}

/// Decodes [`RolloutBatch`]es into recycled step storage.
///
/// The learner receives one multi-megabyte rollout message per training
/// iteration; decoding it freshly allocates three `Vec`s per step (~1,500
/// allocations for the paper's 500-step IMPALA batch). `BatchDecoder` keeps
/// the step storage of batches the algorithm has finished with (returned via
/// [`crate::api::Algorithm::take_spent`]) and decodes the next message into
/// it, so a warmed-up receive path performs no per-step allocations.
#[derive(Debug, Default)]
pub struct BatchDecoder {
    /// Recycled steps whose tensor buffers keep their capacity.
    steps: Vec<RolloutStep>,
    /// Emptied step containers from recycled batches.
    containers: Vec<Vec<RolloutStep>>,
    /// Spare bootstrap-observation buffers.
    f32_bufs: Vec<Vec<f32>>,
}

impl BatchDecoder {
    /// A decoder with empty pools; buffers accumulate via
    /// [`BatchDecoder::recycle`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Steps currently pooled for reuse.
    pub fn pooled_steps(&self) -> usize {
        self.steps.len()
    }

    /// Decodes a batch that must span the whole of `buf`, drawing step
    /// storage from the recycle pools (falling back to fresh allocations
    /// when the pools run dry).
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] if the input is truncated or malformed.
    pub fn decode(&mut self, buf: &[u8]) -> Result<RolloutBatch, DecodeError> {
        let mut r = Reader::new(buf);
        let explorer = u32::decode(&mut r)?;
        let param_version = u64::decode(&mut r)?;
        let n = usize::decode(&mut r)?;
        if n > r.remaining() {
            return Err(DecodeError::LengthOverflow { declared: n, remaining: r.remaining() });
        }
        let mut steps = self.containers.pop().unwrap_or_default();
        steps.reserve(n);
        for _ in 0..n {
            let mut s = self.steps.pop().unwrap_or_default();
            s.decode_into(&mut r)?;
            steps.push(s);
        }
        let mut bootstrap_observation = self.f32_bufs.pop().unwrap_or_default();
        decode_f32s_into(&mut r, &mut bootstrap_observation)?;
        Ok(RolloutBatch { explorer, param_version, steps, bootstrap_observation })
    }

    /// Returns a spent batch's storage to the pools for the next decode.
    pub fn recycle(&mut self, batch: RolloutBatch) {
        let RolloutBatch { mut steps, bootstrap_observation, .. } = batch;
        self.steps.append(&mut steps);
        self.containers.push(steps);
        self.f32_bufs.push(bootstrap_observation);
    }
}

/// A flat snapshot of every trainable parameter, broadcast by the learner.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamBlob {
    /// Monotonically increasing version number.
    pub version: u64,
    /// Concatenated parameters of all networks, in a fixed algorithm-defined
    /// order.
    pub params: Vec<f32>,
}

impl Encode for ParamBlob {
    fn encode(&self, out: &mut Vec<u8>) {
        self.version.encode(out);
        self.params.encode(out);
    }
    fn encoded_size(&self) -> usize {
        self.version.encoded_size() + self.params.encoded_size()
    }
}

impl Decode for ParamBlob {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ParamBlob { version: u64::decode(r)?, params: Vec::<f32>::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(dim: usize, with_next: bool) -> RolloutStep {
        RolloutStep {
            observation: (0..dim).map(|i| i as f32 * 0.5).collect(),
            action: 3,
            reward: -1.25,
            done: dim.is_multiple_of(2),
            behavior_logits: vec![0.1, 0.2, 0.7],
            value: 0.42,
            next_observation: with_next.then(|| vec![9.0; dim]),
        }
    }

    #[test]
    fn rollout_step_round_trips() {
        for with_next in [false, true] {
            let s = step(8, with_next);
            let bytes = s.to_bytes();
            assert_eq!(RolloutStep::from_bytes(&bytes).unwrap(), s);
        }
    }

    #[test]
    fn rollout_batch_round_trips() {
        let b = RolloutBatch {
            explorer: 7,
            param_version: 99,
            steps: (0..50).map(|i| step(4 + i % 3, i % 2 == 0)).collect(),
            bootstrap_observation: vec![1.0, 2.0, 3.0, 4.0],
        };
        let bytes = b.to_bytes();
        assert_eq!(RolloutBatch::from_bytes(&bytes).unwrap(), b);
        assert_eq!(b.len(), 50);
        assert!(!b.is_empty());
    }

    #[test]
    fn batch_decoder_matches_fresh_decode_and_recycles() {
        let make = |tag: u32| RolloutBatch {
            explorer: tag,
            param_version: u64::from(tag) * 10,
            steps: (0..20).map(|i| step(4 + (i + tag as usize) % 3, i % 2 == 0)).collect(),
            bootstrap_observation: vec![tag as f32; 6],
        };
        let mut dec = BatchDecoder::new();
        let b0 = make(0);
        let got = dec.decode(&b0.to_bytes()).unwrap();
        assert_eq!(got, b0);
        assert_eq!(dec.pooled_steps(), 0);
        dec.recycle(got);
        assert_eq!(dec.pooled_steps(), 20);
        // A second decode drains the pool and still round-trips exactly.
        let b1 = make(3);
        let got = dec.decode(&b1.to_bytes()).unwrap();
        assert_eq!(got, b1);
        assert_eq!(dec.pooled_steps(), 0);
    }

    #[test]
    fn batch_decoder_rejects_truncation() {
        let b = RolloutBatch {
            explorer: 1,
            param_version: 2,
            steps: vec![step(4, true)],
            bootstrap_observation: vec![0.5],
        };
        let bytes = b.to_bytes();
        let mut dec = BatchDecoder::new();
        assert!(dec.decode(&bytes[..bytes.len() - 3]).is_err());
        assert_eq!(dec.decode(&bytes).unwrap(), b);
    }

    #[test]
    fn param_blob_round_trips() {
        let p = ParamBlob { version: 12, params: (0..1000).map(|i| i as f32).collect() };
        let bytes = p.to_bytes();
        assert_eq!(ParamBlob::from_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn truncated_batch_errors() {
        let b = RolloutBatch {
            explorer: 0,
            param_version: 0,
            steps: vec![step(4, false)],
            bootstrap_observation: vec![],
        };
        let bytes = b.to_bytes();
        assert!(RolloutBatch::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn message_size_matches_paper_scale() {
        // 500 steps of 84x84 observations ≈ the paper's 13.8 MB IMPALA message.
        let steps: Vec<RolloutStep> = (0..500)
            .map(|_| RolloutStep {
                observation: vec![0.5; 84 * 84],
                action: 0,
                reward: 0.0,
                done: false,
                behavior_logits: vec![0.0; 9],
                value: 0.0,
                next_observation: None,
            })
            .collect();
        let b = RolloutBatch { explorer: 0, param_version: 0, steps, bootstrap_observation: vec![0.0; 84 * 84] };
        let bytes = b.to_bytes();
        let mb = bytes.len() as f64 / 1024.0 / 1024.0;
        assert!((12.0..16.0).contains(&mb), "batch is {mb:.1} MiB");
    }
}
