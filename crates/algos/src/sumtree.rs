//! A sum tree (Fenwick-style complete binary tree) for prioritized sampling.
//!
//! Supports O(log n) priority updates and O(log n) sampling proportional to
//! priority, as used by prioritized experience replay (Schaul et al. 2016).

/// A fixed-capacity sum tree over `f32` priorities.
#[derive(Debug, Clone)]
pub struct SumTree {
    capacity: usize,
    /// Binary heap layout: `tree[1]` is the root; leaves start at `capacity`.
    tree: Vec<f64>,
}

impl SumTree {
    /// Creates a tree for `capacity` leaves, all with priority zero.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let cap = capacity.next_power_of_two();
        SumTree { capacity: cap, tree: vec![0.0; 2 * cap] }
    }

    /// Number of leaves (rounded up to a power of two).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total priority mass.
    pub fn total(&self) -> f64 {
        self.tree[1]
    }

    /// Priority of leaf `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity()`.
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.capacity, "leaf {i} out of range");
        self.tree[self.capacity + i]
    }

    /// Sets leaf `i` to `priority`, updating ancestors.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity()` or `priority` is negative or non-finite.
    pub fn set(&mut self, i: usize, priority: f64) {
        assert!(i < self.capacity, "leaf {i} out of range");
        assert!(priority.is_finite() && priority >= 0.0, "priority must be finite and non-negative");
        let mut idx = self.capacity + i;
        self.tree[idx] = priority;
        idx /= 2;
        while idx >= 1 {
            self.tree[idx] = self.tree[2 * idx] + self.tree[2 * idx + 1];
            if idx == 1 {
                break;
            }
            idx /= 2;
        }
    }

    /// Finds the leaf whose cumulative-priority interval contains `mass`
    /// (`0 ≤ mass < total()`), returning the leaf index.
    ///
    /// # Panics
    ///
    /// Panics if the tree is empty (total == 0).
    pub fn find(&self, mut mass: f64) -> usize {
        assert!(self.total() > 0.0, "cannot sample from an empty sum tree");
        let mut idx = 1usize;
        while idx < self.capacity {
            let left = 2 * idx;
            if mass < self.tree[left] {
                idx = left;
            } else {
                mass -= self.tree[left];
                idx = left + 1;
            }
        }
        idx - self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_tracks_updates() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 2.0);
        t.set(2, 3.0);
        assert_eq!(t.total(), 6.0);
        t.set(1, 0.0);
        assert_eq!(t.total(), 4.0);
    }

    #[test]
    fn find_respects_intervals() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 2.0);
        t.set(2, 3.0);
        // Intervals: [0,1) -> 0, [1,3) -> 1, [3,6) -> 2.
        assert_eq!(t.find(0.0), 0);
        assert_eq!(t.find(0.99), 0);
        assert_eq!(t.find(1.0), 1);
        assert_eq!(t.find(2.99), 1);
        assert_eq!(t.find(3.0), 2);
        assert_eq!(t.find(5.99), 2);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let t = SumTree::new(5);
        assert_eq!(t.capacity(), 8);
    }

    #[test]
    fn sampling_distribution_is_proportional() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 3.0);
        let n = 10_000;
        let mut counts = [0usize; 2];
        for i in 0..n {
            let mass = t.total() * (i as f64 + 0.5) / n as f64;
            counts[t.find(mass)] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "empty sum tree")]
    fn find_on_empty_panics() {
        let t = SumTree::new(2);
        let _ = t.find(0.0);
    }

    #[test]
    #[should_panic(expected = "priority must be finite")]
    fn negative_priority_rejected() {
        let mut t = SumTree::new(2);
        t.set(0, -1.0);
    }
}
