//! The framework-facing algorithm contract.
//!
//! XingTian's researcher interface (paper §4.2) splits a DRL algorithm into a
//! learner-side `Algorithm` (how to organize received rollouts and update the
//! DNNs — `prepare_data` + `train`) and an explorer-side `Agent` (how to pick
//! actions and package environment feedback — `infer_action` +
//! `handle_env_feedback`). The same two traits are implemented here and are
//! consumed by *both* the XingTian framework and the baseline frameworks, so
//! every framework runs byte-identical algorithm logic and differs only in
//! communication management.

use crate::payload::{ParamBlob, RolloutBatch};

/// How the learner and explorers synchronize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// On-policy: explorers must wait for fresh parameters after each batch
    /// (PPO).
    OnPolicy,
    /// Off-policy: explorers keep rolling with stale parameters (DQN, IMPALA).
    OffPolicy,
}

/// Outcome of one training session.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Rollout steps consumed by this session (the unit of the paper's
    /// throughput metric).
    pub steps_consumed: usize,
    /// Scalar training loss (algorithm-specific composition).
    pub loss: f32,
    /// Parameter version after the update.
    pub version: u64,
    /// Explorers that should receive the new parameters now. Empty means "no
    /// broadcast due yet" (e.g. DQN broadcasts every few sessions).
    pub notify: Vec<u32>,
}

/// Learner-side algorithm logic.
pub trait Algorithm: Send {
    /// Ingests a rollout batch (the paper's `prepare_data`): replay-buffer
    /// insertion for DQN, accumulation for PPO/IMPALA.
    fn on_rollout(&mut self, batch: RolloutBatch);

    /// Runs one training session if enough data is staged, returning a report
    /// (the paper's `train`). Returns `None` when not ready (warmup not met,
    /// on-policy batch incomplete, ...).
    fn try_train(&mut self) -> Option<TrainReport>;

    /// Hands back one rollout batch whose step data has been fully consumed,
    /// so the framework can recycle its allocations into the receive path
    /// (see `BatchDecoder`). `None` when nothing is spent. Algorithms that
    /// retain step storage (replay buffers) never return batches; the
    /// default does exactly that.
    fn take_spent(&mut self) -> Option<RolloutBatch> {
        None
    }

    /// Snapshot of all trainable parameters for broadcast.
    fn param_blob(&self) -> ParamBlob;

    /// Overwrites all trainable parameters (used by PBT to seed a new
    /// population with the best population's weights, paper §4.3). The
    /// version counter is left unchanged.
    ///
    /// # Panics
    ///
    /// Implementations panic if `params` has the wrong length.
    fn load_params(&mut self, params: &[f32]);

    /// Current parameter version.
    fn version(&self) -> u64;

    /// Hands the algorithm a telemetry handle so it can publish per-stage
    /// timings (e.g. DQN's `learn.sample_ns`) into the same registry as the
    /// framework's channel stages. The default keeps algorithms
    /// telemetry-free.
    fn attach_telemetry(&mut self, _telemetry: &xt_telemetry::Telemetry) {}

    /// The algorithm's synchronization discipline.
    fn sync_mode(&self) -> SyncMode;

    /// Human-readable algorithm name.
    fn name(&self) -> &str;
}

/// An action choice plus the behavior-policy side information the learner
/// needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionSelection {
    /// The chosen action.
    pub action: usize,
    /// Behavior-policy logits (empty for value-based agents).
    pub logits: Vec<f32>,
    /// Behavior value estimate (0.0 for value-based agents).
    pub value: f32,
}

/// Explorer-side agent logic.
pub trait Agent: Send {
    /// Chooses an action for `observation` (the paper's `infer_action`).
    fn act(&mut self, observation: &[f32]) -> ActionSelection;

    /// Installs broadcast parameters (stale versions are ignored).
    fn apply_params(&mut self, blob: &ParamBlob);

    /// Version of the parameters currently in use.
    fn param_version(&self) -> u64;

    /// Whether this agent records full transitions (`next_observation`) in
    /// its rollout steps — true for replay-based algorithms.
    fn records_next_observation(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traits_are_object_safe() {
        fn _assert_algorithm(_: &dyn Algorithm) {}
        fn _assert_agent(_: &dyn Agent) {}
    }

    #[test]
    fn train_report_fields() {
        let r = TrainReport { steps_consumed: 500, loss: 0.5, version: 3, notify: vec![1, 2] };
        assert_eq!(r.steps_consumed, 500);
        assert_eq!(r.notify, vec![1, 2]);
    }
}
